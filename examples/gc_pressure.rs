//! Garbage-collection pressure: an update-heavy workload that repeatedly
//! overwrites a working set larger than a single flash block, forcing the
//! log-structured data layout to clean victim blocks (§IV-B) while the
//! index keeps every live pair reachable.
//!
//! ```sh
//! cargo run --release --example gc_pressure
//! ```

use rhik::kvssd::{DeviceConfig, KvssdDevice};

fn main() {
    let mut dev = KvssdDevice::rhik(DeviceConfig::small()); // 16 MiB raw flash
    const KEYS: u64 = 400;
    const ROUNDS: u64 = 12;
    let value = vec![0u8; 8 * 1024]; // 400 x 8 KiB = ~3.2 MiB working set

    for round in 0..ROUNDS {
        for i in 0..KEYS {
            let mut v = value.clone();
            v[0] = round as u8;
            dev.put(format!("hot:{i:06}").as_bytes(), &v).expect("put");
        }
        let f = dev.ftl().stats();
        println!(
            "round {:>2}: util {:>5.1}%  live {:>6} KiB  stale {:>6} KiB  \
             gc runs {:>3}  relocated {:>5}  erased blocks {:>4}",
            round + 1,
            dev.utilization() * 100.0,
            dev.ftl().total_live_bytes() / 1024,
            dev.ftl().total_stale_bytes() / 1024,
            f.gc_runs,
            f.gc_relocated_pairs,
            f.gc_erased_blocks,
        );
    }

    // Despite ~12x overwrite churn, exactly KEYS pairs are live and all
    // carry the last round's bytes.
    let mut verified = 0;
    for i in 0..KEYS {
        let v = dev.get(format!("hot:{i:06}").as_bytes()).expect("get").expect("present");
        assert_eq!(v[0], (ROUNDS - 1) as u8, "stale version for key {i}");
        verified += 1;
    }
    println!("\nverified {verified}/{KEYS} keys at the latest version");

    let logical = KEYS * ROUNDS * value.len() as u64;
    let physical = dev.ftl().nand_stats().bytes_programmed;
    println!(
        "host wrote {} MiB; flash programmed {} MiB -> write amplification {:.2}",
        logical >> 20,
        physical >> 20,
        physical as f64 / logical as f64
    );
}
