//! Run the six YCSB core workloads against a RHIK device and the
//! multi-level baseline, side by side.
//!
//! ```sh
//! cargo run --release --example ycsb
//! ```

use rhik::baseline::MultiLevelConfig;
use rhik::kvssd::{DeviceConfig, KvssdDevice};
use rhik::nand::DeviceProfile;
use rhik::workloads::ycsb::{self, YcsbConfig, YcsbPreset};

fn device_config() -> DeviceConfig {
    let mut cfg = DeviceConfig::small().with_profile(DeviceProfile::kvemu_like()).with_async(16);
    cfg.cache_budget_bytes = 32 * 1024; // tight cache: index behaviour matters
    cfg
}

fn main() {
    let cfg =
        YcsbConfig { records: 10_000, operations: 8_000, value_bytes: 512, ..Default::default() };

    println!(
        "YCSB core workloads — {} records, {} ops, {}B values\n",
        cfg.records, cfg.operations, cfg.value_bytes
    );
    println!("{:<24} {:>14} {:>14} {:>8}", "preset", "rhik kops/s", "multilevel kops/s", "speedup");
    println!("{}", "-".repeat(64));

    for preset in YcsbPreset::all() {
        let mut rhik_dev = KvssdDevice::rhik(device_config());
        let r = ycsb::run(&mut rhik_dev, preset, &cfg).expect("rhik run");

        let mut ml_dev = KvssdDevice::multilevel(
            device_config(),
            MultiLevelConfig { initial_bits: 2, max_levels: 8, hop_width: 32 },
        );
        let m = ycsb::run(&mut ml_dev, preset, &cfg).expect("multilevel run");

        println!(
            "{:<24} {:>14.1} {:>14.1} {:>8.2}x",
            preset.name(),
            r.ops_per_sec() / 1e3,
            m.ops_per_sec() / 1e3,
            r.ops_per_sec() / m.ops_per_sec().max(1e-9),
        );
    }

    println!("\nAt this scale the multi-level index needs 4+ levels, so its lookups");
    println!("pay several flash reads while RHIK stays at one. Right after a");
    println!("doubling RHIK's tables are half-empty (space traded for the read");
    println!("bound), so small working sets can favor the baseline — the");
    println!("crossover the paper's Fig. 5 regimes capture. Scans (E) remain the");
    println!("hash-index weak spot the §VI discussion acknowledges.");
}
