//! Watch RHIK re-configure itself (§IV-A2): conservative initialization,
//! threshold-triggered doublings, signature-only migration, and the
//! submission-queue stall each resize charges.
//!
//! ```sh
//! cargo run --release --example resize_demo
//! ```

use rhik::ftl::IndexBackend;
use rhik::kvssd::{DeviceConfig, KvssdDevice};
use rhik::nand::DeviceProfile;

fn main() {
    let mut cfg = DeviceConfig::small().with_profile(DeviceProfile::kvemu_like());
    cfg.rhik.initial_dir_bits = 0; // start with a single record-layer table
    let mut dev = KvssdDevice::rhik(cfg);

    println!(
        "initial: 2^{} tables x {} records (threshold {:.0}%)\n",
        dev.index().directory().bits(),
        dev.index().records_per_table(),
        dev.index().config().occupancy_threshold * 100.0
    );

    let mut seen = 0;
    for i in 0..40_000u64 {
        dev.put(format!("key:{i:010}").as_bytes(), b"value").expect("put");
        let events = &dev.index().stats().resizes;
        if events.len() > seen {
            let ev = events[events.len() - 1];
            println!(
                "resize #{:<2} at {:>6} keys: {:>5} tables -> {:>5}, \
                 {:>4} reads + {:>4} programs, media {:>8.3} ms, cpu {:>7.3} ms",
                events.len(),
                ev.keys_before,
                ev.tables_before,
                ev.tables_before * 2,
                ev.flash_reads,
                ev.flash_programs,
                ev.media_ns as f64 / 1e6,
                ev.cpu_ns as f64 / 1e6,
            );
            seen = events.len();
        }
    }

    let idx = dev.index();
    println!(
        "\nfinal: {} keys in 2^{} tables, occupancy {:.1}%, every key migrated by \
         stored signature (zero KV-data reads during resizes)",
        { idx.len() },
        idx.directory().bits(),
        idx.occupancy() * 100.0
    );

    // The Fig. 7 claim: resize cost grows linearly with index size, so the
    // doubling-to-doubling growth rate hovers around 2 (and the *rate of
    // change* of that rate stays <= 1).
    let events = &idx.stats().resizes;
    println!("\nresize-time growth per doubling (paper Fig. 7 shape):");
    for w in events.windows(2) {
        let growth = w[1].media_ns as f64 / w[0].media_ns.max(1) as f64;
        println!(
            "  {:>6} -> {:>6} keys: x{:.2} media time ({})",
            w[0].keys_before,
            w[1].keys_before,
            growth,
            if growth <= 2.5 { "linear-ish, rate <= 1" } else { "super-linear!" }
        );
    }
}
