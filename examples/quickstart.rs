//! Quickstart: bring up a RHIK-indexed KVSSD, run the five vendor
//! commands, and peek at the device's internals.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rhik::ftl::IndexBackend;
use rhik::kvssd::{DeviceConfig, KvssdDevice};

fn main() {
    // A small emulated device: 16 MiB of flash, 4 KiB pages, RHIK index.
    let mut dev = KvssdDevice::rhik(DeviceConfig::small());

    // --- put / get -------------------------------------------------------
    dev.put(b"user:1001", b"alice").expect("put");
    dev.put(b"user:1002", b"bob").expect("put");
    dev.put(b"blob:logo", &vec![0xabu8; 24 * 1024]).expect("multi-page put");

    let v = dev.get(b"user:1001").expect("get").expect("present");
    println!("user:1001 -> {}", String::from_utf8_lossy(&v));
    assert_eq!(dev.get(b"blob:logo").unwrap().unwrap().len(), 24 * 1024);

    // --- exist: probabilistic, signature-only membership (§IV-A3) --------
    let hit = dev.exist(b"user:1002").unwrap();
    let miss = dev.exist(b"user:9999").unwrap();
    println!(
        "exist(user:1002) = {} ({} flash reads), exist(user:9999) = {}",
        hit.probably_exists, hit.flash_reads, miss.probably_exists
    );

    // --- iterate by prefix (§VI integrated iterator support) -------------
    let users = dev.iterate(b"user:", 100).expect("iterate");
    println!("{} keys under user:/", users.len());

    // --- delete -----------------------------------------------------------
    dev.delete(b"user:1002").expect("delete");
    assert!(dev.get(b"user:1002").unwrap().is_none());

    // --- grow until the index resizes itself (§IV-A2) --------------------
    for i in 0..5_000u64 {
        dev.put(format!("grow:{i:08}").as_bytes(), b"payload").expect("grow put");
    }

    let idx = dev.index();
    println!(
        "\nafter 5k inserts: {} keys, directory 2^{} tables of {} records, occupancy {:.1}%",
        { idx.len() },
        idx.directory().bits(),
        idx.records_per_table(),
        idx.occupancy() * 100.0
    );
    println!(
        "resizes so far: {} (each doubled capacity and migrated by stored signature)",
        idx.stats().resizes.len()
    );
    println!(
        "lookups needing <=1 flash read: {:.2}% (the paper's guarantee)",
        idx.stats().pct_lookups_within(1)
    );
    println!("device: {:?}", dev.stats());
}
