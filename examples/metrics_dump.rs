//! Tour of the telemetry subsystem: install a sink on a RHIK device, run
//! a small mixed workload, then dump every export the registry and trace
//! support — snapshot diff, JSON, Prometheus text, per-stage latency
//! attribution, the live ≤ 1-flash-read-per-lookup distribution, and the
//! DRAM hot-object cache counters.
//!
//! ```sh
//! cargo run --release --example metrics_dump
//! ```

use rhik::kvssd::{DeviceConfig, SharedKvssd, Stage, TelemetrySink};
use rhik::nand::DeviceProfile;

fn main() {
    let dev = SharedKvssd::rhik(
        DeviceConfig::small().with_profile(DeviceProfile::kvemu_like()).with_hot_cache(256 * 1024),
    );
    let sink = TelemetrySink::enabled();
    dev.set_telemetry(sink.clone());

    // Phase 1: load. Snapshot after, so phase 2 can be diffed out.
    let value = vec![0x5A; 256];
    for i in 0..2_000u64 {
        dev.put(format!("md-{i:08}").as_bytes(), &value).expect("put");
    }
    let after_load = sink.snapshot().expect("sink is enabled");

    // Phase 2: mixed reads/updates/deletes.
    for i in 0..4_000u64 {
        let key = format!("md-{:08}", (i * 13) % 2_000);
        match i % 4 {
            0 | 1 => {
                let _ = dev.get(key.as_bytes()).expect("get");
            }
            2 => dev.put(key.as_bytes(), &value).expect("update"),
            _ => {
                let _ = dev.delete(key.as_bytes());
            }
        }
    }

    let now = sink.snapshot().expect("sink is enabled");
    let phase2 = now.since(&after_load);
    println!("== phase 2 only (snapshot diff: counters/histograms subtract) ==");
    println!(
        "gets {}  puts {}  deletes {}  nand reads {}  nand programs {}",
        phase2.counter("kvssd_gets"),
        phase2.counter("kvssd_puts"),
        phase2.counter("kvssd_deletes"),
        phase2.counter("nand_page_reads"),
        phase2.counter("nand_page_programs"),
    );
    if let Some(h) = phase2.histogram("get_latency_ns") {
        println!(
            "get latency (device time): {} samples, p50 {:.1} µs, p99 {:.1} µs",
            h.count(),
            h.p50_ns() as f64 / 1e3,
            h.p99_ns() as f64 / 1e3
        );
    }

    println!("\n== full-run JSON export ==\n{}", now.to_json());
    println!("== full-run Prometheus text export ==\n{}", now.to_prometheus_text());

    println!("== per-stage device-time attribution (last {} spans) ==", sink.spans().len());
    let attr = sink.attribution();
    for stage in Stage::ALL {
        let row = attr.row(stage);
        if row.events == 0 {
            continue;
        }
        println!(
            "  {:<20} {:>8} events  {:>10.3} ms total  {:>7.2} µs mean  {:>5.1} %",
            stage.name(),
            row.events,
            row.total_ns as f64 / 1e6,
            row.mean_ns() / 1e3,
            attr.share_pct(stage)
        );
    }
    println!("  ({} spans dropped by the ring)", sink.trace_dropped());

    let rpl = sink.reads_per_lookup().expect("sink is enabled");
    println!(
        "\n== reads-per-lookup ==\n{} lookups, max {} flash reads ({}), {:.2}% within 1",
        rpl.lookups,
        rpl.max,
        if rpl.invariant_ok() { "invariant holds" } else { "INVARIANT VIOLATED" },
        rpl.pct_within(1)
    );

    // The hot-object cache exports both through the registry (snake_case
    // counters/gauges, present in the JSON and Prometheus dumps above)
    // and through the typed stats accessor.
    println!("\n== hot-object cache ==");
    println!(
        "hits {}  stale {}  admits {}  rejects {}  evictions {}",
        now.counter("hot_cache_hits"),
        now.counter("hot_cache_stale"),
        now.counter("hot_cache_admits"),
        now.counter("hot_cache_rejects"),
        now.counter("hot_cache_evictions"),
    );
    println!(
        "occupancy: {:.1} KiB, {} entries (gauges: hot_cache_bytes / hot_cache_entries)",
        now.gauge("hot_cache_bytes").unwrap_or(0.0) / 1024.0,
        now.gauge("hot_cache_entries").unwrap_or(0.0),
    );
    let cache = dev.hot_cache_stats().expect("cache enabled");
    println!(
        "typed stats: {} lookups, {:.1}% hit rate, {} replica admits",
        cache.lookups,
        if cache.lookups == 0 { 0.0 } else { 100.0 * cache.hits as f64 / cache.lookups as f64 },
        cache.replica_admits,
    );
}
