//! Replay the synthetic IBM Cloud Object Store clusters (the Fig. 5
//! workloads) against RHIK and the Samsung-style multi-level index, and
//! compare FTL cache behaviour.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use rhik::baseline::MultiLevelConfig;
use rhik::ftl::IndexBackend;
use rhik::kvssd::{DeviceConfig, KvssdDevice};
use rhik::workloads::driver::WorkloadDriver;
use rhik::workloads::ibm;

const CACHE_BUDGET: usize = 64 * 1024; // scaled stand-in for the paper's 10 MB
const OPS: usize = 4_000;

fn device_config() -> DeviceConfig {
    let mut cfg = DeviceConfig::paper(64 << 20, CACHE_BUDGET);
    cfg.profile = rhik::nand::DeviceProfile::instant(); // we study cache hits, not time
                                                        // 32 KiB pages are too coarse for a 64 KiB cache demo; shrink pages so
                                                        // the cache holds a handful of tables, like 10 MB holds a handful of
                                                        // 32 KiB tables on the real setup.
    cfg.geometry = rhik::nand::NandGeometry {
        blocks: 256,
        pages_per_block: 64,
        page_size: 4096,
        spare_size: 128,
        channels: 4,
    };
    cfg
}

fn main() {
    println!("cluster | regime      | rhik miss% | multilevel miss% | rhik <=1 read% | multilevel <=1 read%");
    println!("--------+-------------+------------+------------------+----------------+---------------------");

    for cluster in ibm::clusters() {
        let (trace, _population) = cluster.synthesize(CACHE_BUDGET as u64, 17, OPS, 0.002, 42);

        // RHIK device.
        let mut rhik_dev = KvssdDevice::rhik(device_config());
        WorkloadDriver::replay(&mut rhik_dev, &trace).expect("rhik replay");
        rhik_dev.ftl_mut().cache().reset_stats();
        let (ops_tail, _) = cluster.synthesize(CACHE_BUDGET as u64, 17, OPS, 0.002, 43);
        WorkloadDriver::replay(&mut rhik_dev, &ops_tail[ops_tail.len() - OPS..]).expect("tail");
        let rhik_miss = rhik_dev.ftl().cache_ref().stats().miss_ratio() * 100.0;
        let rhik_one = rhik_dev.index().stats().pct_lookups_within(1);

        // Multi-level device.
        let mut ml_dev = KvssdDevice::multilevel(
            device_config(),
            MultiLevelConfig { initial_bits: 1, max_levels: 8, hop_width: 32 },
        );
        WorkloadDriver::replay(&mut ml_dev, &trace).expect("ml replay");
        ml_dev.ftl_mut().cache().reset_stats();
        WorkloadDriver::replay(&mut ml_dev, &ops_tail[ops_tail.len() - OPS..]).expect("tail");
        let ml_miss = ml_dev.ftl().cache_ref().stats().miss_ratio() * 100.0;
        let ml_one = ml_dev.index().stats().pct_lookups_within(1);

        println!(
            "{:>7} | {:<11} | {:>9.1}% | {:>15.1}% | {:>13.1}% | {:>19.1}%",
            cluster.name,
            format!("{:?}", cluster.regime),
            rhik_miss,
            ml_miss,
            rhik_one,
            ml_one,
        );
    }

    println!("\nSmall-index clusters fit the cache for both schemes; large-index");
    println!("clusters thrash the multi-level index across several levels while");
    println!("RHIK still resolves every lookup with at most one flash read.");
}
