//! # RHIK — Re-configurable Hash-based Indexing for KVSSD
//!
//! Facade crate for the full-system reproduction of *"RHIK:
//! Re-configurable Hash-based Indexing for KVSSD"* (HPDC 2023). It
//! re-exports every subsystem so examples and downstream users need a
//! single dependency:
//!
//! * [`nand`] — deterministic NAND flash array model,
//! * [`audit`] — the cross-layer invariant catalog and [`audit::DeviceAuditor`],
//! * [`ftl`] — FTL services: data layout, allocator, cache, GC,
//! * [`hotcache`] — DRAM hot-object cache tier (TinyLFU admission,
//!   segmented LRU, version-based invalidation),
//! * [`sigs`] — key signature hashing (MurmurHash2 et al.),
//! * [`index`] — the RHIK two-level re-configurable hash index,
//! * [`baseline`] — Samsung-style multi-level hash, NVMKV-style fixed hash,
//!   and PinK-style LSM baselines,
//! * [`kvssd`] — the KVSSD device emulator (SNIA-style command set,
//!   sync/async engines, GC and resize integration),
//! * [`workloads`] — key generators, trace synthesizers, and the
//!   KVBench-style driver,
//! * [`telemetry`] — metric registry, virtual-clock op tracing, and
//!   per-stage latency attribution (disabled by default, zero deps).
//!
//! ## Quickstart
//!
//! ```
//! use rhik::kvssd::{DeviceConfig, KvssdDevice};
//!
//! let mut dev = KvssdDevice::rhik(DeviceConfig::small());
//! dev.put(b"hello", b"world").unwrap();
//! assert_eq!(&dev.get(b"hello").unwrap().unwrap()[..], b"world");
//! dev.delete(b"hello").unwrap();
//! assert!(dev.get(b"hello").unwrap().is_none());
//! ```

pub use rhik_audit as audit;
pub use rhik_baseline as baseline;
pub use rhik_core as index;
pub use rhik_ftl as ftl;
pub use rhik_hotcache as hotcache;
pub use rhik_kvssd as kvssd;
pub use rhik_nand as nand;
pub use rhik_sigs as sigs;
pub use rhik_telemetry as telemetry;
pub use rhik_workloads as workloads;
