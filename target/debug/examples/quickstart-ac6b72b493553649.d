/root/repo/target/debug/examples/quickstart-ac6b72b493553649.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ac6b72b493553649: examples/quickstart.rs

examples/quickstart.rs:
