/root/repo/target/debug/examples/ycsb-cc96bf1e069d6bfe.d: examples/ycsb.rs

/root/repo/target/debug/examples/ycsb-cc96bf1e069d6bfe: examples/ycsb.rs

examples/ycsb.rs:
