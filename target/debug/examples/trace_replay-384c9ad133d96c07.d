/root/repo/target/debug/examples/trace_replay-384c9ad133d96c07.d: examples/trace_replay.rs

/root/repo/target/debug/examples/trace_replay-384c9ad133d96c07: examples/trace_replay.rs

examples/trace_replay.rs:
