/root/repo/target/debug/examples/resize_demo-434528abf4adba86.d: examples/resize_demo.rs

/root/repo/target/debug/examples/resize_demo-434528abf4adba86: examples/resize_demo.rs

examples/resize_demo.rs:
