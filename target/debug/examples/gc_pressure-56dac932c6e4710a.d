/root/repo/target/debug/examples/gc_pressure-56dac932c6e4710a.d: examples/gc_pressure.rs

/root/repo/target/debug/examples/gc_pressure-56dac932c6e4710a: examples/gc_pressure.rs

examples/gc_pressure.rs:
