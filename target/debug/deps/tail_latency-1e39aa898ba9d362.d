/root/repo/target/debug/deps/tail_latency-1e39aa898ba9d362.d: crates/bench/src/bin/tail_latency.rs Cargo.toml

/root/repo/target/debug/deps/libtail_latency-1e39aa898ba9d362.rmeta: crates/bench/src/bin/tail_latency.rs Cargo.toml

crates/bench/src/bin/tail_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
