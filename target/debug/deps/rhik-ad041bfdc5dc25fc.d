/root/repo/target/debug/deps/rhik-ad041bfdc5dc25fc.d: src/lib.rs

/root/repo/target/debug/deps/librhik-ad041bfdc5dc25fc.rlib: src/lib.rs

/root/repo/target/debug/deps/librhik-ad041bfdc5dc25fc.rmeta: src/lib.rs

src/lib.rs:
