/root/repo/target/debug/deps/table1-0c473cf48c7b8ad6.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-0c473cf48c7b8ad6: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
