/root/repo/target/debug/deps/rhik_sigs-a171e46fc9c778d8.d: crates/sigs/src/lib.rs crates/sigs/src/estimate.rs crates/sigs/src/fnv.rs crates/sigs/src/murmur.rs crates/sigs/src/signature.rs Cargo.toml

/root/repo/target/debug/deps/librhik_sigs-a171e46fc9c778d8.rmeta: crates/sigs/src/lib.rs crates/sigs/src/estimate.rs crates/sigs/src/fnv.rs crates/sigs/src/murmur.rs crates/sigs/src/signature.rs Cargo.toml

crates/sigs/src/lib.rs:
crates/sigs/src/estimate.rs:
crates/sigs/src/fnv.rs:
crates/sigs/src/murmur.rs:
crates/sigs/src/signature.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
