/root/repo/target/debug/deps/rhik_nand-a5a39620d702f7a9.d: crates/nand/src/lib.rs crates/nand/src/array.rs crates/nand/src/block.rs crates/nand/src/error.rs crates/nand/src/fault.rs crates/nand/src/geometry.rs crates/nand/src/latency.rs crates/nand/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/librhik_nand-a5a39620d702f7a9.rmeta: crates/nand/src/lib.rs crates/nand/src/array.rs crates/nand/src/block.rs crates/nand/src/error.rs crates/nand/src/fault.rs crates/nand/src/geometry.rs crates/nand/src/latency.rs crates/nand/src/stats.rs Cargo.toml

crates/nand/src/lib.rs:
crates/nand/src/array.rs:
crates/nand/src/block.rs:
crates/nand/src/error.rs:
crates/nand/src/fault.rs:
crates/nand/src/geometry.rs:
crates/nand/src/latency.rs:
crates/nand/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
