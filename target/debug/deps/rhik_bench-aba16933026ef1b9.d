/root/repo/target/debug/deps/rhik_bench-aba16933026ef1b9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/librhik_bench-aba16933026ef1b9.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/librhik_bench-aba16933026ef1b9.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
