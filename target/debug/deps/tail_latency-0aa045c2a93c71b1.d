/root/repo/target/debug/deps/tail_latency-0aa045c2a93c71b1.d: crates/bench/src/bin/tail_latency.rs

/root/repo/target/debug/deps/tail_latency-0aa045c2a93c71b1: crates/bench/src/bin/tail_latency.rs

crates/bench/src/bin/tail_latency.rs:
