/root/repo/target/debug/deps/fig8-ae767026094524e3.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-ae767026094524e3: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
