/root/repo/target/debug/deps/ablations-f9d81034534ab7b6.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-f9d81034534ab7b6.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
