/root/repo/target/debug/deps/device_props-22d7b177da7cfe1b.d: tests/device_props.rs

/root/repo/target/debug/deps/device_props-22d7b177da7cfe1b: tests/device_props.rs

tests/device_props.rs:
