/root/repo/target/debug/deps/lsm_vs_hash-000af64436729f83.d: crates/bench/src/bin/lsm_vs_hash.rs

/root/repo/target/debug/deps/lsm_vs_hash-000af64436729f83: crates/bench/src/bin/lsm_vs_hash.rs

crates/bench/src/bin/lsm_vs_hash.rs:
