/root/repo/target/debug/deps/rhik_core-d97807072f0e25ec.d: crates/rhik-core/src/lib.rs crates/rhik-core/src/bucket.rs crates/rhik-core/src/config.rs crates/rhik-core/src/directory.rs crates/rhik-core/src/index.rs crates/rhik-core/src/record.rs crates/rhik-core/src/resize.rs

/root/repo/target/debug/deps/librhik_core-d97807072f0e25ec.rlib: crates/rhik-core/src/lib.rs crates/rhik-core/src/bucket.rs crates/rhik-core/src/config.rs crates/rhik-core/src/directory.rs crates/rhik-core/src/index.rs crates/rhik-core/src/record.rs crates/rhik-core/src/resize.rs

/root/repo/target/debug/deps/librhik_core-d97807072f0e25ec.rmeta: crates/rhik-core/src/lib.rs crates/rhik-core/src/bucket.rs crates/rhik-core/src/config.rs crates/rhik-core/src/directory.rs crates/rhik-core/src/index.rs crates/rhik-core/src/record.rs crates/rhik-core/src/resize.rs

crates/rhik-core/src/lib.rs:
crates/rhik-core/src/bucket.rs:
crates/rhik-core/src/config.rs:
crates/rhik-core/src/directory.rs:
crates/rhik-core/src/index.rs:
crates/rhik-core/src/record.rs:
crates/rhik-core/src/resize.rs:
