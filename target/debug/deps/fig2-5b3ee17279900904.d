/root/repo/target/debug/deps/fig2-5b3ee17279900904.d: crates/bench/src/bin/fig2.rs Cargo.toml

/root/repo/target/debug/deps/libfig2-5b3ee17279900904.rmeta: crates/bench/src/bin/fig2.rs Cargo.toml

crates/bench/src/bin/fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
