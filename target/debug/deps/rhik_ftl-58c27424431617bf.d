/root/repo/target/debug/deps/rhik_ftl-58c27424431617bf.d: crates/ftl/src/lib.rs crates/ftl/src/cache.rs crates/ftl/src/gc.rs crates/ftl/src/layout.rs crates/ftl/src/alloc.rs crates/ftl/src/ftl.rs crates/ftl/src/traits.rs

/root/repo/target/debug/deps/rhik_ftl-58c27424431617bf: crates/ftl/src/lib.rs crates/ftl/src/cache.rs crates/ftl/src/gc.rs crates/ftl/src/layout.rs crates/ftl/src/alloc.rs crates/ftl/src/ftl.rs crates/ftl/src/traits.rs

crates/ftl/src/lib.rs:
crates/ftl/src/cache.rs:
crates/ftl/src/gc.rs:
crates/ftl/src/layout.rs:
crates/ftl/src/alloc.rs:
crates/ftl/src/ftl.rs:
crates/ftl/src/traits.rs:
