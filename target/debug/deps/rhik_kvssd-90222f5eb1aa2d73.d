/root/repo/target/debug/deps/rhik_kvssd-90222f5eb1aa2d73.d: crates/kvssd/src/lib.rs crates/kvssd/src/cmd.rs crates/kvssd/src/config.rs crates/kvssd/src/device.rs crates/kvssd/src/engine.rs crates/kvssd/src/error.rs crates/kvssd/src/histogram.rs crates/kvssd/src/shared.rs

/root/repo/target/debug/deps/rhik_kvssd-90222f5eb1aa2d73: crates/kvssd/src/lib.rs crates/kvssd/src/cmd.rs crates/kvssd/src/config.rs crates/kvssd/src/device.rs crates/kvssd/src/engine.rs crates/kvssd/src/error.rs crates/kvssd/src/histogram.rs crates/kvssd/src/shared.rs

crates/kvssd/src/lib.rs:
crates/kvssd/src/cmd.rs:
crates/kvssd/src/config.rs:
crates/kvssd/src/device.rs:
crates/kvssd/src/engine.rs:
crates/kvssd/src/error.rs:
crates/kvssd/src/histogram.rs:
crates/kvssd/src/shared.rs:
