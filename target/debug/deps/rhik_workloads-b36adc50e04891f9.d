/root/repo/target/debug/deps/rhik_workloads-b36adc50e04891f9.d: crates/workloads/src/lib.rs crates/workloads/src/distributions.rs crates/workloads/src/driver.rs crates/workloads/src/ibm.rs crates/workloads/src/keygen.rs crates/workloads/src/ycsb.rs Cargo.toml

/root/repo/target/debug/deps/librhik_workloads-b36adc50e04891f9.rmeta: crates/workloads/src/lib.rs crates/workloads/src/distributions.rs crates/workloads/src/driver.rs crates/workloads/src/ibm.rs crates/workloads/src/keygen.rs crates/workloads/src/ycsb.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/distributions.rs:
crates/workloads/src/driver.rs:
crates/workloads/src/ibm.rs:
crates/workloads/src/keygen.rs:
crates/workloads/src/ycsb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
