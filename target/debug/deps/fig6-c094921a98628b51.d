/root/repo/target/debug/deps/fig6-c094921a98628b51.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-c094921a98628b51: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
