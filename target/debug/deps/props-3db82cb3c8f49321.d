/root/repo/target/debug/deps/props-3db82cb3c8f49321.d: crates/baseline/tests/props.rs

/root/repo/target/debug/deps/props-3db82cb3c8f49321: crates/baseline/tests/props.rs

crates/baseline/tests/props.rs:
