/root/repo/target/debug/deps/props-aec83b8e4e218d34.d: crates/sigs/tests/props.rs

/root/repo/target/debug/deps/props-aec83b8e4e218d34: crates/sigs/tests/props.rs

crates/sigs/tests/props.rs:
