/root/repo/target/debug/deps/rhik_baseline-57c7ea6c6a19e9ca.d: crates/baseline/src/lib.rs crates/baseline/src/lsm.rs crates/baseline/src/multilevel.rs crates/baseline/src/simple.rs

/root/repo/target/debug/deps/librhik_baseline-57c7ea6c6a19e9ca.rlib: crates/baseline/src/lib.rs crates/baseline/src/lsm.rs crates/baseline/src/multilevel.rs crates/baseline/src/simple.rs

/root/repo/target/debug/deps/librhik_baseline-57c7ea6c6a19e9ca.rmeta: crates/baseline/src/lib.rs crates/baseline/src/lsm.rs crates/baseline/src/multilevel.rs crates/baseline/src/simple.rs

crates/baseline/src/lib.rs:
crates/baseline/src/lsm.rs:
crates/baseline/src/multilevel.rs:
crates/baseline/src/simple.rs:
