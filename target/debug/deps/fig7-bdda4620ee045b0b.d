/root/repo/target/debug/deps/fig7-bdda4620ee045b0b.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-bdda4620ee045b0b: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
