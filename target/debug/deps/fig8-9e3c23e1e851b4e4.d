/root/repo/target/debug/deps/fig8-9e3c23e1e851b4e4.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-9e3c23e1e851b4e4.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
