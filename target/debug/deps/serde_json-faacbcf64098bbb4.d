/root/repo/target/debug/deps/serde_json-faacbcf64098bbb4.d: crates/shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-faacbcf64098bbb4.rlib: crates/shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-faacbcf64098bbb4.rmeta: crates/shims/serde_json/src/lib.rs

crates/shims/serde_json/src/lib.rs:
