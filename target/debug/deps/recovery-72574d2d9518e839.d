/root/repo/target/debug/deps/recovery-72574d2d9518e839.d: tests/recovery.rs

/root/repo/target/debug/deps/recovery-72574d2d9518e839: tests/recovery.rs

tests/recovery.rs:
