/root/repo/target/debug/deps/rhik_baseline-b5a710b2eb17c38a.d: crates/baseline/src/lib.rs crates/baseline/src/lsm.rs crates/baseline/src/multilevel.rs crates/baseline/src/simple.rs Cargo.toml

/root/repo/target/debug/deps/librhik_baseline-b5a710b2eb17c38a.rmeta: crates/baseline/src/lib.rs crates/baseline/src/lsm.rs crates/baseline/src/multilevel.rs crates/baseline/src/simple.rs Cargo.toml

crates/baseline/src/lib.rs:
crates/baseline/src/lsm.rs:
crates/baseline/src/multilevel.rs:
crates/baseline/src/simple.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
