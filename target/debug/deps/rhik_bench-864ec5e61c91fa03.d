/root/repo/target/debug/deps/rhik_bench-864ec5e61c91fa03.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librhik_bench-864ec5e61c91fa03.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
