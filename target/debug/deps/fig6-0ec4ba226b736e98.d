/root/repo/target/debug/deps/fig6-0ec4ba226b736e98.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-0ec4ba226b736e98.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
