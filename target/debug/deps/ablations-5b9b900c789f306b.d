/root/repo/target/debug/deps/ablations-5b9b900c789f306b.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-5b9b900c789f306b: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
