/root/repo/target/debug/deps/lsm_vs_hash-15d8d0ffbb37ea83.d: crates/bench/src/bin/lsm_vs_hash.rs Cargo.toml

/root/repo/target/debug/deps/liblsm_vs_hash-15d8d0ffbb37ea83.rmeta: crates/bench/src/bin/lsm_vs_hash.rs Cargo.toml

crates/bench/src/bin/lsm_vs_hash.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
