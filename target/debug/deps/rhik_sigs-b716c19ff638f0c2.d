/root/repo/target/debug/deps/rhik_sigs-b716c19ff638f0c2.d: crates/sigs/src/lib.rs crates/sigs/src/estimate.rs crates/sigs/src/fnv.rs crates/sigs/src/murmur.rs crates/sigs/src/signature.rs

/root/repo/target/debug/deps/rhik_sigs-b716c19ff638f0c2: crates/sigs/src/lib.rs crates/sigs/src/estimate.rs crates/sigs/src/fnv.rs crates/sigs/src/murmur.rs crates/sigs/src/signature.rs

crates/sigs/src/lib.rs:
crates/sigs/src/estimate.rs:
crates/sigs/src/fnv.rs:
crates/sigs/src/murmur.rs:
crates/sigs/src/signature.rs:
