/root/repo/target/debug/deps/rhik-1af833387184a636.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librhik-1af833387184a636.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
