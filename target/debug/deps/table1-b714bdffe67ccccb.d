/root/repo/target/debug/deps/table1-b714bdffe67ccccb.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-b714bdffe67ccccb.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
