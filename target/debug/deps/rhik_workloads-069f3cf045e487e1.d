/root/repo/target/debug/deps/rhik_workloads-069f3cf045e487e1.d: crates/workloads/src/lib.rs crates/workloads/src/distributions.rs crates/workloads/src/driver.rs crates/workloads/src/ibm.rs crates/workloads/src/keygen.rs crates/workloads/src/ycsb.rs

/root/repo/target/debug/deps/rhik_workloads-069f3cf045e487e1: crates/workloads/src/lib.rs crates/workloads/src/distributions.rs crates/workloads/src/driver.rs crates/workloads/src/ibm.rs crates/workloads/src/keygen.rs crates/workloads/src/ycsb.rs

crates/workloads/src/lib.rs:
crates/workloads/src/distributions.rs:
crates/workloads/src/driver.rs:
crates/workloads/src/ibm.rs:
crates/workloads/src/keygen.rs:
crates/workloads/src/ycsb.rs:
