/root/repo/target/debug/deps/props-64c0de8e36dbfa58.d: crates/nand/tests/props.rs

/root/repo/target/debug/deps/props-64c0de8e36dbfa58: crates/nand/tests/props.rs

crates/nand/tests/props.rs:
