/root/repo/target/debug/deps/rhik_bench-3b9259678683b6de.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/rhik_bench-3b9259678683b6de: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
