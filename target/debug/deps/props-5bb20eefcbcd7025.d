/root/repo/target/debug/deps/props-5bb20eefcbcd7025.d: crates/rhik-core/tests/props.rs

/root/repo/target/debug/deps/props-5bb20eefcbcd7025: crates/rhik-core/tests/props.rs

crates/rhik-core/tests/props.rs:
