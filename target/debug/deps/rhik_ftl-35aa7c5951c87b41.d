/root/repo/target/debug/deps/rhik_ftl-35aa7c5951c87b41.d: crates/ftl/src/lib.rs crates/ftl/src/cache.rs crates/ftl/src/gc.rs crates/ftl/src/layout.rs crates/ftl/src/alloc.rs crates/ftl/src/ftl.rs crates/ftl/src/traits.rs Cargo.toml

/root/repo/target/debug/deps/librhik_ftl-35aa7c5951c87b41.rmeta: crates/ftl/src/lib.rs crates/ftl/src/cache.rs crates/ftl/src/gc.rs crates/ftl/src/layout.rs crates/ftl/src/alloc.rs crates/ftl/src/ftl.rs crates/ftl/src/traits.rs Cargo.toml

crates/ftl/src/lib.rs:
crates/ftl/src/cache.rs:
crates/ftl/src/gc.rs:
crates/ftl/src/layout.rs:
crates/ftl/src/alloc.rs:
crates/ftl/src/ftl.rs:
crates/ftl/src/traits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
