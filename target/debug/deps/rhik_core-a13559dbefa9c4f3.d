/root/repo/target/debug/deps/rhik_core-a13559dbefa9c4f3.d: crates/rhik-core/src/lib.rs crates/rhik-core/src/bucket.rs crates/rhik-core/src/config.rs crates/rhik-core/src/directory.rs crates/rhik-core/src/index.rs crates/rhik-core/src/record.rs crates/rhik-core/src/resize.rs Cargo.toml

/root/repo/target/debug/deps/librhik_core-a13559dbefa9c4f3.rmeta: crates/rhik-core/src/lib.rs crates/rhik-core/src/bucket.rs crates/rhik-core/src/config.rs crates/rhik-core/src/directory.rs crates/rhik-core/src/index.rs crates/rhik-core/src/record.rs crates/rhik-core/src/resize.rs Cargo.toml

crates/rhik-core/src/lib.rs:
crates/rhik-core/src/bucket.rs:
crates/rhik-core/src/config.rs:
crates/rhik-core/src/directory.rs:
crates/rhik-core/src/index.rs:
crates/rhik-core/src/record.rs:
crates/rhik-core/src/resize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
