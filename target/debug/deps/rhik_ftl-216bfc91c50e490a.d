/root/repo/target/debug/deps/rhik_ftl-216bfc91c50e490a.d: crates/ftl/src/lib.rs crates/ftl/src/cache.rs crates/ftl/src/gc.rs crates/ftl/src/layout.rs crates/ftl/src/alloc.rs crates/ftl/src/ftl.rs crates/ftl/src/traits.rs

/root/repo/target/debug/deps/librhik_ftl-216bfc91c50e490a.rlib: crates/ftl/src/lib.rs crates/ftl/src/cache.rs crates/ftl/src/gc.rs crates/ftl/src/layout.rs crates/ftl/src/alloc.rs crates/ftl/src/ftl.rs crates/ftl/src/traits.rs

/root/repo/target/debug/deps/librhik_ftl-216bfc91c50e490a.rmeta: crates/ftl/src/lib.rs crates/ftl/src/cache.rs crates/ftl/src/gc.rs crates/ftl/src/layout.rs crates/ftl/src/alloc.rs crates/ftl/src/ftl.rs crates/ftl/src/traits.rs

crates/ftl/src/lib.rs:
crates/ftl/src/cache.rs:
crates/ftl/src/gc.rs:
crates/ftl/src/layout.rs:
crates/ftl/src/alloc.rs:
crates/ftl/src/ftl.rs:
crates/ftl/src/traits.rs:
