/root/repo/target/debug/deps/rhik_core-3ec6b76e71e167a5.d: crates/rhik-core/src/lib.rs crates/rhik-core/src/bucket.rs crates/rhik-core/src/config.rs crates/rhik-core/src/directory.rs crates/rhik-core/src/index.rs crates/rhik-core/src/record.rs crates/rhik-core/src/resize.rs

/root/repo/target/debug/deps/rhik_core-3ec6b76e71e167a5: crates/rhik-core/src/lib.rs crates/rhik-core/src/bucket.rs crates/rhik-core/src/config.rs crates/rhik-core/src/directory.rs crates/rhik-core/src/index.rs crates/rhik-core/src/record.rs crates/rhik-core/src/resize.rs

crates/rhik-core/src/lib.rs:
crates/rhik-core/src/bucket.rs:
crates/rhik-core/src/config.rs:
crates/rhik-core/src/directory.rs:
crates/rhik-core/src/index.rs:
crates/rhik-core/src/record.rs:
crates/rhik-core/src/resize.rs:
