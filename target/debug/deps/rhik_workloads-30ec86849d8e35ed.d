/root/repo/target/debug/deps/rhik_workloads-30ec86849d8e35ed.d: crates/workloads/src/lib.rs crates/workloads/src/distributions.rs crates/workloads/src/driver.rs crates/workloads/src/ibm.rs crates/workloads/src/keygen.rs crates/workloads/src/ycsb.rs

/root/repo/target/debug/deps/librhik_workloads-30ec86849d8e35ed.rlib: crates/workloads/src/lib.rs crates/workloads/src/distributions.rs crates/workloads/src/driver.rs crates/workloads/src/ibm.rs crates/workloads/src/keygen.rs crates/workloads/src/ycsb.rs

/root/repo/target/debug/deps/librhik_workloads-30ec86849d8e35ed.rmeta: crates/workloads/src/lib.rs crates/workloads/src/distributions.rs crates/workloads/src/driver.rs crates/workloads/src/ibm.rs crates/workloads/src/keygen.rs crates/workloads/src/ycsb.rs

crates/workloads/src/lib.rs:
crates/workloads/src/distributions.rs:
crates/workloads/src/driver.rs:
crates/workloads/src/ibm.rs:
crates/workloads/src/keygen.rs:
crates/workloads/src/ycsb.rs:
