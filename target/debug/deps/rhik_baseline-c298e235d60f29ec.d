/root/repo/target/debug/deps/rhik_baseline-c298e235d60f29ec.d: crates/baseline/src/lib.rs crates/baseline/src/lsm.rs crates/baseline/src/multilevel.rs crates/baseline/src/simple.rs

/root/repo/target/debug/deps/rhik_baseline-c298e235d60f29ec: crates/baseline/src/lib.rs crates/baseline/src/lsm.rs crates/baseline/src/multilevel.rs crates/baseline/src/simple.rs

crates/baseline/src/lib.rs:
crates/baseline/src/lsm.rs:
crates/baseline/src/multilevel.rs:
crates/baseline/src/simple.rs:
