/root/repo/target/debug/deps/rhik_kvssd-eb0373f8043681e9.d: crates/kvssd/src/lib.rs crates/kvssd/src/cmd.rs crates/kvssd/src/config.rs crates/kvssd/src/device.rs crates/kvssd/src/shared.rs crates/kvssd/src/engine.rs crates/kvssd/src/error.rs crates/kvssd/src/histogram.rs Cargo.toml

/root/repo/target/debug/deps/librhik_kvssd-eb0373f8043681e9.rmeta: crates/kvssd/src/lib.rs crates/kvssd/src/cmd.rs crates/kvssd/src/config.rs crates/kvssd/src/device.rs crates/kvssd/src/shared.rs crates/kvssd/src/engine.rs crates/kvssd/src/error.rs crates/kvssd/src/histogram.rs Cargo.toml

crates/kvssd/src/lib.rs:
crates/kvssd/src/cmd.rs:
crates/kvssd/src/config.rs:
crates/kvssd/src/device.rs:
crates/kvssd/src/shared.rs:
crates/kvssd/src/engine.rs:
crates/kvssd/src/error.rs:
crates/kvssd/src/histogram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
