/root/repo/target/debug/deps/fig5-7163936453ede8fb.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-7163936453ede8fb: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
