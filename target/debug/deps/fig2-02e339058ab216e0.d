/root/repo/target/debug/deps/fig2-02e339058ab216e0.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-02e339058ab216e0: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
