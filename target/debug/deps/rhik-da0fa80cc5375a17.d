/root/repo/target/debug/deps/rhik-da0fa80cc5375a17.d: src/lib.rs

/root/repo/target/debug/deps/rhik-da0fa80cc5375a17: src/lib.rs

src/lib.rs:
