/root/repo/target/debug/deps/props-e892cf6670a10956.d: crates/ftl/tests/props.rs

/root/repo/target/debug/deps/props-e892cf6670a10956: crates/ftl/tests/props.rs

crates/ftl/tests/props.rs:
