/root/repo/target/debug/deps/rhik_nand-373acbc781b591ce.d: crates/nand/src/lib.rs crates/nand/src/array.rs crates/nand/src/block.rs crates/nand/src/error.rs crates/nand/src/fault.rs crates/nand/src/geometry.rs crates/nand/src/latency.rs crates/nand/src/stats.rs

/root/repo/target/debug/deps/librhik_nand-373acbc781b591ce.rlib: crates/nand/src/lib.rs crates/nand/src/array.rs crates/nand/src/block.rs crates/nand/src/error.rs crates/nand/src/fault.rs crates/nand/src/geometry.rs crates/nand/src/latency.rs crates/nand/src/stats.rs

/root/repo/target/debug/deps/librhik_nand-373acbc781b591ce.rmeta: crates/nand/src/lib.rs crates/nand/src/array.rs crates/nand/src/block.rs crates/nand/src/error.rs crates/nand/src/fault.rs crates/nand/src/geometry.rs crates/nand/src/latency.rs crates/nand/src/stats.rs

crates/nand/src/lib.rs:
crates/nand/src/array.rs:
crates/nand/src/block.rs:
crates/nand/src/error.rs:
crates/nand/src/fault.rs:
crates/nand/src/geometry.rs:
crates/nand/src/latency.rs:
crates/nand/src/stats.rs:
