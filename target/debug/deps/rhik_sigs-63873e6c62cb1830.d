/root/repo/target/debug/deps/rhik_sigs-63873e6c62cb1830.d: crates/sigs/src/lib.rs crates/sigs/src/estimate.rs crates/sigs/src/fnv.rs crates/sigs/src/murmur.rs crates/sigs/src/signature.rs

/root/repo/target/debug/deps/librhik_sigs-63873e6c62cb1830.rlib: crates/sigs/src/lib.rs crates/sigs/src/estimate.rs crates/sigs/src/fnv.rs crates/sigs/src/murmur.rs crates/sigs/src/signature.rs

/root/repo/target/debug/deps/librhik_sigs-63873e6c62cb1830.rmeta: crates/sigs/src/lib.rs crates/sigs/src/estimate.rs crates/sigs/src/fnv.rs crates/sigs/src/murmur.rs crates/sigs/src/signature.rs

crates/sigs/src/lib.rs:
crates/sigs/src/estimate.rs:
crates/sigs/src/fnv.rs:
crates/sigs/src/murmur.rs:
crates/sigs/src/signature.rs:
