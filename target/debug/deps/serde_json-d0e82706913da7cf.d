/root/repo/target/debug/deps/serde_json-d0e82706913da7cf.d: crates/shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-d0e82706913da7cf.rmeta: crates/shims/serde_json/src/lib.rs

crates/shims/serde_json/src/lib.rs:
