/root/repo/target/debug/deps/fig5-d4844246dd7b703c.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-d4844246dd7b703c.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
