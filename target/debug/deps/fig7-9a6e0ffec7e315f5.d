/root/repo/target/debug/deps/fig7-9a6e0ffec7e315f5.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-9a6e0ffec7e315f5.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
