/root/repo/target/debug/deps/end_to_end-e4eb9914014aa43f.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-e4eb9914014aa43f: tests/end_to_end.rs

tests/end_to_end.rs:
