/root/repo/target/release/deps/bytes-04efa49397254443.d: crates/shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-04efa49397254443.rlib: crates/shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-04efa49397254443.rmeta: crates/shims/bytes/src/lib.rs

crates/shims/bytes/src/lib.rs:
