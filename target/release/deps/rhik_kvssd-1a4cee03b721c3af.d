/root/repo/target/release/deps/rhik_kvssd-1a4cee03b721c3af.d: crates/kvssd/src/lib.rs crates/kvssd/src/cmd.rs crates/kvssd/src/config.rs crates/kvssd/src/device.rs crates/kvssd/src/shared.rs crates/kvssd/src/engine.rs crates/kvssd/src/error.rs crates/kvssd/src/histogram.rs

/root/repo/target/release/deps/librhik_kvssd-1a4cee03b721c3af.rlib: crates/kvssd/src/lib.rs crates/kvssd/src/cmd.rs crates/kvssd/src/config.rs crates/kvssd/src/device.rs crates/kvssd/src/shared.rs crates/kvssd/src/engine.rs crates/kvssd/src/error.rs crates/kvssd/src/histogram.rs

/root/repo/target/release/deps/librhik_kvssd-1a4cee03b721c3af.rmeta: crates/kvssd/src/lib.rs crates/kvssd/src/cmd.rs crates/kvssd/src/config.rs crates/kvssd/src/device.rs crates/kvssd/src/shared.rs crates/kvssd/src/engine.rs crates/kvssd/src/error.rs crates/kvssd/src/histogram.rs

crates/kvssd/src/lib.rs:
crates/kvssd/src/cmd.rs:
crates/kvssd/src/config.rs:
crates/kvssd/src/device.rs:
crates/kvssd/src/shared.rs:
crates/kvssd/src/engine.rs:
crates/kvssd/src/error.rs:
crates/kvssd/src/histogram.rs:
