/root/repo/target/release/deps/rhik_core-721be0dadd57fa4e.d: crates/rhik-core/src/lib.rs crates/rhik-core/src/bucket.rs crates/rhik-core/src/config.rs crates/rhik-core/src/directory.rs crates/rhik-core/src/index.rs crates/rhik-core/src/record.rs crates/rhik-core/src/resize.rs

/root/repo/target/release/deps/librhik_core-721be0dadd57fa4e.rlib: crates/rhik-core/src/lib.rs crates/rhik-core/src/bucket.rs crates/rhik-core/src/config.rs crates/rhik-core/src/directory.rs crates/rhik-core/src/index.rs crates/rhik-core/src/record.rs crates/rhik-core/src/resize.rs

/root/repo/target/release/deps/librhik_core-721be0dadd57fa4e.rmeta: crates/rhik-core/src/lib.rs crates/rhik-core/src/bucket.rs crates/rhik-core/src/config.rs crates/rhik-core/src/directory.rs crates/rhik-core/src/index.rs crates/rhik-core/src/record.rs crates/rhik-core/src/resize.rs

crates/rhik-core/src/lib.rs:
crates/rhik-core/src/bucket.rs:
crates/rhik-core/src/config.rs:
crates/rhik-core/src/directory.rs:
crates/rhik-core/src/index.rs:
crates/rhik-core/src/record.rs:
crates/rhik-core/src/resize.rs:
