/root/repo/target/release/deps/rhik_nand-9d788d423ca79a7d.d: crates/nand/src/lib.rs crates/nand/src/array.rs crates/nand/src/block.rs crates/nand/src/error.rs crates/nand/src/fault.rs crates/nand/src/geometry.rs crates/nand/src/latency.rs crates/nand/src/stats.rs

/root/repo/target/release/deps/librhik_nand-9d788d423ca79a7d.rlib: crates/nand/src/lib.rs crates/nand/src/array.rs crates/nand/src/block.rs crates/nand/src/error.rs crates/nand/src/fault.rs crates/nand/src/geometry.rs crates/nand/src/latency.rs crates/nand/src/stats.rs

/root/repo/target/release/deps/librhik_nand-9d788d423ca79a7d.rmeta: crates/nand/src/lib.rs crates/nand/src/array.rs crates/nand/src/block.rs crates/nand/src/error.rs crates/nand/src/fault.rs crates/nand/src/geometry.rs crates/nand/src/latency.rs crates/nand/src/stats.rs

crates/nand/src/lib.rs:
crates/nand/src/array.rs:
crates/nand/src/block.rs:
crates/nand/src/error.rs:
crates/nand/src/fault.rs:
crates/nand/src/geometry.rs:
crates/nand/src/latency.rs:
crates/nand/src/stats.rs:
