/root/repo/target/release/deps/rhik_sigs-c5a8adac7962c623.d: crates/sigs/src/lib.rs crates/sigs/src/estimate.rs crates/sigs/src/fnv.rs crates/sigs/src/murmur.rs crates/sigs/src/signature.rs

/root/repo/target/release/deps/librhik_sigs-c5a8adac7962c623.rlib: crates/sigs/src/lib.rs crates/sigs/src/estimate.rs crates/sigs/src/fnv.rs crates/sigs/src/murmur.rs crates/sigs/src/signature.rs

/root/repo/target/release/deps/librhik_sigs-c5a8adac7962c623.rmeta: crates/sigs/src/lib.rs crates/sigs/src/estimate.rs crates/sigs/src/fnv.rs crates/sigs/src/murmur.rs crates/sigs/src/signature.rs

crates/sigs/src/lib.rs:
crates/sigs/src/estimate.rs:
crates/sigs/src/fnv.rs:
crates/sigs/src/murmur.rs:
crates/sigs/src/signature.rs:
