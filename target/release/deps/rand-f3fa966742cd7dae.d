/root/repo/target/release/deps/rand-f3fa966742cd7dae.d: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-f3fa966742cd7dae.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-f3fa966742cd7dae.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
