/root/repo/target/release/deps/rhik-22e1a08ca681797e.d: src/lib.rs

/root/repo/target/release/deps/librhik-22e1a08ca681797e.rlib: src/lib.rs

/root/repo/target/release/deps/librhik-22e1a08ca681797e.rmeta: src/lib.rs

src/lib.rs:
