/root/repo/target/release/deps/rhik_ftl-793b7103ef4d78d2.d: crates/ftl/src/lib.rs crates/ftl/src/cache.rs crates/ftl/src/gc.rs crates/ftl/src/layout.rs crates/ftl/src/alloc.rs crates/ftl/src/ftl.rs crates/ftl/src/traits.rs

/root/repo/target/release/deps/librhik_ftl-793b7103ef4d78d2.rlib: crates/ftl/src/lib.rs crates/ftl/src/cache.rs crates/ftl/src/gc.rs crates/ftl/src/layout.rs crates/ftl/src/alloc.rs crates/ftl/src/ftl.rs crates/ftl/src/traits.rs

/root/repo/target/release/deps/librhik_ftl-793b7103ef4d78d2.rmeta: crates/ftl/src/lib.rs crates/ftl/src/cache.rs crates/ftl/src/gc.rs crates/ftl/src/layout.rs crates/ftl/src/alloc.rs crates/ftl/src/ftl.rs crates/ftl/src/traits.rs

crates/ftl/src/lib.rs:
crates/ftl/src/cache.rs:
crates/ftl/src/gc.rs:
crates/ftl/src/layout.rs:
crates/ftl/src/alloc.rs:
crates/ftl/src/ftl.rs:
crates/ftl/src/traits.rs:
