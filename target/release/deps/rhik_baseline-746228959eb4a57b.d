/root/repo/target/release/deps/rhik_baseline-746228959eb4a57b.d: crates/baseline/src/lib.rs crates/baseline/src/lsm.rs crates/baseline/src/multilevel.rs crates/baseline/src/simple.rs

/root/repo/target/release/deps/librhik_baseline-746228959eb4a57b.rlib: crates/baseline/src/lib.rs crates/baseline/src/lsm.rs crates/baseline/src/multilevel.rs crates/baseline/src/simple.rs

/root/repo/target/release/deps/librhik_baseline-746228959eb4a57b.rmeta: crates/baseline/src/lib.rs crates/baseline/src/lsm.rs crates/baseline/src/multilevel.rs crates/baseline/src/simple.rs

crates/baseline/src/lib.rs:
crates/baseline/src/lsm.rs:
crates/baseline/src/multilevel.rs:
crates/baseline/src/simple.rs:
