/root/repo/target/release/deps/rhik_workloads-0bac15623711f43c.d: crates/workloads/src/lib.rs crates/workloads/src/distributions.rs crates/workloads/src/driver.rs crates/workloads/src/ibm.rs crates/workloads/src/keygen.rs crates/workloads/src/ycsb.rs

/root/repo/target/release/deps/librhik_workloads-0bac15623711f43c.rlib: crates/workloads/src/lib.rs crates/workloads/src/distributions.rs crates/workloads/src/driver.rs crates/workloads/src/ibm.rs crates/workloads/src/keygen.rs crates/workloads/src/ycsb.rs

/root/repo/target/release/deps/librhik_workloads-0bac15623711f43c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/distributions.rs crates/workloads/src/driver.rs crates/workloads/src/ibm.rs crates/workloads/src/keygen.rs crates/workloads/src/ycsb.rs

crates/workloads/src/lib.rs:
crates/workloads/src/distributions.rs:
crates/workloads/src/driver.rs:
crates/workloads/src/ibm.rs:
crates/workloads/src/keygen.rs:
crates/workloads/src/ycsb.rs:
