//! The clean mirror of the `bad` fixture: same shapes, every contract
//! honored. The test asserts wslint exits 0 with zero findings.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard};

pub struct App {
    a: Mutex<u32>,
    b: Mutex<u32>,
    q: VecDeque<u32>,
    names: Vec<String>,
}

impl App {
    pub fn new() -> App {
        App {
            a: Mutex::new(0),
            b: Mutex::new(0),
            // bounded-by: drained whole by every `take` call.
            q: VecDeque::new(),
            names: Vec::with_capacity(4),
        }
    }

    /// Guard-returning helper: callers of `lock_a` acquire `fixture.a`
    /// at the call site (exercises the interprocedural tail summary).
    fn lock_a(&self) -> MutexGuard<'_, u32> {
        self.a.lock().unwrap()
    }

    /// Acquires a (via the helper) then b — the declared order.
    pub fn ordered(&self) -> u32 {
        let ga = self.lock_a();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn read(&self, p: *const u32) -> u32 {
        // SAFETY: fixture callers always pass a reference cast to a
        // pointer, so it is valid and aligned.
        unsafe { *p }
    }

    pub fn take(&mut self) -> Vec<u32> {
        self.q.drain(..).collect()
    }
}
