//! Seeded violations for the wslint integration tests. Every finding
//! the `bad` fixture is expected to produce lives in this crate; the
//! test asserts the exact (rule, line) set.

use std::collections::VecDeque;
use std::sync::Mutex;

pub struct App {
    a: Mutex<u32>,
    b: Mutex<u32>,
    q: VecDeque<u32>,
    names: Vec<String>,
    capped: Vec<u32>,
    noted: Vec<u32>,
}

impl App {
    pub fn new() -> App {
        App {
            a: Mutex::new(0),
            b: Mutex::new(0),
            q: VecDeque::new(),      // seeded: unbounded-collection (queue-like)
            names: Vec::new(),       // seeded: unbounded-collection (long-lived state)
            capped: Vec::with_capacity(8),
            noted: Vec::new(), // bounded-by: fixture invariant, never grows
        }
    }

    /// Matches the declared order `fixture.a < fixture.b`: no finding.
    pub fn ordered(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        let total = *ga + *gb;
        drop(gb);
        drop(ga);
        total
    }

    /// Seeded: acquires `fixture.a` while holding `fixture.b`, the
    /// reverse of the declared edge — lock-order-contradiction.
    pub fn inverted(&self) -> u32 {
        let held_b = self.b.lock().unwrap();
        let a_after_b = self.a.lock().unwrap();
        *a_after_b + *held_b
    }

    /// Seeded: unsafe block with no SAFETY comment.
    pub fn uncommented(&self, p: *const u32) -> u32 {
        unsafe { *p }
    }

    /// A SAFETY comment satisfies the contract: no finding.
    pub fn commented(&self, p: *const u32) -> u32 {
        // SAFETY: fixture callers always pass a reference cast to a
        // pointer, so it is valid and aligned.
        unsafe { *p }
    }
}
