//! This file is *not* on the `unsafe-code` allow list: even a
//! SAFETY-commented unsafe block is an unsafe-outside-sync finding.

pub fn read(p: *const u32) -> u32 {
    // SAFETY: fixture callers always pass a valid pointer.
    unsafe { *p }
}
