//! Empty crate: the `cycle` fixture's findings are config-level (a
//! declared lock-order cycle, an unclassified workspace member).

pub fn noop() {}
