//! Not listed in wslint.toml: must surface as crate-unclassified.

pub fn noop() {}
