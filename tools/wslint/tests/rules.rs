//! Integration tests: run the wslint binary against the fixture
//! workspaces under `tests/fixtures/` and assert exact findings and
//! exit codes. Fixtures are never compiled by cargo — wslint lexes
//! them as text.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use wslint::report::{parse_json, Json};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear tmp dir");
    }
    fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn copy_tree(from: &Path, to: &Path) {
    fs::create_dir_all(to).expect("mkdir");
    for entry in fs::read_dir(from).expect("read dir") {
        let entry = entry.expect("dir entry");
        let src = entry.path();
        let dst = to.join(entry.file_name());
        if src.is_dir() {
            copy_tree(&src, &dst);
        } else {
            fs::copy(&src, &dst).expect("copy file");
        }
    }
}

/// Run wslint on a fixture root (config files live at the fixture's
/// top level, not under `tools/wslint/`).
fn run(root: &Path, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wslint"))
        .arg("--root")
        .arg(root)
        .arg("--config")
        .arg(root.join("wslint.toml"))
        .arg("--lock-order")
        .arg(root.join("lock_order.toml"))
        .args(extra)
        .output()
        .expect("spawn wslint")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

/// 1-indexed line of the first occurrence of `marker` in a fixture file.
fn line_of(root: &Path, rel: &str, marker: &str) -> u64 {
    let text = fs::read_to_string(root.join(rel)).expect("read fixture source");
    let idx = text.lines().position(|l| l.contains(marker)).expect("marker present");
    (idx + 1) as u64
}

/// Parse a `--json` report into (rule, path, line, fingerprint) rows.
fn findings(report: &Json) -> Vec<(String, String, u64, String)> {
    report
        .get("findings")
        .and_then(Json::arr)
        .expect("findings array")
        .iter()
        .map(|f| {
            (
                f.get("rule").and_then(Json::str_val).expect("rule").to_string(),
                f.get("path").and_then(Json::str_val).expect("path").to_string(),
                f.get("line").and_then(Json::num).expect("line") as u64,
                f.get("fingerprint").and_then(Json::str_val).expect("fingerprint").to_string(),
            )
        })
        .collect()
}

fn json_report(root: &Path, out_name: &str, extra: &[&str]) -> (Output, Json) {
    let json_path = Path::new(env!("CARGO_TARGET_TMPDIR")).join(out_name);
    let json_arg = json_path.to_str().expect("utf8 tmp path").to_string();
    let mut args = vec!["--json", json_arg.as_str()];
    args.extend_from_slice(extra);
    let out = run(root, &args);
    let text = fs::read_to_string(&json_path).expect("json report written");
    let report = parse_json(&text).expect("json report parses");
    (out, report)
}

#[test]
fn bad_fixture_reports_exact_findings_and_exits_1() {
    let root = fixture("bad");
    let (out, report) = json_report(&root, "bad.json", &[]);
    assert_eq!(exit_code(&out), 1, "stdout: {}", String::from_utf8_lossy(&out.stdout));

    let lib = "crates/app/src/lib.rs";
    let mut got: Vec<(String, String, u64)> =
        findings(&report).into_iter().map(|(r, p, l, _)| (r, p, l)).collect();
    got.sort();
    let mut want = vec![
        (
            "lock-order-contradiction".to_string(),
            lib.to_string(),
            line_of(&root, lib, "a_after_b = self.a.lock()"),
        ),
        (
            "unsafe-without-safety-comment".to_string(),
            lib.to_string(),
            line_of(&root, lib, "unsafe { *p }"),
        ),
        (
            "unsafe-outside-sync".to_string(),
            "crates/app/src/outside.rs".to_string(),
            line_of(&root, "crates/app/src/outside.rs", "unsafe { *p }"),
        ),
        (
            "unbounded-collection".to_string(),
            lib.to_string(),
            line_of(&root, lib, "q: VecDeque::new()"),
        ),
        (
            "unbounded-collection".to_string(),
            lib.to_string(),
            line_of(&root, lib, "names: Vec::new(),"),
        ),
    ];
    want.sort();
    assert_eq!(got, want);
}

#[test]
fn good_fixture_is_clean_and_exits_0() {
    let root = fixture("good");
    let (out, report) = json_report(&root, "good.json", &[]);
    assert_eq!(exit_code(&out), 0, "stdout: {}", String::from_utf8_lossy(&out.stdout));
    assert!(findings(&report).is_empty());
    // The helper-based nesting was actually observed and declared:
    // two classes, one edge, no ambiguity note.
    assert_eq!(report.get("lock_classes").and_then(Json::num), Some(2.0));
    assert_eq!(report.get("lock_edges").and_then(Json::num), Some(1.0));
}

#[test]
fn declared_cycle_and_unclassified_member_are_findings() {
    let root = fixture("cycle");
    let (out, report) = json_report(&root, "cycle.json", &[]);
    assert_eq!(exit_code(&out), 1);
    let rows = findings(&report);
    assert!(
        rows.iter().any(|(r, p, _, _)| r == "lock-order-cycle" && p == "lock_order.toml"),
        "missing cycle finding in {rows:?}"
    );
    assert!(
        rows.iter()
            .any(|(r, p, _, _)| r == "crate-unclassified" && p == "crates/orphan/Cargo.toml"),
        "missing unclassified finding in {rows:?}"
    );
}

#[test]
fn fingerprints_survive_line_shifts() {
    let root = tmp_dir("wslint-shift");
    copy_tree(&fixture("bad"), &root);
    let (out, before) = json_report(&root, "shift-before.json", &[]);
    assert_eq!(exit_code(&out), 1);

    // Prepend comment lines: every finding moves down three lines but
    // the content-hash fingerprints must not change.
    let lib = root.join("crates/app/src/lib.rs");
    let text = fs::read_to_string(&lib).expect("read lib");
    fs::write(&lib, format!("// shifted\n// shifted\n// shifted\n{text}")).expect("write lib");
    let (out, after) = json_report(&root, "shift-after.json", &[]);
    assert_eq!(exit_code(&out), 1);

    let fp = |report: &Json| {
        let mut v: Vec<String> = findings(report).into_iter().map(|(_, _, _, fp)| fp).collect();
        v.sort();
        v
    };
    let lines = |report: &Json| {
        findings(report).iter().filter(|(_, p, _, _)| p.ends_with("lib.rs")).count()
    };
    assert_eq!(fp(&before), fp(&after));
    assert_eq!(lines(&before), lines(&after));
}

#[test]
fn legacy_allowlist_demands_migration_then_migrates() {
    let root = tmp_dir("wslint-migrate");
    copy_tree(&fixture("bad"), &root);
    let allowlist = root.join("allowlist.txt");
    fs::write(
        &allowlist,
        "# legacy format\nunsafe-without-safety-comment\tcrates/app/src/lib.rs\tunsafe { *p }\n",
    )
    .expect("write legacy allowlist");
    let allow_arg = allowlist.to_str().expect("utf8").to_string();

    // Without the flag: refuse with exit 2 and point at the migration.
    let out = run(&root, &["--allowlist", &allow_arg]);
    assert_eq!(exit_code(&out), 2);
    assert!(String::from_utf8_lossy(&out.stderr).contains("--migrate-allowlist"));

    // One-shot migration rewrites the file to fingerprint entries.
    let out = run(&root, &["--allowlist", &allow_arg, "--migrate-allowlist"]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let migrated = fs::read_to_string(&allowlist).expect("migrated allowlist");
    assert!(migrated.contains("unsafe-without-safety-comment\tcrates/app/src/lib.rs\t"));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("migrated 1 legacy entries"), "stdout: {stdout}");
    assert!(stdout.contains("(0 dropped as stale)"), "stdout: {stdout}");

    // The migrated entry suppresses exactly the unsafe finding; the
    // other four violations remain.
    let (out, report) = json_report(&root, "migrated.json", &["--allowlist", &allow_arg]);
    assert_eq!(exit_code(&out), 1);
    let rows = findings(&report);
    assert_eq!(rows.len(), 4);
    assert!(rows.iter().all(|(r, _, _, _)| r != "unsafe-without-safety-comment"));
    assert!(String::from_utf8_lossy(&out.stdout).contains("1 allowlisted"));
}

#[test]
fn stale_allowlist_entries_fail_the_run() {
    let root = tmp_dir("wslint-stale");
    copy_tree(&fixture("good"), &root);
    let allowlist = root.join("allowlist.txt");
    fs::write(
        &allowlist,
        "unwrap-in-lib\tcrates/app/src/lib.rs\tdeadbeefdeadbeef\tno such finding\n",
    )
    .expect("write allowlist");
    let allow_arg = allowlist.to_str().expect("utf8").to_string();
    let out = run(&root, &["--allowlist", &allow_arg]);
    assert_eq!(exit_code(&out), 1);
    assert!(String::from_utf8_lossy(&out.stdout).contains("stale allowlist entry"));
}

#[test]
fn sarif_report_round_trips() {
    let root = fixture("bad");
    let sarif_path = Path::new(env!("CARGO_TARGET_TMPDIR")).join("bad.sarif");
    let sarif_arg = sarif_path.to_str().expect("utf8").to_string();
    let out = run(&root, &["--sarif", &sarif_arg]);
    assert_eq!(exit_code(&out), 1);

    let sarif =
        parse_json(&fs::read_to_string(&sarif_path).expect("sarif written")).expect("sarif parses");
    assert_eq!(sarif.get("version").and_then(Json::str_val), Some("2.1.0"));
    let run0 = &sarif.get("runs").and_then(Json::arr).expect("runs")[0];
    let results = run0.get("results").and_then(Json::arr).expect("results");
    assert_eq!(results.len(), 5);

    let rules = run0
        .get("tool")
        .and_then(|t| t.get("driver"))
        .and_then(|d| d.get("rules"))
        .and_then(Json::arr)
        .expect("driver rules");
    let rule_ids: Vec<&str> =
        rules.iter().filter_map(|r| r.get("id").and_then(Json::str_val)).collect();
    for res in results {
        let rule = res.get("ruleId").and_then(Json::str_val).expect("ruleId");
        assert!(rule_ids.contains(&rule), "{rule} not in driver rules");
        let fp = res
            .get("partialFingerprints")
            .and_then(|p| p.get("wslint/v1"))
            .and_then(Json::str_val)
            .expect("partial fingerprint");
        assert_eq!(fp.len(), 16);
        let loc = &res.get("locations").and_then(Json::arr).expect("locations")[0];
        let region = loc
            .get("physicalLocation")
            .and_then(|p| p.get("region"))
            .and_then(|r| r.get("startLine"))
            .and_then(Json::num)
            .expect("startLine");
        assert!(region >= 1.0);
    }
}

#[test]
fn usage_errors_exit_2() {
    let out = run(&fixture("bad"), &["--no-such-flag"]);
    assert_eq!(exit_code(&out), 2);
    let out = run(&fixture("nonexistent"), &[]);
    assert_eq!(exit_code(&out), 2);
}
