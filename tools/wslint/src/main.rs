//! wslint CLI.
//!
//! Exit codes: 0 clean, 1 findings (or stale allowlist entries), 2 usage
//! or configuration error.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use wslint::report::{to_json, to_sarif, Allowlist};
use wslint::rules::RULE_IDS;

const USAGE: &str = "\
wslint — syntax-aware workspace analyzer (lock order, unsafe contracts, bounds)

USAGE:
    cargo run -p wslint [--] [OPTIONS]

OPTIONS:
    --root <DIR>            workspace root (default: .)
    --config <FILE>         policy file (default: <root>/tools/wslint/wslint.toml)
    --lock-order <FILE>     lock-class registry (default: <root>/tools/wslint/lock_order.toml)
    --allowlist <FILE>      allowlist (default: <root>/tools/wslint/allowlist.txt)
    --json <FILE|->         write JSON findings report
    --sarif <FILE|->        write SARIF 2.1.0 report
    --print-allowlist       print current violations in allowlist format and exit 0
    --migrate-allowlist     rewrite a legacy line-text allowlist to fingerprints
    -h, --help              show this help
";

struct Opts {
    root: PathBuf,
    config: Option<PathBuf>,
    lock_order: Option<PathBuf>,
    allowlist: Option<PathBuf>,
    json: Option<String>,
    sarif: Option<String>,
    print_allowlist: bool,
    migrate_allowlist: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        config: None,
        lock_order: None,
        allowlist: None,
        json: None,
        sarif: None,
        print_allowlist: false,
        migrate_allowlist: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--root" => opts.root = PathBuf::from(value("--root")?),
            "--config" => opts.config = Some(PathBuf::from(value("--config")?)),
            "--lock-order" => opts.lock_order = Some(PathBuf::from(value("--lock-order")?)),
            "--allowlist" => opts.allowlist = Some(PathBuf::from(value("--allowlist")?)),
            "--json" => opts.json = Some(value("--json")?),
            "--sarif" => opts.sarif = Some(value("--sarif")?),
            "--print-allowlist" => opts.print_allowlist = true,
            "--migrate-allowlist" => opts.migrate_allowlist = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("wslint: {e}");
            return ExitCode::from(2);
        }
    };
    let tool_dir = opts.root.join("tools/wslint");
    let config = opts.config.unwrap_or_else(|| tool_dir.join("wslint.toml"));
    let lock_order = opts.lock_order.unwrap_or_else(|| tool_dir.join("lock_order.toml"));
    let allowlist_path = opts.allowlist.unwrap_or_else(|| tool_dir.join("allowlist.txt"));

    let analysis = match wslint::run_analysis(&opts.root, &config, &lock_order) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("wslint: {e}");
            return ExitCode::from(2);
        }
    };

    let allowlist = Allowlist::load(&allowlist_path);
    if opts.migrate_allowlist {
        if allowlist.legacy_lines.is_empty() {
            eprintln!("wslint: {} has no legacy entries to migrate", allowlist_path.display());
            return ExitCode::from(2);
        }
        let (text, dropped) = Allowlist::migrate(&allowlist.legacy_lines, &analysis.findings);
        if let Err(e) = fs::write(&allowlist_path, text) {
            eprintln!("wslint: cannot write {}: {e}", allowlist_path.display());
            return ExitCode::from(2);
        }
        println!(
            "wslint: migrated {} legacy entries to fingerprints ({} dropped as stale)",
            allowlist.legacy_lines.len() - dropped.len(),
            dropped.len()
        );
        for line in &dropped {
            println!("  dropped: {line}");
        }
        return ExitCode::SUCCESS;
    }
    if !allowlist.legacy_lines.is_empty() {
        eprintln!(
            "wslint: {} contains {} legacy line-text entries; run `cargo run -p wslint -- --migrate-allowlist` once",
            allowlist_path.display(),
            allowlist.legacy_lines.len()
        );
        return ExitCode::from(2);
    }

    if opts.print_allowlist {
        print!("{}", Allowlist::render(&analysis.findings));
        return ExitCode::SUCCESS;
    }

    let (violations, allowed, stale) = allowlist.apply(analysis.findings.clone());

    if let Some(dest) = &opts.json {
        let text = to_json(&violations, analysis.files_scanned, analysis.classes, analysis.edges);
        if let Err(e) = write_report(dest, &text) {
            eprintln!("wslint: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(dest) = &opts.sarif {
        let text = to_sarif(&violations, RULE_IDS);
        if let Err(e) = write_report(dest, &text) {
            eprintln!("wslint: {e}");
            return ExitCode::from(2);
        }
    }

    for f in &violations {
        println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        if !f.excerpt.is_empty() {
            println!("    {}", f.excerpt);
        }
        println!("    fingerprint: {}", f.fingerprint);
    }
    for entry in &stale {
        println!("stale allowlist entry (remove it): {entry}");
    }
    println!(
        "wslint: {} files, {} lock classes, {} declared edges; {} violations, {} allowlisted, {} stale entries",
        analysis.files_scanned,
        analysis.classes,
        analysis.edges,
        violations.len(),
        allowed.len(),
        stale.len()
    );
    if !analysis.ambiguous.is_empty() {
        eprintln!(
            "wslint: note: {} ambiguous function names contribute no interprocedural edges",
            analysis.ambiguous.len()
        );
    }

    if violations.is_empty() && stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn write_report(dest: &str, text: &str) -> Result<(), String> {
    if dest == "-" {
        print!("{text}");
        Ok(())
    } else {
        fs::write(dest, text).map_err(|e| format!("cannot write {dest}: {e}"))
    }
}
