//! Workspace lint pass — `cargo run -p wslint` (CI runs it too).
//!
//! Four lexical rules over the workspace's library sources, each guarding
//! a discipline the type system cannot:
//!
//! * `unwrap-in-lib` — no `.unwrap()` / `.expect(` in non-test library
//!   code of `kvssd`, `ftl`, `rhik-core`, `nand`, `hotcache`. Firmware-path code must
//!   surface typed errors; the vetted remainder lives in
//!   `tools/wslint/allowlist.txt`, which only ever shrinks.
//! * `std-mutex-outside-sync` — `std::sync::Mutex` may be named only in
//!   `ftl::sync` (the loom-swappable primitive module) and `telemetry`.
//!   Everything else imports locks from `rhik_ftl::sync`, so
//!   `cfg(loom)` builds model them.
//! * `raw-atomic-outside-sync` — library sources must not name
//!   `std::sync::atomic` / `core::sync::atomic` (types or orderings)
//!   outside `ftl::sync` and `telemetry`; atomics come from
//!   `rhik_ftl::sync::atomic` so loom models see them. Integration
//!   tests are exempt (they coordinate test threads, not device state,
//!   and never compile under `--cfg loom`).
//! * `instant-off-sim-clock` — device-model crates must not read the
//!   host clock with `Instant::now()`; timing flows from the simulated
//!   NAND timing model. (Bench crates measure wall clock and are out of
//!   scope.)
//! * `debug-assert-message` — every `debug_assert!`-family invocation
//!   carries a message naming the violated invariant.
//! * `unbounded-queue-in-server` — server sources construct only bounded
//!   queues: no `VecDeque::new()` / `LinkedList::new()` / unbounded
//!   `mpsc::channel()`. The per-connection memory budget rests on every
//!   stage of the backpressure chain being bounded at construction.
//!
//! The scanner strips comments and string/char literals first, then
//! masks `#[cfg(test)]` regions by brace tracking, so prose and test
//! code never trip a rule. Findings not covered by the allowlist fail
//! the run (exit code 1) with `rule file:line` output; stale allowlist
//! entries are reported so the list keeps shrinking. `--print-allowlist`
//! emits current findings in allowlist format for vetting.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const RULE_UNWRAP: &str = "unwrap-in-lib";
const RULE_MUTEX: &str = "std-mutex-outside-sync";
const RULE_ATOMIC: &str = "raw-atomic-outside-sync";
const RULE_CLOCK: &str = "instant-off-sim-clock";
const RULE_ASSERT: &str = "debug-assert-message";
const RULE_UNBOUNDED: &str = "unbounded-queue-in-server";

/// Library crates that must stay panic-free outside tests.
const PANIC_FREE: &[&str] = &[
    "crates/kvssd/src",
    "crates/ftl/src",
    "crates/rhik-core/src",
    "crates/nand/src",
    "crates/hotcache/src",
    "crates/server/src",
];
/// Crates whose timing must come off the simulated clock.
const SIM_CLOCK: &[&str] = &[
    "crates/nand/src",
    "crates/ftl/src",
    "crates/rhik-core/src",
    "crates/kvssd/src",
    "crates/baseline/src",
    "crates/sigs/src",
    "crates/hotcache/src",
    "crates/server/src",
];
/// Server sources where every queue must be bounded at construction
/// (the backpressure chain is only as strong as its weakest stage):
/// no growable `VecDeque::new()` / `LinkedList::new()` and no unbounded
/// `mpsc::channel()`. Bounded constructors (`with_capacity`,
/// `sync_channel`) pass.
const BOUNDED_QUEUES: &[&str] = &["crates/server/src"];
/// The only places allowed to name `std::sync::Mutex`.
const MUTEX_ALLOWED: &[&str] = &["crates/ftl/src/sync.rs", "crates/telemetry/src"];
/// The only library sources allowed to name `std::sync::atomic` /
/// `core::sync::atomic` directly; everything else goes through the
/// loom-swappable `rhik_ftl::sync::atomic` re-exports.
const ATOMIC_ALLOWED: &[&str] = &["crates/ftl/src/sync.rs", "crates/telemetry/src"];

struct Finding {
    rule: &'static str,
    path: String,
    line: usize,
    excerpt: String,
}

fn main() -> ExitCode {
    let print_allowlist = std::env::args().any(|a| a == "--print-allowlist");
    // tools/wslint/ → repo root is two levels up from the manifest.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = root.parent().and_then(Path::parent).expect("repo root").to_path_buf();

    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &root, &mut files);
    collect_rs(&root.join("src"), &root, &mut files);
    files.sort();

    let mut findings = Vec::new();
    for rel in &files {
        match fs::read_to_string(root.join(rel)) {
            Ok(source) => lint_file(rel, &source, &mut findings),
            Err(e) => {
                eprintln!("wslint: cannot read {rel}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if print_allowlist {
        for f in &findings {
            println!("{}\t{}\t{}", f.rule, f.path, f.excerpt);
        }
        return ExitCode::SUCCESS;
    }

    // Allowlist entries form a multiset keyed on (rule, path, trimmed
    // line); each entry excuses exactly one occurrence, so duplicating a
    // vetted pattern still fails until it is re-vetted.
    let allowlist_path = root.join("tools/wslint/allowlist.txt");
    let mut allowed: HashMap<(String, String, String), usize> = HashMap::new();
    if let Ok(text) = fs::read_to_string(&allowlist_path) {
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            match (parts.next(), parts.next(), parts.next()) {
                (Some(rule), Some(path), Some(excerpt)) => {
                    *allowed
                        .entry((rule.to_string(), path.to_string(), excerpt.to_string()))
                        .or_insert(0) += 1;
                }
                _ => eprintln!("wslint: malformed allowlist line: {line}"),
            }
        }
    }

    let mut failures = 0usize;
    for f in &findings {
        let key = (f.rule.to_string(), f.path.clone(), f.excerpt.clone());
        if let Some(n) = allowed.get_mut(&key) {
            *n -= 1;
            if *n == 0 {
                allowed.remove(&key);
            }
            continue;
        }
        failures += 1;
        println!("error[{}] {}:{}: {}", f.rule, f.path, f.line, f.excerpt);
    }
    for ((rule, path, excerpt), n) in &allowed {
        eprintln!("wslint: stale allowlist entry (×{n}): {rule}\t{path}\t{excerpt}");
    }

    if failures > 0 {
        eprintln!("wslint: {failures} violation(s); scanned {} files", files.len());
        ExitCode::FAILURE
    } else {
        eprintln!("wslint: clean; scanned {} files", files.len());
        ExitCode::SUCCESS
    }
}

/// Recursively collect `.rs` files under `dir` as root-relative paths,
/// skipping vendored shims and build output.
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "shims" || name == "target" || name == ".git" {
                continue;
            }
            collect_rs(&path, root, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

fn lint_file(rel: &str, source: &str, findings: &mut Vec<Finding>) {
    let raw: Vec<&str> = source.lines().collect();
    let cleaned = clean(source);
    let test_mask = mask_test_regions(&cleaned);

    let in_lib = PANIC_FREE.iter().any(|p| rel.starts_with(p));
    let in_clock = SIM_CLOCK.iter().any(|p| rel.starts_with(p));
    let in_bounded = BOUNDED_QUEUES.iter().any(|p| rel.starts_with(p));
    let mutex_ok = MUTEX_ALLOWED.iter().any(|p| rel.starts_with(p));
    // Library sources only: `crates/<name>/src/**` and the root `src/`.
    let in_src = rel.contains("/src/") || rel.starts_with("src/");
    let atomic_ok = !in_src || ATOMIC_ALLOWED.iter().any(|p| rel.starts_with(p));

    let mut push = |rule: &'static str, line: usize| {
        let excerpt: String = raw.get(line).map_or("", |l| l.trim()).chars().take(160).collect();
        findings.push(Finding { rule, path: rel.to_string(), line: line + 1, excerpt });
    };

    for (i, line) in cleaned.iter().enumerate() {
        if test_mask[i] {
            continue;
        }
        if in_lib && (line.contains(".unwrap()") || line.contains(".expect(")) {
            push(RULE_UNWRAP, i);
        }
        if !mutex_ok && line.contains("std::sync") && line.contains("Mutex") {
            push(RULE_MUTEX, i);
        }
        if !atomic_ok && (line.contains("std::sync::atomic") || line.contains("core::sync::atomic"))
        {
            push(RULE_ATOMIC, i);
        }
        if in_clock && line.contains("Instant::now") {
            push(RULE_CLOCK, i);
        }
        if in_bounded
            && (line.contains("VecDeque::new(")
                || line.contains("LinkedList::new(")
                || line.contains("mpsc::channel("))
        {
            push(RULE_UNBOUNDED, i);
        }
    }

    for (line, needs) in debug_asserts_without_message(&cleaned, &test_mask) {
        let _ = needs;
        push(RULE_ASSERT, line);
    }
}

/// Replace comments and string/char literal contents with spaces, keeping
/// line structure intact, so substring rules never match prose.
fn clean(source: &str) -> Vec<String> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
    }
    let mut state = State::Code;
    let mut out = String::with_capacity(source.len());
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut prev_ident = false;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            out.push('\n');
            prev_ident = false;
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = bytes.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    out.push('"');
                    i += 1;
                } else if c == 'r' && !prev_ident {
                    // Possible raw string: r"…", r#"…"#, …
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        state = State::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                    } else {
                        out.push(c);
                        prev_ident = true;
                        i += 1;
                        continue;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime.
                    if next == Some('\\') {
                        let mut j = i + 2; // skip escape lead-in
                        if j < bytes.len() {
                            j += 1; // the escaped char (covers \n, \', \\ …)
                        }
                        while j < bytes.len() && bytes[j] != '\'' && bytes[j] != '\n' {
                            j += 1; // \u{…} and friends
                        }
                        for _ in i..=j.min(bytes.len() - 1) {
                            out.push(' ');
                        }
                        i = (j + 1).min(bytes.len());
                    } else if bytes.get(i + 2) == Some(&'\'') {
                        out.push_str("   ");
                        i += 3;
                    } else {
                        out.push('\''); // lifetime
                        i += 1;
                    }
                    prev_ident = false;
                    continue;
                } else {
                    out.push(c);
                    prev_ident = c.is_alphanumeric() || c == '_';
                    i += 1;
                    continue;
                }
                prev_ident = false;
            }
            State::LineComment => {
                out.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = bytes.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Code;
                    out.push('"');
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let closed = (0..hashes).all(|k| bytes.get(i + 1 + k) == Some(&'#'));
                    if closed {
                        state = State::Code;
                        out.push('"');
                        for _ in 0..hashes {
                            out.push(' ');
                        }
                        i += 1 + hashes;
                        continue;
                    }
                }
                out.push(' ');
                i += 1;
            }
        }
    }
    out.lines().map(str::to_string).collect()
}

/// Mark every line inside a `#[cfg(test)]` item (attribute line through
/// the item's closing brace) so rules skip test code embedded in src.
fn mask_test_regions(cleaned: &[String]) -> Vec<bool> {
    let mut mask = vec![false; cleaned.len()];
    let mut pending = false; // saw the attribute, waiting for the item's `{`
    let mut depth = 0i32;
    for (i, line) in cleaned.iter().enumerate() {
        if !pending && depth == 0 {
            if line.contains("#[cfg(test)]") {
                pending = true;
                mask[i] = true;
            }
            continue;
        }
        mask[i] = true;
        for c in line.chars() {
            match c {
                '{' => {
                    pending = false;
                    depth += 1;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if !pending && depth <= 0 {
            depth = 0;
        }
    }
    mask
}

/// Find `debug_assert!`-family invocations whose argument list lacks a
/// message (fewer top-level commas than the macro's value arity allows).
fn debug_asserts_without_message(cleaned: &[String], test_mask: &[bool]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, line) in cleaned.iter().enumerate() {
        if test_mask[i] {
            continue;
        }
        let mut from = 0;
        while let Some(pos) = line[from..].find("debug_assert") {
            let start = from + pos;
            // Must be a free-standing macro name, not a suffix of another
            // identifier.
            let pre_ok = start == 0
                || !line[..start]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let rest = &line[start + "debug_assert".len()..];
            let (needs, tail) = if let Some(t) = rest.strip_prefix("_eq!") {
                (2, t)
            } else if let Some(t) = rest.strip_prefix("_ne!") {
                (2, t)
            } else if let Some(t) = rest.strip_prefix('!') {
                (1, t)
            } else {
                from = start + 1;
                continue;
            };
            if pre_ok && tail.trim_start().starts_with('(') {
                let col = line.len() - tail.trim_start().len();
                if count_top_level_commas(cleaned, i, col) < needs {
                    out.push((i, needs));
                }
            }
            from = start + 1;
        }
    }
    out
}

/// Count commas at paren depth 1 of the group opening at (line, col),
/// scanning across lines (the source is already comment/string-free).
fn count_top_level_commas(cleaned: &[String], line: usize, col: usize) -> usize {
    let mut depth = 0i32;
    let mut commas = 0;
    for (li, text) in cleaned.iter().enumerate().skip(line) {
        let start = if li == line { col } else { 0 };
        for c in text[start.min(text.len())..].chars() {
            match c {
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return commas;
                    }
                }
                ',' if depth == 1 => commas += 1,
                _ => {}
            }
        }
    }
    commas
}
