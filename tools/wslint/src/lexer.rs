//! A small Rust lexer producing a token stream with line numbers.
//!
//! This is not a full fidelity rustc lexer — it is exactly the subset the
//! analyzer needs: identifiers, punctuation, delimiters, literals and
//! comments, each tagged with its 1-based source line. String/char
//! literal *contents* and comment *text* never leak into code tokens, so
//! every downstream rule is immune to the prose-masking bugs the old
//! line-scanner worked around. Comments are kept (with their text) so
//! contract annotations (`// SAFETY:`, `// bounded-by:`) are first-class
//! facts rather than stripped noise.

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `unsafe`, `lock`, …). Raw
    /// identifiers (`r#type`) are normalized to their bare name.
    Ident(String),
    /// `'a` — lifetimes never matter to rules but must not be confused
    /// with char literals.
    Lifetime,
    /// String / raw string / byte string literal (contents dropped).
    Str,
    /// Char / byte literal (contents dropped).
    Char,
    /// Numeric literal (value dropped).
    Num,
    /// A single punctuation character (`.`, `:`, `#`, `=`, …).
    Punct(char),
    /// Opening delimiter: `(`, `[` or `{`.
    Open(char),
    /// Closing delimiter: `)`, `]` or `}`.
    Close(char),
    /// A comment, line or block, with its full text (including the
    /// `//` / `/*` markers).
    Comment(String),
}

#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    /// 1-based line of the token's first character.
    pub line: usize,
}

/// Lex `source` into tokens. Never fails: unterminated literals simply
/// run to end of input (the analyzer lints real, compiling code; fixture
/// garbage degrades gracefully).
pub fn lex(source: &str) -> Vec<Token> {
    let chars: Vec<char> = source.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let n = chars.len();

    // Advance over `chars[i..j]`, counting newlines.
    macro_rules! consume_to {
        ($j:expr) => {{
            let j = $j.min(n);
            for k in i..j {
                if chars[k] == '\n' {
                    line += 1;
                }
            }
            i = j;
        }};
    }

    while i < n {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments (kept, with text).
        if c == '/' && next == Some('/') {
            let start = i;
            let mut j = i;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            let text: String = chars[start..j].iter().collect();
            toks.push(Token { tok: Tok::Comment(text), line });
            consume_to!(j);
            continue;
        }
        if c == '/' && next == Some('*') {
            let start = i;
            let start_line = line;
            let mut depth = 0usize;
            let mut j = i;
            while j < n {
                if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    j += 1;
                }
            }
            let text: String = chars[start..j.min(n)].iter().collect();
            toks.push(Token { tok: Tok::Comment(text), line: start_line });
            consume_to!(j);
            continue;
        }
        // Raw strings / raw byte strings / raw identifiers.
        if c == 'r' || (c == 'b' && next == Some('r')) {
            let hash_start = if c == 'r' { i + 1 } else { i + 2 };
            let mut j = hash_start;
            while chars.get(j) == Some(&'#') {
                j += 1;
            }
            let hashes = j - hash_start;
            if chars.get(j) == Some(&'"') {
                // Raw string: scan for `"###...` with `hashes` hashes.
                let start_line = line;
                let mut k = j + 1;
                while k < n {
                    if chars[k] == '"' && (0..hashes).all(|h| chars.get(k + 1 + h) == Some(&'#')) {
                        k += 1 + hashes;
                        break;
                    }
                    k += 1;
                }
                toks.push(Token { tok: Tok::Str, line: start_line });
                consume_to!(k);
                continue;
            }
            if c == 'r' && hashes == 1 && chars.get(j).is_some_and(|c| ident_start(*c)) {
                // Raw identifier r#name.
                let mut k = j;
                while k < n && ident_cont(chars[k]) {
                    k += 1;
                }
                let name: String = chars[j..k].iter().collect();
                toks.push(Token { tok: Tok::Ident(name), line });
                consume_to!(k);
                continue;
            }
            // Plain identifier starting with r/b: fall through.
        }
        // String / byte string.
        if c == '"' || (c == 'b' && next == Some('"')) {
            let start_line = line;
            let mut j = if c == '"' { i + 1 } else { i + 2 };
            while j < n {
                if chars[j] == '\\' {
                    j += 2;
                } else if chars[j] == '"' {
                    j += 1;
                    break;
                } else {
                    j += 1;
                }
            }
            toks.push(Token { tok: Tok::Str, line: start_line });
            consume_to!(j);
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' || (c == 'b' && next == Some('\'')) {
            let q = if c == '\'' { i } else { i + 1 };
            let after = chars.get(q + 1).copied();
            let is_char = match after {
                Some('\\') => true,
                Some(a) if ident_start(a) => {
                    // `'x'` is a char; `'x` followed by non-quote is a
                    // lifetime (`'a,`, `'static>`, …).
                    let mut k = q + 2;
                    while k < n && ident_cont(chars[k]) {
                        k += 1;
                    }
                    chars.get(k) == Some(&'\'')
                }
                Some(_) => true, // '(' etc.
                None => false,
            };
            if is_char {
                let mut j = q + 1;
                while j < n {
                    if chars[j] == '\\' {
                        j += 2;
                    } else if chars[j] == '\'' {
                        j += 1;
                        break;
                    } else if chars[j] == '\n' {
                        break; // stray quote; bail at line end
                    } else {
                        j += 1;
                    }
                }
                toks.push(Token { tok: Tok::Char, line });
                consume_to!(j);
            } else {
                let mut j = q + 1;
                while j < n && ident_cont(chars[j]) {
                    j += 1;
                }
                toks.push(Token { tok: Tok::Lifetime, line });
                consume_to!(j);
            }
            continue;
        }
        // Identifier / keyword.
        if ident_start(c) {
            let mut j = i;
            while j < n && ident_cont(chars[j]) {
                j += 1;
            }
            let name: String = chars[i..j].iter().collect();
            toks.push(Token { tok: Tok::Ident(name), line });
            consume_to!(j);
            continue;
        }
        // Number (consume `1_000`, `0xfe`, `1.5e3`; `.` only when
        // followed by a digit so ranges like `0..n` stay punctuation).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n {
                let d = chars[j];
                if d.is_ascii_alphanumeric()
                    || d == '_'
                    || (d == '.' && chars.get(j + 1).is_some_and(|x| x.is_ascii_digit()))
                {
                    j += 1;
                } else {
                    break;
                }
            }
            toks.push(Token { tok: Tok::Num, line });
            consume_to!(j);
            continue;
        }
        let tok = match c {
            '(' | '[' | '{' => Tok::Open(c),
            ')' | ']' | '}' => Tok::Close(c),
            other => Tok::Punct(other),
        };
        toks.push(Token { tok, line });
        i += 1;
    }
    toks
}

fn ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn ident_cont(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r#"let x = "Mutex::lock()"; // Instant::now in prose
        /* VecDeque::new() */ call();"#;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "call"]);
    }

    #[test]
    fn raw_strings_and_chars_are_opaque() {
        let src = "let s = r#\"unsafe { }\"#; let c = '{'; let l: &'static str = f::<'_>();";
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"static".to_string()), "lifetime must not leak an ident");
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let src = "a\n\"x\ny\"\nb";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.tok == Tok::Ident("b".into())).unwrap();
        assert_eq!(b.line, 4, "line count must include newlines inside literals");
    }

    #[test]
    fn comment_text_is_preserved_for_contract_annotations() {
        let toks = lex("// SAFETY: the pointer is pinned\nunsafe {}");
        match &toks[0].tok {
            Tok::Comment(text) => assert!(text.contains("SAFETY:")),
            other => panic!("expected comment, got {other:?}"),
        }
    }
}
