//! Workspace discovery and analyzer configuration.
//!
//! * Members come from the root `Cargo.toml` (`[workspace] members` with
//!   glob expansion, minus `exclude`), so a newly added crate can never
//!   silently dodge coverage — an unlisted member is a
//!   `crate-unclassified` finding, not a silent skip.
//! * Per-crate rule scopes come from `tools/wslint/wslint.toml`.
//! * Lock classes and the declared acquisition order come from
//!   `tools/wslint/lock_order.toml` (see `registry.rs`).

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::toml_lite::{self, Value};

/// Rule scopes for one workspace member.
#[derive(Debug, Clone, Default)]
pub struct CratePolicy {
    /// `unwrap-in-lib`: no `.unwrap()`/`.expect(` in non-test src.
    pub panic_free: bool,
    /// `instant-off-sim-clock`: no `Instant::now()` in non-test src.
    pub sim_clock: bool,
    /// `unbounded-collection` extends to growable collections constructed
    /// into struct-literal fields (long-lived state crates).
    pub long_lived_state: bool,
    /// Skip the member entirely (the analyzer itself; its fixture corpus
    /// is deliberately full of violations).
    pub skip: bool,
}

#[derive(Debug)]
pub struct Config {
    pub root: PathBuf,
    /// member dir (root-relative, `/`-separated; `"."` is the root
    /// package) → policy. Only members present here are classified.
    pub crates: BTreeMap<String, CratePolicy>,
    /// Path prefixes allowed to name `std::sync::Mutex`/`Condvar`/`RwLock`.
    pub mutex_allowed: Vec<String>,
    /// Path prefixes allowed to name `std::sync::atomic`/`core::sync::atomic`.
    pub atomic_allowed: Vec<String>,
    /// Path prefixes where `unsafe` is permitted (with a SAFETY comment).
    pub unsafe_allowed: Vec<String>,
}

impl Config {
    pub fn load(root: &Path, config_path: &Path) -> Result<Config, String> {
        let text = fs::read_to_string(config_path)
            .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
        let doc = toml_lite::parse(&text)
            .map_err(|(line, msg)| format!("{}:{line}: {msg}", config_path.display()))?;
        let mut crates = BTreeMap::new();
        for (section, entries) in &doc {
            if let Some(member) = section.strip_prefix("crates.") {
                let mut p = CratePolicy::default();
                for (k, v) in entries {
                    let on = matches!(v, Value::Bool(true));
                    match k.as_str() {
                        "panic-free" => p.panic_free = on,
                        "sim-clock" => p.sim_clock = on,
                        "long-lived-state" => p.long_lived_state = on,
                        "skip" => p.skip = on,
                        other => {
                            return Err(format!(
                                "{}: unknown crate flag `{other}` in [{section}]",
                                config_path.display()
                            ))
                        }
                    }
                }
                crates.insert(member.to_string(), p);
            }
        }
        let list = |key: &str| -> Vec<String> {
            toml_lite::get_list(&doc, "allow", key).unwrap_or(&[]).to_vec()
        };
        Ok(Config {
            root: root.to_path_buf(),
            crates,
            mutex_allowed: list("std-mutex"),
            atomic_allowed: list("raw-atomic"),
            unsafe_allowed: list("unsafe-code"),
        })
    }
}

/// A discovered workspace member.
#[derive(Debug)]
pub struct Member {
    /// Root-relative dir (`"crates/kvssd"`, `"."` for the root package).
    pub dir: String,
    /// All `.rs` files under the member (root-relative, sorted).
    pub files: Vec<String>,
}

/// Discover workspace members from the root `Cargo.toml`. The root
/// package's own `src/` (plus `tests/`, `examples/`) is member `"."` when
/// the manifest has a `[package]` section.
pub fn discover_members(root: &Path) -> Result<Vec<Member>, String> {
    let manifest_path = root.join("Cargo.toml");
    let text = fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
    let doc = toml_lite::parse(&text)
        .map_err(|(line, msg)| format!("{}:{line}: {msg}", manifest_path.display()))?;
    let members = toml_lite::get_list(&doc, "workspace", "members")
        .ok_or_else(|| format!("{}: no [workspace] members", manifest_path.display()))?;
    let excludes: Vec<String> =
        toml_lite::get_list(&doc, "workspace", "exclude").unwrap_or(&[]).to_vec();

    let mut dirs: Vec<String> = Vec::new();
    for pat in members {
        for dir in expand_member_glob(root, pat) {
            let excluded = excludes.iter().any(|e| dir == *e || dir.starts_with(&format!("{e}/")));
            if !excluded && root.join(&dir).join("Cargo.toml").is_file() {
                dirs.push(dir);
            }
        }
    }
    if doc.contains_key("package") {
        dirs.push(".".to_string());
    }
    dirs.sort();
    dirs.dedup();

    let mut out = Vec::new();
    for dir in dirs {
        let base = if dir == "." { root.to_path_buf() } else { root.join(&dir) };
        let mut files = Vec::new();
        for sub in ["src", "tests", "benches", "examples"] {
            collect_rs(&base.join(sub), root, &mut files);
        }
        files.sort();
        out.push(Member { dir, files });
    }
    Ok(out)
}

/// Expand a member pattern; only the trailing-`*` form needs globbing
/// (`crates/*`, `crates/shims/*`).
fn expand_member_glob(root: &Path, pat: &str) -> Vec<String> {
    match pat.strip_suffix("/*") {
        None => vec![pat.to_string()],
        Some(prefix) => {
            let mut out = Vec::new();
            if let Ok(entries) = fs::read_dir(root.join(prefix)) {
                for e in entries.flatten() {
                    if e.path().is_dir() {
                        out.push(format!("{prefix}/{}", e.file_name().to_string_lossy()));
                    }
                }
            }
            out
        }
    }
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs(&path, root, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

/// Source-kind of a file within a member, decided syntactically from its
/// path. Rules scope themselves by this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FileKind {
    /// `src/**` excluding `src/bin/**` — library code, rules fully apply.
    Lib,
    /// `src/bin/**` — binary front-ends.
    Bin,
    /// `tests/**`, `benches/**`, `examples/**` — host-side test code.
    Test,
}

pub fn file_kind(member_dir: &str, rel_path: &str) -> FileKind {
    let local = if member_dir == "." {
        rel_path
    } else {
        rel_path.strip_prefix(member_dir).map_or(rel_path, |p| p.trim_start_matches('/'))
    };
    if local.starts_with("src/bin/") {
        FileKind::Bin
    } else if local.starts_with("src/") || local == "src.rs" {
        FileKind::Lib
    } else {
        FileKind::Test
    }
}
