//! Pass 1: per-file fact extraction over token trees.
//!
//! The walker produces a `FileFacts` per source file: lock acquisition
//! sites with the set of lock classes lexically held at each site,
//! function summaries (which classes a function acquires, whether its
//! tail expression returns a guard), `unsafe` occurrences with their
//! `// SAFETY:` contract status, unbounded-capacity collection
//! constructions with their `// bounded-by:` annotation status, and the
//! token-level sites for the re-implemented lexical rules (unwrap,
//! std-mutex, raw-atomic, Instant, debug_assert arity).
//!
//! Guard tracking is lexical: a `let`-bound guard lives to the end of its
//! enclosing block (or an explicit `drop(name)`); a temporary guard lives
//! to the end of its statement. Cross-function edges come from the rules
//! pass, which folds call summaries over these facts.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Tok, Token};
use crate::registry::Registry;
use crate::tree::{build, Group, Tt};

/// A site for one of the token-level rules.
#[derive(Debug, Clone)]
pub struct Site {
    pub line: usize,
    pub in_test: bool,
}

/// One lock acquisition: a `.lock()` / `.try_lock()` call, or (in the
/// summary-informed second walk) a call to a guard-returning helper.
#[derive(Debug, Clone)]
pub struct Acquisition {
    pub line: usize,
    /// Normalized receiver (`shared.queues[_]`, `self.inner`, …).
    pub recv: String,
    /// Declared class, when the registry classifies the site.
    pub class: Option<String>,
    /// Classes of guards lexically held when this site runs.
    pub held: Vec<String>,
    pub in_test: bool,
}

/// A call made while at least zero guards are held; the rules pass joins
/// these with function summaries to derive cross-function edges.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub line: usize,
    /// Bare callee name (last path segment / method name).
    pub name: String,
    pub held: Vec<String>,
    pub in_test: bool,
}

/// One function definition's local summary.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// Classes acquired directly in the body (any position).
    pub direct: Vec<String>,
    /// Classes acquired in the body's tail expression — what a caller
    /// holds if it `let`-binds this function's return value.
    pub tail: Vec<String>,
    /// Bare names of functions called in the body.
    pub calls: Vec<String>,
}

#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub line: usize,
    pub has_safety: bool,
    pub in_test: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CollectionKind {
    /// `VecDeque::new` / `LinkedList::new` / `BinaryHeap::new` /
    /// `mpsc::channel` — queue-like, flagged in any position.
    QueueLike,
    /// `Vec::new` / `HashMap::new` / `HashSet::new` / `BTreeMap::new` —
    /// flagged only when constructed into a struct-literal field
    /// (long-lived state).
    General,
}

#[derive(Debug, Clone)]
pub struct CollectionSite {
    pub line: usize,
    /// `VecDeque::new`, `mpsc::channel`, …
    pub what: String,
    pub kind: CollectionKind,
    pub in_struct_literal: bool,
    pub has_bound: bool,
    pub in_test: bool,
}

#[derive(Debug, Default)]
pub struct FileFacts {
    pub path: String,
    pub lines: Vec<String>,
    pub acquisitions: Vec<Acquisition>,
    pub calls: Vec<CallSite>,
    pub fns: Vec<FnDef>,
    pub unsafe_sites: Vec<UnsafeSite>,
    pub unwraps: Vec<Site>,
    pub mutex_names: Vec<Site>,
    pub atomic_names: Vec<Site>,
    pub instant_sites: Vec<Site>,
    pub asserts_without_message: Vec<Site>,
    pub collections: Vec<CollectionSite>,
}

/// Resolved function summaries, shared by the second extraction walk and
/// the rules pass. Only names whose workspace-wide definitions agree are
/// present (an ambiguous name contributes no edges — conservative, and
/// reported as a diagnostic by the rules pass).
#[derive(Debug, Default)]
pub struct Summaries {
    /// name → all classes the function may (transitively) acquire.
    pub full: BTreeMap<String, Vec<String>>,
    /// name → classes a `let`-bound call to it leaves held (guard-
    /// returning helpers: tail-position acquisitions).
    pub tail: BTreeMap<String, Vec<String>>,
}

/// Extract facts for one file. With `summaries`, calls to guard-returning
/// helpers are treated as acquisitions (second pass).
pub fn extract(
    path: &str,
    source: &str,
    registry: &Registry,
    summaries: Option<&Summaries>,
) -> FileFacts {
    let tokens = lex(source);
    let comments = comment_lines(&tokens);
    let tts = build(tokens.clone());
    let mut facts = FileFacts {
        path: path.to_string(),
        lines: source.lines().map(str::to_string).collect(),
        ..FileFacts::default()
    };
    let mut w = Walker { path, registry, summaries, comments: &comments, facts: &mut facts };
    w.walk_items(&tts, false);
    let test_lines = w.test_lines(&tts);
    flat_scans(&tokens, &test_lines, &mut facts);
    facts
}

/// line → comment text (all comments starting on that line, joined).
fn comment_lines(tokens: &[Token]) -> BTreeMap<usize, String> {
    let mut map: BTreeMap<usize, String> = BTreeMap::new();
    for t in tokens {
        if let Tok::Comment(text) = &t.tok {
            // A block comment occupies every line it spans.
            for (off, piece) in text.lines().enumerate() {
                map.entry(t.line + off).or_default().push_str(piece);
            }
        }
    }
    map
}

struct Walker<'a> {
    path: &'a str,
    registry: &'a Registry,
    summaries: Option<&'a Summaries>,
    comments: &'a BTreeMap<usize, String>,
    facts: &'a mut FileFacts,
}

/// Expression-walk state for one function body.
struct FnState {
    /// One entry per open block scope; each holds (binding name or None,
    /// classes) for guards bound in that scope.
    scopes: Vec<Vec<(Option<String>, Vec<String>)>>,
    /// One frame per in-flight statement (statements nest through block
    /// expressions); each frame holds `(class, escapes)` for guards
    /// acquired so far in that statement. `escapes` is false when the
    /// guard is consumed by a trailing non-adapter method chain
    /// (`.lock().unwrap().clone()` yields a clone, not a guard), so the
    /// class must not survive into a `let` binding.
    frames: Vec<Vec<(String, bool)>>,
    in_test: bool,
    /// Local fn summary being accumulated.
    def: FnDef,
    /// Classes acquired in the current top-level statement of the body;
    /// the last statement's set becomes `def.tail`.
    cur_top_stmt: Vec<String>,
    depth: usize,
}

impl FnState {
    fn held(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for scope in &self.scopes {
            for (_, classes) in scope {
                out.extend(classes.iter().cloned());
            }
        }
        for frame in &self.frames {
            out.extend(frame.iter().map(|(c, _)| c.clone()));
        }
        out
    }

    fn acquire(&mut self, class: &str, escapes: bool) {
        if let Some(frame) = self.frames.last_mut() {
            frame.push((class.to_string(), escapes));
        }
        if !self.def.direct.contains(&class.to_string()) {
            self.def.direct.push(class.to_string());
        }
    }
}

impl<'a> Walker<'a> {
    /// Item-level walk: attributes, `#[cfg(test)]` masking, fn bodies,
    /// nested mods/impls/traits, item-level `unsafe`.
    fn walk_items(&mut self, tts: &[Tt], in_test: bool) {
        let mut i = 0;
        while i < tts.len() {
            // Attribute?
            if tts[i].is_punct('#') {
                if let Some(Tt::Group(g)) = tts.get(i + 1) {
                    if g.delim == '[' && attr_is_test(&g.inner) {
                        // Skip the attributed item entirely (through any
                        // further attributes, to its `;` or body group).
                        i += 2;
                        while i < tts.len() {
                            match &tts[i] {
                                t if t.is_punct(';') => {
                                    i += 1;
                                    break;
                                }
                                Tt::Group(g) if g.delim == '{' => {
                                    i += 1;
                                    break;
                                }
                                _ => i += 1,
                            }
                        }
                        continue;
                    }
                    i += 2;
                    continue;
                }
            }
            match tts[i].ident() {
                Some("unsafe") => {
                    // `unsafe fn` / `unsafe impl` / `unsafe trait` at item
                    // level (unsafe blocks are handled in fn bodies).
                    let line = tts[i].line();
                    self.record_unsafe(line, in_test);
                    i += 1;
                    continue;
                }
                Some("fn") => {
                    let name = tts.get(i + 1).and_then(|t| t.ident()).unwrap_or("_").to_string();
                    // Find the body: first `{` group before a `;`.
                    let mut j = i + 2;
                    let mut body: Option<&Group> = None;
                    while j < tts.len() {
                        if tts[j].is_punct(';') {
                            break; // trait method declaration
                        }
                        if let Some(g) = tts[j].group() {
                            if g.delim == '{' {
                                body = Some(g);
                                break;
                            }
                        }
                        j += 1;
                    }
                    if let Some(body) = body {
                        self.walk_fn(&name, body, in_test);
                    }
                    i = j + 1;
                    continue;
                }
                Some("mod") | Some("impl") | Some("trait") => {
                    // Recurse into the body group (if inline).
                    let mut j = i + 1;
                    while j < tts.len() {
                        if tts[j].is_punct(';') {
                            break;
                        }
                        if let Some(g) = tts[j].group() {
                            if g.delim == '{' {
                                self.walk_items(&g.inner, in_test);
                                break;
                            }
                        }
                        j += 1;
                    }
                    i = j + 1;
                    continue;
                }
                _ => {}
            }
            i += 1;
        }
    }

    /// Line spans covered by `#[cfg(test)]` items, as a per-line lookup
    /// for the flat token scans.
    fn test_lines(&self, tts: &[Tt]) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        collect_test_spans(tts, &mut spans);
        spans
    }

    fn walk_fn(&mut self, name: &str, body: &Group, in_test: bool) {
        let mut st = FnState {
            scopes: vec![Vec::new()],
            frames: Vec::new(),
            in_test,
            def: FnDef {
                name: name.to_string(),
                direct: Vec::new(),
                tail: Vec::new(),
                calls: Vec::new(),
            },
            cur_top_stmt: Vec::new(),
            depth: 0,
        };
        self.walk_block(&body.inner, &mut st);
        st.def.tail = std::mem::take(&mut st.cur_top_stmt);
        self.facts.fns.push(st.def.clone());
    }

    /// Walk one `{}` block: statement segmentation, guard scoping.
    /// Statements end at `;` — or right after a top-level `{…}` group
    /// (match/if/while/loop and match-arm bodies end statements without a
    /// semicolon, and their temporaries — e.g. a guard in a match
    /// scrutinee — die there).
    fn walk_block(&mut self, tts: &[Tt], st: &mut FnState) {
        st.scopes.push(Vec::new());
        st.depth += 1;
        let mut stmt_start = 0;
        let mut i = 0;
        while i <= tts.len() {
            let at_end = i == tts.len();
            if at_end || tts[i].is_punct(';') {
                let stmt = &tts[stmt_start..i];
                if !stmt.is_empty() {
                    self.walk_stmt(stmt, st, at_end);
                }
                stmt_start = i + 1;
            } else if matches!(&tts[i], Tt::Group(g) if g.delim == '{')
                && tts.get(stmt_start).and_then(|t| t.ident()) != Some("let")
                && tts.get(i + 1).and_then(|t| t.ident()) != Some("else")
            {
                let stmt = &tts[stmt_start..=i];
                self.walk_stmt(stmt, st, i + 1 == tts.len());
                stmt_start = i + 1;
            }
            i += 1;
        }
        st.depth -= 1;
        st.scopes.pop();
    }

    /// Walk one statement: `let` binding detection, then the expression
    /// walk; temporaries die at the end, `let`-bound guards persist.
    fn walk_stmt(&mut self, stmt: &[Tt], st: &mut FnState, is_tail: bool) {
        let mut binding: Option<Option<String>> = None; // Some(name?) if a let
        let mut expr = stmt;
        if stmt[0].ident() == Some("let") {
            let mut j = 1;
            if stmt.get(j).and_then(|t| t.ident()) == Some("mut") {
                j += 1;
            }
            let name = stmt.get(j).and_then(|t| t.ident()).map(str::to_string);
            // Complex patterns (`let Ok(g) = …`, tuples) bind unnamed:
            // the guard still lives to end of scope, it just can't be
            // `drop`ped by name.
            let named = match (&name, stmt.get(j + 1)) {
                (Some(_), Some(t)) if t.is_punct('=') || t.is_punct(':') => name,
                _ => None,
            };
            binding = Some(named);
            // Walk only the initializer (after `=`).
            if let Some(eq) = stmt.iter().position(|t| t.is_punct('=')) {
                expr = &stmt[eq + 1..];
            }
        }
        st.frames.push(Vec::new());
        self.walk_expr(expr, st, false);
        let acquired = st.frames.pop().unwrap_or_default();
        // Only guards that escape their call chain can outlive the
        // statement (into a binding, a block value, or the fn tail).
        let escaping: Vec<String> =
            acquired.iter().filter(|(_, e)| *e).map(|(c, _)| c.clone()).collect();
        if st.depth == 1 && is_tail {
            st.cur_top_stmt = escaping.clone();
        }
        match binding {
            Some(name) if !escaping.is_empty() => {
                if let Some(scope) = st.scopes.last_mut() {
                    scope.push((name, escaping));
                }
            }
            None if is_tail => {
                // A block's tail expression: its value (and any guard in
                // it) flows out to the enclosing statement.
                if let Some(parent) = st.frames.last_mut() {
                    parent.extend(acquired.iter().filter(|(_, e)| *e).cloned());
                }
            }
            _ => {} // temporaries: guards end with the statement
        }
    }

    /// Walk expression tokens left to right, recursing into groups.
    /// `in_struct_literal` flags collection constructions that initialize
    /// struct fields.
    fn walk_expr(&mut self, tts: &[Tt], st: &mut FnState, in_struct_literal: bool) {
        let mut i = 0;
        while i < tts.len() {
            let t = &tts[i];
            if let Some(id) = t.ident() {
                match id {
                    "unsafe" => {
                        if let Some(Tt::Group(g)) = tts.get(i + 1) {
                            if g.delim == '{' {
                                self.record_unsafe(t.line(), st.in_test);
                                self.walk_block(&g.inner, st);
                                i += 2;
                                continue;
                            }
                        }
                        self.record_unsafe(t.line(), st.in_test);
                        i += 1;
                        continue;
                    }
                    "drop" => {
                        // `drop(name)` releases a named guard early.
                        if let Some(Tt::Group(g)) = tts.get(i + 1) {
                            if g.delim == '(' && g.inner.len() == 1 {
                                if let Some(name) = g.inner[0].ident() {
                                    for scope in st.scopes.iter_mut() {
                                        scope.retain(|(n, _)| n.as_deref() != Some(name));
                                    }
                                    i += 2;
                                    continue;
                                }
                            }
                        }
                        i += 1;
                        continue;
                    }
                    // Plain `if`/`while`: condition temporaries (e.g. the
                    // guard in `while !q.lock().is_empty()`) drop before
                    // the body runs. `if let`/`while let` guards instead
                    // live through the body, so those fall through to the
                    // normal walk.
                    "if" | "while" if tts.get(i + 1).and_then(|t| t.ident()) != Some("let") => {
                        let mut j = i + 1;
                        while j < tts.len() && !matches!(&tts[j], Tt::Group(g) if g.delim == '{') {
                            j += 1;
                        }
                        st.frames.push(Vec::new());
                        self.walk_expr(&tts[i + 1..j], st, false);
                        st.frames.pop();
                        if let Some(Tt::Group(g)) = tts.get(j) {
                            self.walk_block(&g.inner, st);
                        }
                        i = j + 1;
                        continue;
                    }
                    _ => {}
                }
                // Collection construction: `Path::new(…)` / `mpsc::channel(…)`.
                if let Some(site) = self.collection_at(tts, i, st, in_struct_literal) {
                    self.facts.collections.push(site);
                }
                // Method call `.name(…)` or plain call `name(…)`.
                if let Some(Tt::Group(g)) = tts.get(i + 1) {
                    if g.delim == '(' {
                        let is_method = i > 0 && tts[i - 1].is_punct('.');
                        let esc = escapes_after(tts, i + 1);
                        if is_method && (id == "lock" || id == "try_lock") {
                            let recv = normalize_recv(tts, i - 1);
                            self.record_acquisition(t.line(), recv, st, esc);
                        } else {
                            self.record_call(t.line(), id.to_string(), st, esc);
                        }
                        // Arguments evaluate while earlier guards in this
                        // statement are held. A guard acquired *inside* a
                        // non-adapter call's arguments (`op(&mut q.lock())`)
                        // is a temporary of the enclosing statement — it
                        // never flows into the call's value, so demote it
                        // to non-escaping. Adapter calls (`.map(|p|
                        // p.lock())`) pass their closure's value through.
                        let before = st.frames.last().map_or(0, Vec::len);
                        self.walk_expr(&g.inner, st, false);
                        if !is_guard_adapter(id) {
                            if let Some(f) = st.frames.last_mut() {
                                for entry in f.iter_mut().skip(before) {
                                    entry.1 = false;
                                }
                            }
                        }
                        i += 2;
                        continue;
                    }
                    // Struct literal heuristic: `UpperIdent { … }` not
                    // preceded by a keyword that introduces a block.
                    if g.delim == '{' && is_struct_literal_head(tts, i) {
                        self.walk_expr(&g.inner, st, true);
                        i += 2;
                        continue;
                    }
                }
                i += 1;
                continue;
            }
            if let Tt::Group(g) = t {
                match g.delim {
                    '{' => self.walk_block(&g.inner, st),
                    // Parens/brackets: same statement, same literal
                    // context (covers `Mutex::new(VecDeque::new())`
                    // nested inside a field initializer).
                    _ => self.walk_expr(&g.inner, st, in_struct_literal),
                }
            }
            i += 1;
        }
    }

    fn record_acquisition(&mut self, line: usize, recv: String, st: &mut FnState, escapes: bool) {
        let class = self.registry.classify(self.path, &recv).map(str::to_string);
        let held = st.held();
        if let Some(c) = &class {
            st.acquire(c, escapes);
        }
        self.facts.acquisitions.push(Acquisition { line, recv, class, held, in_test: st.in_test });
    }

    fn record_call(&mut self, line: usize, name: String, st: &mut FnState, escapes: bool) {
        let held = st.held();
        if let Some(sums) = self.summaries {
            // Second pass: a call to a guard-returning helper is an
            // acquisition at the call site.
            if let Some(tail) = sums.tail.get(&name) {
                if !tail.is_empty() {
                    for c in tail {
                        st.acquire(c, escapes);
                    }
                    self.facts.acquisitions.push(Acquisition {
                        line,
                        recv: format!("{name}()"),
                        class: tail.first().cloned(),
                        held: held.clone(),
                        in_test: st.in_test,
                    });
                }
            }
        }
        if !st.def.calls.contains(&name) {
            st.def.calls.push(name.clone());
        }
        self.facts.calls.push(CallSite { line, name, held, in_test: st.in_test });
    }

    fn record_unsafe(&mut self, line: usize, in_test: bool) {
        let has_safety = self.adjacent_comment_contains(line, "SAFETY");
        self.facts.unsafe_sites.push(UnsafeSite { line, has_safety, in_test });
    }

    /// Detect a tracked collection construction headed at `tts[i]`.
    fn collection_at(
        &self,
        tts: &[Tt],
        i: usize,
        st: &FnState,
        in_struct_literal: bool,
    ) -> Option<CollectionSite> {
        let head = tts[i].ident()?;
        // `mpsc::channel()` — unbounded; `sync_channel` does not match.
        if head == "channel" && path_sep_before(tts, i) && prev_path_seg(tts, i) == Some("mpsc") {
            tts.get(i + 1)?.group().filter(|g| g.delim == '(')?;
            return Some(self.collection_site(
                tts[i].line(),
                "mpsc::channel",
                CollectionKind::QueueLike,
                in_struct_literal,
                st,
            ));
        }
        let kind = match head {
            "VecDeque" | "LinkedList" | "BinaryHeap" => CollectionKind::QueueLike,
            "Vec" | "HashMap" | "HashSet" | "BTreeMap" => CollectionKind::General,
            _ => return None,
        };
        // `Head::new()` or `Head::default()` (turbofish tolerated by
        // scanning forward over `::<…>` to the call group).
        let mut j = i + 1;
        if !(tts.get(j).is_some_and(|t| t.is_punct(':'))
            && tts.get(j + 1).is_some_and(|t| t.is_punct(':')))
        {
            return None;
        }
        j += 2;
        if tts.get(j).is_some_and(|t| t.is_punct('<')) {
            // `VecDeque::<u8>::new` — skip the generic args.
            let mut depth = 0i32;
            while j < tts.len() {
                if tts[j].is_punct('<') {
                    depth += 1;
                } else if tts[j].is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            if !(tts.get(j).is_some_and(|t| t.is_punct(':'))
                && tts.get(j + 1).is_some_and(|t| t.is_punct(':')))
            {
                return None;
            }
            j += 2;
        }
        let ctor = tts.get(j).and_then(|t| t.ident())?;
        if ctor != "new" && ctor != "default" {
            return None;
        }
        tts.get(j + 1)?.group().filter(|g| g.delim == '(')?;
        Some(self.collection_site(
            tts[i].line(),
            &format!("{head}::{ctor}"),
            kind,
            in_struct_literal,
            st,
        ))
    }

    fn collection_site(
        &self,
        line: usize,
        what: &str,
        kind: CollectionKind,
        in_struct_literal: bool,
        st: &FnState,
    ) -> CollectionSite {
        CollectionSite {
            line,
            what: what.to_string(),
            kind,
            in_struct_literal,
            has_bound: self.adjacent_comment_contains(line, "bounded-by:"),
            in_test: st.in_test,
        }
    }

    /// True when the comment on `line` itself or the contiguous comment
    /// block directly above it contains `needle`.
    fn adjacent_comment_contains(&self, line: usize, needle: &str) -> bool {
        if self.comments.get(&line).is_some_and(|c| c.contains(needle)) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l > 0 {
            match self.comments.get(&l) {
                Some(c) if c.contains(needle) => return true,
                Some(_) => l -= 1,
                None => break,
            }
        }
        false
    }
}

/// `#[…]` attribute is `cfg(… test …)`.
fn attr_is_test(inner: &[Tt]) -> bool {
    let Some(first) = inner.first().and_then(|t| t.ident()) else { return false };
    if first != "cfg" {
        return false;
    }
    fn contains_test(tts: &[Tt]) -> bool {
        tts.iter().any(|t| match t {
            Tt::Group(g) => contains_test(&g.inner),
            t => t.ident() == Some("test"),
        })
    }
    inner.iter().skip(1).any(|t| match t {
        Tt::Group(g) => contains_test(&g.inner),
        _ => false,
    })
}

/// Collect line spans of `#[cfg(test)]`-attributed items (attribute line
/// through the item's closing brace or `;`), recursing into non-test
/// bodies so nested test mods are found.
fn collect_test_spans(tts: &[Tt], spans: &mut Vec<(usize, usize)>) {
    let mut i = 0;
    while i < tts.len() {
        if tts[i].is_punct('#') {
            if let Some(Tt::Group(attr)) = tts.get(i + 1) {
                if attr.delim == '[' && attr_is_test(&attr.inner) {
                    let start = tts[i].line();
                    let mut end = attr.close_line;
                    let mut j = i + 2;
                    while j < tts.len() {
                        match &tts[j] {
                            t if t.is_punct(';') => {
                                end = end.max(t.line());
                                break;
                            }
                            Tt::Group(g) if g.delim == '{' => {
                                end = end.max(g.close_line);
                                break;
                            }
                            t => {
                                end = end.max(t.line());
                                j += 1;
                            }
                        }
                    }
                    spans.push((start, end));
                    i = j + 1;
                    continue;
                }
            }
        }
        if let Tt::Group(g) = &tts[i] {
            collect_test_spans(&g.inner, spans);
        }
        i += 1;
    }
}

fn in_spans(spans: &[(usize, usize)], line: usize) -> bool {
    spans.iter().any(|(a, b)| line >= *a && line <= *b)
}

/// Normalize the receiver expression ending at the `.` at `dot`:
/// `shared.queues [shard] . lock` → `shared.queues[_]`.
fn normalize_recv(tts: &[Tt], dot: usize) -> String {
    // Walk backwards collecting path elements.
    let mut parts: Vec<String> = Vec::new();
    let mut i = dot; // tts[dot] is the `.`
    while i > 0 {
        let prev = &tts[i - 1];
        match prev {
            Tt::Leaf(Token { tok: Tok::Ident(s), .. }) => {
                parts.push(s.clone());
                i -= 1;
                // Keep going only across `.` / `::`.
                if i > 0 && tts[i - 1].is_punct('.') {
                    parts.push(".".into());
                    i -= 1;
                } else if i > 1 && tts[i - 1].is_punct(':') && tts[i - 2].is_punct(':') {
                    parts.push("::".into());
                    i -= 2;
                } else {
                    break;
                }
            }
            Tt::Group(g) if g.delim == '[' => {
                parts.push("[_]".into());
                i -= 1;
            }
            Tt::Group(g) if g.delim == '(' => {
                parts.push("(..)".into());
                i -= 1;
            }
            _ => break,
        }
    }
    parts.reverse();
    parts.concat()
}

/// Adapters that pass a lock guard through unchanged (poison handling,
/// option/result plumbing). Any other trailing method consumes the guard
/// — the chain's value is derived data, not the guard itself.
fn is_guard_adapter(name: &str) -> bool {
    matches!(
        name,
        "unwrap"
            | "expect"
            | "unwrap_or_else"
            | "unwrap_or"
            | "unwrap_or_default"
            | "into_inner"
            | "ok"
            | "map"
            | "and_then"
    )
}

/// Does the value of the call whose argument group sits at `tts[args]`
/// escape the call chain as a guard? True when the chain ends (possibly
/// through guard adapters and `?`); false when a non-adapter method or a
/// field access consumes it.
fn escapes_after(tts: &[Tt], args: usize) -> bool {
    let mut j = args + 1;
    loop {
        if tts.get(j).is_some_and(|t| t.is_punct('?')) {
            j += 1;
            continue;
        }
        if !tts.get(j).is_some_and(|t| t.is_punct('.')) {
            return true; // chain ends here: the guard is the value
        }
        let Some(name) = tts.get(j + 1).and_then(|t| t.ident()) else {
            return false; // `.0` tuple access etc. — derived data
        };
        match tts.get(j + 2).and_then(|t| t.group()) {
            Some(g) if g.delim == '(' && is_guard_adapter(name) => j += 3,
            _ => return false, // field access or non-adapter method
        }
    }
}

/// `tts[i]` is preceded by `::`.
fn path_sep_before(tts: &[Tt], i: usize) -> bool {
    i >= 2 && tts[i - 1].is_punct(':') && tts[i - 2].is_punct(':')
}

fn prev_path_seg(tts: &[Tt], i: usize) -> Option<&str> {
    if path_sep_before(tts, i) && i >= 3 {
        tts[i - 3].ident()
    } else {
        None
    }
}

/// `tts[i]` is an ident directly before a `{` group: is it a struct
/// literal head (vs `match x {`, `for x in y {`, …)?
fn is_struct_literal_head(tts: &[Tt], i: usize) -> bool {
    let Some(id) = tts[i].ident() else { return false };
    if !id.chars().next().is_some_and(|c| c.is_uppercase()) {
        return false;
    }
    // Find the start of the path this ident ends (`a::b::Ident`).
    let mut start = i;
    while start >= 2 && tts[start - 1].is_punct(':') && tts[start - 2].is_punct(':') {
        if tts[start - 3..start - 2].first().and_then(|t| t.ident()).is_some() {
            start -= 3;
        } else {
            break;
        }
    }
    // The token before the path must be an expression position, not a
    // block-introducing keyword or item keyword.
    if start == 0 {
        return true;
    }
    !matches!(
        tts[start - 1].ident(),
        Some(
            "match"
                | "for"
                | "while"
                | "if"
                | "in"
                | "impl"
                | "struct"
                | "enum"
                | "union"
                | "trait"
                | "mod"
                | "fn"
                | "dyn"
                | "loop"
        )
    )
}

/// Token-level scans for the re-implemented lexical rules. These run on
/// the flat stream (path sequences cross group boundaries in `use`
/// declarations), with `#[cfg(test)]` spans masked per line.
fn flat_scans(tokens: &[Token], test_spans: &[(usize, usize)], facts: &mut FileFacts) {
    let toks: Vec<&Token> = tokens.iter().filter(|t| !matches!(t.tok, Tok::Comment(_))).collect();
    let site = |line: usize| Site { line, in_test: in_spans(test_spans, line) };
    let ident = |i: usize| -> Option<&str> {
        match toks.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s),
            _ => None,
        }
    };
    let punct =
        |i: usize, c: char| matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c);
    let open =
        |i: usize, c: char| matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Open(p)) if *p == c);

    let mut i = 0;
    while i < toks.len() {
        let line = toks[i].line;
        // `.unwrap()` / `.expect(` — method position only.
        if punct(i, '.') {
            if let Some(name) = ident(i + 1) {
                if (name == "unwrap" || name == "expect") && open(i + 2, '(') {
                    facts.unwraps.push(site(toks[i + 1].line));
                }
            }
        }
        // `std::sync::…` / `core::sync::atomic`.
        if let Some(head) = ident(i) {
            if (head == "std" || head == "core")
                && punct(i + 1, ':')
                && punct(i + 2, ':')
                && ident(i + 3) == Some("sync")
            {
                // `…::atomic`?
                if punct(i + 4, ':') && punct(i + 5, ':') && ident(i + 6) == Some("atomic") {
                    facts.atomic_names.push(site(line));
                } else if head == "std" {
                    // Scan the rest of the path (direct segment or a
                    // `{…}` use-group) for lock primitives.
                    let mut found = false;
                    if punct(i + 4, ':') && punct(i + 5, ':') {
                        match toks.get(i + 6).map(|t| &t.tok) {
                            Some(Tok::Ident(seg)) => found = is_lock_primitive(seg),
                            Some(Tok::Open('{')) => {
                                let mut j = i + 7;
                                let mut depth = 1;
                                while j < toks.len() && depth > 0 {
                                    match &toks[j].tok {
                                        Tok::Open('{') => depth += 1,
                                        Tok::Close('}') => depth -= 1,
                                        Tok::Ident(seg) if is_lock_primitive(seg) => found = true,
                                        _ => {}
                                    }
                                    j += 1;
                                }
                            }
                            _ => {}
                        }
                    }
                    if found {
                        facts.mutex_names.push(site(line));
                    }
                }
            }
            // `Instant::now`.
            if head == "Instant"
                && punct(i + 1, ':')
                && punct(i + 2, ':')
                && ident(i + 3) == Some("now")
            {
                facts.instant_sites.push(site(line));
            }
            // `debug_assert*!(…)` arity.
            if let Some(needs) = match head {
                "debug_assert" => Some(1),
                "debug_assert_eq" | "debug_assert_ne" => Some(2),
                _ => None,
            } {
                if punct(i + 1, '!') && open(i + 2, '(') {
                    let mut depth = 1;
                    let mut commas_with_tail = 0;
                    let mut j = i + 3;
                    let mut pending_comma = false;
                    while j < toks.len() && depth > 0 {
                        match &toks[j].tok {
                            Tok::Open(_) => {
                                depth += 1;
                                pending_comma = false;
                            }
                            Tok::Close(_) => {
                                depth -= 1;
                            }
                            Tok::Punct(',') if depth == 1 => pending_comma = true,
                            _ => {
                                if pending_comma && depth == 1 {
                                    commas_with_tail += 1;
                                    pending_comma = false;
                                }
                            }
                        }
                        j += 1;
                    }
                    if commas_with_tail < needs {
                        facts.asserts_without_message.push(site(line));
                    }
                }
            }
        }
        i += 1;
    }
}

fn is_lock_primitive(seg: &str) -> bool {
    matches!(
        seg,
        "Mutex" | "MutexGuard" | "Condvar" | "RwLock" | "RwLockReadGuard" | "RwLockWriteGuard"
    )
}

/// Build global function summaries from first-pass facts. A name has a
/// summary only when every definition of that name agrees on its
/// **transitively closed** class set — agreement on lexical sets alone
/// is not enough, because two same-name methods (`program` on the FTL vs
/// on the NAND array) can both acquire nothing directly yet reach
/// different locks through calls. An ambiguous name contributes no
/// interprocedural edges; direct `.lock()` sites are still classified
/// per-site.
pub fn build_summaries(all: &[FileFacts]) -> (Summaries, Vec<String>) {
    // name → per-definition (direct, tail, calls)
    let mut defs: BTreeMap<String, Vec<&FnDef>> = BTreeMap::new();
    for f in all {
        for d in &f.fns {
            defs.entry(d.name.clone()).or_default().push(d);
        }
    }
    let norm = |mut s: Vec<String>| -> Vec<String> {
        s.sort();
        s.dedup();
        s
    };
    let agree = |sets: Vec<Vec<String>>| -> Option<Vec<String>> {
        let mut sets: Vec<Vec<String>> = sets.into_iter().map(&norm).collect();
        let first = sets.pop()?;
        sets.iter().all(|s| *s == first).then_some(first)
    };

    // Tail summaries (guard-returning helpers) come straight from lexical
    // tails; disagreeing definitions contribute nothing.
    let mut tail: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (name, ds) in &defs {
        if let Some(t) = agree(ds.iter().map(|d| d.tail.clone()).collect()) {
            if !t.is_empty() {
                tail.insert(name.clone(), t);
            }
        }
    }

    // Per-definition transitive closure, then cross-definition agreement.
    // Callees resolve only through names that are currently unambiguous;
    // names flip to ambiguous as their defs' closures diverge, so iterate
    // to a fixed point (bounded — each flip is permanent).
    let mut ambiguous: BTreeSet<String> = BTreeSet::new();
    let mut full: BTreeMap<String, Vec<String>> = BTreeMap::new();
    loop {
        let mut next: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut newly_ambiguous: Vec<String> = Vec::new();
        for (name, ds) in &defs {
            if ambiguous.contains(name) {
                continue;
            }
            let mut per_def: Vec<Vec<String>> = Vec::with_capacity(ds.len());
            for d in ds {
                let mut acc = d.direct.clone();
                for callee in &d.calls {
                    if ambiguous.contains(callee) {
                        continue;
                    }
                    if let Some(extra) = full.get(callee.as_str()) {
                        acc.extend(extra.iter().cloned());
                    }
                }
                per_def.push(acc);
            }
            match agree(per_def) {
                Some(closed) => {
                    next.insert(name.clone(), closed);
                }
                None => newly_ambiguous.push(name.clone()),
            }
        }
        let stable = next == full && newly_ambiguous.is_empty();
        full = next;
        for n in newly_ambiguous {
            ambiguous.insert(n);
        }
        if stable {
            break;
        }
    }
    // A name that is ambiguous for `full` cannot lend its tail either —
    // its definitions demonstrably do different things.
    tail.retain(|name, _| !ambiguous.contains(name));
    // Drop empty summaries (functions that acquire nothing).
    full.retain(|_, v| !v.is_empty());
    let ambiguous: Vec<String> = ambiguous.into_iter().collect();
    (Summaries { full, tail }, ambiguous)
}
