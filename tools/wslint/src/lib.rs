//! wslint: syntax-aware workspace analyzer for the KVSSD codebase.
//!
//! Two passes over every workspace member discovered from the root
//! `Cargo.toml`:
//!
//! 1. **Facts** ([`facts`]): lex + token-tree walk per file, producing
//!    lock acquisition sites (with lexically-held guard classes),
//!    function summaries, `unsafe` sites with `// SAFETY:` status, and
//!    unbounded-collection constructions. Function summaries are closed
//!    over calls, then a second walk treats calls to guard-returning
//!    helpers (`pool.gc_permit()`, `self.lock_queue()`) as acquisitions.
//! 2. **Rules** ([`rules`]): the workspace lock-order graph is checked
//!    against the declared partial order in `lock_order.toml`; contract
//!    and policy rules run per crate according to `wslint.toml`.
//!
//! Findings carry content-hash fingerprints ([`report`]) so the
//! allowlist survives rebases, and serialize to JSON and SARIF 2.1.0.

pub mod config;
pub mod facts;
pub mod lexer;
pub mod registry;
pub mod report;
pub mod rules;
pub mod toml_lite;
pub mod tree;

use std::fs;
use std::path::Path;

use config::{discover_members, file_kind, Config};
use registry::Registry;
use report::{assign_fingerprints, Finding};
use rules::FileCtx;

pub struct Analysis {
    /// All findings, fingerprinted, before the allowlist is applied.
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    pub classes: usize,
    pub edges: usize,
    /// Function names whose workspace definitions disagree on acquired
    /// classes (they contribute no interprocedural edges — diagnostic).
    pub ambiguous: Vec<String>,
}

pub fn run_analysis(
    root: &Path,
    config_path: &Path,
    lock_order_path: &Path,
) -> Result<Analysis, String> {
    let config = Config::load(root, config_path)?;
    let mut registry = Registry::load(lock_order_path)?;
    // Anchor config-level findings at a root-relative path when possible
    // (matches every other finding path and keeps fingerprints stable
    // across checkouts).
    if let Ok(rel) = lock_order_path.strip_prefix(root) {
        registry.display_path = rel.to_string_lossy().replace('\\', "/");
    }
    let members = discover_members(root)?;

    let mut findings: Vec<Finding> = Vec::new();
    // (member dir, rel path, source, kind, policy)
    let mut sources: Vec<(String, String, config::CratePolicy)> = Vec::new();
    for member in &members {
        let Some(policy) = config.crates.get(&member.dir) else {
            let manifest = if member.dir == "." {
                "Cargo.toml".to_string()
            } else {
                format!("{}/Cargo.toml", member.dir)
            };
            findings.push(Finding::new(
                "crate-unclassified",
                &manifest,
                1,
                format!(
                    "workspace member `{}` has no [crates.\"{}\"] policy in wslint.toml; \
                     every member must opt in or out of each rule explicitly",
                    member.dir, member.dir
                ),
                &[],
            ));
            continue;
        };
        if policy.skip {
            continue;
        }
        for file in &member.files {
            sources.push((member.dir.clone(), file.clone(), policy.clone()));
        }
    }

    // Pass 1a: per-file facts, for function summaries only.
    let mut texts: Vec<String> = Vec::with_capacity(sources.len());
    let mut first: Vec<facts::FileFacts> = Vec::with_capacity(sources.len());
    for (_, file, _) in &sources {
        let text =
            fs::read_to_string(root.join(file)).map_err(|e| format!("cannot read {file}: {e}"))?;
        first.push(facts::extract(file, &text, &registry, None));
        texts.push(text);
    }
    let (summaries, ambiguous) = facts::build_summaries(&first);
    drop(first);

    // Pass 1b: re-extract with summaries, so guard-returning helper calls
    // count as acquisitions at the call site.
    let mut files: Vec<FileCtx> = Vec::with_capacity(sources.len());
    for ((member_dir, file, policy), text) in sources.iter().zip(&texts) {
        files.push(FileCtx {
            facts: facts::extract(file, text, &registry, Some(&summaries)),
            kind: file_kind(member_dir, file),
            policy: policy.clone(),
        });
    }

    // Pass 2: rules.
    findings.extend(rules::evaluate(&config, &registry, &files, &summaries));
    assign_fingerprints(&mut findings);
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    Ok(Analysis {
        findings,
        files_scanned: files.len(),
        classes: registry.classes.len(),
        edges: registry.edges.len(),
        ambiguous,
    })
}
