//! Findings, stable fingerprints, the allowlist, and JSON/SARIF output.
//!
//! A finding's fingerprint is `fnv64(rule ⊕ path ⊕ normalized excerpt ⊕
//! occurrence-index)` — content-addressed, no line numbers — so an
//! allowlist entry survives rebases, reformats and unrelated edits to
//! the same file. The occurrence index disambiguates identical lines in
//! one file (each entry excuses exactly one occurrence, as before).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    /// Human message (what is wrong, and how to satisfy the rule).
    pub message: String,
    /// Trimmed source line, capped, for display and fingerprinting.
    pub excerpt: String,
    /// Filled by [`assign_fingerprints`].
    pub fingerprint: String,
}

impl Finding {
    pub fn new(
        rule: &'static str,
        path: &str,
        line: usize,
        message: String,
        lines: &[String],
    ) -> Finding {
        let excerpt: String =
            lines.get(line.saturating_sub(1)).map_or("", |l| l.trim()).chars().take(160).collect();
        Finding { rule, path: path.to_string(), line, message, excerpt, fingerprint: String::new() }
    }
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv64(parts: &[&str]) -> u64 {
    let mut h = FNV_OFFSET;
    for part in parts {
        for b in part.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        // Separator byte so ("ab","c") ≠ ("a","bc").
        h ^= 0x1f;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Whitespace-insensitive excerpt normalization: a reformat must not
/// rotate the allowlist.
fn normalize(excerpt: &str) -> String {
    let mut out = String::with_capacity(excerpt.len());
    let mut last_space = true;
    for c in excerpt.chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.push(c);
            last_space = false;
        }
    }
    out.trim_end().to_string()
}

/// Assign content-hash fingerprints, numbering identical (rule, path,
/// excerpt) occurrences in file order.
pub fn assign_fingerprints(findings: &mut [Finding]) {
    let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    // Number occurrences in (path, line) order so the index is stable
    // against discovery-order changes.
    let mut order: Vec<usize> = (0..findings.len()).collect();
    order.sort_by(|&a, &b| {
        (&findings[a].path, findings[a].line).cmp(&(&findings[b].path, findings[b].line))
    });
    for idx in order {
        let f = &findings[idx];
        let key = (f.rule.to_string(), f.path.clone(), normalize(&f.excerpt));
        let n = counts.entry(key.clone()).or_insert(0);
        let fp = fnv64(&[f.rule, &f.path, &key.2, &n.to_string()]);
        findings[idx].fingerprint = format!("{fp:016x}");
        *n += 1;
    }
}

/// Allowlist: `rule<TAB>path<TAB>fingerprint<TAB>excerpt` (excerpt is
/// informational). Legacy v1 lines (`rule<TAB>path<TAB>excerpt`) are
/// detected so the tool can demand `--migrate-allowlist` instead of
/// silently ignoring them.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// (rule, path, fingerprint) → remaining count.
    entries: BTreeMap<(String, String, String), usize>,
    pub legacy_lines: Vec<String>,
}

impl Allowlist {
    pub fn load(path: &Path) -> Allowlist {
        let mut out = Allowlist::default();
        let Ok(text) = fs::read_to_string(path) else { return out };
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            let is_fp = |s: &str| s.len() == 16 && s.bytes().all(|b| b.is_ascii_hexdigit());
            match fields.as_slice() {
                [rule, p, fp, ..] if is_fp(fp) => {
                    *out.entries
                        .entry((rule.to_string(), p.to_string(), fp.to_string()))
                        .or_insert(0) += 1;
                }
                _ => out.legacy_lines.push(line.to_string()),
            }
        }
        out
    }

    /// Partition findings into (violations, allowed); leftover entries
    /// are stale.
    pub fn apply(mut self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>, Vec<String>) {
        let mut violations = Vec::new();
        let mut allowed = Vec::new();
        for f in findings {
            let key = (f.rule.to_string(), f.path.clone(), f.fingerprint.clone());
            match self.entries.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    allowed.push(f);
                }
                _ => violations.push(f),
            }
        }
        let stale = self
            .entries
            .iter()
            .filter(|(_, n)| **n > 0)
            .map(|((rule, path, fp), n)| format!("(×{n}) {rule}\t{path}\t{fp}"))
            .collect();
        (violations, allowed, stale)
    }

    /// Rewrite legacy `rule\tpath\texcerpt` entries as fingerprint
    /// entries by matching them against current findings. Returns the
    /// new file text and the legacy lines that no longer match anything
    /// (dropped, reported to the caller).
    pub fn migrate(legacy_lines: &[String], findings: &[Finding]) -> (String, Vec<String>) {
        // (rule, path, normalized excerpt) → fingerprints in occurrence order.
        let mut pool: BTreeMap<(String, String, String), Vec<String>> = BTreeMap::new();
        let mut ordered: Vec<&Finding> = findings.iter().collect();
        ordered.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
        for f in ordered {
            pool.entry((f.rule.to_string(), f.path.clone(), normalize(&f.excerpt)))
                .or_default()
                .push(f.fingerprint.clone());
        }
        let mut out = String::from(
            "# wslint allowlist — vetted findings only; this file only ever shrinks.\n\
             # Format: <rule>\\t<path>\\t<fingerprint>\\t<excerpt>. The fingerprint is a\n\
             # content hash (rule + path + normalized source line + occurrence index),\n\
             # so entries survive rebases; `--migrate-allowlist` regenerates from the\n\
             # legacy line-text format. The excerpt column is informational.\n",
        );
        let mut dropped = Vec::new();
        for line in legacy_lines {
            let mut parts = line.splitn(3, '\t');
            let (Some(rule), Some(path), Some(excerpt)) =
                (parts.next(), parts.next(), parts.next())
            else {
                dropped.push(line.clone());
                continue;
            };
            let key = (rule.to_string(), path.to_string(), normalize(excerpt));
            match pool.get_mut(&key).and_then(|v| (!v.is_empty()).then(|| v.remove(0))) {
                Some(fp) => {
                    let _ = writeln!(out, "{rule}\t{path}\t{fp}\t{}", normalize(excerpt));
                }
                None => dropped.push(line.clone()),
            }
        }
        (out, dropped)
    }

    /// Render current findings in allowlist format (for vetting).
    pub fn render(findings: &[Finding]) -> String {
        let mut out = String::new();
        for f in findings {
            let _ = writeln!(
                out,
                "{}\t{}\t{}\t{}",
                f.rule,
                f.path,
                f.fingerprint,
                normalize(&f.excerpt)
            );
        }
        out
    }
}

// ------------------------------------------------------------- JSON out

pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable findings report.
pub fn to_json(findings: &[Finding], files_scanned: usize, classes: usize, edges: usize) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"tool\": \"wslint\",");
    let _ = writeln!(out, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(out, "  \"lock_classes\": {classes},");
    let _ = writeln!(out, "  \"lock_edges\": {edges},");
    out.push_str("  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 == findings.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"fingerprint\": \"{}\", \"message\": \"{}\", \"excerpt\": \"{}\"}}{comma}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.fingerprint),
            json_escape(&f.message),
            json_escape(&f.excerpt),
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// SARIF 2.1.0 (the subset GitHub code scanning ingests): one run, one
/// driver, per-rule metadata, results with physical locations and the
/// stable fingerprint under `partialFingerprints`.
pub fn to_sarif(findings: &[Finding], rule_ids: &[&str]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n          \"name\": \"wslint\",\n");
    out.push_str("          \"informationUri\": \"tools/wslint\",\n          \"rules\": [\n");
    for (i, id) in rule_ids.iter().enumerate() {
        let comma = if i + 1 == rule_ids.len() { "" } else { "," };
        let _ = writeln!(out, "            {{\"id\": \"{}\"}}{comma}", json_escape(id));
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 == findings.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "        {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}], \"partialFingerprints\": {{\"wslint/v1\": \"{}\"}}}}{comma}",
            json_escape(f.rule),
            json_escape(&f.message),
            json_escape(&f.path),
            f.line,
            json_escape(&f.fingerprint),
        );
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

// ------------------------------------------------ JSON value (round-trip)

/// A minimal JSON value + parser, used by the fixture tests (and CI) to
/// prove the JSON/SARIF reports round-trip. The in-tree `serde_json`
/// shim only serializes, so the parser lives here.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn str_val(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

pub fn parse_json(text: &str) -> Result<Json, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0;
    let v = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing data at {pos}"));
    }
    Ok(v)
}

fn skip_ws(c: &[char], pos: &mut usize) {
    while *pos < c.len() && c[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn parse_value(c: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(c, pos);
    match c.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            loop {
                skip_ws(c, pos);
                if c.get(*pos) == Some(&'}') {
                    *pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                let Json::Str(key) = parse_value(c, pos)? else {
                    return Err(format!("object key must be string at {pos}"));
                };
                skip_ws(c, pos);
                if c.get(*pos) != Some(&':') {
                    return Err(format!("expected ':' at {pos}"));
                }
                *pos += 1;
                pairs.push((key, parse_value(c, pos)?));
                skip_ws(c, pos);
                match c.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {}
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            loop {
                skip_ws(c, pos);
                if c.get(*pos) == Some(&']') {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                items.push(parse_value(c, pos)?);
                skip_ws(c, pos);
                match c.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {}
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
        }
        Some('"') => {
            *pos += 1;
            let mut s = String::new();
            while *pos < c.len() {
                match c[*pos] {
                    '"' => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    '\\' => {
                        *pos += 1;
                        match c.get(*pos) {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('r') => s.push('\r'),
                            Some('u') => {
                                let hex: String = c[*pos + 1..*pos + 5].iter().collect();
                                let code = u32::from_str_radix(&hex, 16)
                                    .map_err(|e| format!("bad \\u escape: {e}"))?;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            Some(other) => s.push(*other),
                            None => return Err("unterminated escape".into()),
                        }
                        *pos += 1;
                    }
                    other => {
                        s.push(other);
                        *pos += 1;
                    }
                }
            }
            Err("unterminated string".into())
        }
        Some('t') if c[*pos..].starts_with(&['t', 'r', 'u', 'e']) => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some('f') if c[*pos..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some('n') if c[*pos..].starts_with(&['n', 'u', 'l', 'l']) => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(d) if d.is_ascii_digit() || *d == '-' => {
            let start = *pos;
            *pos += 1;
            while *pos < c.len()
                && (c[*pos].is_ascii_digit() || matches!(c[*pos], '.' | 'e' | 'E' | '+' | '-'))
            {
                *pos += 1;
            }
            let text: String = c[start..*pos].iter().collect();
            text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number {text}: {e}"))
        }
        other => Err(format!("unexpected {other:?} at {pos}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line: usize, excerpt: &str) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line,
            message: "m".into(),
            excerpt: excerpt.into(),
            fingerprint: String::new(),
        }
    }

    #[test]
    fn fingerprints_ignore_line_numbers_and_whitespace() {
        let mut a = vec![finding("r", "f.rs", 10, "let x =  q.pop();")];
        let mut b = vec![finding("r", "f.rs", 99, "let x = q.pop();")];
        assign_fingerprints(&mut a);
        assign_fingerprints(&mut b);
        assert_eq!(
            a[0].fingerprint, b[0].fingerprint,
            "moving/reformatting a line must not rotate the fingerprint"
        );
    }

    #[test]
    fn duplicate_lines_get_distinct_fingerprints() {
        let mut fs = vec![finding("r", "f.rs", 1, "x.lock()"), finding("r", "f.rs", 5, "x.lock()")];
        assign_fingerprints(&mut fs);
        assert_ne!(fs[0].fingerprint, fs[1].fingerprint);
    }

    #[test]
    fn json_round_trips() {
        let mut fs = vec![finding("rule-a", "a \"b\".rs", 3, "weird \\ excerpt\t")];
        assign_fingerprints(&mut fs);
        let text = to_json(&fs, 7, 4, 9);
        let v = parse_json(&text).expect("valid JSON");
        let list = v.get("findings").unwrap().arr().unwrap();
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].get("rule").unwrap().str_val(), Some("rule-a"));
        assert_eq!(list[0].get("path").unwrap().str_val(), Some("a \"b\".rs"));
        assert_eq!(v.get("lock_classes").unwrap().num(), Some(4.0));
    }

    #[test]
    fn sarif_round_trips_with_locations() {
        let mut fs = vec![finding("lock-order-cycle", "crates/x/src/lib.rs", 42, "q.lock()")];
        assign_fingerprints(&mut fs);
        let text = to_sarif(&fs, &["lock-order-cycle", "unwrap-in-lib"]);
        let v = parse_json(&text).expect("valid SARIF JSON");
        let runs = v.get("runs").unwrap().arr().unwrap();
        let results = runs[0].get("results").unwrap().arr().unwrap();
        let loc =
            results[0].get("locations").unwrap().arr().unwrap()[0].get("physicalLocation").unwrap();
        assert_eq!(
            loc.get("artifactLocation").unwrap().get("uri").unwrap().str_val(),
            Some("crates/x/src/lib.rs")
        );
        assert_eq!(loc.get("region").unwrap().get("startLine").unwrap().num(), Some(42.0));
    }

    #[test]
    fn migration_matches_legacy_excerpts_and_reports_dropped() {
        let mut fs = vec![
            finding("unwrap-in-lib", "crates/a/src/l.rs", 3, "x.expect(\"checked\")"),
            finding("unwrap-in-lib", "crates/a/src/l.rs", 9, "x.expect(\"checked\")"),
        ];
        assign_fingerprints(&mut fs);
        let legacy = vec![
            "unwrap-in-lib\tcrates/a/src/l.rs\tx.expect(\"checked\")".to_string(),
            "unwrap-in-lib\tcrates/a/src/l.rs\tx.expect(\"checked\")".to_string(),
            "unwrap-in-lib\tcrates/gone/src/l.rs\ty.unwrap()".to_string(),
        ];
        let (text, dropped) = Allowlist::migrate(&legacy, &fs);
        assert_eq!(dropped.len(), 1, "entry with no matching finding is dropped");
        let body: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(body.len(), 2);
        assert!(body[0].contains(&fs[0].fingerprint) || body[1].contains(&fs[0].fingerprint));
        assert!(body[0] != body[1], "two occurrences map to distinct fingerprints");
    }
}
