//! Token trees: the lexer's flat stream folded into nested delimiter
//! groups. This is the "syntax" in syntax-aware — rules walk scopes, not
//! lines, so guard lifetimes, test regions and struct literals have real
//! extents instead of brace-counting heuristics.

use crate::lexer::{lex, Tok, Token};

/// One node of a token tree.
#[derive(Debug, Clone)]
pub enum Tt {
    /// A leaf token (never `Open`/`Close`).
    Leaf(Token),
    /// A delimited group: `(…)`, `[…]` or `{…}`.
    Group(Group),
}

#[derive(Debug, Clone)]
pub struct Group {
    /// `'('`, `'['` or `'{'`.
    pub delim: char,
    pub open_line: usize,
    pub close_line: usize,
    pub inner: Vec<Tt>,
}

impl Tt {
    pub fn line(&self) -> usize {
        match self {
            Tt::Leaf(t) => t.line,
            Tt::Group(g) => g.open_line,
        }
    }

    /// The identifier text if this is an ident leaf.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tt::Leaf(Token { tok: Tok::Ident(s), .. }) => Some(s),
            _ => None,
        }
    }

    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tt::Leaf(Token { tok: Tok::Punct(p), .. }) if *p == c)
    }

    pub fn group(&self) -> Option<&Group> {
        match self {
            Tt::Group(g) => Some(g),
            _ => None,
        }
    }

    pub fn comment(&self) -> Option<&str> {
        match self {
            Tt::Leaf(Token { tok: Tok::Comment(s), .. }) => Some(s),
            _ => None,
        }
    }
}

/// Parse source text into a token tree. Imbalanced delimiters degrade
/// gracefully: a stray closer is dropped, an unclosed group runs to EOF.
pub fn parse(source: &str) -> Vec<Tt> {
    build(lex(source))
}

/// Fold an already-lexed stream into a tree (callers that also need the
/// flat stream lex once and share it).
pub fn build(toks: Vec<Token>) -> Vec<Tt> {
    let mut stack: Vec<Group> = Vec::new();
    let mut top: Vec<Tt> = Vec::new();
    for t in toks {
        match t.tok {
            Tok::Open(c) => {
                stack.push(Group {
                    delim: c,
                    open_line: t.line,
                    close_line: t.line,
                    inner: Vec::new(),
                });
            }
            Tok::Close(c) => {
                // Pop the innermost group whose delimiter matches; a
                // mismatched closer closes the innermost group anyway
                // (tolerant — real code balances).
                let _ = c;
                if let Some(mut g) = stack.pop() {
                    g.close_line = t.line;
                    let node = Tt::Group(g);
                    match stack.last_mut() {
                        Some(parent) => parent.inner.push(node),
                        None => top.push(node),
                    }
                }
            }
            _ => {
                let node = Tt::Leaf(t);
                match stack.last_mut() {
                    Some(parent) => parent.inner.push(node),
                    None => top.push(node),
                }
            }
        }
    }
    // Unclosed groups: attach them where they started.
    while let Some(g) = stack.pop() {
        let node = Tt::Group(g);
        match stack.last_mut() {
            Some(parent) => parent.inner.push(node),
            None => top.push(node),
        }
    }
    top
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_matches_delimiters() {
        let tts = parse("fn f() { a(b[c]); }");
        // fn, f, (), {}
        assert_eq!(tts.len(), 4);
        let body = tts[3].group().expect("fn body group");
        assert_eq!(body.delim, '{');
        let call = body.inner[1].group().expect("call arg group");
        assert_eq!(call.delim, '(');
        assert_eq!(call.inner[1].group().expect("index group").delim, '[');
    }

    #[test]
    fn group_lines_span_the_extent() {
        let tts = parse("{\na\nb\n}");
        let g = tts[0].group().unwrap();
        assert_eq!((g.open_line, g.close_line), (1, 4));
    }
}
