//! The lock-class registry: `tools/wslint/lock_order.toml`.
//!
//! Every lock acquisition site in library code must classify into a
//! declared *lock class* (an equivalence class of mutex instances that
//! share an ordering role — "any shard's DRR queue", "any tenant's op
//! bucket"). Classification is syntactic: a class lists
//! `(path-prefix, receiver-pattern)` rows; a `.lock()` site matches the
//! class whose path prefix covers the file and whose receiver pattern is
//! the longest prefix of the normalized receiver expression (indexes
//! normalized to `[_]`, call arguments to `(..)`). The declared partial
//! order is a set of `"a < b"` edges: holding `a` while acquiring `b` is
//! legal, the reverse is a finding.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use crate::toml_lite::{self, Value};

#[derive(Debug, Clone)]
pub struct LockClass {
    pub name: String,
    pub doc: String,
    /// (file path prefix, normalized receiver prefix). An empty receiver
    /// pattern matches any receiver in the covered files (single-class
    /// files declare one wildcard row).
    pub patterns: Vec<(String, String)>,
    /// Instances of this class are disjoint and acquired in a canonical
    /// (index) order, so holding two at once is vetted rather than a
    /// self-cycle finding.
    pub allow_self: bool,
}

#[derive(Debug, Default)]
pub struct Registry {
    pub classes: Vec<LockClass>,
    /// Declared order: (before, after) — `before` may be held while
    /// acquiring `after`.
    pub edges: Vec<(String, String)>,
    /// Where the registry was loaded from (for anchoring config-level
    /// findings); root-relative when the caller can make it so.
    pub display_path: String,
}

impl Registry {
    pub fn load(path: &Path) -> Result<Registry, String> {
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let doc = toml_lite::parse(&text)
            .map_err(|(line, msg)| format!("{}:{line}: {msg}", path.display()))?;

        let mut classes = Vec::new();
        for (section, entries) in &doc {
            let Some(name) = section.strip_prefix("classes.") else { continue };
            let mut class = LockClass {
                name: name.to_string(),
                doc: String::new(),
                patterns: Vec::new(),
                allow_self: false,
            };
            let mut paths: Vec<String> = Vec::new();
            let mut recvs: Vec<String> = Vec::new();
            for (k, v) in entries {
                match (k.as_str(), v) {
                    ("doc", Value::Str(s)) => class.doc = s.clone(),
                    ("paths", Value::List(l)) => paths = l.clone(),
                    ("recv", Value::List(l)) => recvs = l.clone(),
                    ("allow-self", Value::Bool(b)) => class.allow_self = *b,
                    (other, _) => {
                        return Err(format!(
                            "{}: unknown key `{other}` in [classes.{name}]",
                            path.display()
                        ))
                    }
                }
            }
            if paths.is_empty() {
                return Err(format!("{}: class {name} declares no paths", path.display()));
            }
            if recvs.is_empty() {
                recvs.push(String::new()); // wildcard receiver
            }
            for p in &paths {
                for r in &recvs {
                    class.patterns.push((p.clone(), r.clone()));
                }
            }
            classes.push(class);
        }

        let mut edges = Vec::new();
        for spec in toml_lite::get_list(&doc, "order", "edges").unwrap_or(&[]) {
            let Some((a, b)) = spec.split_once('<') else {
                return Err(format!("{}: order edge must be `a < b`: {spec}", path.display()));
            };
            let (a, b) = (a.trim().to_string(), b.trim().to_string());
            for side in [&a, &b] {
                if !classes.iter().any(|c| c.name == *side) {
                    return Err(format!(
                        "{}: order edge names undeclared class `{side}`",
                        path.display()
                    ));
                }
            }
            edges.push((a, b));
        }
        Ok(Registry { classes, edges, display_path: path.display().to_string() })
    }

    /// Classify an acquisition site: longest matching receiver pattern
    /// among classes whose path prefix covers `file`.
    pub fn classify(&self, file: &str, recv: &str) -> Option<&str> {
        let mut best: Option<(&str, usize)> = None;
        for class in &self.classes {
            for (path, pat) in &class.patterns {
                if !file.starts_with(path.as_str()) {
                    continue;
                }
                let matched = pat.is_empty()
                    || recv == pat
                    || recv.starts_with(&format!("{pat}."))
                    || recv.starts_with(&format!("{pat}["));
                if matched && best.is_none_or(|(_, len)| pat.len() >= len) {
                    best = Some((&class.name, pat.len()));
                }
            }
        }
        best.map(|(name, _)| name)
    }

    /// Transitive closure of the declared order: for each class, the set
    /// of classes reachable strictly after it.
    pub fn declared_closure(&self) -> BTreeMap<&str, Vec<&str>> {
        let mut succ: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (a, b) in &self.edges {
            succ.entry(a.as_str()).or_default().push(b.as_str());
        }
        let mut closure: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for class in &self.classes {
            let mut seen: Vec<&str> = Vec::new();
            let mut stack: Vec<&str> = vec![&class.name];
            while let Some(n) = stack.pop() {
                for next in succ.get(n).map(|v| v.as_slice()).unwrap_or(&[]) {
                    if !seen.contains(next) {
                        seen.push(next);
                        stack.push(next);
                    }
                }
            }
            closure.insert(&class.name, seen);
        }
        closure
    }
}
