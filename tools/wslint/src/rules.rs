//! Pass 2: rule evaluation over the fact base.
//!
//! Graph rules (`lock-order-*`) fold every classified acquisition and
//! every summary-bearing call into a workspace-wide lock-order graph and
//! check it against the declared partial order in `lock_order.toml`.
//! Scoped rules (`unwrap-in-lib`, `instant-off-sim-clock`, …) apply per
//! crate according to `wslint.toml` policy flags and per file according
//! to its [`FileKind`].

use std::collections::BTreeSet;

use crate::config::{Config, CratePolicy, FileKind};
use crate::facts::{CollectionKind, FileFacts, Summaries};
use crate::registry::Registry;
use crate::report::Finding;

/// Every rule the analyzer can emit, for SARIF driver metadata.
pub const RULE_IDS: &[&str] = &[
    "crate-unclassified",
    "lock-class-undeclared",
    "lock-order-cycle",
    "lock-order-contradiction",
    "lock-order-undeclared-edge",
    "lock-order-self-cycle",
    "unsafe-without-safety-comment",
    "unsafe-outside-sync",
    "unbounded-collection",
    "unwrap-in-lib",
    "std-mutex-outside-sync",
    "raw-atomic-outside-sync",
    "instant-off-sim-clock",
    "debug-assert-message",
];

/// One analyzed file with its policy context resolved.
pub struct FileCtx {
    pub facts: FileFacts,
    pub kind: FileKind,
    pub policy: CratePolicy,
}

/// An edge observed in code: `from` was held while `to` was acquired.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ObservedEdge {
    pub from: String,
    pub to: String,
    pub path: String,
    pub line: usize,
}

pub fn evaluate(
    config: &Config,
    registry: &Registry,
    files: &[FileCtx],
    summaries: &Summaries,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let lib_code = |f: &FileCtx| f.kind == FileKind::Lib;
    let allowed =
        |prefixes: &[String], path: &str| prefixes.iter().any(|p| path.starts_with(p.as_str()));

    // ---- lock classification + edge observation -------------------------
    let mut observed: BTreeSet<ObservedEdge> = BTreeSet::new();
    for f in files.iter().filter(|f| lib_code(f)) {
        for acq in f.facts.acquisitions.iter().filter(|a| !a.in_test) {
            match &acq.class {
                None => out.push(Finding::new(
                    "lock-class-undeclared",
                    &f.facts.path,
                    acq.line,
                    format!(
                        "lock acquisition on `{}` matches no class in lock_order.toml; \
                         add a [classes.*] row covering it",
                        acq.recv
                    ),
                    &f.facts.lines,
                )),
                Some(class) => {
                    for held in &acq.held {
                        observed.insert(ObservedEdge {
                            from: held.clone(),
                            to: class.clone(),
                            path: f.facts.path.clone(),
                            line: acq.line,
                        });
                    }
                }
            }
        }
        // Cross-function edges: a call made under guard to a function
        // whose summary says it acquires classes.
        for call in f.facts.calls.iter().filter(|c| !c.in_test && !c.held.is_empty()) {
            if let Some(acquires) = summaries.full.get(&call.name) {
                for to in acquires {
                    for from in &call.held {
                        observed.insert(ObservedEdge {
                            from: from.clone(),
                            to: to.clone(),
                            path: f.facts.path.clone(),
                            line: call.line,
                        });
                    }
                }
            }
        }
    }

    // ---- lock-order graph rules ----------------------------------------
    let closure = registry.declared_closure();
    let allow_self = |class: &str| registry.classes.iter().any(|c| c.name == class && c.allow_self);

    // The declared order itself must be a partial order (acyclic).
    if let Some(cycle) = find_cycle(&registry.edges) {
        out.push(Finding::new(
            "lock-order-cycle",
            &registry.display_path,
            1,
            format!("declared lock order contains a cycle: {}", cycle.join(" -> ")),
            &[],
        ));
    }

    // Edge-level dedup for findings: one finding per (from, to, path) —
    // the first site in the file is the anchor.
    let mut reported: BTreeSet<(String, String, String)> = BTreeSet::new();
    for e in &observed {
        if !reported.insert((e.from.clone(), e.to.clone(), e.path.clone())) {
            continue;
        }
        let lines = files
            .iter()
            .find(|f| f.facts.path == e.path)
            .map_or(&[][..], |f| f.facts.lines.as_slice());
        if e.from == e.to {
            if !allow_self(&e.from) {
                out.push(Finding::new(
                    "lock-order-self-cycle",
                    &e.path,
                    e.line,
                    format!(
                        "a `{}` guard is already held while acquiring another `{}`; \
                         declare `allow-self = true` for the class only if instances \
                         are disjoint and acquired in a canonical order",
                        e.from, e.to
                    ),
                    lines,
                ));
            }
            continue;
        }
        let declared_fwd = closure.get(e.from.as_str()).is_some_and(|s| s.contains(&e.to.as_str()));
        let declared_rev = closure.get(e.to.as_str()).is_some_and(|s| s.contains(&e.from.as_str()));
        if declared_fwd {
            continue; // edge agrees with the declared order
        }
        if declared_rev {
            out.push(Finding::new(
                "lock-order-contradiction",
                &e.path,
                e.line,
                format!(
                    "acquiring `{}` while holding `{}` contradicts the declared \
                     order `{} < {}` in lock_order.toml",
                    e.to, e.from, e.to, e.from
                ),
                lines,
            ));
        } else {
            out.push(Finding::new(
                "lock-order-undeclared-edge",
                &e.path,
                e.line,
                format!(
                    "acquiring `{}` while holding `{}` is not covered by the declared \
                     order; add `\"{} < {}\"` to [order] edges in lock_order.toml \
                     after vetting the nesting",
                    e.to, e.from, e.from, e.to
                ),
                lines,
            ));
        }
    }

    // A cycle formed by declared ∪ observed edges (each observed edge is
    // individually vetted above, but an ABBA pair across two files only
    // shows up here).
    let mut combined: Vec<(String, String)> = registry.edges.clone();
    for e in &observed {
        if e.from == e.to {
            continue;
        }
        // An edge whose reverse is declared was already reported as a
        // contradiction — adding it here would re-report the same pair
        // of sites as a two-node cycle.
        if closure.get(e.to.as_str()).is_some_and(|s| s.contains(&e.from.as_str())) {
            continue;
        }
        if !combined.iter().any(|(a, b)| *a == e.from && *b == e.to) {
            combined.push((e.from.clone(), e.to.clone()));
        }
    }
    if find_cycle(&registry.edges).is_none() {
        if let Some(cycle) = find_cycle(&combined) {
            // Anchor at an observed edge participating in the cycle.
            let anchor =
                observed.iter().find(|e| cycle.windows(2).any(|w| w[0] == e.from && w[1] == e.to));
            let (path, line, lines) = match anchor {
                Some(e) => (
                    e.path.clone(),
                    e.line,
                    files
                        .iter()
                        .find(|f| f.facts.path == e.path)
                        .map_or(&[][..], |f| f.facts.lines.as_slice()),
                ),
                None => (registry.display_path.clone(), 1, &[][..]),
            };
            out.push(Finding::new(
                "lock-order-cycle",
                &path,
                line,
                format!("observed acquisitions close a lock-order cycle: {}", cycle.join(" -> ")),
                lines,
            ));
        }
    }

    // ---- unsafe contracts ----------------------------------------------
    for f in files {
        for site in f.facts.unsafe_sites.iter().filter(|u| !u.in_test) {
            if f.kind == FileKind::Test {
                continue;
            }
            if !site.has_safety {
                out.push(Finding::new(
                    "unsafe-without-safety-comment",
                    &f.facts.path,
                    site.line,
                    "`unsafe` without an adjacent `// SAFETY:` comment stating the \
                     contract the caller upholds"
                        .to_string(),
                    &f.facts.lines,
                ));
            }
            if !allowed(&config.unsafe_allowed, &f.facts.path) {
                out.push(Finding::new(
                    "unsafe-outside-sync",
                    &f.facts.path,
                    site.line,
                    "`unsafe` outside the fenced sync layer; move the primitive into \
                     `ftl::sync` (or add the path to [allow] unsafe-code with review)"
                        .to_string(),
                    &f.facts.lines,
                ));
            }
        }
    }

    // ---- unbounded collections -----------------------------------------
    for f in files.iter().filter(|f| lib_code(f)) {
        for c in f.facts.collections.iter().filter(|c| !c.in_test && !c.has_bound) {
            let flagged = match c.kind {
                CollectionKind::QueueLike => true,
                CollectionKind::General => f.policy.long_lived_state && c.in_struct_literal,
            };
            if flagged {
                out.push(Finding::new(
                    "unbounded-collection",
                    &f.facts.path,
                    c.line,
                    format!(
                        "`{}` creates an unbounded collection{}; use a capacity at \
                         construction or state the growth invariant in an adjacent \
                         `// bounded-by:` comment",
                        c.what,
                        if c.in_struct_literal { " in long-lived struct state" } else { "" }
                    ),
                    &f.facts.lines,
                ));
            }
        }
    }

    // ---- scoped lexical rules ------------------------------------------
    for f in files {
        let lib = lib_code(f);
        if f.policy.panic_free && lib {
            for s in f.facts.unwraps.iter().filter(|s| !s.in_test) {
                out.push(Finding::new(
                    "unwrap-in-lib",
                    &f.facts.path,
                    s.line,
                    "`.unwrap()`/`.expect()` in panic-free library code; return an \
                     error or prove the invariant with a vetted allowlist entry"
                        .to_string(),
                    &f.facts.lines,
                ));
            }
        }
        if f.policy.sim_clock && lib {
            for s in f.facts.instant_sites.iter().filter(|s| !s.in_test) {
                out.push(Finding::new(
                    "instant-off-sim-clock",
                    &f.facts.path,
                    s.line,
                    "`Instant::now()` bypasses the simulation clock; take time from \
                     the clock abstraction"
                        .to_string(),
                    &f.facts.lines,
                ));
            }
        }
        if lib && !allowed(&config.mutex_allowed, &f.facts.path) {
            for s in f.facts.mutex_names.iter().filter(|s| !s.in_test) {
                out.push(Finding::new(
                    "std-mutex-outside-sync",
                    &f.facts.path,
                    s.line,
                    "`std::sync` lock primitive named outside the sync layer; use \
                     the `ftl::sync` wrappers"
                        .to_string(),
                    &f.facts.lines,
                ));
            }
        }
        if lib && !allowed(&config.atomic_allowed, &f.facts.path) {
            for s in f.facts.atomic_names.iter().filter(|s| !s.in_test) {
                out.push(Finding::new(
                    "raw-atomic-outside-sync",
                    &f.facts.path,
                    s.line,
                    "raw `std::sync::atomic` outside the sync layer; use the \
                     `ftl::sync` wrappers"
                        .to_string(),
                    &f.facts.lines,
                ));
            }
        }
        if lib {
            for s in f.facts.asserts_without_message.iter().filter(|s| !s.in_test) {
                out.push(Finding::new(
                    "debug-assert-message",
                    &f.facts.path,
                    s.line,
                    "`debug_assert!` without a message; state the violated invariant".to_string(),
                    &f.facts.lines,
                ));
            }
        }
    }

    out
}

/// Find one cycle in a directed edge list; returns the node path
/// `a -> b -> … -> a` if any.
pub fn find_cycle(edges: &[(String, String)]) -> Option<Vec<String>> {
    let nodes: BTreeSet<&str> = edges.iter().flat_map(|(a, b)| [a.as_str(), b.as_str()]).collect();
    let succ = |n: &str| {
        edges.iter().filter(move |(a, _)| a == n).map(|(_, b)| b.as_str()).collect::<Vec<_>>()
    };
    // DFS with colors: 0 unvisited, 1 on stack, 2 done.
    let mut color: std::collections::BTreeMap<&str, u8> = nodes.iter().map(|n| (*n, 0u8)).collect();
    fn dfs<'a>(
        n: &'a str,
        succ: &dyn Fn(&str) -> Vec<&'a str>,
        color: &mut std::collections::BTreeMap<&'a str, u8>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        color.insert(n, 1);
        stack.push(n);
        for next in succ(n) {
            match color.get(next).copied().unwrap_or(0) {
                0 => {
                    if let Some(c) = dfs(next, succ, color, stack) {
                        return Some(c);
                    }
                }
                1 => {
                    let start = stack.iter().position(|s| *s == next).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        stack[start..].iter().map(|s| s.to_string()).collect();
                    cycle.push(next.to_string());
                    return Some(cycle);
                }
                _ => {}
            }
        }
        stack.pop();
        color.insert(n, 2);
        None
    }
    for n in &nodes {
        if color.get(n).copied() == Some(0) {
            if let Some(c) = dfs(n, &succ, &mut color, &mut Vec::new()) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(a: &str, b: &str) -> (String, String) {
        (a.to_string(), b.to_string())
    }

    #[test]
    fn cycle_detection_finds_the_loop() {
        assert!(find_cycle(&[e("a", "b"), e("b", "c")]).is_none());
        let cycle = find_cycle(&[e("a", "b"), e("b", "c"), e("c", "a")]).expect("cycle");
        assert_eq!(cycle.len(), 4, "a -> b -> c -> a");
        assert_eq!(cycle.first(), cycle.last());
    }

    #[test]
    fn self_edge_is_a_cycle() {
        assert!(find_cycle(&[e("a", "a")]).is_some());
    }
}
