//! A TOML subset parser for the analyzer's two config files
//! (`wslint.toml`, `lock_order.toml`). Supports exactly what they use:
//! `[section]` / `[section."quoted.key"]` headers, `key = "string"`,
//! `key = true|false`, and `key = ["a", "b", …]` (single- or multi-line
//! arrays of strings). No crates.io access in this build environment, so
//! this stays hand-rolled and tiny.

use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Bool(bool),
    List(Vec<String>),
    /// Anything else (inline tables, numbers) — preserved verbatim so
    /// foreign manifests like the root `Cargo.toml` parse; the analyzer's
    /// own configs never produce this.
    Other(String),
}

/// section name → (key → value), in file order within a section.
pub type Doc = BTreeMap<String, Vec<(String, Value)>>;

/// Parse `text`; returns `Err(line_no, message)` on the first malformed
/// line so config typos fail the run loudly instead of silently
/// weakening a rule.
pub fn parse(text: &str) -> Result<Doc, (usize, String)> {
    let mut doc: Doc = BTreeMap::new();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err((idx + 1, format!("unterminated section header: {raw}")));
            };
            section = unquote_section(name);
            doc.entry(section.clone()).or_default();
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err((idx + 1, format!("expected `key = value`: {raw}")));
        };
        let key = unquote(line[..eq].trim());
        let mut val = line[eq + 1..].trim().to_string();
        // Multi-line array: keep consuming lines until the bracket closes.
        if val.starts_with('[') && !balanced(&val) {
            for (_, cont) in lines.by_ref() {
                val.push(' ');
                val.push_str(strip_comment(cont).trim());
                if balanced(&val) {
                    break;
                }
            }
        }
        let value = parse_value(&val).map_err(|m| (idx + 1, m))?;
        doc.entry(section.clone()).or_default().push((key, value));
    }
    Ok(doc)
}

fn parse_value(v: &str) -> Result<Value, String> {
    let v = v.trim();
    if v == "true" {
        return Ok(Value::Bool(true));
    }
    if v == "false" {
        return Ok(Value::Bool(false));
    }
    if v.starts_with('"') {
        return Ok(Value::Str(parse_str(v)?.0));
    }
    if let Some(inner) = v.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or_else(|| format!("unterminated array: {v}"))?;
        let mut items = Vec::new();
        let mut rest = inner.trim();
        while !rest.is_empty() {
            if rest.starts_with(',') {
                rest = rest[1..].trim_start();
                continue;
            }
            let (s, consumed) = parse_str(rest)?;
            items.push(s);
            rest = rest[consumed..].trim_start();
        }
        return Ok(Value::List(items));
    }
    Ok(Value::Other(v.to_string()))
}

/// Parse a leading double-quoted string; returns (contents, chars consumed).
fn parse_str(v: &str) -> Result<(String, usize), String> {
    let chars: Vec<char> = v.chars().collect();
    if chars.first() != Some(&'"') {
        return Err(format!("expected string: {v}"));
    }
    let mut out = String::new();
    let mut i = 1;
    while i < chars.len() {
        match chars[i] {
            '\\' if i + 1 < chars.len() => {
                out.push(match chars[i + 1] {
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                });
                i += 2;
            }
            '"' => return Ok((out, chars[..=i].iter().map(|c| c.len_utf8()).sum())),
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    Err(format!("unterminated string: {v}"))
}

/// A `#` starts a comment unless inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// True when every `[` has a matching `]` outside strings.
fn balanced(v: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for c in v.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
        escaped = false;
    }
    depth <= 0
}

/// `crates."crates/kvssd"` → `crates.crates/kvssd` (inner quotes removed).
fn unquote_section(name: &str) -> String {
    let mut out = String::new();
    let mut in_str = false;
    for c in name.trim().chars() {
        if c == '"' {
            in_str = !in_str;
        } else {
            out.push(c);
        }
    }
    let _ = in_str;
    out
}

fn unquote(key: &str) -> String {
    key.trim().trim_matches('"').to_string()
}

/// Convenience lookups over a parsed document.
pub fn get_str<'a>(doc: &'a Doc, section: &str, key: &str) -> Option<&'a str> {
    doc.get(section)?.iter().rev().find_map(|(k, v)| match v {
        Value::Str(s) if k == key => Some(s.as_str()),
        _ => None,
    })
}

pub fn get_bool(doc: &Doc, section: &str, key: &str) -> Option<bool> {
    doc.get(section)?.iter().rev().find_map(|(k, v)| match v {
        Value::Bool(b) if k == key => Some(*b),
        _ => None,
    })
}

pub fn get_list<'a>(doc: &'a Doc, section: &str, key: &str) -> Option<&'a [String]> {
    doc.get(section)?.iter().rev().find_map(|(k, v)| match v {
        Value::List(l) if k == key => Some(l.as_slice()),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_keys_and_arrays_parse() {
        let doc = parse(
            r#"
# top comment
[classes."server.shard_queue"]
doc = "per-shard DRR lanes"   # trailing comment
paths = ["crates/server/src/server.rs"]

[order]
edges = [
  "a < b",
  "b < c",
]
flag = true
"#,
        )
        .unwrap();
        assert_eq!(get_str(&doc, "classes.server.shard_queue", "doc"), Some("per-shard DRR lanes"));
        assert_eq!(get_list(&doc, "order", "edges").unwrap().len(), 2);
        assert_eq!(get_bool(&doc, "order", "flag"), Some(true));
    }

    #[test]
    fn malformed_lines_error_with_line_number() {
        let err = parse("[ok]\nkey value-without-equals\n").unwrap_err();
        assert_eq!(err.0, 2);
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let doc = parse("[s]\nk = \"a # b\"\n").unwrap();
        assert_eq!(get_str(&doc, "s", "k"), Some("a # b"));
    }
}
