#![cfg(loom)]
//! Loom models of the lock-free read-path primitives: epoch-based
//! reclamation ([`EpochDomain`] + [`GenCell`]), the per-bucket
//! [`SeqLock`], and the generation-published [`ReadView`] they compose
//! into. These pin down the protocol the sharded device's lock-free get
//! relies on: a validated read observed a stable published state, and
//! retired generations are reclaimed only after every reader unpinned.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p rhik-ftl --release loom_`

use loom::sync::Arc;
use loom::thread;
use rhik_ftl::sync::atomic::{AtomicU64, Ordering};
use rhik_ftl::sync::{EpochDomain, GenCell, SeqLock};
use rhik_ftl::{Lookup, ReadView};
use rhik_nand::Ppa;

/// A `GenCell` load racing publishes returns some *whole* published
/// value — the two halves always agree — and once all threads are done
/// and quiescent, every retired generation has been reclaimed.
#[test]
fn loom_gencell_publish_load_never_tears() {
    loom::model(|| {
        let domain = Arc::new(EpochDomain::new());
        let cell = Arc::new(GenCell::new(std::sync::Arc::new((0u64, 0u64))));

        let publisher = {
            let (domain, cell) = (Arc::clone(&domain), Arc::clone(&cell));
            thread::spawn(move || {
                for i in 1..=3u64 {
                    cell.publish(&domain, std::sync::Arc::new((i, i)));
                }
            })
        };
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let (domain, cell) = (Arc::clone(&domain), Arc::clone(&cell));
                thread::spawn(move || {
                    for _ in 0..4 {
                        let v = cell.load(&domain);
                        assert_eq!(v.0, v.1, "torn generation observed");
                        thread::yield_now();
                    }
                })
            })
            .collect();

        publisher.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        domain.quiesce();
        domain.try_reclaim();
        assert_eq!(domain.garbage_len(), 0, "retired generations leaked");
        assert_eq!(*cell.load(&domain), (3, 3));
    });
}

/// Reclamation never runs while any thread is pinned: garbage retired
/// under an active pin stays queued until the pin drops, and an `Arc`
/// cloned out of a `GenCell` keeps its data alive past both the pin and
/// the reclaim.
#[test]
fn loom_epoch_reclaim_waits_for_pins() {
    loom::model(|| {
        let domain = Arc::new(EpochDomain::new());
        let cell = Arc::new(GenCell::new(std::sync::Arc::new(7u64)));

        // Reader: pin, grab the current value, unpin — then keep using
        // the Arc after the writer has retired and reclaimed.
        let reader = {
            let (domain, cell) = (Arc::clone(&domain), Arc::clone(&cell));
            thread::spawn(move || {
                let held = cell.load(&domain);
                thread::yield_now();
                *held
            })
        };
        let writer = {
            let (domain, cell) = (Arc::clone(&domain), Arc::clone(&cell));
            thread::spawn(move || {
                cell.publish(&domain, std::sync::Arc::new(8u64));
            })
        };
        let seen = reader.join().unwrap();
        assert!(seen == 7 || seen == 8, "reader saw a value never published: {seen}");
        writer.join().unwrap();

        // Deterministic half: a live pin blocks reclamation outright.
        let pin = domain.pin();
        domain.retire(Box::new(0xdeadu64));
        assert!(!domain.quiescent());
        assert_eq!(domain.try_reclaim(), 0, "reclaimed under an active pin");
        assert!(domain.garbage_len() > 0);
        drop(pin);
        assert!(domain.try_reclaim() > 0, "quiescent garbage must reclaim");
        assert_eq!(domain.garbage_len(), 0);
    });
}

/// The seqlock read protocol never validates a torn write: a reader that
/// passes `read_begin`/`read_validate` saw both halves of the writer's
/// paired stores, or neither.
#[test]
fn loom_seqlock_readers_never_validate_torn_writes() {
    loom::model(|| {
        struct Pair {
            seq: SeqLock,
            a: AtomicU64,
            b: AtomicU64,
        }
        let pair =
            Arc::new(Pair { seq: SeqLock::new(), a: AtomicU64::new(0), b: AtomicU64::new(0) });

        let writer = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                for i in 1..=2u64 {
                    pair.seq.write_begin();
                    pair.a.store(i, Ordering::SeqCst);
                    thread::yield_now();
                    pair.b.store(i, Ordering::SeqCst);
                    pair.seq.write_end();
                }
            })
        };
        let reader = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                for _ in 0..4 {
                    let Some(begin) = pair.seq.read_begin() else {
                        thread::yield_now();
                        continue;
                    };
                    let a = pair.a.load(Ordering::SeqCst);
                    let b = pair.b.load(Ordering::SeqCst);
                    if pair.seq.read_validate(begin) {
                        assert_eq!(a, b, "validated read observed a torn write");
                    }
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(pair.a.load(Ordering::SeqCst), 2);
        assert_eq!(pair.b.load(Ordering::SeqCst), 2);
    });
}

/// Lock-free lookups racing a directory doubling are linearizable: a hit
/// always carries the (never-changing) correct head, a key present
/// before the doubling never reports a validated miss, and the doubled
/// view still holds every mapping afterwards.
#[test]
fn loom_readview_lookup_during_doubling_never_lies() {
    loom::model(|| {
        let view = Arc::new(ReadView::new(1));
        for sig in 0..8u64 {
            view.upsert(sig, Ppa::new(sig as u32, 1));
        }

        let readers: Vec<_> = (0..2)
            .map(|t| {
                let view = Arc::clone(&view);
                thread::spawn(move || {
                    for round in 0..6u64 {
                        let sig = (t + 3 * round) % 8;
                        match view.lookup(sig) {
                            Lookup::Hit(h) => {
                                assert_eq!(h.head, Ppa::new(sig as u32, 1), "hit wrong head");
                                // With no writer touching this mapping a
                                // validated hit may or may not survive the
                                // doubling's bucket poisoning; either
                                // answer of validate() is legal here.
                                let _ = h.validate();
                            }
                            Lookup::Miss => panic!("validated miss for live key {sig}"),
                            Lookup::Contended => {} // falls back to locked path
                        }
                    }
                })
            })
            .collect();
        let doubler = {
            let view = Arc::clone(&view);
            thread::spawn(move || {
                for bits in [2u32, 3] {
                    view.publish_generation(bits);
                }
            })
        };

        for r in readers {
            r.join().unwrap();
        }
        doubler.join().unwrap();
        view.domain().quiesce();
        assert_eq!(view.entry_count(), 8);
        for sig in 0..8u64 {
            match view.lookup(sig) {
                Lookup::Hit(h) => {
                    assert_eq!(h.head, Ppa::new(sig as u32, 1));
                    assert!(h.validate(), "quiet post-doubling lookup must validate");
                }
                _ => panic!("mapping {sig} lost across doubling"),
            }
        }
    });
}

/// A validated hit racing an in-place update observes only published
/// states: the old head or the new one, never a mix — and after a
/// remove, a quiet lookup reports a miss.
#[test]
fn loom_readview_update_is_linearizable() {
    loom::model(|| {
        let view = Arc::new(ReadView::new(2));
        let old = Ppa::new(1, 1);
        let new = Ppa::new(2, 2);
        view.upsert(9, old);

        let writer = {
            let view = Arc::clone(&view);
            thread::spawn(move || {
                view.upsert(9, new); // GC relocation / update
            })
        };
        let reader = {
            let view = Arc::clone(&view);
            thread::spawn(move || {
                for _ in 0..4 {
                    match view.lookup(9) {
                        Lookup::Hit(h) => {
                            if h.validate() {
                                assert!(
                                    h.head == old || h.head == new,
                                    "validated hit carries unpublished head {:?}",
                                    h.head
                                );
                            }
                        }
                        Lookup::Miss => panic!("key 9 never absent"),
                        Lookup::Contended => {}
                    }
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();

        view.remove(9);
        assert!(matches!(view.lookup(9), Lookup::Miss), "removed key still resolves");
        view.domain().quiesce();
        view.domain().try_reclaim();
        assert_eq!(view.domain().garbage_len(), 0);
    });
}
