//! Property tests over the FTL: the Fig. 4 layout round-trips arbitrary
//! pairs, extents account bytes exactly, and GC never loses a live pair
//! under arbitrary store/stale interleavings.

use proptest::prelude::*;
use rhik_ftl::layout::{self, PageBuilder};
use rhik_ftl::{
    gc, Ftl, FtlConfig, FtlError, GcConfig, IndexBackend, IndexError, IndexStats, InsertOutcome,
};
use rhik_nand::{NandGeometry, Ppa};
use rhik_sigs::KeySignature;
use std::collections::HashMap;

fn mix(n: u64) -> KeySignature {
    let mut z = n.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    KeySignature(z ^ (z >> 31))
}

/// DRAM-only reference index (same as the one in the gc unit tests).
#[derive(Default)]
struct MapIndex {
    map: HashMap<u64, Ppa>,
    stats: IndexStats,
}

impl IndexBackend for MapIndex {
    fn insert(
        &mut self,
        _f: &mut Ftl,
        sig: KeySignature,
        ppa: Ppa,
    ) -> Result<InsertOutcome, IndexError> {
        match self.map.insert(sig.0, ppa) {
            Some(old) => Ok(InsertOutcome::Updated { old }),
            None => Ok(InsertOutcome::Inserted),
        }
    }
    fn lookup(&mut self, _f: &mut Ftl, sig: KeySignature) -> Result<Option<Ppa>, IndexError> {
        Ok(self.map.get(&sig.0).copied())
    }
    fn remove(&mut self, _f: &mut Ftl, sig: KeySignature) -> Result<Option<Ppa>, IndexError> {
        Ok(self.map.remove(&sig.0))
    }
    fn len(&self) -> u64 {
        self.map.len() as u64
    }
    fn capacity(&self) -> Option<u64> {
        None
    }
    fn dram_bytes(&self) -> u64 {
        0
    }
    fn stats(&self) -> &IndexStats {
        &self.stats
    }
    fn name(&self) -> &'static str {
        "map"
    }
    fn flush(&mut self, _f: &mut Ftl) -> Result<(), IndexError> {
        Ok(())
    }
}

fn ftl() -> Ftl {
    Ftl::new(FtlConfig {
        geometry: NandGeometry {
            blocks: 128,
            pages_per_block: 16,
            page_size: 512,
            spare_size: 16,
            channels: 2,
        },
        ..FtlConfig::tiny()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary pairs packed into a head page decode back identically.
    #[test]
    fn page_layout_roundtrip(
        pairs in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 1..24),
             proptest::collection::vec(any::<u8>(), 0..120), any::<u8>()),
            1..12,
        )
    ) {
        let mut builder = PageBuilder::new(2048);
        let mut expected = Vec::new();
        for (sig_raw, key, value, flags) in pairs {
            if !builder.fits(key.len(), value.len()) {
                continue;
            }
            builder.append_pair(KeySignature(sig_raw), &key, &value, flags);
            expected.push((KeySignature(sig_raw), key, value, flags));
        }
        let page = builder.finish();
        prop_assert_eq!(page.len(), 2048);
        let decoded = layout::decode_head(&page, 2048).expect("well-formed page");
        prop_assert_eq!(decoded.len(), expected.len());
        for (entry, (sig, key, value, flags)) in decoded.iter().zip(&expected) {
            prop_assert_eq!(entry.sig, *sig);
            prop_assert_eq!(&entry.key[..], &key[..]);
            prop_assert_eq!(&entry.value_frag[..], &value[..]);
            prop_assert_eq!(entry.flags, *flags);
            prop_assert_eq!(entry.val_total_len as usize, value.len());
        }
    }

    /// store_pair round-trips arbitrary key/value sizes through the write
    /// buffer, head pages, and the extent partition.
    #[test]
    fn store_pair_roundtrip(
        sizes in proptest::collection::vec((1usize..40, 0usize..3000), 1..40)
    ) {
        let mut f = ftl();
        let mut stored = Vec::new();
        for (i, (klen, vlen)) in sizes.into_iter().enumerate() {
            let sig = mix(i as u64);
            let key = vec![b'a' + (i % 26) as u8; klen];
            let value: Vec<u8> = (0..vlen).map(|j| (i + j) as u8).collect();
            match f.store_pair(sig, &key, &value, 0) {
                Ok(extent) => {
                    // Byte accounting: head + body equals the full footprint.
                    prop_assert_eq!(
                        extent.bytes(),
                        (layout::RECORD_PREFIX_LEN + key.len() + layout::SIG_ENTRY_LEN + value.len()) as u64
                    );
                    stored.push((sig, key, value, extent));
                }
                Err(FtlError::NeedsGc) => break,
                Err(e) => prop_assert!(false, "store failed: {e}"),
            }
        }
        f.flush_data_builder().unwrap();

        for (sig, key, value, extent) in stored {
            let (data, _) = f.read_data_page(extent.head).unwrap();
            let entry = layout::find_in_head(&data, 512, sig).expect("entry present");
            prop_assert_eq!(&entry.key[..], &key[..]);
            prop_assert_eq!(entry.val_total_len as usize, value.len());
            // Reassemble the body.
            let mut got = entry.value_frag.to_vec();
            if let Some(start) = entry.cont_start {
                let mut remaining = (entry.val_total_len - entry.frag_len) as usize;
                let mut i = 0;
                while remaining > 0 {
                    let (cd, _) = f.read_data_page(Ppa::new(start.block, start.page + i)).unwrap();
                    let take = remaining.min(cd.len());
                    got.extend_from_slice(&cd[..take]);
                    remaining -= take;
                    i += 1;
                }
            }
            prop_assert_eq!(got, value);
        }
    }

    /// Under arbitrary store/stale interleavings + GC, every live pair
    /// remains reachable with intact bytes and the free pool recovers.
    #[test]
    fn gc_preserves_live_pairs(
        ops in proptest::collection::vec((any::<u8>(), 1usize..900, any::<bool>()), 20..120)
    ) {
        let mut f = ftl();
        let mut index = MapIndex::default();
        let mut live: HashMap<u64, (Vec<u8>, rhik_ftl::WrittenExtent)> = HashMap::new();

        for (i, (key_id, vlen, delete_after)) in ops.into_iter().enumerate() {
            let sig = mix(key_id as u64);
            let key = format!("k{key_id:03}").into_bytes();
            let value: Vec<u8> = (0..vlen).map(|j| (key_id as usize + j) as u8).collect();

            // Retire any previous version first (device semantics).
            if let Some((_, old)) = live.remove(&sig.0) {
                f.mark_stale(&old);
                f.drop_pending(sig);
                index.remove(&mut f, sig).unwrap();
            }
            let extent = match f.store_pair(sig, &key, &value, 0) {
                Ok(e) => e,
                Err(FtlError::NeedsGc) => {
                    let report = gc::run(&mut f, &mut index, &GcConfig::default()).unwrap();
                    if report.data_blocks_erased == 0 {
                        break; // genuinely full of live data
                    }
                    match f.store_pair(sig, &key, &value, 0) {
                        Ok(e) => e,
                        Err(FtlError::NeedsGc) => break,
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
            };
            index.insert(&mut f, sig, extent.head).unwrap();
            if delete_after && i % 3 == 0 {
                f.mark_stale(&extent);
                f.drop_pending(sig);
                index.remove(&mut f, sig).unwrap();
            } else {
                live.insert(sig.0, (value, extent));
            }
        }

        // Force a GC pass, then audit every live pair. GC may relocate, so
        // consult the index for current heads.
        let _ = gc::run(&mut f, &mut index, &GcConfig { low_watermark: 64, high_watermark: 64, ..Default::default() });
        for (&raw, (value, _)) in &live {
            let sig = KeySignature(raw);
            let head = index.lookup(&mut f, sig).unwrap();
            let head = head.expect("live pair lost by GC");
            let (entry_value, found) = if Some(head) == f.pending_head() {
                let frag = f.pending_pair(sig).expect("pending").1.to_vec();
                let ext = f.pending_extent(sig).expect("pending extent");
                let mut got = frag;
                if let Some(start) = ext.cont_start {
                    let mut remaining = ext.cont_bytes as usize;
                    let mut i = 0;
                    while remaining > 0 {
                        let (cd, _) = f.read_data_page(Ppa::new(start.block, start.page + i)).unwrap();
                        let take = remaining.min(cd.len());
                        got.extend_from_slice(&cd[..take]);
                        remaining -= take;
                        i += 1;
                    }
                }
                (got, true)
            } else {
                let (data, _) = f.read_data_page(head).unwrap();
                match layout::find_in_head(&data, 512, sig) {
                    Some(entry) => {
                        let mut got = entry.value_frag.to_vec();
                        if let Some(start) = entry.cont_start {
                            let mut remaining = (entry.val_total_len - entry.frag_len) as usize;
                            let mut i = 0;
                            while remaining > 0 {
                                let (cd, _) = f.read_data_page(Ppa::new(start.block, start.page + i)).unwrap();
                                let take = remaining.min(cd.len());
                                got.extend_from_slice(&cd[..take]);
                                remaining -= take;
                                i += 1;
                            }
                        }
                        (got, true)
                    }
                    None => (Vec::new(), false),
                }
            };
            prop_assert!(found, "entry vanished from head page");
            prop_assert_eq!(&entry_value, value);
        }
    }
}
