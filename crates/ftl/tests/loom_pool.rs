#![cfg(loom)]
//! Loom models of the shared [`FlashPool`] — the one synchronized object
//! every shard of a sharded device touches (see `ftl::sync` for the
//! correctness argument these models pin down).
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p rhik-ftl --release loom_`

use loom::sync::Arc;
use loom::thread;
use rhik_ftl::{AcquireClass, FlashPool};
use rhik_nand::NandGeometry;

fn pool(reserve: u32) -> Arc<FlashPool> {
    // 8 blocks keeps the schedule space small enough to explore.
    Arc::new(FlashPool::new(NandGeometry::tiny(), reserve))
}

/// A block leased from the pool belongs to exactly one shard until it is
/// released — two shards racing `acquire` can never be handed the same
/// block.
#[test]
fn loom_blocks_have_one_owner() {
    loom::model(|| {
        let p = pool(0);
        let shards: Vec<_> = (0..2)
            .map(|_| {
                let p = Arc::clone(&p);
                thread::spawn(move || {
                    let mut held = Vec::new();
                    for _ in 0..3 {
                        if let Ok(block) = p.acquire(AcquireClass::Normal) {
                            held.push(block);
                        }
                    }
                    held
                })
            })
            .collect();
        let mut seen = std::collections::HashSet::new();
        for shard in shards {
            for block in shard.join().unwrap() {
                assert!(seen.insert(block), "block {block} leased to two shards");
            }
        }
    });
}

/// Concurrent lease/release pairs never lose a free-count update: once
/// every shard has returned its block, the cached count reads exactly the
/// pool total again.
#[test]
fn loom_free_count_survives_concurrent_lease_release() {
    loom::model(|| {
        let p = pool(0);
        let shards: Vec<_> = (0..2)
            .map(|_| {
                let p = Arc::clone(&p);
                thread::spawn(move || {
                    let block = p.acquire(AcquireClass::Gc).unwrap();
                    thread::yield_now();
                    p.release(block);
                })
            })
            .collect();
        for shard in shards {
            shard.join().unwrap();
        }
        assert_eq!(p.free_blocks_raw(), p.total_blocks());
    });
}

/// GC (holding the device-wide permit and leasing below the reserve
/// floor) and a resize migration's metadata write-back can run
/// concurrently without deadlock — the permit and the pool queue lock
/// are never held across each other in a conflicting order.
#[test]
fn loom_gc_and_resize_migration_make_progress() {
    loom::model(|| {
        let p = pool(2);
        let gc = {
            let p = Arc::clone(&p);
            thread::spawn(move || {
                let _permit = p.gc_permit();
                let block = p.acquire(AcquireClass::Gc).unwrap();
                thread::yield_now();
                p.release(block);
            })
        };
        let resize = {
            let p = Arc::clone(&p);
            thread::spawn(move || {
                // Metadata class may dip to half the reserve, so with a
                // full pool this lease succeeds even mid-GC.
                let block = p.acquire(AcquireClass::Metadata).unwrap();
                p.release(block);
            })
        };
        gc.join().unwrap();
        resize.join().unwrap();
        assert_eq!(p.free_blocks_raw(), p.total_blocks());
    });
}
