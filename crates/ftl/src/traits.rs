//! The index contract between the device firmware and an indexing scheme.

use rhik_nand::Ppa;
use rhik_sigs::KeySignature;

use crate::ftl::Ftl;

/// A flash operation tagged with the channel it occupies and its media
/// duration — the unit the async engine schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimedOp {
    pub channel: u32,
    pub duration_ns: u64,
}

/// Errors an index can raise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IndexError {
    /// Hopscotch displacement could not find a slot within the hop range —
    /// the paper's "uncorrectable error is returned and the operation is
    /// aborted" (§IV-A1). The application must pick a new key.
    TableFull { table: u64 },
    /// The index's fixed capacity is exhausted (NVMKV-style baseline; RHIK
    /// resizes instead and never returns this).
    CapacityExhausted,
    /// The flash free pool cannot accommodate the metadata write (or an
    /// imminent resize); the device must garbage-collect and retry.
    NeedsGc,
    /// The scheme does not implement this optional operation.
    Unsupported(&'static str),
    /// A flash error bubbled up from the media.
    Flash(rhik_nand::NandError),
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::TableFull { table } => {
                write!(f, "record-layer table {table} full within hop range")
            }
            IndexError::CapacityExhausted => write!(f, "index capacity exhausted"),
            IndexError::NeedsGc => write!(f, "metadata write needs garbage collection"),
            IndexError::Unsupported(op) => write!(f, "operation {op} not supported by this index"),
            IndexError::Flash(e) => write!(f, "flash error: {e}"),
        }
    }
}

impl std::error::Error for IndexError {}

impl From<rhik_nand::NandError> for IndexError {
    fn from(e: rhik_nand::NandError) -> Self {
        IndexError::Flash(e)
    }
}

impl From<crate::ftl::FtlError> for IndexError {
    fn from(e: crate::ftl::FtlError) -> Self {
        match e {
            crate::ftl::FtlError::NeedsGc => IndexError::NeedsGc,
            crate::ftl::FtlError::Flash(f) => IndexError::Flash(f),
            // Index traffic is whole pages; size errors cannot arise.
            other => unreachable!("index metadata write hit {other}"),
        }
    }
}

/// Result of an insert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// New record created.
    Inserted,
    /// A record with this signature existed; its PPA was replaced (update
    /// path). Carries the previous location so the caller can mark the old
    /// blob stale.
    Updated { old: Ppa },
}

/// One resize of the index, as instrumented by RHIK (drives Fig. 7).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResizeEvent {
    /// Keys resident when the resize was triggered.
    pub keys_before: u64,
    /// Record-layer tables before doubling.
    pub tables_before: u64,
    /// Flash page reads performed by the migration.
    pub flash_reads: u64,
    /// Flash page programs performed by the migration.
    pub flash_programs: u64,
    /// Host CPU nanoseconds spent migrating (wall clock, for reference).
    pub cpu_ns: u64,
    /// Simulated media nanoseconds (reads+programs serialized through the
    /// device profile) — the paper's "resizing time".
    pub media_ns: u64,
    /// Migration steps the resize was amortized over (1 for a
    /// stop-the-world pass).
    pub steps: u64,
    /// Largest single-step media time — the worst stall any one command
    /// absorbed. Equals `media_ns` for a stop-the-world pass.
    pub max_step_media_ns: u64,
}

/// Cumulative counters every index maintains.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IndexStats {
    pub inserts: u64,
    pub lookups: u64,
    pub removes: u64,
    /// Flash page reads issued *for metadata* (index tables), the numerator
    /// of Fig. 5b.
    pub metadata_flash_reads: u64,
    /// Flash page programs issued for metadata (table write-back, resize).
    pub metadata_flash_programs: u64,
    /// Lookups served without any flash read (directory + cache hit).
    pub zero_flash_lookups: u64,
    /// Distribution of flash reads needed per lookup: index i counts
    /// lookups that needed exactly i reads; the last bucket is "≥ len-1".
    pub reads_per_lookup_histo: [u64; 16],
    /// Insert aborts due to [`IndexError::TableFull`].
    pub insert_aborts: u64,
    /// Completed resize events (RHIK only).
    pub resizes: Vec<ResizeEvent>,
}

impl IndexStats {
    /// Record a lookup that needed `reads` flash reads.
    pub fn note_lookup_reads(&mut self, reads: u64) {
        let bucket = (reads as usize).min(self.reads_per_lookup_histo.len() - 1);
        self.reads_per_lookup_histo[bucket] += 1;
        if reads == 0 {
            self.zero_flash_lookups += 1;
        }
    }

    /// Percentile of lookups that needed at most `max_reads` flash reads.
    pub fn pct_lookups_within(&self, max_reads: usize) -> f64 {
        let total: u64 = self.reads_per_lookup_histo.iter().sum();
        if total == 0 {
            return 100.0;
        }
        let within: u64 = self.reads_per_lookup_histo[..=max_reads.min(15)].iter().sum();
        100.0 * within as f64 / total as f64
    }
}

/// The contract between the KVSSD firmware and an indexing scheme.
///
/// Implementations: `rhik-core`'s `RhikIndex` (the paper's contribution),
/// and `rhik-baseline`'s `MultiLevelIndex` / `SimpleHashIndex` / `LsmIndex`.
///
/// All flash traffic goes through the supplied [`Ftl`], so the firmware's
/// statistics see exactly what the index does.
pub trait IndexBackend {
    /// Insert or update the record for `sig`.
    fn insert(
        &mut self,
        ftl: &mut Ftl,
        sig: KeySignature,
        ppa: Ppa,
    ) -> Result<InsertOutcome, IndexError>;

    /// Find the KV-pair head page for `sig` (at most the scheme's bounded
    /// number of flash reads).
    fn lookup(&mut self, ftl: &mut Ftl, sig: KeySignature) -> Result<Option<Ppa>, IndexError>;

    /// Remove the record for `sig`, returning its PPA if present.
    fn remove(&mut self, ftl: &mut Ftl, sig: KeySignature) -> Result<Option<Ppa>, IndexError>;

    /// Probabilistic membership check (§IV-A3): answered from signatures
    /// only; false positives possible at the signature collision rate.
    fn contains(&mut self, ftl: &mut Ftl, sig: KeySignature) -> Result<bool, IndexError> {
        Ok(self.lookup(ftl, sig)?.is_some())
    }

    /// Number of records currently stored.
    fn len(&self) -> u64;

    /// True when no records are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current record capacity, if the scheme has one. RHIK reports the
    /// capacity of its *current* configuration (it resizes before filling);
    /// the NVMKV baseline reports its hard cap.
    fn capacity(&self) -> Option<u64>;

    /// Bytes of SSD DRAM this index pins outside the shared page cache
    /// (e.g. RHIK's directory layer, the multi-level index's level-0).
    fn dram_bytes(&self) -> u64;

    /// Cumulative statistics.
    fn stats(&self) -> &IndexStats;

    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// Flush every dirty metadata page to flash (shutdown / checkpoint).
    fn flush(&mut self, ftl: &mut Ftl) -> Result<(), IndexError>;

    /// Live index pages residing in `block`, as `(cache key, ppa)` pairs —
    /// used by GC when an index-stream block must be relocated. The default
    /// (no pages) is correct for DRAM-only baselines.
    fn live_index_pages_in(&self, _block: u32) -> Vec<(u64, Ppa)> {
        Vec::new()
    }

    /// Relocate one live index page during GC; returns the new location.
    fn relocate_index_page(
        &mut self,
        _ftl: &mut Ftl,
        _key: u64,
        _old: Ppa,
    ) -> Result<Option<Ppa>, IndexError> {
        Ok(None)
    }

    /// Whether the index has deferred maintenance pending (e.g. a resize
    /// that was postponed for lack of free blocks). The device checks this
    /// after each command and runs GC + [`IndexBackend::maintain`].
    fn maintenance_due(&self) -> bool {
        false
    }

    /// Perform deferred maintenance (RHIK: the pending resize). May return
    /// [`IndexError::NeedsGc`] if space is still insufficient.
    fn maintain(&mut self, _ftl: &mut Ftl) -> Result<(), IndexError> {
        Ok(())
    }

    /// Perform one bounded slice of background maintenance (RHIK: migrate
    /// one batch of an in-flight incremental resize). Meant for idle device
    /// time; returns `true` if any work was done (more may remain). The
    /// default (no incremental maintenance) reports no work.
    fn maintain_step(&mut self, _ftl: &mut Ftl) -> Result<bool, IndexError> {
        Ok(false)
    }

    /// True while an incremental resize migration is in flight.
    fn resize_in_progress(&self) -> bool {
        false
    }

    /// Progress of an in-flight resize migration as
    /// `(slots_migrated, slots_total)` over the frozen old directory —
    /// `None` when no migration is running. Telemetry exports this as the
    /// per-shard migration-cursor gauge.
    fn migration_progress(&self) -> Option<(u64, u64)> {
        None
    }

    /// Visit every stored `(signature, ppa)` record. Used by the device's
    /// iterator support (§VI) and by consistency checks; cost is a full
    /// index sweep. The default refuses, for schemes without a cheap sweep.
    fn scan_records(
        &mut self,
        _ftl: &mut Ftl,
        _visit: &mut dyn FnMut(KeySignature, Ppa),
    ) -> Result<(), IndexError> {
        Err(IndexError::Unsupported("scan_records"))
    }

    /// Attach a generation-published [`ReadView`](crate::readview::ReadView)
    /// for this index to mirror: every `sig → head PPA` change (insert,
    /// update, delete, GC relocation) must be reflected into the view,
    /// and a directory doubling must publish a new view generation, so
    /// the device's lock-free get path stays coherent.
    ///
    /// Returns `true` iff the backend accepted the view and will keep it
    /// coherent from now on — a backend may only accept while it is
    /// empty (the view starts empty, so attaching to a populated index
    /// would let lock-free lookups miss live keys). The default (no
    /// mirroring, `false`) is correct for backends without lock-free
    /// read support: the device keeps every get on the locked path.
    fn attach_read_view(&mut self, view: std::sync::Arc<crate::readview::ReadView>) -> bool {
        let _ = view;
        false
    }

    /// Attach a [`VersionTable`](crate::sync::VersionTable) for the hot
    /// object cache tier's invalidation protocol: the backend must bump
    /// the signature's stripe after *every* value mutation it applies —
    /// insert, in-place update, delete, GC relocation. Directory
    /// doublings move mappings without changing values, so they need no
    /// bump.
    ///
    /// Returns `true` iff the backend accepted the table and will bump
    /// it from now on. Unlike [`attach_read_view`](Self::attach_read_view)
    /// this is safe at any point in the index's life: versions are
    /// compared only for equality against a fill-time read, so starting
    /// from zero mid-stream merely means pre-attach history is invisible
    /// — and there are no cache entries from before the attach. The
    /// default (`false`) is correct for backends without cache support:
    /// the device then refuses to enable the cache tier.
    fn attach_versions(&mut self, versions: std::sync::Arc<crate::sync::VersionTable>) -> bool {
        let _ = versions;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_histogram_percentiles() {
        let mut s = IndexStats::default();
        for _ in 0..90 {
            s.note_lookup_reads(1);
        }
        for _ in 0..10 {
            s.note_lookup_reads(5);
        }
        assert!((s.pct_lookups_within(1) - 90.0).abs() < 1e-9);
        assert!((s.pct_lookups_within(4) - 90.0).abs() < 1e-9);
        assert!((s.pct_lookups_within(5) - 100.0).abs() < 1e-9);
        assert_eq!(s.zero_flash_lookups, 0);
    }

    #[test]
    fn zero_read_lookups_counted() {
        let mut s = IndexStats::default();
        s.note_lookup_reads(0);
        s.note_lookup_reads(0);
        s.note_lookup_reads(2);
        assert_eq!(s.zero_flash_lookups, 2);
        assert!((s.pct_lookups_within(0) - 66.66).abs() < 0.1);
    }

    #[test]
    fn histogram_saturates_at_last_bucket() {
        let mut s = IndexStats::default();
        s.note_lookup_reads(1_000);
        assert_eq!(s.reads_per_lookup_histo[15], 1);
        assert!((s.pct_lookups_within(14) - 0.0).abs() < 1e-9);
        assert!((s.pct_lookups_within(100) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_vacuously_within() {
        let s = IndexStats::default();
        assert_eq!(s.pct_lookups_within(0), 100.0);
    }

    #[test]
    fn index_error_display() {
        assert!(IndexError::TableFull { table: 3 }.to_string().contains("table 3"));
        assert!(IndexError::CapacityExhausted.to_string().contains("capacity"));
    }
}
