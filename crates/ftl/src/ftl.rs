//! The firmware context: flash + allocator + cache + log writers.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use rhik_nand::{DeviceProfile, NandArray, NandGeometry, NandOp, Ppa};
use rhik_sigs::KeySignature;
use rhik_telemetry::{Stage, StageEvent, TelemetrySink};

use crate::alloc::{BlockAllocator, NeedsGc, Stream};
use crate::cache::IndexPageCache;
use crate::layout::{PageBuilder, SpareMeta, RECORD_PREFIX_LEN, SIG_ENTRY_LEN};
use crate::sync::{Mutex, MutexGuard};
use crate::traits::TimedOp;

/// Errors surfaced by FTL services.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FtlError {
    /// Free pool exhausted; the device must run garbage collection.
    NeedsGc,
    /// Value cannot fit one erase block's extent (physical packing limit;
    /// the index-induced limit of NVMKV is gone, §IV-A5, but extents stay
    /// within an erase block).
    ValueTooLarge { len: usize, max: usize },
    /// Key alone cannot fit a page.
    KeyTooLarge { len: usize },
    /// Media error.
    Flash(rhik_nand::NandError),
    /// A cross-layer invariant broke mid-operation (e.g. GC met a record
    /// the index cannot re-point). Surfaced as a typed error instead of a
    /// panic so firmware paths stay panic-free; the audit layer is the
    /// tool for localizing which layer disagrees.
    Corrupt(String),
}

impl std::fmt::Display for FtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtlError::NeedsGc => write!(f, "free pool exhausted; GC required"),
            FtlError::ValueTooLarge { len, max } => {
                write!(f, "value of {len} B exceeds extent limit of {max} B")
            }
            FtlError::KeyTooLarge { len } => write!(f, "key of {len} B cannot fit a flash page"),
            FtlError::Flash(e) => write!(f, "flash error: {e}"),
            FtlError::Corrupt(detail) => write!(f, "cross-layer invariant broken: {detail}"),
        }
    }
}

impl std::error::Error for FtlError {}

impl From<rhik_nand::NandError> for FtlError {
    fn from(e: rhik_nand::NandError) -> Self {
        FtlError::Flash(e)
    }
}

impl From<NeedsGc> for FtlError {
    fn from(_: NeedsGc) -> Self {
        FtlError::NeedsGc
    }
}

/// Where a stored KV pair landed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WrittenExtent {
    /// Head page carrying the pair record and signature entry — this is the
    /// address the index stores (§IV-A5: "the index only stores the
    /// starting address of the KV pair on flash").
    pub head: Ppa,
    /// First page of the value body in the extent partition, if the value
    /// overflowed the head page.
    pub cont_start: Option<Ppa>,
    /// Whole continuation pages holding the value body.
    pub cont_pages: u32,
    /// Bytes charged to the head page (record prefix + key + fragment +
    /// signature entry).
    pub head_bytes: u64,
    /// Bytes charged to the extent partition.
    pub cont_bytes: u64,
}

impl WrittenExtent {
    /// Total on-flash footprint.
    pub fn bytes(&self) -> u64 {
        self.head_bytes + self.cont_bytes
    }
}

/// FTL configuration.
#[derive(Clone, Copy, Debug)]
pub struct FtlConfig {
    pub geometry: NandGeometry,
    pub profile: DeviceProfile,
    /// SSD DRAM budget for the index page cache (Fig. 5: 10 MB).
    pub cache_budget_bytes: usize,
    /// Blocks withheld for GC relocation.
    pub gc_reserve_blocks: u32,
}

impl FtlConfig {
    /// Small defaults for unit tests.
    pub fn tiny() -> Self {
        FtlConfig {
            geometry: NandGeometry::tiny(),
            profile: DeviceProfile::instant(),
            cache_budget_bytes: 4 * 1024,
            gc_reserve_blocks: 1,
        }
    }

    /// Paper-like device: 32 KiB pages × 256/block, given capacity & cache.
    pub fn paper(capacity_bytes: u64, cache_budget_bytes: usize) -> Self {
        FtlConfig {
            geometry: NandGeometry::paper_default(capacity_bytes),
            profile: DeviceProfile::kvemu_like(),
            cache_budget_bytes,
            gc_reserve_blocks: 4,
        }
    }
}

/// Cumulative FTL counters, split by traffic class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FtlStats {
    pub data_page_reads: u64,
    pub data_page_programs: u64,
    pub index_page_reads: u64,
    pub index_page_programs: u64,
    pub block_erases: u64,
    /// Pairs currently buffered in the open head page (DRAM write buffer).
    pub pending_pairs: u64,
    pub gc_runs: u64,
    pub gc_relocated_pairs: u64,
    pub gc_erased_blocks: u64,
}

/// The firmware context every index implementation and the device share.
pub struct Ftl {
    /// The physical media behind the *media lock* — the one narrow
    /// critical section the lock-free read path shares with the command
    /// path. Everything else in the FTL stays single-owner. See
    /// [`Ftl::media_reader`].
    nand: Arc<Mutex<NandArray>>,
    /// Cached from construction so geometry queries never take the media
    /// lock (geometry is immutable after `NandArray::new`).
    geometry: NandGeometry,
    profile: DeviceProfile,
    alloc: BlockAllocator,
    cache: IndexPageCache,
    stats: FtlStats,
    timed_ops: Vec<TimedOp>,
    telemetry: TelemetrySink,
    /// Stage events accumulated since the last drain, tagged on the same
    /// cadence as `timed_ops`; the device attaches them to the op span it
    /// is building. Empty while telemetry is disabled.
    stage_log: Vec<StageEvent>,
    /// When set, media ops charged are attributed to this stage instead of
    /// the plain flash-read/program stages (GC runs, resize batches).
    stage_scope: Option<Stage>,

    /// Open head page being packed (DRAM write buffer).
    data_builder: Option<(Ppa, PageBuilder)>,
    /// Pairs whose head record is still buffering, retrievable before
    /// flush: key, the head fragment of the value (bodies are already on
    /// flash — keeping whole values here would be an unbounded DRAM write
    /// buffer), and where the pair lives.
    pending: HashMap<KeySignature, (Bytes, Bytes, WrittenExtent)>,
}

impl Ftl {
    pub fn new(config: FtlConfig) -> Self {
        config.geometry.validate().expect("invalid geometry");
        Ftl {
            nand: Arc::new(Mutex::new(NandArray::new(config.geometry))),
            geometry: config.geometry,
            profile: config.profile,
            alloc: BlockAllocator::new(config.geometry, config.gc_reserve_blocks),
            cache: IndexPageCache::new(config.cache_budget_bytes),
            stats: FtlStats::default(),
            timed_ops: Vec::new(), // bounded-by: device drains it every op (drain_timed_ops)
            telemetry: TelemetrySink::disabled(),
            stage_log: Vec::new(), // bounded-by: device drains it every op (drain_stage_log)
            stage_scope: None,
            data_builder: None,
            // bounded-by: cleared when the head page programs; holds at
            // most one index page's worth of staged pairs.
            pending: HashMap::new(),
        }
    }

    /// One shard's FTL front-end over a shared flash array: erase blocks
    /// are leased from `pool` (see [`crate::sync::FlashPool`]) instead of
    /// a private free list, so several shard FTLs can coexist without
    /// over-committing capacity. `config.gc_reserve_blocks` is ignored —
    /// the reserve is global, enforced by the pool.
    pub fn with_pool(config: FtlConfig, pool: std::sync::Arc<crate::sync::FlashPool>) -> Self {
        config.geometry.validate().expect("invalid geometry");
        Ftl {
            nand: Arc::new(Mutex::new(NandArray::new(config.geometry))),
            geometry: config.geometry,
            profile: config.profile,
            alloc: BlockAllocator::with_pool(config.geometry, pool),
            cache: IndexPageCache::new(config.cache_budget_bytes),
            stats: FtlStats::default(),
            timed_ops: Vec::new(), // bounded-by: device drains it every op (drain_timed_ops)
            telemetry: TelemetrySink::disabled(),
            stage_log: Vec::new(), // bounded-by: device drains it every op (drain_stage_log)
            stage_scope: None,
            data_builder: None,
            // bounded-by: cleared when the head page programs; holds at
            // most one index page's worth of staged pairs.
            pending: HashMap::new(),
        }
    }

    /// The media lock. Held only for single NAND operations — never
    /// across allocator, cache or builder work — so the lock-free read
    /// path contends with the command path one page at a time.
    fn nand_guard(&self) -> MutexGuard<'_, NandArray> {
        // A panic cannot leave the array mid-operation inconsistent; its
        // per-call state changes are atomic wrt. the guard.
        self.nand.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    /// A cloneable handle for reading record pages directly off the media
    /// lock, bypassing the FTL front-end entirely — the lock-free get
    /// path's only way to touch flash. Reads through it are charged to
    /// the NAND array's counters but not to this FTL's op log; callers
    /// account simulated time via [`MediaReader::page_read_ns`].
    pub fn media_reader(&self) -> MediaReader {
        let read = NandOp::Read { ppa: Ppa::new(0, 0), bytes: self.geometry.page_size };
        MediaReader {
            nand: Arc::clone(&self.nand),
            geometry: self.geometry,
            page_read_ns: self.profile.latency.duration_ns(&read),
        }
    }

    /// Install a telemetry sink (forwarded down to the NAND array). The
    /// FTL tags every charged media op with the stage it serves.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.nand_guard().set_telemetry(sink.clone());
        self.telemetry = sink;
    }

    #[inline]
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// Attribute subsequently charged media ops to `scope` (GC run, resize
    /// migration batch) instead of the raw flash stages. Returns the
    /// previous scope so nested callers can restore it.
    pub fn set_stage_scope(&mut self, scope: Option<Stage>) -> Option<Stage> {
        std::mem::replace(&mut self.stage_scope, scope)
    }

    /// Append a stage event that does not correspond to a media op (e.g.
    /// a DRAM directory walk). No-op while telemetry is disabled.
    pub fn note_stage(&mut self, stage: Stage, dur_ns: u64) {
        if self.telemetry.is_enabled() {
            self.stage_log.push(StageEvent { stage, count: 1, dur_ns });
        }
    }

    /// Take the stage events accumulated since the last drain — the device
    /// attaches them to the span of the command it just executed.
    pub fn drain_stage_log(&mut self) -> Vec<StageEvent> {
        std::mem::take(&mut self.stage_log)
    }

    #[inline]
    pub fn geometry(&self) -> &NandGeometry {
        &self.geometry
    }

    #[inline]
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    #[inline]
    pub fn stats(&self) -> FtlStats {
        let mut s = self.stats;
        s.pending_pairs = self.pending.len() as u64;
        s
    }

    #[inline]
    pub fn nand_stats(&self) -> rhik_nand::NandStats {
        self.nand_guard().stats()
    }

    /// The shared index-page cache (Fig. 5's "SSD DRAM cache budget").
    #[inline]
    pub fn cache(&mut self) -> &mut IndexPageCache {
        &mut self.cache
    }

    #[inline]
    pub fn cache_ref(&self) -> &IndexPageCache {
        &self.cache
    }

    /// Fault-injection handle (tests). Holds the media lock while the
    /// guard is alive.
    pub fn faults_mut(&mut self) -> FaultsGuard<'_> {
        FaultsGuard(self.nand_guard())
    }

    /// Allocator introspection for GC policy decisions.
    pub fn free_blocks(&self) -> u32 {
        self.alloc.free_blocks()
    }

    /// Free blocks including the GC reserve (diagnostics).
    pub fn free_blocks_raw(&self) -> u32 {
        self.alloc.free_blocks_raw()
    }

    pub(crate) fn alloc_mut(&mut self) -> &mut BlockAllocator {
        &mut self.alloc
    }

    pub(crate) fn alloc_ref(&self) -> &BlockAllocator {
        &self.alloc
    }

    /// Largest value an extent can carry: a full erase block of body pages
    /// plus the head fragment.
    pub fn max_value_bytes(&self) -> usize {
        self.geometry().block_bytes() as usize
    }

    /// Fraction of raw capacity holding live payload.
    pub fn utilization(&self) -> f64 {
        self.alloc.total_live_bytes() as f64 / self.geometry().capacity_bytes() as f64
    }

    pub fn total_live_bytes(&self) -> u64 {
        self.alloc.total_live_bytes()
    }

    pub fn total_stale_bytes(&self) -> u64 {
        self.alloc.total_stale_bytes()
    }

    /// Wear summary across all blocks: (min, max, mean) erase counts.
    pub fn wear_stats(&self) -> (u64, u64, f64) {
        let blocks = self.geometry().blocks;
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut sum = 0u64;
        let nand = self.nand_guard();
        for b in 0..blocks {
            let e = nand.erase_count(b).expect("in range");
            min = min.min(e);
            max = max.max(e);
            sum += e;
        }
        (min, max, sum as f64 / blocks as f64)
    }

    /// Drain the flash ops performed since the last drain, with their media
    /// durations — consumed by the sync/async timing engines.
    pub fn drain_timed_ops(&mut self) -> Vec<TimedOp> {
        std::mem::take(&mut self.timed_ops)
    }

    fn charge(&mut self, op: NandOp) {
        let geometry = self.geometry;
        let duration_ns = self.profile.latency.duration_ns(&op);
        self.timed_ops.push(TimedOp { channel: op.channel(&geometry), duration_ns });
        if self.telemetry.is_enabled() {
            let stage = self.stage_scope.unwrap_or(match op {
                NandOp::Read { .. } => Stage::FlashRead,
                NandOp::Program { .. } => Stage::FlashProgram,
                // Erases happen only under GC.
                NandOp::Erase { .. } => Stage::GcStep,
            });
            self.stage_log.push(StageEvent { stage, count: 1, dur_ns: duration_ns });
        }
    }

    fn program(
        &mut self,
        ppa: Ppa,
        data: Bytes,
        spare: SpareMeta,
        is_index: bool,
    ) -> Result<(), FtlError> {
        let bytes = data.len() as u32;
        self.nand_guard().program(ppa, data, spare.encode())?;
        self.charge(NandOp::Program { ppa, bytes });
        if is_index {
            self.stats.index_page_programs += 1;
        } else {
            self.stats.data_page_programs += 1;
        }
        Ok(())
    }

    // ---------------------------------------------------------------- data

    /// Store one KV pair (§IV-A5 extent packing over partitioned storage).
    ///
    /// The value's page-aligned body is written immediately as full pages
    /// in the extent partition; the residue rides in the head page beside
    /// the record, which stays DRAM-buffered (like real device write
    /// buffers) until it fills.
    pub fn store_pair(
        &mut self,
        sig: KeySignature,
        key: &[u8],
        value: &[u8],
        flags: u8,
    ) -> Result<WrittenExtent, FtlError> {
        let page = self.geometry().page_size as usize;
        let overhead = RECORD_PREFIX_LEN + key.len() + SIG_ENTRY_LEN;
        if crate::layout::HEADER_LEN + overhead > page {
            return Err(FtlError::KeyTooLarge { len: key.len() });
        }
        if value.len() > self.max_value_bytes() {
            return Err(FtlError::ValueTooLarge { len: value.len(), max: self.max_value_bytes() });
        }

        // Split: residue in the head page, whole pages in the extent
        // partition. If the residue doesn't fit beside the key in a fresh
        // page, fold it into one extra (padded) body page.
        let mut frag = value.len() % page;
        let fresh_room = page - crate::layout::HEADER_LEN - overhead;
        let mut cont_pages = (value.len() - frag) / page;
        if frag > fresh_room {
            cont_pages += 1;
            frag = 0;
        }
        let body_bytes = value.len() - frag;
        debug_assert!(
            cont_pages * page >= body_bytes,
            "continuation pages must cover the value body past the head fragment"
        );

        // Write the body first: its pages live in a different partition, so
        // ordering never conflicts with the buffered head page.
        let mut cont_start = None;
        if cont_pages > 0 {
            self.alloc
                .open_extent_block_with_room(cont_pages as u32, false)
                .map_err(FtlError::from)?;
            let mut body = &value[frag..];
            for i in 0..cont_pages {
                let take = body.len().min(page);
                let ppa = self.alloc.next_page(Stream::Extent, false).map_err(FtlError::from)?;
                if i == 0 {
                    cont_start = Some(ppa);
                } else {
                    debug_assert_eq!(
                        ppa.block,
                        cont_start.expect("set on first page").block,
                        "extent escaped its block"
                    );
                }
                // The head page is still buffering, so its PPA is unknown;
                // GC resolves body ownership through head-page signature
                // info areas, not the spare back-pointer.
                self.program(
                    ppa,
                    Bytes::copy_from_slice(&body[..take]),
                    SpareMeta::cont_page(sig),
                    false,
                )?;
                body = &body[take..];
            }
            self.alloc.meta_mut(cont_start.expect("cont_pages > 0").block).live_bytes +=
                body_bytes as u64;
        }

        // Stage the head record. If the head page cannot be allocated, the
        // body pages just written would be orphaned — mark them stale so GC
        // can reclaim them before propagating the error.
        if let Err(e) = self.ensure_head_room(key.len(), frag) {
            if let Some(cont) = cont_start {
                let m = self.alloc.meta_mut(cont.block);
                m.stale_bytes += body_bytes as u64;
                m.live_bytes = m.live_bytes.saturating_sub(body_bytes as u64);
            }
            return Err(e);
        }
        let (head, builder) = self.data_builder.as_mut().expect("ensured above");
        let head = *head;
        builder.append_pair_with_frag(sig, key, value, frag, cont_start, flags);
        let head_bytes = (overhead + frag) as u64;
        self.alloc.meta_mut(head.block).live_bytes += head_bytes;
        let extent = WrittenExtent {
            head,
            cont_start,
            cont_pages: cont_pages as u32,
            head_bytes,
            cont_bytes: body_bytes as u64,
        };
        self.pending.insert(
            sig,
            (Bytes::copy_from_slice(key), Bytes::copy_from_slice(&value[..frag]), extent),
        );
        if !self.data_builder.as_ref().expect("still staged").1.fits(0, 0) {
            // Page effectively full: flush eagerly so space is visible.
            self.flush_data_builder()?;
        }

        Ok(extent)
    }

    /// Guarantee the head-page builder can accept a record of `key_len`
    /// with a `frag`-byte value fragment.
    fn ensure_head_room(&mut self, key_len: usize, frag: usize) -> Result<(), FtlError> {
        let page = self.geometry().page_size as usize;
        if let Some((_, b)) = &self.data_builder {
            if b.fits(key_len, frag) {
                return Ok(());
            }
            self.flush_data_builder()?;
        }
        if self.data_builder.is_none() {
            let ppa = self.alloc.next_page(Stream::Data, false).map_err(FtlError::from)?;
            self.data_builder = Some((ppa, PageBuilder::new(page)));
        }
        Ok(())
    }

    /// Program the open head page (if any) and clear the pending map.
    pub fn flush_data_builder(&mut self) -> Result<(), FtlError> {
        if let Some((ppa, builder)) = self.data_builder.take() {
            if builder.is_empty() {
                // Nothing packed: re-stage the same page for the next pair.
                self.data_builder = Some((ppa, builder));
                return Ok(());
            }
            let data = builder.finish();
            self.program(ppa, data, SpareMeta::head_page(), false)?;
            self.pending.clear();
        }
        Ok(())
    }

    /// Simulate a power loss: every DRAM-resident structure vanishes — the
    /// index-page cache, the buffered head page, and the pending map. Flash
    /// contents and block accounting survive (the emulator's allocator
    /// state stands in for the scan real firmware would do over spare
    /// areas at mount time). Pairs whose head record had not been flushed
    /// are lost, exactly as the paper's periodically-persisted metadata
    /// design implies.
    pub fn simulate_power_loss(&mut self) {
        let budget = self.cache.budget_bytes();
        self.cache = IndexPageCache::new(budget);
        if let Some((head, _builder)) = self.data_builder.take() {
            // The buffered head records never reached flash; their bytes
            // (and the reserved head page) are dead weight until the block
            // is erased.
            let lost: u64 = self.pending.values().map(|(_, _, e)| e.head_bytes).sum();
            let m = self.alloc.meta_mut(head.block);
            m.stale_bytes += lost;
            m.live_bytes = m.live_bytes.saturating_sub(lost);
        }
        // Orphaned bodies of lost pairs become stale garbage.
        for (_, _, extent) in self.pending.values() {
            if let Some(cont) = extent.cont_start {
                let m = self.alloc.meta_mut(cont.block);
                m.stale_bytes += extent.cont_bytes;
                m.live_bytes = m.live_bytes.saturating_sub(extent.cont_bytes);
            }
        }
        self.pending.clear();
    }

    /// Every programmed page on the device, in (block, page) order — the
    /// mount-time scan recovery uses to find metadata.
    pub fn programmed_pages(&self) -> Vec<Ppa> {
        let mut out = Vec::new();
        let nand = self.nand_guard();
        for block in 0..self.geometry.blocks {
            let ptr = nand.write_ptr(block).unwrap_or(0);
            for page in 0..ptr {
                out.push(Ppa::new(block, page));
            }
        }
        out
    }

    /// Flush the write buffer and seal the open data block (checkpoint /
    /// shutdown; unprogrammed tail pages are charged as stale capacity).
    pub fn close_data_block(&mut self) -> Result<(), FtlError> {
        self.flush_data_builder()?;
        self.data_builder = None;
        self.alloc.close_open_block(Stream::Data);
        self.alloc.close_open_block(Stream::Extent);
        Ok(())
    }

    /// A pair whose head record is still in the DRAM write buffer: the
    /// key and the *head fragment* of its value (any page-aligned body is
    /// on flash; see [`Ftl::pending_extent`] for where).
    pub fn pending_pair(&self, sig: KeySignature) -> Option<(Bytes, Bytes)> {
        self.pending.get(&sig).map(|(k, v, _)| (k.clone(), v.clone()))
    }

    /// The staged extent of a pending pair.
    pub fn pending_extent(&self, sig: KeySignature) -> Option<WrittenExtent> {
        self.pending.get(&sig).map(|(_, _, e)| *e)
    }

    /// Head page of the open builder (its pairs are pending).
    pub fn pending_head(&self) -> Option<Ppa> {
        self.data_builder.as_ref().map(|(ppa, _)| *ppa)
    }

    /// Force the buffered head page out of `block` so GC can erase it.
    ///
    /// A data block seals the moment its last page is *allocated*, which
    /// can leave the write buffer's head page inside a sealed — hence
    /// victim-eligible — block. Erasing it would strand the buffered
    /// pairs (their index entries point at the reserved page). A
    /// non-empty builder is flushed so the pairs land on flash and the
    /// normal scan relocates them; an empty builder just forfeits its
    /// reserved page to the erase.
    pub(crate) fn evict_pending_head(&mut self, block: u32) -> Result<(), FtlError> {
        match &self.data_builder {
            Some((head, _)) if head.block == block => {}
            _ => return Ok(()),
        }
        if self.data_builder.as_ref().is_some_and(|(_, b)| b.is_empty()) {
            self.data_builder = None;
            return Ok(());
        }
        self.flush_data_builder()
    }

    /// Read a data page (head or continuation).
    pub fn read_data_page(&mut self, ppa: Ppa) -> Result<(Bytes, Bytes), FtlError> {
        let (d, s) = self.nand_guard().read(ppa)?;
        self.charge(NandOp::Read { ppa, bytes: d.len() as u32 });
        self.stats.data_page_reads += 1;
        Ok((d, s))
    }

    /// Mark a stored extent stale (pair deleted or superseded). Head and
    /// body live in different partitions; both sides are charged.
    pub fn mark_stale(&mut self, extent: &WrittenExtent) {
        let m = self.alloc.meta_mut(extent.head.block);
        m.stale_bytes += extent.head_bytes;
        m.live_bytes = m.live_bytes.saturating_sub(extent.head_bytes);
        if let Some(cont) = extent.cont_start {
            let m = self.alloc.meta_mut(cont.block);
            m.stale_bytes += extent.cont_bytes;
            m.live_bytes = m.live_bytes.saturating_sub(extent.cont_bytes);
        }
        // Pending write-buffer copies are removed by signature via
        // `drop_pending`.
    }

    /// Remove a pending pair from the write buffer (delete-before-flush).
    pub fn drop_pending(&mut self, sig: KeySignature) {
        self.pending.remove(&sig);
    }

    // --------------------------------------------------------------- index

    /// Program a full index page; returns its address. Metadata writes may
    /// dip into the GC reserve so cache write-backs never fail mid-flight;
    /// resize prechecks and the device's proactive GC keep the pool healthy.
    pub fn write_index_page(&mut self, data: Bytes, meta: SpareMeta) -> Result<Ppa, FtlError> {
        let ppa = self.alloc.next_page(Stream::Index, true).map_err(FtlError::from)?;
        let len = data.len() as u64;
        self.program(ppa, data, meta, true)?;
        self.alloc.meta_mut(ppa.block).live_bytes += len;
        Ok(ppa)
    }

    /// Read an index page from flash.
    pub fn read_index_page(&mut self, ppa: Ppa) -> Result<Bytes, FtlError> {
        let (d, _) = self.nand_guard().read(ppa)?;
        self.charge(NandOp::Read { ppa, bytes: d.len() as u32 });
        self.stats.index_page_reads += 1;
        Ok(d)
    }

    /// Mark an index page superseded (table rewritten or resized away).
    pub fn retire_index_page(&mut self, ppa: Ppa, bytes: u64) {
        let m = self.alloc.meta_mut(ppa.block);
        m.stale_bytes += bytes;
        m.live_bytes = m.live_bytes.saturating_sub(bytes);
    }

    // ----------------------------------------------------------------- gc

    pub(crate) fn erase_block(&mut self, block: u32) -> Result<(), FtlError> {
        self.nand_guard().erase(block)?;
        self.charge(NandOp::Erase { block });
        self.stats.block_erases += 1;
        self.alloc.release(block);
        Ok(())
    }

    pub(crate) fn note_gc_run(&mut self) {
        self.stats.gc_runs += 1;
    }

    pub(crate) fn note_gc_relocation(&mut self, pairs: u64) {
        self.stats.gc_relocated_pairs += pairs;
    }

    pub(crate) fn note_gc_erase(&mut self) {
        self.stats.gc_erased_blocks += 1;
    }

    pub(crate) fn block_write_ptr(&self, block: u32) -> u32 {
        self.nand_guard().write_ptr(block).unwrap_or(0)
    }

    // -------------------------------------------------------------- audit

    /// Inspect a page without charging a flash read — the invariant
    /// auditor's window into media state (audits must not perturb the
    /// read counters the ≤1-read bound is proved against).
    pub fn peek_page(&self, ppa: Ppa) -> Option<(Bytes, Bytes)> {
        self.nand_guard().peek(ppa)
    }

    /// Snapshot this FTL's flash-side accounting for the cross-layer
    /// auditor: per-block allocator metadata joined with the NAND write
    /// pointers, plus the NAND array's own physical-discipline audit.
    ///
    /// `shard` only labels the snapshot (pass 0 for an unsharded device).
    pub fn audit_flash(&self, shard: u32) -> rhik_audit::FlashAudit {
        let geometry = self.geometry;
        let nand = self.nand_guard();
        let blocks = (0..geometry.blocks)
            .map(|b| {
                let meta = self.alloc.meta(b);
                rhik_audit::BlockAccounting {
                    block: b,
                    stream: meta.stream.map(|s| match s {
                        Stream::Data => "data",
                        Stream::Extent => "extent",
                        Stream::Index => "index",
                    }),
                    live_bytes: meta.live_bytes,
                    stale_bytes: meta.stale_bytes,
                    pages_allocated: meta.pages_used,
                    pages_programmed: nand.write_ptr(b).unwrap_or(0),
                }
            })
            .collect();
        rhik_audit::FlashAudit {
            shard,
            page_size: geometry.page_size,
            total_blocks: geometry.blocks,
            free_raw: self.alloc.free_blocks_raw(),
            blocks,
            nand_violations: nand.audit(),
        }
    }
}

impl std::fmt::Debug for Ftl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ftl")
            .field("geometry", self.geometry())
            .field("stats", &self.stats)
            .field("free_blocks", &self.alloc.free_blocks())
            .finish_non_exhaustive()
    }
}

/// Fault-plan access that holds the media lock for its lifetime, keeping
/// the `ftl.faults_mut().fail_read(..)` call shape tests already use.
pub struct FaultsGuard<'a>(MutexGuard<'a, NandArray>);

impl std::ops::Deref for FaultsGuard<'_> {
    type Target = rhik_nand::FaultPlan;

    fn deref(&self) -> &Self::Target {
        self.0.faults()
    }
}

impl std::ops::DerefMut for FaultsGuard<'_> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        self.0.faults_mut()
    }
}

/// Direct record-page access over the media lock — the lock-free read
/// path's handle onto flash. Cloning is cheap (one `Arc`); every clone
/// shares the same NAND array and lock as the owning [`Ftl`].
///
/// A `MediaReader` read bypasses the FTL front-end: no allocator, cache,
/// or op-log involvement, just the physical page. Unwritten pages (a
/// record still in the DRAM write buffer) and fault-injected pages
/// surface as errors, which callers treat as "fall back to the locked
/// path".
#[derive(Clone)]
pub struct MediaReader {
    nand: Arc<Mutex<NandArray>>,
    geometry: NandGeometry,
    page_read_ns: u64,
}

impl MediaReader {
    /// Read one page (data + spare), charging the NAND counters.
    pub fn read_page(&self, ppa: Ppa) -> Result<(Bytes, Bytes), rhik_nand::NandError> {
        let mut nand = self.nand.lock().unwrap_or_else(|poison| poison.into_inner());
        nand.read(ppa)
    }

    #[inline]
    pub fn geometry(&self) -> &NandGeometry {
        &self.geometry
    }

    /// Simulated media latency of one full-page read — what a lock-free
    /// get charges its shard clock per page in lieu of the timing
    /// engine's per-command accounting.
    #[inline]
    pub fn page_read_ns(&self) -> u64 {
        self.page_read_ns
    }
}

impl std::fmt::Debug for MediaReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MediaReader")
            .field("geometry", &self.geometry)
            .field("page_read_ns", &self.page_read_ns)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout;

    fn ftl() -> Ftl {
        Ftl::new(FtlConfig::tiny())
    }

    fn sig(n: u64) -> KeySignature {
        KeySignature(n)
    }

    #[test]
    fn small_pairs_buffer_then_flush() {
        let mut f = ftl();
        let e1 = f.store_pair(sig(1), b"k1", b"v1", 0).unwrap();
        let e2 = f.store_pair(sig(2), b"k2", b"v2", 0).unwrap();
        assert_eq!(e1.head, e2.head, "small pairs share a head page");
        assert_eq!(f.stats().pending_pairs, 2);
        assert_eq!(f.stats().data_page_programs, 0, "still buffered");

        let (k, v) = f.pending_pair(sig(1)).unwrap();
        assert_eq!(&k[..], b"k1");
        assert_eq!(&v[..], b"v1");

        f.flush_data_builder().unwrap();
        assert_eq!(f.stats().data_page_programs, 1);
        assert_eq!(f.stats().pending_pairs, 0);

        // After flush the page decodes to both pairs.
        let (d, s) = f.read_data_page(e1.head).unwrap();
        assert_eq!(SpareMeta::decode(&s).unwrap().kind, layout::PageKind::Head);
        let entries = layout::decode_head(&d, 512).unwrap();
        assert_eq!(entries.len(), 2);
    }

    #[test]
    fn page_rolls_when_full() {
        let mut f = ftl();
        // 512-byte pages; ~100-byte values → ~4 per page.
        let mut heads = Vec::new();
        for i in 0..12u64 {
            let e = f.store_pair(sig(i), format!("key{i}").as_bytes(), &[i as u8; 100], 0).unwrap();
            heads.push(e.head);
        }
        let distinct: std::collections::HashSet<_> = heads.iter().collect();
        assert!(distinct.len() >= 3, "pairs spread across pages: {distinct:?}");
        assert!(f.stats().data_page_programs >= 2, "earlier pages flushed by rollover");
    }

    #[test]
    fn large_value_body_lands_in_extent_partition() {
        let mut f = ftl();
        let value = vec![0xabu8; 1500]; // 512-byte pages: frag 476 + 2 body pages
        let e = f.store_pair(sig(7), b"big", &value, 0).unwrap();
        assert_eq!(e.cont_pages, 2);
        assert_eq!(e.cont_bytes, 1024);
        let cont = e.cont_start.expect("body present");
        assert_ne!(cont.block, e.head.block, "body lives in the extent partition");

        // The head record is still buffering; flush and decode it.
        f.flush_data_builder().unwrap();
        let (d, _) = f.read_data_page(e.head).unwrap();
        let entry = layout::find_in_head(&d, 512, sig(7)).unwrap();
        assert_eq!(entry.val_total_len as usize, value.len());
        assert_eq!(entry.cont_start, Some(cont));

        // Body pages are full, carry the owning signature, and reassemble.
        let mut rebuilt = entry.value_frag.to_vec();
        for c in 0..e.cont_pages {
            let (cd, cs) = f.read_data_page(Ppa::new(cont.block, cont.page + c)).unwrap();
            let meta = SpareMeta::decode(&cs).unwrap();
            assert_eq!(meta.kind, layout::PageKind::Cont);
            assert_eq!(meta.sig, Some(sig(7)));
            assert_eq!(cd.len(), 512, "body pages pack full");
            rebuilt.extend_from_slice(&cd);
        }
        assert_eq!(rebuilt, value);
    }

    #[test]
    fn page_aligned_values_waste_nothing() {
        // A page-sized value must cost ~1 body page + a few header bytes,
        // not two pages (regression for 50% fill waste).
        let mut f = ftl();
        for i in 0..8u64 {
            let e = f.store_pair(sig(i), b"k", &[7u8; 512], 0).unwrap();
            assert_eq!(e.cont_pages, 1);
            assert_eq!(e.cont_bytes, 512);
            assert!(e.head_bytes < 40);
        }
        // All 8 head records share one buffered head page.
        assert_eq!(f.stats().pending_pairs, 8);
        assert_eq!(f.stats().data_page_programs, 8, "8 full body pages only");
    }

    #[test]
    fn extent_body_never_escapes_block() {
        let mut f = ftl();
        for i in 0..16u64 {
            f.store_pair(sig(i), b"k", &[1u8; 100], 0).unwrap();
        }
        let big = vec![9u8; 2000];
        let e = f.store_pair(sig(100), b"big", &big, 0).unwrap();
        let cont = e.cont_start.unwrap();
        assert!(cont.page + e.cont_pages <= f.geometry().pages_per_block);
    }

    #[test]
    fn value_too_large_rejected() {
        let mut f = ftl();
        let max = f.max_value_bytes();
        let err = f.store_pair(sig(1), b"k", &vec![0u8; max + 1], 0).unwrap_err();
        assert!(matches!(err, FtlError::ValueTooLarge { .. }));
        // At the limit it works.
        assert!(f.store_pair(sig(2), b"k", &vec![0u8; max], 0).is_ok());
    }

    #[test]
    fn key_too_large_rejected() {
        let mut f = ftl();
        let err = f.store_pair(sig(1), &vec![b'k'; 600], b"v", 0).unwrap_err();
        assert!(matches!(err, FtlError::KeyTooLarge { .. }));
    }

    #[test]
    fn mark_stale_moves_bytes() {
        let mut f = ftl();
        let e = f.store_pair(sig(1), b"k", &[0u8; 64], 0).unwrap();
        let live_before = f.total_live_bytes();
        f.mark_stale(&e);
        assert_eq!(f.total_live_bytes(), live_before - e.bytes());
        assert_eq!(f.total_stale_bytes(), e.bytes());
    }

    #[test]
    fn index_page_roundtrip_and_retire() {
        let mut f = ftl();
        let data = Bytes::from(vec![0x5au8; 512]);
        let ppa = f.write_index_page(data.clone(), SpareMeta::index_page()).unwrap();
        assert_eq!(f.read_index_page(ppa).unwrap(), data);
        assert_eq!(f.stats().index_page_programs, 1);
        assert_eq!(f.stats().index_page_reads, 1);
        let live = f.total_live_bytes();
        f.retire_index_page(ppa, 512);
        assert_eq!(f.total_live_bytes(), live - 512);
    }

    #[test]
    fn timed_ops_drain() {
        let mut f = Ftl::new(FtlConfig {
            profile: rhik_nand::DeviceProfile::kvemu_like(),
            ..FtlConfig::tiny()
        });
        f.store_pair(sig(1), b"k", &vec![0u8; 1500], 0).unwrap();
        let ops = f.drain_timed_ops();
        assert!(!ops.is_empty());
        assert!(ops.iter().all(|o| o.duration_ns > 0));
        assert!(f.drain_timed_ops().is_empty(), "drain clears the queue");
    }

    #[test]
    fn needs_gc_when_pool_exhausted() {
        let mut f = ftl(); // 8 blocks, 1 reserved, 512B pages
        let mut result = Ok(());
        for i in 0..200u64 {
            match f.store_pair(sig(i), b"k", &[0u8; 400], 0) {
                Ok(_) => {}
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        assert_eq!(result.unwrap_err(), FtlError::NeedsGc);
    }

    #[test]
    fn utilization_grows_with_data() {
        let mut f = ftl();
        assert_eq!(f.utilization(), 0.0);
        f.store_pair(sig(1), b"k", &[0u8; 256], 0).unwrap();
        assert!(f.utilization() > 0.0);
    }

    #[test]
    fn wear_stats_track_erases() {
        let mut f = ftl();
        assert_eq!(f.wear_stats(), (0, 0, 0.0));
        f.store_pair(sig(1), b"k", &[0u8; 100], 0).unwrap();
        f.close_data_block().unwrap();
        let block = 0; // first data block
        f.erase_block(block).unwrap();
        let (min, max, mean) = f.wear_stats();
        assert_eq!(min, 0);
        assert_eq!(max, 1);
        assert!(mean > 0.0 && mean < 1.0);
    }

    #[test]
    fn power_loss_clears_dram_state() {
        let mut f = ftl();
        f.store_pair(sig(1), b"k", &[0u8; 64], 0).unwrap();
        assert_eq!(f.stats().pending_pairs, 1);
        f.cache().insert(42, bytes::Bytes::from(vec![0u8; 64]), true);
        f.simulate_power_loss();
        assert_eq!(f.stats().pending_pairs, 0);
        assert!(f.cache_ref().is_empty());
        assert_eq!(f.pending_pair(sig(1)), None);
        // The lost pair's bytes are accounted stale so GC can reclaim.
        assert!(f.total_stale_bytes() > 0);
    }

    #[test]
    fn audit_kind_tags_match_layout() {
        // The dependency-free audit crate mirrors the spare-area kind tags
        // as constants; pin them to the layout's actual encoding.
        assert_eq!(SpareMeta::head_page().encode()[0], rhik_audit::KIND_HEAD);
        assert_eq!(SpareMeta::cont_page(sig(1)).encode()[0], rhik_audit::KIND_CONT);
        assert_eq!(SpareMeta::index_page().encode()[0], rhik_audit::KIND_INDEX);
        assert_eq!(SpareMeta::directory_page().encode()[0], rhik_audit::KIND_DIRECTORY);
    }

    #[test]
    fn audit_flash_reflects_accounting() {
        let mut f = ftl();
        f.store_pair(sig(1), b"k", &[0u8; 64], 0).unwrap();
        f.flush_data_builder().unwrap();
        let snap = f.audit_flash(0);
        assert_eq!(snap.total_blocks, f.geometry().blocks);
        assert_eq!(snap.free_raw, f.free_blocks_raw());
        assert!(snap.nand_violations.is_empty());
        let live: u64 = snap.blocks.iter().map(|b| b.live_bytes).sum();
        assert_eq!(live, f.total_live_bytes());
        assert!(snap.blocks.iter().any(|b| b.stream == Some("data") && b.pages_programmed > 0));
    }

    #[test]
    fn delete_before_flush_drops_pending() {
        let mut f = ftl();
        let e = f.store_pair(sig(1), b"k", b"v", 0).unwrap();
        f.mark_stale(&e);
        f.drop_pending(sig(1));
        assert_eq!(f.pending_pair(sig(1)), None);
    }
}
