//! FTL substrate shared by RHIK and the baseline indexes.
//!
//! KVSSD firmware is "made by extending the block-based SSD firmware"
//! (§II-B): variable-length KV pairs are stored as blobs in a log-like
//! manner, an index maps key signatures to physical locations, and garbage
//! collection scans key signatures in flash pages and validates them against
//! the index. This crate provides those firmware services, independent of
//! *which* index is plugged in:
//!
//! * [`Ftl`] — the firmware context: flash array + block accounting +
//!   per-stream log writers + DRAM cache + op/byte statistics.
//! * [`layout`] — the RHIK data layout of Fig. 4: head pages carrying a KV
//!   pair count, packed pairs, and a key-signature information area;
//!   continuation pages for large values (extent-based packing, §IV-A5).
//! * [`cache`] — a byte-budgeted LRU for flash-resident index pages; its
//!   hit/miss counters drive Fig. 5a.
//! * [`gc`] — greedy garbage collection over the data log (§IV-B),
//!   generic over the installed index.
//! * [`IndexBackend`] — the trait RHIK (`rhik-core`) and the baselines
//!   (`rhik-baseline`) implement; the device emulator is generic over it.

pub mod cache;
pub mod gc;
pub mod layout;
pub mod readview;
pub mod sync;

mod alloc;
mod ftl;
mod traits;

pub use alloc::{AcquireClass, BlockMeta, NeedsGc, Stream};
pub use cache::IndexPageCache;
pub use ftl::{Ftl, FtlConfig, FtlError, FtlStats, MediaReader, WrittenExtent};
pub use gc::{GcConfig, GcPolicy, GcReport};
pub use readview::{GenSnapshot, Lookup, ReadHit, ReadView};
pub use sync::{FlashPool, VersionTable};
pub use traits::{IndexBackend, IndexError, IndexStats, InsertOutcome, ResizeEvent, TimedOp};
