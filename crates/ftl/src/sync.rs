//! Thread-safe flash allocation boundary for sharded execution.
//!
//! A sharded device runs one command stream per shard, each with its own
//! FTL front-end (log writers, cache, accounting) — but all shards share
//! one physical flash array, so erase blocks must come from a single
//! device-wide pool or shards could over-commit the same capacity. The
//! [`FlashPool`] is that narrow synchronized interface: shards *lease*
//! erased blocks from it and *return* blocks after erasing them, holding
//! the pool lock only for a queue pop/push.
//!
//! Correctness argument: the pool only ever hands out blocks in the
//! erased state (initially, or released after an explicit erase), and a
//! block is owned by at most one shard between lease and release. A
//! shard's private NAND view of a block it has never programmed is
//! exactly the erased state, so ownership migration between shards is
//! sound. GC watermarks read the *global* free count, which keeps the
//! "free space low → collect" feedback loop device-wide even though each
//! shard only collects its own leased blocks.

use std::collections::VecDeque;
use std::fmt;

// Under `RUSTFLAGS="--cfg loom"` every primitive in this module swaps to
// the loom model types, so the loom tests in `tests/loom_pool.rs` explore
// the pool's interleavings without a parallel implementation. The rest of
// the workspace imports `Mutex`/`MutexGuard` from here (not `std::sync`)
// for the same reason — wslint rule `std-mutex-outside-sync` enforces it.
#[cfg(loom)]
use loom::sync::atomic::{AtomicU32, Ordering};
#[cfg(loom)]
pub use loom::sync::{Mutex, MutexGuard};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU32, Ordering};
#[cfg(not(loom))]
pub use std::sync::{Mutex, MutexGuard};

use rhik_nand::{BlockId, NandGeometry};

use crate::alloc::{AcquireClass, NeedsGc};

/// Device-wide free-block pool shared by every shard's allocator.
pub struct FlashPool {
    free: Mutex<VecDeque<BlockId>>,
    /// Cached `free.len()` so watermark checks never take the lock.
    free_count: AtomicU32,
    /// Blocks withheld from normal allocation for GC scratch (global, not
    /// per shard — GC in any shard may dip into it).
    reserve: u32,
    total_blocks: u32,
    /// Device-wide GC mutual exclusion (see [`FlashPool::gc_permit`]).
    gc_permit: Mutex<()>,
}

impl FlashPool {
    /// A pool owning every block of `geometry`, with `reserve` blocks
    /// withheld for GC relocation.
    pub fn new(geometry: NandGeometry, reserve: u32) -> Self {
        assert!(
            (reserve as u64) < geometry.blocks as u64,
            "reserve must leave at least one allocatable block"
        );
        FlashPool {
            free: Mutex::new((0..geometry.blocks).collect()),
            free_count: AtomicU32::new(geometry.blocks),
            reserve,
            total_blocks: geometry.blocks,
            gc_permit: Mutex::new(()),
        }
    }

    /// Serialize garbage collection device-wide.
    ///
    /// GC leases relocation-target blocks below the reserve floor; if
    /// every shard collected at once they could race the pool to zero
    /// and strand each other mid-relocation. One collector at a time
    /// bounds the transient demand to a single shard's open blocks —
    /// which is what the reserve is sized for — and mirrors real
    /// devices, where a single GC engine serves all queues. Waiters
    /// block until the current collection finishes.
    pub fn gc_permit(&self) -> MutexGuard<'_, ()> {
        // The permit guards no data, so a poisoned lock carries no
        // broken invariant.
        self.gc_permit.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    fn queue(&self) -> MutexGuard<'_, VecDeque<BlockId>> {
        // A panic can only poison the lock between a pop/push pair; the
        // queue itself is always consistent.
        self.free.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Lease one erased block. The caller's [`AcquireClass`] decides how
    /// deep into the tiered reserve it may reach: host data stops at the
    /// full reserve, metadata write-backs at half, GC at zero.
    pub fn acquire(&self, class: AcquireClass) -> Result<BlockId, NeedsGc> {
        let floor = class.floor(self.reserve);
        let mut q = self.queue();
        if q.len() <= floor {
            return Err(NeedsGc);
        }
        let block = q.pop_front().expect("checked non-empty");
        self.free_count.store(q.len() as u32, Ordering::Release);
        Ok(block)
    }

    /// Return an erased block to the pool.
    pub fn release(&self, block: BlockId) {
        let mut q = self.queue();
        debug_assert!(!q.contains(&block), "double release of block {block}");
        q.push_back(block);
        self.free_count.store(q.len() as u32, Ordering::Release);
    }

    /// Blocks available to normal allocation (excludes the reserve).
    pub fn free_blocks(&self) -> u32 {
        self.free_count.load(Ordering::Acquire).saturating_sub(self.reserve)
    }

    /// Blocks in the pool including the reserve.
    pub fn free_blocks_raw(&self) -> u32 {
        self.free_count.load(Ordering::Acquire)
    }

    /// Total blocks the pool was created with.
    pub fn total_blocks(&self) -> u32 {
        self.total_blocks
    }

    /// Reserve floor (diagnostics).
    pub fn reserve(&self) -> u32 {
        self.reserve
    }
}

impl fmt::Debug for FlashPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlashPool")
            .field("free", &self.free_blocks_raw())
            .field("reserve", &self.reserve)
            .field("total_blocks", &self.total_blocks)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    fn pool() -> FlashPool {
        FlashPool::new(NandGeometry::tiny(), 2) // 8 blocks, 2 reserved
    }

    #[test]
    fn leases_are_exclusive() {
        let p = pool();
        let mut seen = HashSet::new();
        while let Ok(b) = p.acquire(AcquireClass::Gc) {
            assert!(seen.insert(b), "block {b} leased twice");
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn reserve_tiers_hold() {
        let p = pool(); // 8 blocks, 2 reserved → metadata floor 1, gc floor 0
        for _ in 0..6 {
            p.acquire(AcquireClass::Normal).unwrap();
        }
        assert_eq!(p.free_blocks(), 0);
        assert_eq!(p.acquire(AcquireClass::Normal), Err(NeedsGc));
        assert_eq!(p.free_blocks_raw(), 2);
        // Metadata may take one more; the last block belongs to GC alone.
        assert!(p.acquire(AcquireClass::Metadata).is_ok());
        assert_eq!(p.acquire(AcquireClass::Metadata), Err(NeedsGc));
        assert_eq!(p.free_blocks_raw(), 1);
        assert!(p.acquire(AcquireClass::Gc).is_ok());
        assert_eq!(p.acquire(AcquireClass::Gc), Err(NeedsGc));
    }

    #[test]
    fn release_recycles() {
        let p = pool();
        let b = p.acquire(AcquireClass::Normal).unwrap();
        let before = p.free_blocks_raw();
        p.release(b);
        assert_eq!(p.free_blocks_raw(), before + 1);
    }

    #[test]
    fn concurrent_lease_release_never_duplicates() {
        let p = Arc::new(FlashPool::new(NandGeometry { blocks: 64, ..NandGeometry::tiny() }, 4));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let p = Arc::clone(&p);
                scope.spawn(move || {
                    let mut held = Vec::new();
                    for round in 0..200 {
                        if let Ok(b) = p.acquire(AcquireClass::Normal) {
                            assert!(!held.contains(&b));
                            held.push(b);
                        }
                        if round % 3 == 0 {
                            if let Some(b) = held.pop() {
                                p.release(b);
                            }
                        }
                    }
                    for b in held {
                        p.release(b);
                    }
                });
            }
        });
        assert_eq!(p.free_blocks_raw(), 64);
    }
}
