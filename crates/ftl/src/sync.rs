//! The synchronization module: every cross-thread primitive the firmware
//! paths use lives here, and *only* here (wslint rules
//! `std-mutex-outside-sync` and `raw-atomic-outside-sync` enforce it).
//!
//! Three families of primitives:
//!
//! * [`FlashPool`] — the thread-safe flash allocation boundary for
//!   sharded execution. A sharded device runs one command stream per
//!   shard, each with its own FTL front-end, but all shards share one
//!   physical flash array, so erase blocks must come from a single
//!   device-wide pool or shards could over-commit the same capacity.
//! * [`EpochDomain`] / [`GenCell`] — epoch-based reclamation and the
//!   generation-published pointer built on it. Readers *pin* the domain
//!   for the few instructions it takes to load the current generation
//!   pointer and take a strong reference; writers publish a new
//!   generation with one atomic swap and *retire* the old one, which is
//!   reclaimed only once no reader can still be inside that window.
//!   This is the lock-free read-path backbone (DESIGN.md §concurrency).
//! * [`SeqLock`] / [`Counter`] — per-bucket version validation for
//!   optimistic readers, and a relaxed statistics counter so hot paths
//!   outside this module never touch a raw atomic directly.
//!
//! FlashPool correctness argument: the pool only ever hands out blocks in
//! the erased state (initially, or released after an explicit erase), and
//! a block is owned by at most one shard between lease and release. A
//! shard's private NAND view of a block it has never programmed is
//! exactly the erased state, so ownership migration between shards is
//! sound. GC watermarks read the *global* free count, which keeps the
//! "free space low → collect" feedback loop device-wide even though each
//! shard only collects its own leased blocks.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

// Under `RUSTFLAGS="--cfg loom"` every primitive in this module swaps to
// the loom model types, so the loom tests in `tests/loom_pool.rs` and
// `tests/loom_epoch.rs` explore their interleavings without a parallel
// implementation. The rest of the workspace imports its primitives from
// here (not `std::sync`) for the same reason.
#[cfg(loom)]
pub use loom::sync::Condvar;
#[cfg(loom)]
pub use loom::sync::{Mutex, MutexGuard};
#[cfg(not(loom))]
pub use std::sync::Condvar;
#[cfg(not(loom))]
pub use std::sync::{Mutex, MutexGuard};

/// Atomic types for the whole workspace, swapped to the loom models under
/// `--cfg loom`. Firmware code outside this module must not name these
/// directly (wslint `raw-atomic-outside-sync`); it uses the typed
/// primitives below instead.
pub mod atomic {
    #[cfg(loom)]
    pub use loom::sync::atomic::{
        fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };
    #[cfg(not(loom))]
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };
}

use atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use rhik_nand::{BlockId, NandGeometry};

use crate::alloc::{AcquireClass, NeedsGc};

// ---------------------------------------------------------------- epochs

/// Pin stripes: more than the thread counts the emulator runs with, so
/// concurrent readers rarely share a stripe's cache line.
const PIN_STRIPES: usize = 16;

/// A cache-line-padded pin counter so reader pins on different stripes
/// never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PinStripe(AtomicU64);

/// Epoch-based reclamation domain (the "pin/quiesce counters" of the
/// lock-free read path).
///
/// Protocol: a reader [`pin`](EpochDomain::pin)s the domain *before*
/// loading a [`GenCell`] pointer and keeps the guard alive until it holds
/// a strong `Arc` reference; a writer that unpublishes an object
/// [`retire`](EpochDomain::retire)s it, and the domain drops retired
/// objects only at a moment when every pin counter reads zero. Any
/// reader that pins *after* that observation can only load pointers
/// published *after* the retirement (SeqCst total order: unpublish ≺
/// retire ≺ quiescence check ≺ late pin ≺ late pointer load), so no
/// retired object is ever dereferenced. Readers that pinned, cloned and
/// unpinned are protected by the `Arc` strong count itself — the epoch
/// only has to cover the clone window.
///
/// The `epoch` counter is advanced on every retirement; it doubles as the
/// generation number handed to [`GenCell::publish`] callers for
/// diagnostics.
pub struct EpochDomain {
    epoch: AtomicU64,
    pins: [PinStripe; PIN_STRIPES],
    /// Retired objects awaiting a quiescent moment. Boxed as `Any` so one
    /// domain can reclaim heterogeneous generations (directory snapshots
    /// and bucket entry lists alike).
    garbage: Mutex<Vec<Box<dyn std::any::Any + Send>>>,
}

impl Default for EpochDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochDomain {
    pub fn new() -> Self {
        EpochDomain {
            epoch: AtomicU64::new(0),
            pins: std::array::from_fn(|_| PinStripe::default()),
            garbage: Mutex::new(Vec::new()),
        }
    }

    /// The stripe this thread pins on — assigned round-robin on first use
    /// so a fixed thread population spreads across stripes.
    fn stripe() -> usize {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % PIN_STRIPES;
        }
        STRIPE.with(|s| *s)
    }

    /// Pin the domain: retirements stay unreclaimed until the returned
    /// guard drops. The critical section must be short — a pointer load
    /// plus a reference-count increment — never a flash read.
    pub fn pin(&self) -> PinGuard<'_> {
        let stripe = Self::stripe();
        self.pins[stripe].0.fetch_add(1, Ordering::SeqCst);
        PinGuard { domain: self, stripe }
    }

    /// Current generation number (advanced by every retirement).
    pub fn generation(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Hand `obj` to the domain for deferred destruction. The caller must
    /// already have unpublished it — after this call no new reader may be
    /// able to reach `obj` through a [`GenCell`].
    pub fn retire<T: Send + 'static>(&self, obj: T) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        self.garbage().push(Box::new(obj));
        self.try_reclaim();
    }

    fn garbage(&self) -> MutexGuard<'_, Vec<Box<dyn std::any::Any + Send>>> {
        // A panic cannot leave the garbage list inconsistent; dropping a
        // poisoned list's contents is still sound.
        self.garbage.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    /// True while no reader holds a pin. Checked under the garbage lock
    /// so the verdict covers everything already retired.
    pub fn quiescent(&self) -> bool {
        self.pins.iter().all(|p| p.0.load(Ordering::SeqCst) == 0)
    }

    /// Drop retired objects if the domain is quiescent right now. Returns
    /// how many objects were reclaimed.
    pub fn try_reclaim(&self) -> usize {
        let mut garbage = self.garbage();
        if garbage.is_empty() || !self.quiescent() {
            return 0;
        }
        let reclaimed = garbage.len();
        garbage.clear();
        reclaimed
    }

    /// Block (spinning through the scheduler) until all currently retired
    /// objects are reclaimed — shutdown and test hygiene, not a hot path.
    pub fn quiesce(&self) {
        while !self.garbage().is_empty() {
            if self.try_reclaim() == 0 {
                std::thread::yield_now();
            }
        }
    }

    /// Retired objects awaiting reclamation (diagnostics/tests).
    pub fn garbage_len(&self) -> usize {
        self.garbage().len()
    }
}

impl fmt::Debug for EpochDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochDomain")
            .field("epoch", &self.generation())
            .field("garbage", &self.garbage_len())
            .finish()
    }
}

/// An active reader pin; unpins its stripe on drop.
pub struct PinGuard<'a> {
    domain: &'a EpochDomain,
    stripe: usize,
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        self.domain.pins[self.stripe].0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A generation-published pointer: one `Arc<T>` behind an atomic pointer,
/// replaced wholesale by writers and read without locks.
///
/// All `unsafe` in the workspace lives in this type (plus the paired
/// `Drop`), and every block is justified by the [`EpochDomain`] protocol:
/// the raw pointer always carries exactly one strong count owned by the
/// cell, readers only touch it while pinned, and the swapped-out owner
/// reference is retired rather than dropped.
pub struct GenCell<T: Send + Sync + 'static> {
    ptr: atomic::AtomicPtr<T>,
}

impl<T: Send + Sync + 'static> GenCell<T> {
    pub fn new(initial: Arc<T>) -> Self {
        GenCell { ptr: atomic::AtomicPtr::new(Arc::into_raw(initial).cast_mut()) }
    }

    /// Take a strong reference to the current generation. Lock-free: one
    /// pin, one pointer load, one reference-count increment.
    pub fn load(&self, domain: &EpochDomain) -> Arc<T> {
        let _pin = domain.pin();
        let ptr = self.ptr.load(Ordering::SeqCst);
        // SAFETY: `ptr` came from `Arc::into_raw` (new/publish) and its
        // cell-owned strong count is still outstanding: `publish` retires
        // the swapped-out owner into `domain`, and the domain cannot
        // reclaim it while our pin is held (quiescence requires every pin
        // stripe at zero). Incrementing the strong count under the pin
        // therefore acts on a live Arc allocation, and `from_raw` adopts
        // the count we just added.
        unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        }
    }

    /// Publish `next` as the new current generation and retire the old
    /// one into `domain`. Callers serialize publishes per cell (the shard
    /// writer lock); concurrent readers are the point.
    pub fn publish(&self, domain: &EpochDomain, next: Arc<T>) {
        let old = self.ptr.swap(Arc::into_raw(next).cast_mut(), Ordering::SeqCst);
        // SAFETY: `old` was placed by `new` or a previous `publish`, each
        // of which moved exactly one strong count into the cell; we are
        // the only writer swapping it out, so we uniquely reclaim that
        // count. The resulting Arc is retired, not dropped: readers
        // pinned before the swap may still be incrementing it.
        let old = unsafe { Arc::from_raw(old) };
        domain.retire(old);
    }
}

impl<T: Send + Sync + 'static> Drop for GenCell<T> {
    fn drop(&mut self) {
        let ptr = self.ptr.load(Ordering::SeqCst);
        // SAFETY: dropping the cell ends all access through it; the
        // cell-owned strong count placed by new/publish is released here.
        drop(unsafe { Arc::from_raw(ptr) });
    }
}

impl<T: Send + Sync + fmt::Debug + 'static> fmt::Debug for GenCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GenCell").finish_non_exhaustive()
    }
}

// --------------------------------------------------------------- seqlock

/// Per-bucket sequence lock for optimistic read validation.
///
/// Writers bracket every mutation with [`write_begin`](SeqLock::write_begin)
/// / [`write_end`](SeqLock::write_end) (version becomes odd, then even
/// again); readers snapshot an even version, do their optimistic work —
/// including the record-page flash read — and
/// [`read_validate`](SeqLock::read_validate) afterwards. A failed
/// validation means a concurrent split, in-place update or GC relocation
/// overlapped the read; the caller falls back to the locked path.
#[derive(Debug, Default)]
pub struct SeqLock {
    seq: AtomicU64,
}

impl SeqLock {
    pub fn new() -> Self {
        SeqLock { seq: AtomicU64::new(0) }
    }

    /// Begin an optimistic read: `Some(version)` if no write is in
    /// progress, `None` (caller should fall back) if the version is odd.
    pub fn read_begin(&self) -> Option<u64> {
        let seq = self.seq.load(Ordering::SeqCst);
        (seq & 1 == 0).then_some(seq)
    }

    /// True iff no write overlapped since `begin` was observed.
    pub fn read_validate(&self, begin: u64) -> bool {
        atomic::fence(Ordering::SeqCst);
        self.seq.load(Ordering::SeqCst) == begin
    }

    /// Enter the write critical section (version becomes odd). Writers
    /// are serialized externally (shard writer lock).
    pub fn write_begin(&self) {
        let prev = self.seq.fetch_add(1, Ordering::SeqCst);
        debug_assert!(prev & 1 == 0, "seqlock write_begin while a write is already open");
    }

    /// Leave the write critical section (version even again).
    pub fn write_end(&self) {
        let prev = self.seq.fetch_add(1, Ordering::SeqCst);
        debug_assert!(prev & 1 == 1, "seqlock write_end without a matching write_begin");
    }
}

// -------------------------------------------------------- version table

/// Striped per-bucket invalidation versions for the DRAM hot-object
/// cache tier.
///
/// Every value mutation reaching the index — put, in-place update,
/// delete, GC relocation — bumps the version of the signature's stripe
/// *after* the mutation is applied (the index calls it from the same
/// funnel points that keep the [`crate::ReadView`] coherent). A cache
/// fill reads the stripe version *before* fetching the value and stores
/// the entry tagged with that version; a cached entry is served only
/// while its fill version still equals the stripe's current version.
///
/// Safety argument (the loom model in `rhik-hotcache` pins this down):
/// a wrong-value serve would need a mutation whose bump was already
/// counted in the fill version but whose value effect the fill's read
/// missed. Bumps are SeqCst and happen after the mutation, and the
/// fill's value read synchronizes with the mutator (shard lock or
/// validated seqlock), so "bump visible, mutation invisible" cannot
/// happen. Mutations that land *after* the fill's version read make the
/// entry fail validation — a spurious miss, never a stale hit. Stripe
/// collisions only ever add spurious invalidations (fail-open).
pub struct VersionTable {
    slots: Box<[AtomicU64]>,
    bits: u32,
}

impl VersionTable {
    /// A table of `1 << bits` version stripes.
    pub fn new(bits: u32) -> Self {
        let bits = bits.clamp(1, 24);
        let slots = (0..1usize << bits).map(|_| AtomicU64::new(0)).collect::<Vec<_>>().into();
        VersionTable { slots, bits }
    }

    /// Stripe of a signature: a multiplicative mix so directory-local
    /// (low-bit) and shard-local (high-bit) sig structure both spread.
    #[inline]
    fn slot(&self, sig: u64) -> usize {
        (sig.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - self.bits)) as usize
    }

    /// Current version of `sig`'s stripe.
    #[inline]
    pub fn load(&self, sig: u64) -> u64 {
        self.slots[self.slot(sig)].load(Ordering::SeqCst)
    }

    /// Invalidate every cached entry tagged with the stripe's current
    /// version. Called after the index mutation is applied.
    #[inline]
    pub fn bump(&self, sig: u64) {
        self.slots[self.slot(sig)].fetch_add(1, Ordering::SeqCst);
    }

    /// Number of stripes (diagnostics).
    pub fn stripes(&self) -> usize {
        self.slots.len()
    }
}

impl fmt::Debug for VersionTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VersionTable").field("stripes", &self.slots.len()).finish()
    }
}

// -------------------------------------------------------------- counters

/// Relaxed monotonic counter for hot-path statistics, so firmware code
/// outside this module never names a raw atomic or a memory ordering.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Raise the stored value to at least `v` (high-watermark tracking).
    #[inline]
    pub fn note_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Overwrite the value (configuration flags, resettable gauges).
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Device-wide free-block pool shared by every shard's allocator.
pub struct FlashPool {
    free: Mutex<VecDeque<BlockId>>,
    /// Cached `free.len()` so watermark checks never take the lock.
    free_count: AtomicU32,
    /// Blocks withheld from normal allocation for GC scratch (global, not
    /// per shard — GC in any shard may dip into it).
    reserve: u32,
    total_blocks: u32,
    /// Device-wide GC mutual exclusion (see [`FlashPool::gc_permit`]).
    gc_permit: Mutex<()>,
}

impl FlashPool {
    /// A pool owning every block of `geometry`, with `reserve` blocks
    /// withheld for GC relocation.
    pub fn new(geometry: NandGeometry, reserve: u32) -> Self {
        assert!(
            (reserve as u64) < geometry.blocks as u64,
            "reserve must leave at least one allocatable block"
        );
        FlashPool {
            free: Mutex::new((0..geometry.blocks).collect()),
            free_count: AtomicU32::new(geometry.blocks),
            reserve,
            total_blocks: geometry.blocks,
            gc_permit: Mutex::new(()),
        }
    }

    /// Serialize garbage collection device-wide.
    ///
    /// GC leases relocation-target blocks below the reserve floor; if
    /// every shard collected at once they could race the pool to zero
    /// and strand each other mid-relocation. One collector at a time
    /// bounds the transient demand to a single shard's open blocks —
    /// which is what the reserve is sized for — and mirrors real
    /// devices, where a single GC engine serves all queues. Waiters
    /// block until the current collection finishes.
    pub fn gc_permit(&self) -> MutexGuard<'_, ()> {
        // The permit guards no data, so a poisoned lock carries no
        // broken invariant.
        self.gc_permit.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    fn queue(&self) -> MutexGuard<'_, VecDeque<BlockId>> {
        // A panic can only poison the lock between a pop/push pair; the
        // queue itself is always consistent.
        self.free.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Lease one erased block. The caller's [`AcquireClass`] decides how
    /// deep into the tiered reserve it may reach: host data stops at the
    /// full reserve, metadata write-backs at half, GC at zero.
    pub fn acquire(&self, class: AcquireClass) -> Result<BlockId, NeedsGc> {
        let floor = class.floor(self.reserve);
        let mut q = self.queue();
        if q.len() <= floor {
            return Err(NeedsGc);
        }
        let block = q.pop_front().expect("checked non-empty");
        self.free_count.store(q.len() as u32, Ordering::Release);
        Ok(block)
    }

    /// Return an erased block to the pool.
    pub fn release(&self, block: BlockId) {
        let mut q = self.queue();
        debug_assert!(!q.contains(&block), "double release of block {block}");
        q.push_back(block);
        self.free_count.store(q.len() as u32, Ordering::Release);
    }

    /// Blocks available to normal allocation (excludes the reserve).
    pub fn free_blocks(&self) -> u32 {
        self.free_count.load(Ordering::Acquire).saturating_sub(self.reserve)
    }

    /// Blocks in the pool including the reserve.
    pub fn free_blocks_raw(&self) -> u32 {
        self.free_count.load(Ordering::Acquire)
    }

    /// Total blocks the pool was created with.
    pub fn total_blocks(&self) -> u32 {
        self.total_blocks
    }

    /// Reserve floor (diagnostics).
    pub fn reserve(&self) -> u32 {
        self.reserve
    }
}

impl fmt::Debug for FlashPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlashPool")
            .field("free", &self.free_blocks_raw())
            .field("reserve", &self.reserve)
            .field("total_blocks", &self.total_blocks)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    fn pool() -> FlashPool {
        FlashPool::new(NandGeometry::tiny(), 2) // 8 blocks, 2 reserved
    }

    #[test]
    fn version_table_bumps_are_per_stripe() {
        let t = VersionTable::new(6);
        assert_eq!(t.stripes(), 64);
        let v0 = t.load(42);
        t.bump(42);
        assert_eq!(t.load(42), v0 + 1);
        // Another signature in a different stripe is unaffected. Find
        // one deterministically rather than assuming the mix.
        let other = (0..1024u64).find(|&s| t.load(s) == 0).expect("64 stripes, 1 bumped");
        t.bump(42);
        assert_eq!(t.load(other), 0);
        assert_eq!(t.load(42), v0 + 2);
    }

    #[test]
    fn version_table_concurrent_bumps_all_land() {
        let t = Arc::new(VersionTable::new(4));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let t = Arc::clone(&t);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        t.bump(7);
                    }
                });
            }
        });
        assert_eq!(t.load(7), 4000);
    }

    #[test]
    fn leases_are_exclusive() {
        let p = pool();
        let mut seen = HashSet::new();
        while let Ok(b) = p.acquire(AcquireClass::Gc) {
            assert!(seen.insert(b), "block {b} leased twice");
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn reserve_tiers_hold() {
        let p = pool(); // 8 blocks, 2 reserved → metadata floor 1, gc floor 0
        for _ in 0..6 {
            p.acquire(AcquireClass::Normal).unwrap();
        }
        assert_eq!(p.free_blocks(), 0);
        assert_eq!(p.acquire(AcquireClass::Normal), Err(NeedsGc));
        assert_eq!(p.free_blocks_raw(), 2);
        // Metadata may take one more; the last block belongs to GC alone.
        assert!(p.acquire(AcquireClass::Metadata).is_ok());
        assert_eq!(p.acquire(AcquireClass::Metadata), Err(NeedsGc));
        assert_eq!(p.free_blocks_raw(), 1);
        assert!(p.acquire(AcquireClass::Gc).is_ok());
        assert_eq!(p.acquire(AcquireClass::Gc), Err(NeedsGc));
    }

    #[test]
    fn release_recycles() {
        let p = pool();
        let b = p.acquire(AcquireClass::Normal).unwrap();
        let before = p.free_blocks_raw();
        p.release(b);
        assert_eq!(p.free_blocks_raw(), before + 1);
    }

    #[test]
    fn epoch_defers_reclaim_while_pinned() {
        let d = EpochDomain::new();
        let pin = d.pin();
        d.retire(vec![1u8, 2, 3]);
        assert_eq!(d.garbage_len(), 1, "pinned reader must hold back reclamation");
        assert_eq!(d.try_reclaim(), 0);
        drop(pin);
        assert_eq!(d.try_reclaim(), 1);
        assert_eq!(d.garbage_len(), 0);
    }

    #[test]
    fn epoch_generation_advances_per_retire() {
        let d = EpochDomain::new();
        assert_eq!(d.generation(), 0);
        d.retire(0u64);
        d.retire(1u64);
        assert_eq!(d.generation(), 2);
    }

    #[test]
    fn gencell_load_sees_latest_publish() {
        let d = EpochDomain::new();
        let cell = GenCell::new(Arc::new(7u64));
        assert_eq!(*cell.load(&d), 7);
        cell.publish(&d, Arc::new(8u64));
        assert_eq!(*cell.load(&d), 8);
        d.quiesce();
        assert_eq!(d.garbage_len(), 0);
    }

    #[test]
    fn gencell_old_generation_survives_until_reader_drops() {
        let d = EpochDomain::new();
        let cell = GenCell::new(Arc::new(String::from("gen0")));
        let held = cell.load(&d);
        cell.publish(&d, Arc::new(String::from("gen1")));
        d.quiesce(); // domain may reclaim its retired owner reference...
        assert_eq!(held.as_str(), "gen0"); // ...but the reader's Arc clone keeps the data alive
        assert_eq!(cell.load(&d).as_str(), "gen1");
    }

    #[test]
    fn gencell_concurrent_publish_load_is_consistent() {
        let d = Arc::new(EpochDomain::new());
        // Invariant payload: both halves always equal — a torn or
        // use-after-retire read would break it.
        let cell = Arc::new(GenCell::new(Arc::new((0u64, 0u64))));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let d = Arc::clone(&d);
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    for _ in 0..2000 {
                        let snap = cell.load(&d);
                        assert_eq!(snap.0, snap.1, "reader observed a torn generation");
                    }
                });
            }
            let d = Arc::clone(&d);
            let cell = Arc::clone(&cell);
            scope.spawn(move || {
                for i in 1..=2000u64 {
                    cell.publish(&d, Arc::new((i, i)));
                }
            });
        });
        d.quiesce();
        assert_eq!(d.garbage_len(), 0);
    }

    #[test]
    fn seqlock_validates_quiet_reads_and_rejects_overlapped_ones() {
        let s = SeqLock::new();
        let begin = s.read_begin().expect("no writer active");
        assert!(s.read_validate(begin));
        s.write_begin();
        assert_eq!(s.read_begin(), None, "odd version must turn readers away");
        assert!(!s.read_validate(begin));
        s.write_end();
        assert!(!s.read_validate(begin), "version moved; stale reads must fail");
        let begin = s.read_begin().expect("writer finished");
        assert!(s.read_validate(begin));
    }

    #[test]
    fn counter_tracks_sums_and_maxima() {
        let c = Counter::new();
        c.add(3);
        c.incr();
        assert_eq!(c.get(), 4);
        c.note_max(10);
        assert_eq!(c.get(), 10);
        c.note_max(2);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn concurrent_lease_release_never_duplicates() {
        let p = Arc::new(FlashPool::new(NandGeometry { blocks: 64, ..NandGeometry::tiny() }, 4));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let p = Arc::clone(&p);
                scope.spawn(move || {
                    let mut held = Vec::new();
                    for round in 0..200 {
                        if let Ok(b) = p.acquire(AcquireClass::Normal) {
                            assert!(!held.contains(&b));
                            held.push(b);
                        }
                        if round % 3 == 0 {
                            if let Some(b) = held.pop() {
                                p.release(b);
                            }
                        }
                    }
                    for b in held {
                        p.release(b);
                    }
                });
            }
        });
        assert_eq!(p.free_blocks_raw(), 64);
    }
}
