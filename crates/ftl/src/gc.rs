//! Garbage collection over the data and index logs (§IV-B).
//!
//! "To identify stale data, GC needs to scan the key signatures in each
//! flash page of a block, and check if the data is valid or stale by
//! querying the index. Stale data can then be discarded. Victim block
//! selection and merging operations can proceed according to existing GC
//! algorithms."
//!
//! Victims are picked greedily by stale bytes. Data-block cleaning decodes
//! each head page's signature information area (Fig. 4), validates every
//! signature against the installed index, relocates live pairs through the
//! normal data path, and erases the block. Index-block cleaning asks the
//! index which of its pages are still live and relocates those.

use crate::alloc::Stream;
use crate::ftl::{Ftl, FtlError};
use crate::layout::{self, PageKind, SpareMeta};
use crate::traits::{IndexBackend, IndexError, InsertOutcome};
use rhik_nand::Ppa;

/// Victim-selection policy.
///
/// The paper adapts block-SSD GC ("victim block selection and merging
/// operations can proceed according to existing GC algorithms", §IV-B);
/// both classic policies are provided so their write-amplification
/// trade-off can be measured on KV workloads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GcPolicy {
    /// Most stale bytes first — maximal immediate reclaim.
    #[default]
    Greedy,
    /// Cost-benefit (Kawaguchi et al.): weigh reclaimable space against
    /// the relocation cost, `stale² / (live + stale)` — prefers blocks
    /// that are cheap to clean even if they hold less garbage.
    CostBenefit,
}

/// GC policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct GcConfig {
    /// Trigger GC when allocatable free blocks drop below this.
    pub low_watermark: u32,
    /// Collect until this many allocatable free blocks are available (or no
    /// victims remain).
    pub high_watermark: u32,
    /// How victims are ranked.
    pub policy: GcPolicy,
    /// Most victims one invocation may clean. Bounding it makes GC
    /// *incremental*: the watermark loop re-triggers on later commands,
    /// so collection debt is paid in slices. A sharded device sets this
    /// low — one huge collection otherwise lands on whichever shard
    /// holds the GC permit and its queue (clock) absorbs all of it.
    pub max_victims_per_run: u32,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            low_watermark: 2,
            high_watermark: 4,
            policy: GcPolicy::Greedy,
            max_victims_per_run: u32::MAX,
        }
    }
}

/// Score a block under `policy`; higher is a better victim.
fn score(meta: &crate::alloc::BlockMeta, policy: GcPolicy) -> u64 {
    match policy {
        GcPolicy::Greedy => meta.stale_bytes,
        GcPolicy::CostBenefit => meta
            .stale_bytes
            .saturating_mul(meta.stale_bytes)
            .checked_div(meta.live_bytes + meta.stale_bytes)
            .unwrap_or(0),
    }
}

/// What one GC invocation accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    pub data_blocks_erased: u64,
    pub index_blocks_erased: u64,
    pub pairs_relocated: u64,
    pub index_pages_relocated: u64,
    pub pages_scanned: u64,
    pub bytes_relocated: u64,
    /// Stale pairs discarded without relocation.
    pub pairs_discarded: u64,
}

/// Whether GC should run now.
pub fn should_run(ftl: &Ftl, cfg: &GcConfig) -> bool {
    ftl.free_blocks() < cfg.low_watermark
}

/// Run garbage collection until the high watermark is met or victims run
/// out. Returns what was done; a report with zero erases means the device
/// is genuinely full of live data.
pub fn run<I: IndexBackend>(
    ftl: &mut Ftl,
    index: &mut I,
    cfg: &GcConfig,
) -> Result<GcReport, FtlError> {
    // In pooled (sharded) mode, at most one shard collects at a time:
    // concurrent collectors could race the shared pool to zero blocks
    // and strand each other mid-relocation. Single-owner devices have
    // no pool and take no lock.
    let pool = ftl.alloc_ref().pool().cloned();
    let _permit = pool.as_ref().map(|p| p.gc_permit());
    let mut report = GcReport::default();
    ftl.note_gc_run();
    ftl.alloc_mut().set_gc_mode(true);
    // Media ops charged during the run attribute to the gc_step stage, not
    // to the command-level flash read/program stages.
    let scope = ftl.set_stage_scope(Some(rhik_telemetry::Stage::GcStep));
    let result = run_inner(ftl, index, cfg, &mut report);
    ftl.set_stage_scope(scope);
    ftl.alloc_mut().set_gc_mode(false);
    let telemetry = ftl.telemetry();
    if telemetry.is_enabled() {
        telemetry.counter_add("ftl_gc_runs", 1);
        telemetry.counter_add("ftl_gc_pairs_relocated", report.pairs_relocated);
        telemetry.counter_add(
            "ftl_gc_blocks_erased",
            report.data_blocks_erased + report.index_blocks_erased,
        );
    }
    result.map(|()| report)
}

fn run_inner<I: IndexBackend>(
    ftl: &mut Ftl,
    index: &mut I,
    cfg: &GcConfig,
    report: &mut GcReport,
) -> Result<(), FtlError> {
    // Progress guard: cleaning a mostly-live victim can consume as many
    // blocks (relocation targets) as erasing it frees. Two consecutive
    // iterations without net gain in the raw free pool mean GC is churning
    // write amplification for nothing — stop.
    let mut stagnant = 0;
    // Once a relocation aborts for lack of scratch, only erase-only
    // victims (no live bytes) are considered for the rest of the run —
    // every further relocation attempt would abort the same way and
    // each abort duplicates the victim's live data into fresh blocks.
    let mut reloc_ok = true;
    let mut victims_cleaned = 0u32;
    let block_bytes = ftl.geometry().pages_per_block as u64 * ftl.geometry().page_size as u64;
    // Scratch margin for a relocation beyond the victim's own live data:
    // index write-backs (record updates evicting dirty cached pages) and
    // a partially-filled open target block. Half the GC reserve scales
    // with how the device was provisioned (a 1-block reserve gets 0: the
    // abort path below keeps an underestimate safe).
    let margin = ftl.alloc_ref().gc_reserve() as u64 / 2;
    while ftl.free_blocks() < cfg.high_watermark && victims_cleaned < cfg.max_victims_per_run {
        let raw_before = ftl.alloc_ref().free_blocks_raw();
        // Best victim across all three streams, ranked by the policy.
        // Victims holding live data are skipped when the remaining raw
        // pool cannot plausibly cover their relocation targets plus
        // index write-backs: aborting mid-victim strands the pool at
        // zero with nothing erased, which is strictly worse than
        // collecting a staler block first.
        let victim = [Stream::Data, Stream::Extent, Stream::Index]
            .into_iter()
            .flat_map(|stream| {
                ftl.alloc_ref().victims(stream).into_iter().map(move |b| (b, stream))
            })
            .filter(|&(b, _)| {
                let live = ftl.alloc_ref().meta(b).live_bytes;
                live == 0 || (reloc_ok && raw_before as u64 >= live.div_ceil(block_bytes) + margin)
            })
            .max_by_key(|&(b, _)| score(ftl.alloc_ref().meta(b), cfg.policy));
        let Some(victim) = victim else { break };
        // A parked extent block must not be re-opened as a relocation
        // target while it is being collected.
        ftl.alloc_mut().quarantine(victim.0);

        let progressed = match victim {
            (block, Stream::Data) => clean_head_block(ftl, index, block, report).map(|()| true),
            // `false`: a body's head record is still buffering (extent),
            // or the index could not vouch for the block's live pages —
            // leave the victim alone and stop rather than lose data.
            (block, Stream::Extent) => clean_extent_block(ftl, index, block, report),
            (block, Stream::Index) => clean_index_block(ftl, index, block, report),
        };
        match progressed {
            Ok(true) => victims_cleaned += 1,
            Ok(false) => break,
            Err(FtlError::NeedsGc) => {
                // The relocation ran out of scratch and rolled back (the
                // victim was not erased; relocated copies were staled).
                // Fall back to erase-only victims; a second strike even
                // there means the pool is truly dry.
                if !reloc_ok {
                    break;
                }
                reloc_ok = false;
                continue;
            }
            Err(e) => return Err(e),
        }

        if ftl.alloc_ref().free_blocks_raw() <= raw_before {
            stagnant += 1;
            if stagnant >= 2 {
                break;
            }
        } else {
            stagnant = 0;
        }
    }
    Ok(())
}

/// Clean a head-stream block: decode every head page's signature info
/// area, validate each pair against the index, relocate the live ones
/// (reading their bodies from the extent partition), and erase.
fn clean_head_block<I: IndexBackend>(
    ftl: &mut Ftl,
    index: &mut I,
    block: u32,
    report: &mut GcReport,
) -> Result<(), FtlError> {
    // The write buffer's head page may sit in this block (a data block
    // seals when its last page is allocated, not programmed). Push it to
    // flash first so the scan below sees — and relocates — its pairs;
    // otherwise the erase would strand their index entries.
    ftl.evict_pending_head(block)?;
    let programmed = ftl.block_write_ptr(block);
    let page_size = ftl.geometry().page_size as usize;

    // Pass 1: collect live pairs. Duplicate signatures within a page (an
    // in-page update) resolve to the newest entry.
    let mut live: Vec<(rhik_sigs::KeySignature, layout::PairEntry)> = Vec::new();
    for page in 0..programmed {
        let ppa = Ppa::new(block, page);
        let (data, spare) = ftl.read_data_page(ppa)?;
        report.pages_scanned += 1;
        let Some(meta) = SpareMeta::decode(&spare) else { continue };
        if meta.kind != PageKind::Head {
            continue;
        }
        let Some(entries) = layout::decode_head(&data, page_size) else { continue };
        let mut newest: std::collections::HashMap<u64, layout::PairEntry> = Default::default();
        for entry in entries {
            newest.insert(entry.sig.0, entry); // later entries overwrite
        }
        for (_, entry) in newest {
            let valid = match index.lookup(ftl, entry.sig) {
                Ok(Some(current)) => current == ppa,
                Ok(None) => false,
                Err(IndexError::Flash(e)) => return Err(FtlError::Flash(e)),
                Err(_) => false,
            };
            if valid {
                live.push((entry.sig, entry));
            } else {
                report.pairs_discarded += 1;
            }
        }
    }

    // Pass 2: relocate. The old body pages (extent partition) become
    // stale; the old head bytes vanish with the erase below.
    for (sig, entry) in live {
        let old = extent_of(&entry, Ppa::new(block, 0), page_size);
        relocate_pair(ftl, index, sig, &entry, report)?;
        if old.cont_start.is_some() {
            ftl.mark_stale(&old);
        }
    }

    ftl.erase_block(block)?;
    ftl.note_gc_erase();
    report.data_blocks_erased += 1;
    Ok(())
}

/// Clean an extent-stream block: each body page's spare names its owning
/// signature; the index + head page decide liveness. Live pairs are
/// relocated wholesale (their old head entries become stale in place).
///
/// Returns `false` (skip, stop GC) if any owning head record is still in
/// the DRAM write buffer — its extent cannot be rewritten consistently
/// until the buffer flushes.
fn clean_extent_block<I: IndexBackend>(
    ftl: &mut Ftl,
    index: &mut I,
    block: u32,
    report: &mut GcReport,
) -> Result<bool, FtlError> {
    let programmed = ftl.block_write_ptr(block);
    let page_size = ftl.geometry().page_size as usize;

    // Owning signatures of the body pages in this block.
    let mut sigs: Vec<rhik_sigs::KeySignature> = Vec::new();
    for page in 0..programmed {
        let (_, spare) = ftl.read_data_page(Ppa::new(block, page))?;
        report.pages_scanned += 1;
        if let Some(SpareMeta { kind: PageKind::Cont, sig: Some(sig) }) = SpareMeta::decode(&spare)
        {
            if !sigs.contains(&sig) {
                sigs.push(sig);
            }
        }
    }

    // Resolve each signature to its live pair; relocate the ones whose
    // current body actually lives in this block.
    let mut relocate: Vec<(rhik_sigs::KeySignature, Ppa, layout::PairEntry)> = Vec::new();
    for sig in sigs {
        if let Some(pending) = ftl.pending_extent(sig) {
            // The pair's live version is still buffering in DRAM.
            if pending.cont_start.map(|c| c.block) == Some(block) {
                return Ok(false); // its body is here: cannot collect yet
            }
            // Its body lives elsewhere: whatever this block holds for the
            // signature is a superseded version.
            report.pairs_discarded += 1;
            continue;
        }
        let head = match index.lookup(ftl, sig) {
            Ok(Some(h)) => h,
            Ok(None) => {
                report.pairs_discarded += 1;
                continue;
            }
            Err(IndexError::Flash(e)) => return Err(FtlError::Flash(e)),
            Err(_) => continue,
        };
        let (data, _) = ftl.read_data_page(head)?;
        let Some(entry) = layout::find_in_head(&data, page_size, sig) else {
            report.pairs_discarded += 1;
            continue;
        };
        match entry.cont_start {
            Some(c) if c.block == block => relocate.push((sig, head, entry)),
            _ => report.pairs_discarded += 1, // body superseded elsewhere
        }
    }

    for (sig, head, entry) in relocate {
        // The old head entry goes stale in its (still live) head block.
        let old = extent_of(&entry, head, page_size);
        relocate_pair(ftl, index, sig, &entry, report)?;
        ftl.mark_stale(&old);
    }

    ftl.erase_block(block)?;
    ftl.note_gc_erase();
    report.data_blocks_erased += 1;
    Ok(true)
}

/// Reconstruct the on-flash extent a decoded head entry describes.
fn extent_of(entry: &layout::PairEntry, head: Ppa, page_size: usize) -> crate::ftl::WrittenExtent {
    let body = (entry.val_total_len - entry.frag_len) as u64;
    crate::ftl::WrittenExtent {
        head,
        cont_start: entry.cont_start,
        cont_pages: entry.cont_pages(page_size as u32),
        head_bytes: (layout::RECORD_PREFIX_LEN
            + entry.key.len()
            + entry.frag_len as usize
            + layout::SIG_ENTRY_LEN) as u64,
        cont_bytes: body,
    }
}

/// Read a pair's full value and write it back through the normal store
/// path, repointing the index.
fn relocate_pair<I: IndexBackend>(
    ftl: &mut Ftl,
    index: &mut I,
    sig: rhik_sigs::KeySignature,
    entry: &layout::PairEntry,
    report: &mut GcReport,
) -> Result<(), FtlError> {
    let mut value = entry.value_frag.to_vec();
    let mut remaining = (entry.val_total_len - entry.frag_len) as usize;
    if remaining > 0 {
        let Some(start) = entry.cont_start else {
            return Err(FtlError::Corrupt(
                "GC victim holds an overflowing pair without a continuation extent".into(),
            ));
        };
        let mut i = 0;
        while remaining > 0 {
            let (cd, _) = ftl.read_data_page(Ppa::new(start.block, start.page + i))?;
            let take = remaining.min(cd.len());
            value.extend_from_slice(&cd[..take]);
            remaining -= take;
            i += 1;
        }
    }

    let extent = ftl.store_pair(sig, &entry.key, &value, entry.flags)?;
    match index.insert(ftl, sig, extent.head) {
        Ok(InsertOutcome::Inserted) | Ok(InsertOutcome::Updated { .. }) => {}
        Err(IndexError::Flash(e)) => return Err(FtlError::Flash(e)),
        Err(IndexError::NeedsGc) => {
            // The pool is exhausted even for metadata. Abandon the new
            // copy (it becomes stale garbage) and abort before the
            // victim is erased — the index still points at the old,
            // intact copy, so no data is lost.
            ftl.mark_stale(&extent);
            ftl.drop_pending(sig);
            return Err(FtlError::NeedsGc);
        }
        Err(e) => {
            // Same recovery as NeedsGc: abandon the new copy before the
            // victim is erased, so the index keeps pointing at intact
            // data while the error propagates.
            ftl.mark_stale(&extent);
            ftl.drop_pending(sig);
            return Err(FtlError::Corrupt(format!("GC relocation lost index record: {e}")));
        }
    }
    report.pairs_relocated += 1;
    ftl.note_gc_relocation(1);
    report.bytes_relocated += extent.bytes();
    Ok(())
}

/// Returns false when the block was skipped because the index could not
/// account for its live pages.
fn clean_index_block<I: IndexBackend>(
    ftl: &mut Ftl,
    index: &mut I,
    block: u32,
    report: &mut GcReport,
) -> Result<bool, FtlError> {
    let live_pages = index.live_index_pages_in(block);
    if live_pages.is_empty() && ftl.alloc_ref().meta(block).live_bytes > 0 {
        return Ok(false);
    }
    for (key, old) in live_pages {
        match index.relocate_index_page(ftl, key, old) {
            Ok(Some(_new)) => report.index_pages_relocated += 1,
            Ok(None) => {} // page turned out to be stale after all
            Err(IndexError::Flash(e)) => return Err(FtlError::Flash(e)),
            // Pool exhausted mid-relocation: abort before the erase.
            // Pages already moved are re-pointed; the rest stay live in
            // this (uncollected) block.
            Err(IndexError::NeedsGc) => return Err(FtlError::NeedsGc),
            // Any other index failure aborts before the erase, like
            // NeedsGc above: pages already moved are re-pointed, the
            // rest stay live in this (uncollected) block.
            Err(e) => return Err(FtlError::Corrupt(format!("index page relocation failed: {e}"))),
        }
    }
    ftl.erase_block(block)?;
    ftl.note_gc_erase();
    report.index_blocks_erased += 1;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftl::FtlConfig;
    use crate::traits::{IndexStats, InsertOutcome};
    use rhik_sigs::KeySignature;
    use std::collections::HashMap;

    /// A DRAM-only reference index for exercising GC in isolation.
    #[derive(Default)]
    struct MapIndex {
        map: HashMap<u64, Ppa>,
        stats: IndexStats,
    }

    impl IndexBackend for MapIndex {
        fn insert(
            &mut self,
            _f: &mut Ftl,
            sig: KeySignature,
            ppa: Ppa,
        ) -> Result<InsertOutcome, IndexError> {
            match self.map.insert(sig.0, ppa) {
                Some(old) => Ok(InsertOutcome::Updated { old }),
                None => Ok(InsertOutcome::Inserted),
            }
        }
        fn lookup(&mut self, _f: &mut Ftl, sig: KeySignature) -> Result<Option<Ppa>, IndexError> {
            Ok(self.map.get(&sig.0).copied())
        }
        fn remove(&mut self, _f: &mut Ftl, sig: KeySignature) -> Result<Option<Ppa>, IndexError> {
            Ok(self.map.remove(&sig.0))
        }
        fn len(&self) -> u64 {
            self.map.len() as u64
        }
        fn capacity(&self) -> Option<u64> {
            None
        }
        fn dram_bytes(&self) -> u64 {
            (self.map.len() * 16) as u64
        }
        fn stats(&self) -> &IndexStats {
            &self.stats
        }
        fn name(&self) -> &'static str {
            "map"
        }
        fn flush(&mut self, _f: &mut Ftl) -> Result<(), IndexError> {
            Ok(())
        }
    }

    fn sig(n: u64) -> KeySignature {
        KeySignature(n)
    }

    /// Fill the device with pairs, update half of them (creating stale
    /// data), then verify GC reclaims blocks and preserves every live pair.
    #[test]
    fn gc_reclaims_and_preserves() {
        let mut ftl = Ftl::new(FtlConfig::tiny());
        let mut index = MapIndex::default();
        let mut extents = HashMap::new();

        // Fill until the pool runs low.
        let mut stored = Vec::new();
        for i in 0..1000u64 {
            match ftl.store_pair(sig(i), format!("key{i}").as_bytes(), &[i as u8; 120], 0) {
                Ok(e) => {
                    index.insert(&mut ftl, sig(i), e.head).unwrap();
                    extents.insert(i, e);
                    stored.push(i);
                }
                Err(FtlError::NeedsGc) => break,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert!(stored.len() > 20);

        // Invalidate every other pair (as an update/delete would).
        let mut live_ids = Vec::new();
        for &i in &stored {
            if i % 2 == 0 {
                let e = extents[&i];
                ftl.mark_stale(&e);
                ftl.drop_pending(sig(i));
                index.remove(&mut ftl, sig(i)).unwrap();
            } else {
                live_ids.push(i);
            }
        }

        let free_before = ftl.free_blocks();
        let report = run(
            &mut ftl,
            &mut index,
            &GcConfig { low_watermark: 2, high_watermark: 4, ..Default::default() },
        )
        .unwrap();
        assert!(report.data_blocks_erased > 0, "report: {report:?}");
        assert!(report.pairs_discarded > 0);
        assert!(ftl.free_blocks() > free_before);

        // Every live pair is still reachable, with correct contents.
        for &i in &live_ids {
            let head = index.lookup(&mut ftl, sig(i)).unwrap().expect("live pair lost");
            if Some(head) == ftl.pending_head() {
                let (k, v) = ftl.pending_pair(sig(i)).expect("pending pair");
                assert_eq!(&k[..], format!("key{i}").as_bytes());
                // 120-byte values fit the head page whole.
                assert_eq!(&v[..], &[i as u8; 120][..]);
            } else {
                let (d, _) = ftl.read_data_page(head).unwrap();
                let e = layout::find_in_head(&d, 512, sig(i)).expect("entry in head page");
                assert_eq!(&e.key[..], format!("key{i}").as_bytes());
            }
        }
    }

    /// Regression: a data block seals when its *last page is allocated*,
    /// so the DRAM write buffer's head page can live inside a sealed,
    /// victim-eligible block. GC must push that page to flash (and
    /// relocate its pairs) instead of erasing it out from under the
    /// buffer — which used to strand index entries on the reserved page
    /// ("read of unwritten page") under sustained update load.
    #[test]
    fn gc_spares_the_buffered_head_page() {
        let mut ftl = Ftl::new(FtlConfig::tiny());
        let mut index = MapIndex::default();
        let mut extents = HashMap::new();

        // Store pairs until the buffered head page sits in a sealed block.
        let mut i = 0u64;
        loop {
            let e =
                ftl.store_pair(sig(i), format!("key{i}").as_bytes(), &[i as u8; 120], 0).unwrap();
            index.insert(&mut ftl, sig(i), e.head).unwrap();
            extents.insert(i, e);
            i += 1;
            if let Some(head) = ftl.pending_head() {
                if ftl.alloc_ref().meta(head.block).sealed {
                    break;
                }
            }
            assert!(i < 1000, "builder never landed in a sealed block");
        }
        let pending_head = ftl.pending_head().unwrap();

        // Make that block the juiciest victim: invalidate every pair
        // whose (flushed) head page lives there.
        let mut live = Vec::new();
        for (&id, e) in &extents {
            if e.head.block == pending_head.block && e.head != pending_head {
                ftl.mark_stale(e);
                index.remove(&mut ftl, sig(id)).unwrap();
            } else {
                live.push(id);
            }
        }

        let cfg = GcConfig { low_watermark: 8, high_watermark: 8, ..Default::default() };
        run(&mut ftl, &mut index, &cfg).unwrap();

        // The buffer (if still open) must have been moved off the erased
        // block, and every live pair — buffered ones included — must
        // still resolve and read back.
        if let Some(head) = ftl.pending_head() {
            assert!(
                !ftl.alloc_ref().meta(head.block).sealed
                    || ftl.block_write_ptr(head.block) <= head.page,
                "builder points into a collected block"
            );
        }
        ftl.flush_data_builder().unwrap();
        for id in live {
            let head = index.lookup(&mut ftl, sig(id)).unwrap().expect("live pair lost");
            let (d, _) = ftl.read_data_page(head).unwrap();
            let entry = layout::find_in_head(&d, 512, sig(id)).expect("entry in head page");
            assert_eq!(&entry.key[..], format!("key{id}").as_bytes());
        }
    }

    #[test]
    fn gc_on_clean_device_is_a_noop() {
        let mut ftl = Ftl::new(FtlConfig::tiny());
        let mut index = MapIndex::default();
        let report = run(&mut ftl, &mut index, &GcConfig::default()).unwrap();
        assert_eq!(report, GcReport { ..Default::default() });
    }

    #[test]
    fn gc_relocates_multi_page_values() {
        let mut ftl = Ftl::new(FtlConfig::tiny());
        let mut index = MapIndex::default();

        // One big live pair and one big stale pair sharing an extent block.
        let big = vec![0x42u8; 1200];
        let e1 = ftl.store_pair(sig(1), b"live", &big, 0).unwrap();
        index.insert(&mut ftl, sig(1), e1.head).unwrap();
        let e2 = ftl.store_pair(sig(2), b"stale", &big, 0).unwrap();
        ftl.mark_stale(&e2);
        ftl.drop_pending(sig(2));
        ftl.close_data_block().unwrap(); // seal both partitions for GC

        let report = run(
            &mut ftl,
            &mut index,
            &GcConfig { low_watermark: 8, high_watermark: 8, ..Default::default() },
        )
        .unwrap();
        assert!(report.pairs_relocated >= 1, "report: {report:?}");
        assert!(report.data_blocks_erased >= 1);

        // The live pair survives with intact contents.
        let head = index.lookup(&mut ftl, sig(1)).unwrap().expect("pair lost");
        if Some(head) == ftl.pending_head() {
            let e = ftl.pending_extent(sig(1)).unwrap();
            let frag = ftl.pending_pair(sig(1)).unwrap().1;
            assert_eq!(frag.len() as u64 + e.cont_bytes, big.len() as u64);
        } else {
            let (d, _) = ftl.read_data_page(head).unwrap();
            let entry = layout::find_in_head(&d, 512, sig(1)).unwrap();
            assert_eq!(entry.val_total_len as usize, big.len());
        }
        // The stale pair is gone.
        assert_eq!(index.lookup(&mut ftl, sig(2)).unwrap(), None);
    }

    #[test]
    fn cost_benefit_prefers_cheap_victims() {
        use crate::alloc::BlockMeta;
        // Block A: lots of garbage but also lots of live data to move.
        let a = BlockMeta {
            stream: None,
            live_bytes: 900,
            stale_bytes: 600,
            pages_used: 8,
            sealed: true,
        };
        // Block B: less garbage, but nearly free to clean.
        let b = BlockMeta {
            stream: None,
            live_bytes: 10,
            stale_bytes: 500,
            pages_used: 8,
            sealed: true,
        };
        assert!(score(&a, GcPolicy::Greedy) > score(&b, GcPolicy::Greedy));
        assert!(score(&b, GcPolicy::CostBenefit) > score(&a, GcPolicy::CostBenefit));
        // Empty block scores zero under both.
        let empty =
            BlockMeta { stream: None, live_bytes: 0, stale_bytes: 0, pages_used: 0, sealed: true };
        assert_eq!(score(&empty, GcPolicy::CostBenefit), 0);
    }

    #[test]
    fn both_policies_reclaim_and_preserve() {
        for policy in [GcPolicy::Greedy, GcPolicy::CostBenefit] {
            let mut ftl = Ftl::new(FtlConfig::tiny());
            let mut index = MapIndex::default();
            let mut stored = Vec::new();
            for i in 0..1000u64 {
                match ftl.store_pair(sig(i), format!("key{i}").as_bytes(), &[i as u8; 120], 0) {
                    Ok(e) => {
                        index.insert(&mut ftl, sig(i), e.head).unwrap();
                        stored.push((i, e));
                    }
                    Err(FtlError::NeedsGc) => break,
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
            for (i, e) in &stored {
                if i % 3 == 0 {
                    ftl.mark_stale(e);
                    ftl.drop_pending(sig(*i));
                    index.remove(&mut ftl, sig(*i)).unwrap();
                }
            }
            let cfg =
                GcConfig { low_watermark: 2, high_watermark: 4, policy, ..Default::default() };
            let report = run(&mut ftl, &mut index, &cfg).unwrap();
            assert!(report.data_blocks_erased > 0, "{policy:?}: {report:?}");
            for (i, _) in &stored {
                if i % 3 != 0 {
                    assert!(
                        index.lookup(&mut ftl, sig(*i)).unwrap().is_some(),
                        "{policy:?} lost key {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn should_run_tracks_watermark() {
        let ftl = Ftl::new(FtlConfig::tiny());
        assert!(!should_run(
            &ftl,
            &GcConfig { low_watermark: 2, high_watermark: 4, ..Default::default() }
        ));
        assert!(should_run(
            &ftl,
            &GcConfig { low_watermark: 100, high_watermark: 100, ..Default::default() }
        ));
    }
}
