//! RHIK's on-flash data layout (Fig. 4 of the paper).
//!
//! Each *head* page's data area holds, front to back:
//!
//! ```text
//! [ pair count (2 B) ][ pair records, packed ... free ... sig info area ]
//! ```
//!
//! Every pair record is `[key_len u16][val_total_len u32][flags u8]
//! [cont_ppa 5B][key][value fragment]`. The *key signature information
//! area* grows backwards from the end of the data area, one entry per
//! pair: `[signature u64][record offset u16][value fragment length u32]`
//! (14 B).
//!
//! Values are packed so continuation pages are always *full*: the head
//! page keeps `value_len % page_size` bytes beside the record, and the
//! remaining page-aligned body lives as whole pages in a separate extent
//! partition, addressed by the record's `cont_ppa`. This is §IV-A5's
//! extent-based packing over logically partitioned storage: the index
//! stores only the head page address; the head record is enough to
//! retrieve the rest, and no flash byte is wasted on partial tail pages.
//!
//! The page *spare area* stores the page type and, for continuation pages,
//! the head PPA — exactly the kind of per-page metadata the paper says GC
//! and crash recovery need (§I, challenge 3).

use bytes::Bytes;
use rhik_nand::Ppa;
use rhik_sigs::KeySignature;

/// Byte size of the page header (pair count).
pub const HEADER_LEN: usize = 2;
/// Byte size of one pair record's fixed prefix:
/// key_len (2) + val_total_len (4) + flags (1) + cont_ppa (5).
pub const RECORD_PREFIX_LEN: usize = 2 + 4 + 1 + 5;
/// Byte size of one signature-info entry.
pub const SIG_ENTRY_LEN: usize = 8 + 2 + 4;

/// What kind of page this is, recorded in the spare area.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageKind {
    /// Carries pair records + signature info area.
    Head,
    /// Raw value continuation; spare carries the head PPA.
    Cont,
    /// A record-layer index table (RHIK) or index level page (baselines).
    Index,
    /// A persisted directory-layer snapshot fragment.
    Directory,
}

impl PageKind {
    fn tag(self) -> u8 {
        match self {
            PageKind::Head => 1,
            PageKind::Cont => 2,
            PageKind::Index => 3,
            PageKind::Directory => 4,
        }
    }

    fn from_tag(t: u8) -> Option<Self> {
        Some(match t {
            1 => PageKind::Head,
            2 => PageKind::Cont,
            3 => PageKind::Index,
            4 => PageKind::Directory,
            _ => return None,
        })
    }
}

/// Spare-area metadata.
///
/// Continuation pages carry the owning pair's key signature — "the key
/// identifiers are stored in the spare area of each flash page" (§II-B) —
/// which is what lets GC validate a body page against the global index
/// without any reverse map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpareMeta {
    pub kind: PageKind,
    /// For `Cont` pages: the signature of the pair this body page belongs
    /// to. For others: `None`.
    pub sig: Option<KeySignature>,
}

impl SpareMeta {
    pub fn head_page() -> Self {
        SpareMeta { kind: PageKind::Head, sig: None }
    }

    pub fn cont_page(sig: KeySignature) -> Self {
        SpareMeta { kind: PageKind::Cont, sig: Some(sig) }
    }

    pub fn index_page() -> Self {
        SpareMeta { kind: PageKind::Index, sig: None }
    }

    pub fn directory_page() -> Self {
        SpareMeta { kind: PageKind::Directory, sig: None }
    }

    /// Serialize to spare-area bytes (10 bytes: tag + presence + signature).
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(10);
        out.push(self.kind.tag());
        match self.sig {
            Some(sig) => {
                out.push(1);
                out.extend_from_slice(&sig.0.to_le_bytes());
            }
            None => {
                out.push(0);
                out.extend_from_slice(&[0u8; 8]);
            }
        }
        Bytes::from(out)
    }

    /// Parse spare-area bytes.
    pub fn decode(spare: &[u8]) -> Option<SpareMeta> {
        if spare.len() < 10 {
            return None;
        }
        let kind = PageKind::from_tag(spare[0])?;
        let sig = match spare[1] {
            1 => Some(KeySignature(u64::from_le_bytes(spare[2..10].try_into().ok()?))),
            0 => None,
            _ => return None,
        };
        Some(SpareMeta { kind, sig })
    }
}

/// One decoded pair from a head page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairEntry {
    pub sig: KeySignature,
    /// Offset of the pair record within the page data area.
    pub offset: u16,
    /// Value bytes present in the head page.
    pub frag_len: u32,
    /// Total value length across head + continuation pages.
    pub val_total_len: u32,
    /// First continuation page in the extent partition (`None` when the
    /// whole value fits the head page).
    pub cont_start: Option<Ppa>,
    pub key: Bytes,
    /// The head-page fragment of the value.
    pub value_frag: Bytes,
    pub flags: u8,
}

impl PairEntry {
    /// Continuation pages needed after the head page.
    pub fn cont_pages(&self, page_size: u32) -> u32 {
        let rest = self.val_total_len - self.frag_len;
        rest.div_ceil(page_size)
    }

    /// Total on-flash footprint of this pair in bytes (record + sig entry +
    /// continuation bytes).
    pub fn footprint(&self) -> u64 {
        RECORD_PREFIX_LEN as u64
            + self.key.len() as u64
            + self.val_total_len as u64
            + SIG_ENTRY_LEN as u64
    }
}

/// Incremental builder for a head page.
///
/// Pairs are appended until [`PageBuilder::fits`] says no; the caller then
/// seals the page with [`PageBuilder::finish`] and starts a new one.
pub struct PageBuilder {
    page_size: usize,
    data: Vec<u8>,
    sig_entries: Vec<u8>,
    pair_count: u16,
}

impl PageBuilder {
    pub fn new(page_size: usize) -> Self {
        assert!(page_size > HEADER_LEN + RECORD_PREFIX_LEN + SIG_ENTRY_LEN, "page too small");
        let mut data = Vec::with_capacity(page_size);
        data.extend_from_slice(&[0u8; HEADER_LEN]);
        // bounded-by: `fits` gates every append so data + sig_entries
        // never exceed page_size.
        PageBuilder { page_size, data, sig_entries: Vec::new(), pair_count: 0 }
    }

    /// Bytes still free for pair records (accounting for the sig entry the
    /// next pair will also need).
    pub fn free_bytes(&self) -> usize {
        self.page_size - self.data.len() - self.sig_entries.len()
    }

    /// Whether a pair with this key could start in this page with at least
    /// `min_value` value bytes of its value.
    pub fn fits(&self, key_len: usize, min_value: usize) -> bool {
        self.free_bytes() >= RECORD_PREFIX_LEN + key_len + SIG_ENTRY_LEN + min_value
    }

    /// True when no pair has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.pair_count == 0
    }

    pub fn pair_count(&self) -> u16 {
        self.pair_count
    }

    /// Append a pair, writing as much of `value` as fits. Returns the
    /// number of value bytes placed in this page (the head fragment).
    ///
    /// Panics if even the record prefix + key + sig entry don't fit; callers
    /// must check [`PageBuilder::fits`] first.
    /// Append a pair whose value fits entirely in this page. Tests and the
    /// write path for small pairs use this; overflowing values go through
    /// [`PageBuilder::append_pair_with_frag`] with an extent address.
    pub fn append_pair(&mut self, sig: KeySignature, key: &[u8], value: &[u8], flags: u8) -> usize {
        let frag = value
            .len()
            .min(self.free_bytes().saturating_sub(RECORD_PREFIX_LEN + key.len() + SIG_ENTRY_LEN));
        let cont = if frag < value.len() {
            // Tests exercising raw truncation use a placeholder address.
            Some(Ppa::new(0, 0))
        } else {
            None
        };
        self.append_pair_with_frag(sig, key, value, frag, cont, flags);
        frag
    }

    /// Append a pair with an exact head fragment length (the extent writer
    /// picks `value_len % page_size` so continuation pages pack full) and
    /// the extent-partition address of the value body, if any.
    pub fn append_pair_with_frag(
        &mut self,
        sig: KeySignature,
        key: &[u8],
        value: &[u8],
        frag: usize,
        cont_start: Option<Ppa>,
        flags: u8,
    ) {
        assert!(self.fits(key.len(), frag), "caller must check fits() first");
        assert!(frag <= value.len(), "fragment exceeds value");
        assert_eq!(cont_start.is_some(), frag < value.len(), "cont_start iff overflow");
        assert!(key.len() <= u16::MAX as usize, "key exceeds u16 length field");
        assert!(value.len() <= u32::MAX as usize, "value exceeds u32 length field");
        let offset = self.data.len();

        self.data.extend_from_slice(&(key.len() as u16).to_le_bytes());
        self.data.extend_from_slice(&(value.len() as u32).to_le_bytes());
        self.data.push(flags);
        match cont_start {
            Some(ppa) => self.data.extend_from_slice(&ppa.to_bytes()),
            None => self.data.extend_from_slice(&[0xff; Ppa::PACKED_LEN]),
        }
        self.data.extend_from_slice(key);
        self.data.extend_from_slice(&value[..frag]);

        self.sig_entries.extend_from_slice(&sig.0.to_le_bytes());
        self.sig_entries.extend_from_slice(&(offset as u16).to_le_bytes());
        self.sig_entries.extend_from_slice(&(frag as u32).to_le_bytes());
        self.pair_count += 1;
    }

    /// Seal the page: header patched, sig info area moved to the tail.
    pub fn finish(mut self) -> Bytes {
        self.data[..HEADER_LEN].copy_from_slice(&self.pair_count.to_le_bytes());
        let gap = self.page_size - self.data.len() - self.sig_entries.len();
        self.data.extend(std::iter::repeat_n(0u8, gap));
        // The info area occupies the last pair_count * SIG_ENTRY_LEN bytes,
        // entry i at page_end - (pair_count - i) * SIG_ENTRY_LEN.
        self.data.extend_from_slice(&self.sig_entries);
        debug_assert_eq!(
            self.data.len(),
            self.page_size,
            "sealed head page must fill the flash page exactly"
        );
        Bytes::from(self.data)
    }
}

/// Decode a head page into its pair entries.
///
/// Returns `None` when the page is not a well-formed head page (defensive:
/// GC scans raw pages).
pub fn decode_head(data: &[u8], page_size: usize) -> Option<Vec<PairEntry>> {
    if data.len() < HEADER_LEN || data.len() > page_size {
        return None;
    }
    let pair_count = u16::from_le_bytes(data[..HEADER_LEN].try_into().ok()?) as usize;
    if pair_count == 0 {
        return Some(Vec::new());
    }
    let info_bytes = pair_count.checked_mul(SIG_ENTRY_LEN)?;
    if data.len() < HEADER_LEN + info_bytes {
        return None;
    }
    let info_start = data.len() - info_bytes;
    let mut entries = Vec::with_capacity(pair_count);
    for i in 0..pair_count {
        let e = &data[info_start + i * SIG_ENTRY_LEN..info_start + (i + 1) * SIG_ENTRY_LEN];
        let sig = KeySignature(u64::from_le_bytes(e[..8].try_into().ok()?));
        let offset = u16::from_le_bytes(e[8..10].try_into().ok()?);
        let frag_len = u32::from_le_bytes(e[10..14].try_into().ok()?);

        let off = offset as usize;
        if off + RECORD_PREFIX_LEN > info_start {
            return None;
        }
        let key_len = u16::from_le_bytes(data[off..off + 2].try_into().ok()?) as usize;
        let val_total_len = u32::from_le_bytes(data[off + 2..off + 6].try_into().ok()?);
        let flags = data[off + 6];
        let cont_raw: [u8; Ppa::PACKED_LEN] = data[off + 7..off + 12].try_into().ok()?;
        let cont_start = if cont_raw == [0xff; Ppa::PACKED_LEN] {
            None
        } else {
            Some(Ppa::from_bytes(cont_raw))
        };
        let key_start = off + RECORD_PREFIX_LEN;
        let frag_start = key_start + key_len;
        let frag_end = frag_start + frag_len as usize;
        if frag_end > info_start {
            return None;
        }
        if frag_len > val_total_len {
            return None;
        }
        entries.push(PairEntry {
            sig,
            offset,
            frag_len,
            val_total_len,
            cont_start,
            key: Bytes::copy_from_slice(&data[key_start..frag_start]),
            value_frag: Bytes::copy_from_slice(&data[frag_start..frag_end]),
            flags,
        });
    }
    Some(entries)
}

/// Find the entry for `sig` in a head page.
///
/// Entries are scanned newest-first: an update that lands in the same open
/// page as the pair it supersedes appends a second entry with the same
/// signature, and the latest one is authoritative.
pub fn find_in_head(data: &[u8], page_size: usize, sig: KeySignature) -> Option<PairEntry> {
    decode_head(data, page_size)?.into_iter().rev().find(|e| e.sig == sig)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: usize = 512;

    fn sig(n: u64) -> KeySignature {
        KeySignature(n)
    }

    #[test]
    fn single_pair_roundtrip() {
        let mut b = PageBuilder::new(PAGE);
        assert!(b.is_empty());
        let frag = b.append_pair(sig(42), b"key-a", b"value-a", 0);
        assert_eq!(frag, 7);
        assert!(!b.is_empty());
        let page = b.finish();
        assert_eq!(page.len(), PAGE);

        let entries = decode_head(&page, PAGE).unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.sig, sig(42));
        assert_eq!(&e.key[..], b"key-a");
        assert_eq!(&e.value_frag[..], b"value-a");
        assert_eq!(e.val_total_len, 7);
        assert_eq!(e.frag_len, 7);
        assert_eq!(e.cont_pages(PAGE as u32), 0);
    }

    #[test]
    fn multiple_pairs_pack_and_decode_in_order() {
        let mut b = PageBuilder::new(PAGE);
        for i in 0..5u64 {
            let key = format!("key-{i}");
            let val = format!("value-number-{i}");
            assert!(b.fits(key.len(), val.len()));
            let frag = b.append_pair(sig(i), key.as_bytes(), val.as_bytes(), 0);
            assert_eq!(frag, val.len());
        }
        assert_eq!(b.pair_count(), 5);
        let page = b.finish();
        let entries = decode_head(&page, PAGE).unwrap();
        assert_eq!(entries.len(), 5);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.sig, sig(i as u64));
            assert_eq!(e.key, format!("key-{i}"));
            assert_eq!(e.value_frag, format!("value-number-{i}"));
        }
    }

    #[test]
    fn oversized_value_is_fragmented() {
        let mut b = PageBuilder::new(PAGE);
        let value = vec![7u8; 2000];
        let frag = b.append_pair(sig(1), b"k", &value, 0);
        assert!(frag < value.len());
        let page = b.finish();
        let e = find_in_head(&page, PAGE, sig(1)).unwrap();
        assert_eq!(e.frag_len as usize, frag);
        assert_eq!(e.val_total_len as usize, value.len());
        assert_eq!(&e.value_frag[..], &value[..frag]);
        let rest = value.len() - frag;
        assert_eq!(e.cont_pages(PAGE as u32) as usize, rest.div_ceil(PAGE));
    }

    #[test]
    fn fits_is_exact() {
        let mut b = PageBuilder::new(PAGE);
        // Fill with one pair taking most of the page.
        b.append_pair(sig(1), b"k", &vec![0u8; 400], 0);
        let free = b.free_bytes();
        let need = RECORD_PREFIX_LEN + 3 + SIG_ENTRY_LEN;
        assert!(b.fits(3, free - need));
        assert!(!b.fits(3, free - need + 1));
    }

    #[test]
    fn zero_length_value_and_empty_page() {
        let mut b = PageBuilder::new(PAGE);
        b.append_pair(sig(9), b"tombstone", b"", 0x01);
        let page = b.finish();
        let e = find_in_head(&page, PAGE, sig(9)).unwrap();
        assert_eq!(e.val_total_len, 0);
        assert_eq!(e.flags, 0x01);

        let empty = PageBuilder::new(PAGE).finish();
        assert_eq!(decode_head(&empty, PAGE).unwrap().len(), 0);
    }

    #[test]
    fn duplicate_sig_latest_entry_wins() {
        // An in-page update appends a second entry with the same signature;
        // retrieval must return the newest one.
        let mut b = PageBuilder::new(PAGE);
        b.append_pair(sig(5), b"k", b"old-value", 0);
        b.append_pair(sig(5), b"k", b"new-value", 0);
        let page = b.finish();
        let e = find_in_head(&page, PAGE, sig(5)).unwrap();
        assert_eq!(&e.value_frag[..], b"new-value");
    }

    #[test]
    fn find_in_head_miss() {
        let mut b = PageBuilder::new(PAGE);
        b.append_pair(sig(1), b"k", b"v", 0);
        let page = b.finish();
        assert!(find_in_head(&page, PAGE, sig(2)).is_none());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode_head(&[], PAGE), None);
        // Claims 1000 pairs in a 512-byte page.
        let mut garbage = vec![0u8; PAGE];
        garbage[..2].copy_from_slice(&1000u16.to_le_bytes());
        assert_eq!(decode_head(&garbage, PAGE), None);
        // Claims one pair whose offset points into the info area.
        let mut bad = vec![0u8; PAGE];
        bad[..2].copy_from_slice(&1u16.to_le_bytes());
        let info = PAGE - SIG_ENTRY_LEN;
        bad[info + 8..info + 10].copy_from_slice(&(PAGE as u16 - 2).to_le_bytes());
        assert_eq!(decode_head(&bad, PAGE), None);
    }

    #[test]
    fn spare_meta_roundtrip() {
        for meta in [
            SpareMeta::head_page(),
            SpareMeta::cont_page(sig(0xdead_beef_1234)),
            SpareMeta::index_page(),
            SpareMeta::directory_page(),
        ] {
            assert_eq!(SpareMeta::decode(&meta.encode()), Some(meta));
        }
        assert_eq!(SpareMeta::decode(&[9, 0, 0, 0, 0, 0, 0, 0, 0, 0]), None);
        assert_eq!(SpareMeta::decode(&[1]), None);
    }

    #[test]
    fn footprint_accounts_everything() {
        let e = PairEntry {
            sig: sig(1),
            offset: 2,
            frag_len: 10,
            val_total_len: 100,
            cont_start: Some(Ppa::new(1, 0)),
            key: Bytes::from_static(b"abc"),
            value_frag: Bytes::from_static(b"0123456789"),
            flags: 0,
        };
        assert_eq!(e.footprint(), (RECORD_PREFIX_LEN + 3 + 100 + SIG_ENTRY_LEN) as u64);
    }
}
