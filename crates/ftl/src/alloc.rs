//! Block allocation and per-block accounting.

use std::collections::VecDeque;
use std::sync::Arc;

use rhik_nand::{BlockId, NandGeometry};

use crate::sync::FlashPool;

/// Which log a block belongs to. Separating index and data streams keeps GC
/// simple: data blocks are cleaned by scanning head pages, index blocks by
/// asking the index which tables are still live.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stream {
    /// KV-pair head pages (packed records + signature info areas).
    Data,
    /// Whole-page value bodies (the extent partition of §IV-A5).
    Extent,
    /// Index tables and directory snapshots.
    Index,
}

/// FTL-side metadata for one erase block.
#[derive(Clone, Debug)]
pub struct BlockMeta {
    pub stream: Option<Stream>,
    /// Bytes of live payload written into this block.
    pub live_bytes: u64,
    /// Bytes since invalidated (updated/deleted pairs, retired tables,
    /// skipped tail pages).
    pub stale_bytes: u64,
    /// Pages programmed so far (mirror of the NAND write pointer; kept here
    /// so victim scoring doesn't need flash queries).
    pub pages_used: u32,
    /// No further programs will land here (full, or closed early for an
    /// extent that needed a fresh block).
    pub sealed: bool,
}

impl BlockMeta {
    fn fresh() -> Self {
        BlockMeta { stream: None, live_bytes: 0, stale_bytes: 0, pages_used: 0, sealed: false }
    }

    /// Greedy GC score: stale payload reclaimed per erase.
    pub fn gc_score(&self) -> u64 {
        self.stale_bytes
    }
}

/// Free-pool + open-block manager.
///
/// One open block per stream; pages are handed out sequentially. When a
/// block fills (or is closed early), it is sealed and a new block is pulled
/// from the free pool. A configurable reserve is withheld from normal
/// allocation so GC always has scratch blocks to relocate into.
#[derive(Debug)]
pub struct BlockAllocator {
    geometry: NandGeometry,
    free: VecDeque<BlockId>,
    meta: Vec<BlockMeta>,
    open_data: Option<BlockId>,
    open_extent: Option<BlockId>,
    open_index: Option<BlockId>,
    /// Partially-programmed extent blocks set aside while a large extent
    /// claimed a fresh block; reused before the free pool is touched.
    parked_extent: Vec<BlockId>,
    /// Blocks withheld for GC relocation.
    reserve: u32,
    /// When true, allocation may dip into the reserve (GC in progress).
    gc_mode: bool,
    /// Sharded mode: free blocks live in a device-wide [`FlashPool`]
    /// instead of the private `free` deque, so multiple allocators can
    /// share one flash array without double-leasing a block.
    pool: Option<Arc<FlashPool>>,
}

/// Raised when the free pool (minus reserve) is exhausted — the device must
/// run GC and retry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NeedsGc;

/// Privilege of a block acquisition against the GC reserve.
///
/// The reserve is tiered so no tenant can starve the one below it: host
/// data stops at the full reserve, index write-backs may consume half of
/// it (an eviction mid-command must not fail while the device still has
/// headroom), and only GC relocation may drain it completely. Without
/// the middle tier, sustained metadata churn could eat the last free
/// block and leave GC with no scratch space to relocate into — wedging
/// the device with garbage it can no longer collect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcquireClass {
    /// Host data writes: stop at the full reserve floor.
    Normal,
    /// Index metadata write-back: may consume half the reserve.
    Metadata,
    /// GC relocation targets: may consume the entire reserve.
    Gc,
}

impl AcquireClass {
    /// The number of free blocks this class must leave untouched.
    pub fn floor(self, reserve: u32) -> usize {
        match self {
            AcquireClass::Normal => reserve as usize,
            AcquireClass::Metadata => (reserve / 2) as usize,
            AcquireClass::Gc => 0,
        }
    }
}

impl BlockAllocator {
    pub fn new(geometry: NandGeometry, reserve: u32) -> Self {
        assert!(
            (reserve as u64) < geometry.blocks as u64,
            "reserve must leave at least one allocatable block"
        );
        BlockAllocator {
            geometry,
            free: (0..geometry.blocks).collect(),
            meta: (0..geometry.blocks).map(|_| BlockMeta::fresh()).collect(),
            open_data: None,
            open_extent: None,
            open_index: None,
            // bounded-by: every entry is a distinct parked BlockId, so at
            // most geometry.blocks elements.
            parked_extent: Vec::new(),
            reserve,
            gc_mode: false,
            pool: None,
        }
    }

    /// Pooled-mode allocator for one shard of a sharded device: free
    /// blocks come from (and return to) the shared `pool`, while open
    /// blocks, parked blocks, and per-block metadata remain private to
    /// this allocator. The reserve floor is enforced by the pool, so the
    /// local `reserve` is zero.
    pub fn with_pool(geometry: NandGeometry, pool: Arc<FlashPool>) -> Self {
        assert_eq!(
            pool.total_blocks(),
            geometry.blocks,
            "pool must cover exactly this geometry's blocks"
        );
        BlockAllocator {
            geometry,
            // bounded-by: pooled mode returns blocks to the shared pool,
            // so the local free list never exceeds geometry.blocks.
            free: VecDeque::new(),
            meta: (0..geometry.blocks).map(|_| BlockMeta::fresh()).collect(),
            open_data: None,
            open_extent: None,
            open_index: None,
            // bounded-by: every entry is a distinct parked BlockId, so at
            // most geometry.blocks elements.
            parked_extent: Vec::new(),
            reserve: 0,
            gc_mode: false,
            pool: Some(pool),
        }
    }

    pub fn meta(&self, block: BlockId) -> &BlockMeta {
        &self.meta[block as usize]
    }

    pub fn meta_mut(&mut self, block: BlockId) -> &mut BlockMeta {
        &mut self.meta[block as usize]
    }

    /// Blocks available to normal allocation (excludes reserve). In
    /// pooled mode this is the *device-wide* count, which is what the GC
    /// watermarks must observe.
    pub fn free_blocks(&self) -> u32 {
        match &self.pool {
            Some(pool) => pool.free_blocks(),
            None => (self.free.len() as u32).saturating_sub(self.reserve),
        }
    }

    /// Blocks in the free pool including the reserve.
    pub fn free_blocks_raw(&self) -> u32 {
        match &self.pool {
            Some(pool) => pool.free_blocks_raw(),
            None => self.free.len() as u32,
        }
    }

    /// Enter/leave GC mode (GC may consume the reserve).
    pub fn set_gc_mode(&mut self, on: bool) {
        self.gc_mode = on;
    }

    #[allow(dead_code)] // diagnostic accessor, exercised by integration users
    pub fn gc_mode(&self) -> bool {
        self.gc_mode
    }

    /// The effective GC reserve: the shared pool's in pooled mode, the
    /// local one otherwise (where the pooled-mode local reserve is 0).
    pub fn gc_reserve(&self) -> u32 {
        match &self.pool {
            Some(pool) => pool.reserve(),
            None => self.reserve,
        }
    }

    /// The shared flash pool, when this allocator runs in pooled mode.
    pub fn pool(&self) -> Option<&Arc<FlashPool>> {
        self.pool.as_ref()
    }

    fn pop_free(&mut self, allow_reserve: bool) -> Result<BlockId, NeedsGc> {
        let class = if self.gc_mode {
            AcquireClass::Gc
        } else if allow_reserve {
            AcquireClass::Metadata
        } else {
            AcquireClass::Normal
        };
        if let Some(pool) = &self.pool {
            return pool.acquire(class);
        }
        if self.free.len() <= class.floor(self.reserve) {
            return Err(NeedsGc);
        }
        Ok(self.free.pop_front().expect("checked non-empty"))
    }

    fn open_slot(&mut self, stream: Stream) -> &mut Option<BlockId> {
        match stream {
            Stream::Data => &mut self.open_data,
            Stream::Extent => &mut self.open_extent,
            Stream::Index => &mut self.open_index,
        }
    }

    /// The block currently open for `stream`, if any.
    pub fn open_block(&self, stream: Stream) -> Option<BlockId> {
        match stream {
            Stream::Data => self.open_data,
            Stream::Extent => self.open_extent,
            Stream::Index => self.open_index,
        }
    }

    /// Hand out the next page of `stream`'s open block, opening a new block
    /// from the free pool when needed. `allow_reserve` lets metadata writes
    /// dip into half the GC reserve ([`AcquireClass::Metadata`]) so index
    /// write-backs rarely fail mid-flight — while still leaving GC its own
    /// scratch blocks. GC mode unlocks the full reserve.
    pub fn next_page(
        &mut self,
        stream: Stream,
        allow_reserve: bool,
    ) -> Result<rhik_nand::Ppa, NeedsGc> {
        let ppb = self.geometry.pages_per_block;
        loop {
            let open = *self.open_slot(stream);
            match open {
                Some(block) if self.meta[block as usize].pages_used < ppb => {
                    let page = self.meta[block as usize].pages_used;
                    self.meta[block as usize].pages_used += 1;
                    if self.meta[block as usize].pages_used == ppb {
                        self.meta[block as usize].sealed = true;
                        *self.open_slot(stream) = None;
                    }
                    return Ok(rhik_nand::Ppa::new(block, page));
                }
                _ => {
                    let block = self.pop_free(allow_reserve)?;
                    let m = &mut self.meta[block as usize];
                    *m = BlockMeta::fresh();
                    m.stream = Some(stream);
                    *self.open_slot(stream) = Some(block);
                }
            }
        }
    }

    /// Pages remaining in `stream`'s open block (0 when none is open).
    #[allow(dead_code)] // diagnostic accessor (tests, future policies)
    pub fn open_pages_left(&self, stream: Stream) -> u32 {
        match self.open_block(stream) {
            Some(b) => self.geometry.pages_per_block - self.meta[b as usize].pages_used,
            None => 0,
        }
    }

    /// Make sure the extent stream's open block has at least `pages_needed`
    /// unprogrammed pages: reuse the current block if it qualifies, else
    /// park it and reopen the roomiest parked block that fits, else pull a
    /// fresh block from the free pool. No tail pages are ever wasted.
    pub fn open_extent_block_with_room(
        &mut self,
        pages_needed: u32,
        allow_reserve: bool,
    ) -> Result<(), NeedsGc> {
        let ppb = self.geometry.pages_per_block;
        debug_assert!(pages_needed <= ppb, "extent larger than an erase block");
        if let Some(b) = self.open_extent {
            if ppb - self.meta[b as usize].pages_used >= pages_needed {
                return Ok(());
            }
        }
        self.park_open_extent();
        if let Some(pos) = self
            .parked_extent
            .iter()
            .position(|&b| ppb - self.meta[b as usize].pages_used >= pages_needed)
        {
            self.open_extent = Some(self.parked_extent.swap_remove(pos));
            return Ok(());
        }
        let block = self.pop_free(allow_reserve)?;
        let m = &mut self.meta[block as usize];
        *m = BlockMeta::fresh();
        m.stream = Some(Stream::Extent);
        self.open_extent = Some(block);
        Ok(())
    }

    /// Park the extent stream's open block: a large extent needs a fresh
    /// block, but the remaining pages here stay usable for later extents.
    pub fn park_open_extent(&mut self) {
        if let Some(block) = self.open_extent.take() {
            self.parked_extent.push(block);
        }
    }

    /// Blocks currently parked (diagnostics).
    #[allow(dead_code)] // diagnostic accessor (tests, future policies)
    pub fn parked_blocks(&self) -> usize {
        self.parked_extent.len()
    }

    /// Remove `block` from the parked list so GC can collect it without the
    /// allocator re-opening it as a relocation target.
    pub fn quarantine(&mut self, block: BlockId) {
        self.parked_extent.retain(|&b| b != block);
    }

    /// Seal `stream`'s open block early (an extent needed a fresh block).
    /// Unprogrammed tail pages are charged as stale capacity so GC sees the
    /// waste.
    pub fn close_open_block(&mut self, stream: Stream) {
        if let Some(block) = self.open_slot(stream).take() {
            let m = &mut self.meta[block as usize];
            let wasted_pages = self.geometry.pages_per_block - m.pages_used;
            m.stale_bytes += wasted_pages as u64 * self.geometry.page_size as u64;
            m.pages_used = self.geometry.pages_per_block;
            m.sealed = true;
        }
    }

    /// Return an erased block to the free pool (dropping any parked
    /// reference — GC may erase a parked block).
    pub fn release(&mut self, block: BlockId) {
        debug_assert!(
            self.open_data != Some(block)
                && self.open_extent != Some(block)
                && self.open_index != Some(block),
            "released block {block} is still an open write target"
        );
        self.parked_extent.retain(|&b| b != block);
        self.meta[block as usize] = BlockMeta::fresh();
        match &self.pool {
            Some(pool) => pool.release(block),
            None => self.free.push_back(block),
        }
    }

    /// Candidate GC victims of `stream`: any non-open block with stale
    /// bytes (sealed *or* parked — a parked block's programmed pages can
    /// hold dead pairs just like a full block's), best score first.
    pub fn victims(&self, stream: Stream) -> Vec<BlockId> {
        let open = self.open_block(stream);
        let mut v: Vec<BlockId> = (0..self.geometry.blocks)
            .filter(|&b| {
                let m = &self.meta[b as usize];
                m.stream == Some(stream) && m.stale_bytes > 0 && Some(b) != open
            })
            .collect();
        v.sort_by_key(|&b| std::cmp::Reverse(self.meta[b as usize].gc_score()));
        v
    }

    /// Total live bytes across all blocks (device utilization numerator).
    pub fn total_live_bytes(&self) -> u64 {
        self.meta.iter().map(|m| m.live_bytes).sum()
    }

    /// Total stale bytes across all blocks.
    pub fn total_stale_bytes(&self) -> u64 {
        self.meta.iter().map(|m| m.stale_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhik_nand::Ppa;

    fn alloc() -> BlockAllocator {
        BlockAllocator::new(NandGeometry::tiny(), 2)
    }

    #[test]
    fn pages_sequential_within_block() {
        let mut a = alloc();
        let p0 = a.next_page(Stream::Data, false).unwrap();
        let p1 = a.next_page(Stream::Data, false).unwrap();
        assert_eq!(p0.block, p1.block);
        assert_eq!(p0.page + 1, p1.page);
    }

    #[test]
    fn streams_use_disjoint_blocks() {
        let mut a = alloc();
        let d = a.next_page(Stream::Data, false).unwrap();
        let i = a.next_page(Stream::Index, false).unwrap();
        assert_ne!(d.block, i.block);
        assert_eq!(a.meta(d.block).stream, Some(Stream::Data));
        assert_eq!(a.meta(i.block).stream, Some(Stream::Index));
    }

    #[test]
    fn block_rolls_over_when_full() {
        let mut a = alloc();
        let ppb = 8;
        let first = a.next_page(Stream::Data, false).unwrap();
        for _ in 1..ppb {
            a.next_page(Stream::Data, false).unwrap();
        }
        assert!(a.meta(first.block).sealed);
        let next = a.next_page(Stream::Data, false).unwrap();
        assert_ne!(next.block, first.block);
        assert_eq!(next.page, 0);
    }

    #[test]
    fn reserve_is_protected_until_gc_mode() {
        let mut a = alloc(); // 8 blocks, 2 reserved
                             // Exhaust the 6 allocatable blocks.
        for _ in 0..6 * 8 {
            a.next_page(Stream::Data, false).unwrap();
        }
        assert_eq!(a.free_blocks(), 0);
        assert_eq!(a.next_page(Stream::Data, false), Err(NeedsGc));
        a.set_gc_mode(true);
        assert!(a.next_page(Stream::Data, false).is_ok());
        a.set_gc_mode(false);
    }

    #[test]
    fn close_early_charges_waste() {
        let mut a = alloc();
        let p = a.next_page(Stream::Data, false).unwrap(); // 1 page used of 8
        a.close_open_block(Stream::Data);
        let m = a.meta(p.block);
        assert!(m.sealed);
        assert_eq!(m.stale_bytes, 7 * 512);
        assert_eq!(a.open_block(Stream::Data), None);
    }

    #[test]
    fn release_recycles_blocks() {
        let mut a = alloc();
        let p = a.next_page(Stream::Data, false).unwrap();
        for _ in 1..8 {
            a.next_page(Stream::Data, false).unwrap();
        }
        let free_before = a.free_blocks_raw();
        a.release(p.block);
        assert_eq!(a.free_blocks_raw(), free_before + 1);
        assert_eq!(a.meta(p.block).stream, None);
        assert_eq!(a.meta(p.block).stale_bytes, 0);
    }

    #[test]
    fn victims_ranked_by_stale_bytes() {
        let mut a = alloc();
        let mut blocks = Vec::new();
        for _ in 0..3 {
            let first = a.next_page(Stream::Data, false).unwrap();
            for _ in 1..8 {
                a.next_page(Stream::Data, false).unwrap();
            }
            blocks.push(first.block);
        }
        a.meta_mut(blocks[0]).stale_bytes = 10;
        a.meta_mut(blocks[1]).stale_bytes = 500;
        a.meta_mut(blocks[2]).stale_bytes = 100;
        assert_eq!(a.victims(Stream::Data), vec![blocks[1], blocks[2], blocks[0]]);
        // The open block is never a victim, even with stale bytes.
        let open = a.next_page(Stream::Data, false).unwrap();
        a.meta_mut(open.block).stale_bytes = 9999;
        assert!(!a.victims(Stream::Data).contains(&open.block));
    }

    #[test]
    fn parked_extent_blocks_are_victims() {
        let mut a = alloc();
        let p = a.next_page(Stream::Extent, false).unwrap();
        a.meta_mut(p.block).stale_bytes = 100;
        // Open: protected.
        assert!(!a.victims(Stream::Extent).contains(&p.block));
        // Parked: collectable.
        a.park_open_extent();
        assert!(a.victims(Stream::Extent).contains(&p.block));
        // Quarantine keeps the allocator from re-opening it mid-GC.
        a.quarantine(p.block);
        assert_eq!(a.parked_blocks(), 0);
        // Releasing returns it to the pool, victim no more.
        a.release(p.block);
        assert!(!a.victims(Stream::Extent).contains(&p.block));
    }

    #[test]
    fn open_pages_left_tracks() {
        let mut a = alloc();
        assert_eq!(a.open_pages_left(Stream::Data), 0);
        a.next_page(Stream::Data, false).unwrap();
        assert_eq!(a.open_pages_left(Stream::Data), 7);
    }

    #[test]
    fn page_addresses_valid() {
        let mut a = alloc();
        for _ in 0..20 {
            let p: Ppa = a.next_page(Stream::Data, false).unwrap();
            assert!(NandGeometry::tiny().contains(p));
        }
    }

    #[test]
    #[should_panic(expected = "reserve must leave")]
    fn reserve_cannot_cover_all_blocks() {
        let _ = BlockAllocator::new(NandGeometry::tiny(), 8);
    }

    #[test]
    fn pooled_allocators_share_one_free_pool() {
        let pool = Arc::new(FlashPool::new(NandGeometry::tiny(), 2));
        let mut a = BlockAllocator::with_pool(NandGeometry::tiny(), Arc::clone(&pool));
        let mut b = BlockAllocator::with_pool(NandGeometry::tiny(), Arc::clone(&pool));
        let pa = a.next_page(Stream::Data, false).unwrap();
        let pb = b.next_page(Stream::Data, false).unwrap();
        // Each allocator opened its own block; never the same one.
        assert_ne!(pa.block, pb.block);
        // Both observe the same device-wide free count.
        assert_eq!(pool.free_blocks_raw(), 6);
        assert_eq!(a.free_blocks(), b.free_blocks());
        // Exhaust: 8 blocks total, 2 open, 2 reserved → 4 more openable.
        for _ in 0..4 {
            a.close_open_block(Stream::Data);
            a.next_page(Stream::Data, false).unwrap();
        }
        a.close_open_block(Stream::Data);
        assert_eq!(a.next_page(Stream::Data, false), Err(NeedsGc));
        assert_eq!(b.next_page(Stream::Data, false).unwrap().block, pb.block);
        // b's GC mode may dip into the shared reserve.
        b.close_open_block(Stream::Data);
        b.set_gc_mode(true);
        assert!(b.next_page(Stream::Data, false).is_ok());
        b.set_gc_mode(false);
        // Releasing from one allocator makes the block visible to the other:
        // 2 were reserved, GC dipped for 1, then two come back.
        a.release(pa.block);
        b.release(pb.block);
        assert_eq!(pool.free_blocks_raw(), 3);
    }
}
