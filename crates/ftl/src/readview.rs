//! Generation-published read view: the lock-free get path's index mirror.
//!
//! The RHIK directory and its hopscotch bucket headers live behind the
//! shard writer lock. To let gets walk directory → bucket → record page
//! with *zero* locks, the index publishes its sig → head-page mapping as
//! immutable generation snapshots behind an atomic pointer
//! ([`sync::GenCell`]): a [`GenSnapshot`] is a power-of-two directory of
//! bucket cells, each pairing a [`sync::SeqLock`] version with a
//! copy-on-write entry list. Readers pin the epoch domain for the few
//! instructions of the pointer walk, take the head PPA, perform the
//! record-page flash read through the narrow media lock, and then
//! *validate* the bucket version; a failed validation (concurrent split,
//! in-place update, GC relocation) sends the caller to the classic
//! locked path. Writers — already serialized by the shard lock — mutate
//! bucket cells by publishing replacement entry lists, and the
//! incremental-resize state machine doubles the whole directory by
//! building the next generation and publishing it with a single atomic
//! swap; old generations are retired through epoch-based reclamation.
//!
//! The view stores only `(signature, head PPA)` pairs — the durable form
//! of every bucket stays on flash in the record-table pages. A snapshot
//! is therefore a DRAM cache of the bucket *headers*, and the ≤1-flash-
//! read lookup bound is preserved: a validated hit costs exactly the
//! head-page read (plus the value's own continuation pages), and a
//! validated miss costs zero flash reads.

use std::sync::Arc;

use rhik_nand::Ppa;

use crate::sync::{EpochDomain, GenCell, SeqLock};

/// One published generation: an immutable directory of bucket cells.
pub struct GenSnapshot {
    generation: u64,
    bits: u32,
    buckets: Box<[BucketCell]>,
}

impl GenSnapshot {
    fn empty(generation: u64, bits: u32) -> Self {
        let size = 1usize << bits;
        let buckets = (0..size).map(|_| BucketCell::empty()).collect::<Vec<_>>().into();
        GenSnapshot { generation, bits, buckets }
    }

    #[inline]
    fn slot(&self, sig: u64) -> usize {
        (sig & ((1u64 << self.bits) - 1)) as usize
    }

    /// Generation number of this snapshot (monotonic per view).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Directory bits of this snapshot.
    pub fn bits(&self) -> u32 {
        self.bits
    }
}

/// A bucket header: seqlock version + copy-on-write entry list.
struct BucketCell {
    seq: SeqLock,
    entries: GenCell<Vec<(u64, Ppa)>>,
}

impl BucketCell {
    fn empty() -> Self {
        BucketCell { seq: SeqLock::new(), entries: GenCell::new(Arc::new(Vec::new())) }
    }

    fn with_entries(entries: Vec<(u64, Ppa)>) -> Self {
        BucketCell { seq: SeqLock::new(), entries: GenCell::new(Arc::new(entries)) }
    }
}

/// Outcome of a lock-free bucket walk.
pub enum Lookup {
    /// The signature maps to a head page; the hit must be
    /// [`validated`](ReadHit::validate) after the flash read.
    Hit(ReadHit),
    /// The bucket provably held no entry for the signature (validated;
    /// zero flash reads spent).
    Miss,
    /// A concurrent writer overlapped the walk — take the locked path.
    Contended,
}

/// A successful bucket-walk hit, carrying what the reader needs to
/// re-validate after its optimistic flash read.
pub struct ReadHit {
    snapshot: Arc<GenSnapshot>,
    slot: usize,
    begin: u64,
    /// Head page holding the pair record (the address the index stores).
    pub head: Ppa,
}

impl ReadHit {
    /// True iff no writer touched the bucket since the walk began — the
    /// flash read observed a stable record and its value can be returned.
    pub fn validate(&self) -> bool {
        self.snapshot.buckets[self.slot].seq.read_validate(self.begin)
    }
}

/// The shared read view: one per shard, attached to the index backend
/// (writer side) and to the device's lock-free read path (reader side).
pub struct ReadView {
    domain: EpochDomain,
    snapshot: GenCell<GenSnapshot>,
}

impl ReadView {
    /// An empty view with `1 << bits` buckets (matched to the index's
    /// initial directory bits).
    pub fn new(bits: u32) -> Self {
        ReadView {
            domain: EpochDomain::new(),
            snapshot: GenCell::new(Arc::new(GenSnapshot::empty(0, bits))),
        }
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<GenSnapshot> {
        self.snapshot.load(&self.domain)
    }

    /// Epoch domain backing this view (diagnostics/tests).
    pub fn domain(&self) -> &EpochDomain {
        &self.domain
    }

    // -------------------------------------------------------- reader side

    /// Lock-free bucket walk: pin, load the snapshot, read the bucket
    /// header optimistically. Never touches flash.
    pub fn lookup(&self, sig: u64) -> Lookup {
        let snapshot = self.snapshot.load(&self.domain);
        let slot = snapshot.slot(sig);
        let cell = &snapshot.buckets[slot];
        let Some(begin) = cell.seq.read_begin() else {
            return Lookup::Contended;
        };
        let entries = cell.entries.load(&self.domain);
        let head = entries.iter().find(|(s, _)| *s == sig).map(|&(_, ppa)| ppa);
        if !cell.seq.read_validate(begin) {
            return Lookup::Contended;
        }
        match head {
            Some(head) => Lookup::Hit(ReadHit { snapshot, slot, begin, head }),
            None => Lookup::Miss,
        }
    }

    // -------------------------------------------------------- writer side
    //
    // All writer-side methods are serialized externally by the shard
    // writer lock; concurrent *readers* are the case they defend against.

    /// Map `sig` to `head`, replacing any previous mapping (insert,
    /// in-place update, GC relocation — every sig → PPA change funnels
    /// through here).
    pub fn upsert(&self, sig: u64, head: Ppa) {
        let snapshot = self.snapshot.load(&self.domain);
        let cell = &snapshot.buckets[snapshot.slot(sig)];
        let current = cell.entries.load(&self.domain);
        let mut next = Vec::with_capacity(current.len() + 1);
        next.extend(current.iter().copied().filter(|(s, _)| *s != sig));
        next.push((sig, head));
        cell.seq.write_begin();
        cell.entries.publish(&self.domain, Arc::new(next));
        cell.seq.write_end();
    }

    /// Drop the mapping for `sig` (delete). No-op if absent.
    pub fn remove(&self, sig: u64) {
        let snapshot = self.snapshot.load(&self.domain);
        let cell = &snapshot.buckets[snapshot.slot(sig)];
        let current = cell.entries.load(&self.domain);
        if !current.iter().any(|(s, _)| *s == sig) {
            return;
        }
        let next = current.iter().copied().filter(|(s, _)| *s != sig).collect::<Vec<_>>();
        cell.seq.write_begin();
        cell.entries.publish(&self.domain, Arc::new(next));
        cell.seq.write_end();
    }

    /// Build and publish the next generation with `new_bits` directory
    /// bits, redistributing every entry — the read-side half of an
    /// incremental directory doubling. One atomic swap makes the new
    /// generation visible; the old one is retired into the epoch domain.
    ///
    /// The old generation's buckets are first *poisoned* (their seqlocks
    /// left permanently odd): later writes bump only the new generation's
    /// cells, so a reader still holding the old snapshot must never be
    /// able to validate against it again. Poisoned buckets turn such
    /// readers into `Contended` fallbacks until they reload the pointer.
    pub fn publish_generation(&self, new_bits: u32) {
        let old = self.snapshot.load(&self.domain);
        for cell in old.buckets.iter() {
            cell.seq.write_begin();
        }
        let size = 1usize << new_bits;
        let mask = (1u64 << new_bits) - 1;
        let mut redistributed: Vec<Vec<(u64, Ppa)>> = (0..size).map(|_| Vec::new()).collect();
        for cell in old.buckets.iter() {
            for &(sig, ppa) in cell.entries.load(&self.domain).iter() {
                redistributed[(sig & mask) as usize].push((sig, ppa));
            }
        }
        let buckets =
            redistributed.into_iter().map(BucketCell::with_entries).collect::<Vec<_>>().into();
        let next = GenSnapshot { generation: old.generation + 1, bits: new_bits, buckets };
        self.snapshot.publish(&self.domain, Arc::new(next));
    }

    /// Total entries across the published snapshot (tests/diagnostics).
    pub fn entry_count(&self) -> usize {
        let snapshot = self.snapshot.load(&self.domain);
        snapshot.buckets.iter().map(|c| c.entries.load(&self.domain).len()).sum()
    }
}

impl std::fmt::Debug for ReadView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snapshot = self.snapshot();
        f.debug_struct("ReadView")
            .field("generation", &snapshot.generation)
            .field("bits", &snapshot.bits)
            .field("domain", &self.domain)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ppa(block: u32, page: u32) -> Ppa {
        Ppa::new(block, page)
    }

    fn head_of(view: &ReadView, sig: u64) -> Option<Ppa> {
        match view.lookup(sig) {
            Lookup::Hit(h) => {
                assert!(h.validate(), "quiet lookup must validate");
                Some(h.head)
            }
            Lookup::Miss => None,
            Lookup::Contended => panic!("no writer active"),
        }
    }

    #[test]
    fn upsert_lookup_remove_roundtrip() {
        let view = ReadView::new(2);
        assert!(head_of(&view, 7).is_none());
        view.upsert(7, ppa(1, 2));
        assert_eq!(head_of(&view, 7), Some(ppa(1, 2)));
        view.upsert(7, ppa(3, 4)); // in-place update / relocation
        assert_eq!(head_of(&view, 7), Some(ppa(3, 4)));
        view.remove(7);
        assert!(head_of(&view, 7).is_none());
        assert_eq!(view.entry_count(), 0);
    }

    #[test]
    fn doubling_preserves_every_mapping() {
        let view = ReadView::new(1);
        for sig in 0..64u64 {
            view.upsert(sig, ppa(sig as u32, 0));
        }
        let before = view.snapshot().generation();
        view.publish_generation(4);
        let snap = view.snapshot();
        assert_eq!(snap.bits(), 4);
        assert_eq!(snap.generation(), before + 1);
        assert_eq!(view.entry_count(), 64);
        for sig in 0..64u64 {
            assert_eq!(head_of(&view, sig), Some(ppa(sig as u32, 0)));
        }
    }

    #[test]
    fn concurrent_reads_during_doubling_never_miss_or_tear() {
        let view = Arc::new(ReadView::new(1));
        for sig in 0..128u64 {
            view.upsert(sig, ppa(sig as u32, sig as u32));
        }
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let view = Arc::clone(&view);
                scope.spawn(move || {
                    for round in 0..400 {
                        let sig = (round * 31) % 128;
                        match view.lookup(sig) {
                            Lookup::Hit(h) => {
                                // The mapping never changes, so even a
                                // non-validating hit must carry it.
                                assert_eq!(h.head, ppa(sig as u32, sig as u32));
                            }
                            Lookup::Miss => panic!("key {sig} vanished during doubling"),
                            Lookup::Contended => {} // locked-path fallback
                        }
                    }
                });
            }
            let view = Arc::clone(&view);
            scope.spawn(move || {
                for bits in [2u32, 3, 4, 5, 6, 7] {
                    view.publish_generation(bits);
                }
            });
        });
        view.domain().quiesce();
        assert_eq!(view.entry_count(), 128);
    }
}
