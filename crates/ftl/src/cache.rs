//! Byte-budgeted LRU cache for flash-resident index pages.
//!
//! The paper's Fig. 5 experiment caps the FTL's DRAM cache at 10 MB and
//! measures the cache miss ratio of each index scheme. This cache is that
//! DRAM: entries are whole index pages keyed by a *logical* id (tables move
//! on flash when rewritten, so physical addresses make poor keys), the
//! budget is in bytes, and hit/miss counters are first-class.
//!
//! Write-back: dirty pages are only persisted when evicted (the caller gets
//! the evicted entry back and is responsible for programming it) or when
//! explicitly drained — matching RHIK's "periodically updated persistent
//! copy" of metadata.
//!
//! Implemented from scratch as a slab-backed doubly-linked list + HashMap,
//! O(1) for get/insert/remove.

use std::collections::HashMap;

use bytes::Bytes;

const NIL: usize = usize::MAX;

struct Node {
    key: u64,
    data: Bytes,
    dirty: bool,
    prev: usize,
    next: usize,
}

/// An entry evicted (or drained) from the cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Evicted {
    pub key: u64,
    pub data: Bytes,
    pub dirty: bool,
}

/// Cache hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Miss ratio in [0, 1]; 0 when no accesses happened.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Byte-budget LRU of index pages.
pub struct IndexPageCache {
    budget: usize,
    used: usize,
    map: HashMap<u64, usize>,
    slab: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    stats: CacheStats,
}

impl IndexPageCache {
    /// Create a cache holding at most `budget_bytes` of page payload.
    pub fn new(budget_bytes: usize) -> Self {
        IndexPageCache {
            budget: budget_bytes,
            used: 0,
            // bounded-by: eviction keeps `used <= budget`, capping the
            // resident pages the byte budget admits.
            map: HashMap::new(),
            slab: Vec::new(), // bounded-by: one node per resident page (see map)
            free: Vec::new(), // bounded-by: recycled slab slots; never exceeds slab len
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    pub fn used_bytes(&self) -> usize {
        self.used
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset the hit/miss counters (used between experiment phases).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Look up `key`, refreshing recency. Counts a hit or miss.
    pub fn get(&mut self, key: u64) -> Option<Bytes> {
        match self.map.get(&key).copied() {
            Some(idx) => {
                self.stats.hits += 1;
                self.detach(idx);
                self.push_front(idx);
                Some(self.slab[idx].data.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Look up without touching recency or stats (introspection).
    pub fn peek(&self, key: u64) -> Option<&Bytes> {
        self.map.get(&key).map(|&idx| &self.slab[idx].data)
    }

    /// Whether `key` is cached and dirty.
    pub fn is_dirty(&self, key: u64) -> bool {
        self.map.get(&key).is_some_and(|&idx| self.slab[idx].dirty)
    }

    /// Insert or replace `key`, evicting LRU entries as needed to fit the
    /// budget. Evicted entries (and a replaced entry's old bytes, never) are
    /// returned so the caller can write back dirty pages.
    ///
    /// An entry larger than the whole budget is *not* cached (it would evict
    /// everything and still not fit); it is returned immediately as if
    /// evicted, preserving write-back semantics.
    pub fn insert(&mut self, key: u64, data: Bytes, dirty: bool) -> Vec<Evicted> {
        self.stats.insertions += 1;
        let mut evicted = Vec::new();

        if let Some(&idx) = self.map.get(&key) {
            if data.len() > self.budget {
                // The replacement itself cannot fit: evict the old entry and
                // bounce the new bytes back to the caller. `evict_at` has
                // already counted the eviction (and the old entry's
                // dirtiness); only dirtiness introduced by the replacement
                // bytes still needs accounting.
                let old = self.evict_at(idx);
                let dirty = dirty || old.dirty;
                if dirty && !old.dirty {
                    self.stats.dirty_evictions += 1;
                }
                evicted.push(Evicted { key, data, dirty });
                return evicted;
            }
            // Replace in place: adjust usage, merge dirty flags.
            self.used -= self.slab[idx].data.len();
            self.used += data.len();
            self.slab[idx].data = data;
            self.slab[idx].dirty = self.slab[idx].dirty || dirty;
            self.detach(idx);
            self.push_front(idx);
        } else {
            if data.len() > self.budget {
                evicted.push(Evicted { key, data, dirty });
                if dirty {
                    self.stats.dirty_evictions += 1;
                }
                self.stats.evictions += 1;
                return evicted;
            }
            self.used += data.len();
            let idx = match self.free.pop() {
                Some(i) => {
                    self.slab[i] = Node { key, data, dirty, prev: NIL, next: NIL };
                    i
                }
                None => {
                    self.slab.push(Node { key, data, dirty, prev: NIL, next: NIL });
                    self.slab.len() - 1
                }
            };
            self.map.insert(key, idx);
            self.push_front(idx);
        }

        while self.used > self.budget {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "over budget with empty list");
            if victim == self.head {
                // Single over-budget entry is the one just inserted; it fits
                // the budget by the early-return above, so this cannot
                // happen — guard anyway.
                break;
            }
            evicted.push(self.evict_at(victim));
        }
        evicted
    }

    fn evict_at(&mut self, idx: usize) -> Evicted {
        self.detach(idx);
        let node = std::mem::replace(
            &mut self.slab[idx],
            Node { key: 0, data: Bytes::new(), dirty: false, prev: NIL, next: NIL },
        );
        self.map.remove(&node.key);
        self.free.push(idx);
        self.used -= node.data.len();
        self.stats.evictions += 1;
        if node.dirty {
            self.stats.dirty_evictions += 1;
        }
        Evicted { key: node.key, data: node.data, dirty: node.dirty }
    }

    /// Mark a cached entry dirty (no-op if absent).
    pub fn mark_dirty(&mut self, key: u64) {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].dirty = true;
        }
    }

    /// Remove `key` outright (e.g. table retired by a resize).
    pub fn remove(&mut self, key: u64) -> Option<Evicted> {
        let idx = self.map.get(&key).copied()?;
        self.detach(idx);
        let node = std::mem::replace(
            &mut self.slab[idx],
            Node { key: 0, data: Bytes::new(), dirty: false, prev: NIL, next: NIL },
        );
        self.map.remove(&key);
        self.free.push(idx);
        self.used -= node.data.len();
        Some(Evicted { key: node.key, data: node.data, dirty: node.dirty })
    }

    /// Drain every dirty entry (marking it clean in place) for a checkpoint.
    pub fn drain_dirty(&mut self) -> Vec<Evicted> {
        let mut out = Vec::new();
        for idx in 0..self.slab.len() {
            if self.map.get(&self.slab[idx].key) == Some(&idx) && self.slab[idx].dirty {
                self.slab[idx].dirty = false;
                out.push(Evicted {
                    key: self.slab[idx].key,
                    data: self.slab[idx].data.clone(),
                    dirty: true,
                });
            }
        }
        out
    }

    /// Keys currently resident, MRU first (diagnostics).
    pub fn keys_mru(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.slab[cur].key);
            cur = self.slab[cur].next;
        }
        out
    }
}

impl std::fmt::Debug for IndexPageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexPageCache")
            .field("budget", &self.budget)
            .field("used", &self.used)
            .field("entries", &self.map.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(fill: u8, len: usize) -> Bytes {
        Bytes::from(vec![fill; len])
    }

    #[test]
    fn hit_miss_accounting() {
        let mut c = IndexPageCache::new(1000);
        assert!(c.get(1).is_none());
        c.insert(1, page(1, 100), false);
        assert_eq!(c.get(1).unwrap(), page(1, 100));
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_lru_order() {
        let mut c = IndexPageCache::new(300);
        c.insert(1, page(1, 100), false);
        c.insert(2, page(2, 100), false);
        c.insert(3, page(3, 100), false);
        // Touch 1 so 2 becomes LRU.
        c.get(1);
        let ev = c.insert(4, page(4, 100), false);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].key, 2);
        assert_eq!(c.keys_mru(), vec![4, 1, 3]);
        assert_eq!(c.used_bytes(), 300);
    }

    #[test]
    fn dirty_pages_return_on_eviction() {
        let mut c = IndexPageCache::new(200);
        c.insert(1, page(1, 100), true);
        c.insert(2, page(2, 100), false);
        let ev = c.insert(3, page(3, 100), false);
        assert_eq!(ev.len(), 1);
        assert!(ev[0].dirty);
        assert_eq!(ev[0].key, 1);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn replace_merges_dirty_and_adjusts_usage() {
        let mut c = IndexPageCache::new(500);
        c.insert(1, page(1, 100), true);
        assert_eq!(c.used_bytes(), 100);
        let ev = c.insert(1, page(9, 300), false);
        assert!(ev.is_empty());
        assert_eq!(c.used_bytes(), 300);
        assert!(c.is_dirty(1), "dirty must survive a clean overwrite");
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(1).unwrap(), &page(9, 300));
    }

    #[test]
    fn oversized_entry_bounces() {
        let mut c = IndexPageCache::new(100);
        let ev = c.insert(1, page(1, 101), true);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].key, 1);
        assert!(ev[0].dirty);
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn oversized_replacement_counts_one_eviction() {
        // Regression: replacing a resident entry with oversized bytes used
        // to count the eviction twice (once in evict_at, once manually).
        let mut c = IndexPageCache::new(100);
        c.insert(1, page(1, 50), true);
        let ev = c.insert(1, page(9, 200), false);
        assert_eq!(ev.len(), 1);
        assert!(ev[0].dirty, "old dirtiness must survive the bounce");
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().dirty_evictions, 1);
        assert!(c.is_empty());

        // Clean resident + dirty oversized replacement: still one eviction,
        // and the replacement's dirtiness is counted exactly once.
        let mut c = IndexPageCache::new(100);
        c.insert(2, page(2, 50), false);
        let ev = c.insert(2, page(8, 200), true);
        assert_eq!(ev.len(), 1);
        assert!(ev[0].dirty);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().dirty_evictions, 1);

        // Clean on both sides: one eviction, no dirty eviction.
        let mut c = IndexPageCache::new(100);
        c.insert(3, page(3, 50), false);
        let ev = c.insert(3, page(7, 200), false);
        assert_eq!(ev.len(), 1);
        assert!(!ev[0].dirty);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().dirty_evictions, 0);
    }

    #[test]
    fn remove_and_reuse_slots() {
        let mut c = IndexPageCache::new(1000);
        for k in 0..5 {
            c.insert(k, page(k as u8, 50), false);
        }
        assert_eq!(c.remove(2).unwrap().key, 2);
        assert!(c.get(2).is_none());
        assert_eq!(c.len(), 4);
        // Slot reuse: inserting again must not grow the slab unboundedly.
        let slab_len = c.slab.len();
        c.insert(9, page(9, 50), false);
        assert_eq!(c.slab.len(), slab_len);
        assert_eq!(c.remove(42), None);
    }

    #[test]
    fn drain_dirty_cleans_in_place() {
        let mut c = IndexPageCache::new(1000);
        c.insert(1, page(1, 10), true);
        c.insert(2, page(2, 10), false);
        c.insert(3, page(3, 10), true);
        let mut drained: Vec<u64> = c.drain_dirty().into_iter().map(|e| e.key).collect();
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 3]);
        assert!(c.drain_dirty().is_empty());
        assert!(!c.is_dirty(1));
        // Entries are still resident after a drain.
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn mark_dirty_after_get() {
        let mut c = IndexPageCache::new(100);
        c.insert(1, page(1, 10), false);
        c.mark_dirty(1);
        assert!(c.is_dirty(1));
        c.mark_dirty(99); // absent: no-op
    }

    #[test]
    fn zero_budget_caches_nothing() {
        let mut c = IndexPageCache::new(0);
        let ev = c.insert(1, page(1, 1), false);
        assert_eq!(ev.len(), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn heavy_churn_preserves_invariants() {
        let mut c = IndexPageCache::new(512);
        for i in 0..10_000u64 {
            c.insert(i % 37, page((i % 251) as u8, 16 + (i % 7) as usize * 16), i % 3 == 0);
            if i % 5 == 0 {
                c.get(i % 23);
            }
            if i % 11 == 0 {
                c.remove(i % 13);
            }
            assert!(c.used_bytes() <= 512);
            let mru = c.keys_mru();
            assert_eq!(mru.len(), c.len());
        }
    }
}
