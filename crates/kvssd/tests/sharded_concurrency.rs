//! Concurrency contract of [`ShardedKvssd`]: per-key linearizability
//! under multi-threaded mixed workloads, device-wide stats consistency,
//! and the tentpole claim — a directory resize stalls only its own
//! shard's submission queue.

use std::collections::HashMap;
use std::sync::mpsc;
use std::time::Duration;

use proptest::prelude::*;
use rhik_kvssd::{DeviceConfig, DeviceStats, KvError, ShardedKvssd};
use rhik_sigs::SigHasher;

fn sharded(shards: u32) -> ShardedKvssd<rhik_core::RhikIndex> {
    ShardedKvssd::rhik(DeviceConfig::small().with_shards(shards))
}

/// Keys guaranteed to route to `shard` on a 4-shard `small()` device
/// (the handle's router uses the same default hasher).
fn keys_for_shard(dev: &ShardedKvssd<rhik_core::RhikIndex>, shard: usize, n: usize) -> Vec<String> {
    let hasher = SigHasher::default();
    let mut keys = Vec::new();
    let mut i = 0u64;
    while keys.len() < n {
        let key = format!("pinned-{i:06}");
        if dev.shard_of(hasher.sign(key.as_bytes())) == shard {
            keys.push(key);
        }
        i += 1;
    }
    keys
}

#[derive(Clone, Debug)]
enum Op {
    Put(u8, u8),
    Delete(u8),
    Get(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k, v)),
        2 => any::<u8>().prop_map(Op::Delete),
        3 => any::<u8>().prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Four threads run independent op scripts over one sharded device.
    /// Each thread owns a disjoint key range, so per-key operations are
    /// totally ordered by their issuing thread: every get must observe
    /// exactly the thread's own last write (linearizability per key).
    #[test]
    fn concurrent_ops_are_linearizable_per_key(
        scripts in proptest::collection::vec(proptest::collection::vec(op_strategy(), 1..60), 4..5)
    ) {
        let dev = sharded(4);
        std::thread::scope(|scope| {
            for (tid, script) in scripts.iter().enumerate() {
                let dev = dev.clone();
                scope.spawn(move || {
                    let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
                    for op in script {
                        match *op {
                            Op::Put(k, v) => {
                                let key = format!("t{tid}-{k:03}");
                                let value = vec![v; (v as usize % 32) + 1];
                                dev.put(key.as_bytes(), &value).unwrap();
                                model.insert(k, value);
                            }
                            Op::Delete(k) => {
                                let key = format!("t{tid}-{k:03}");
                                match dev.delete(key.as_bytes()) {
                                    Ok(()) => assert!(model.remove(&k).is_some(), "{key}: deleted a key the model never wrote"),
                                    Err(KvError::KeyNotFound) => assert!(!model.contains_key(&k)),
                                    Err(e) => panic!("delete {key}: {e}"),
                                }
                            }
                            Op::Get(k) => {
                                let key = format!("t{tid}-{k:03}");
                                let got = dev.get(key.as_bytes()).unwrap();
                                match (got, model.get(&k)) {
                                    (Some(g), Some(m)) => assert_eq!(&g[..], &m[..], "{key}: stale value"),
                                    (None, None) => {}
                                    (g, m) => panic!("{key}: device={g:?} model={m:?}"),
                                }
                            }
                        }
                    }
                    model.len() as u64
                });
            }
        });
        // After the threads join, the surviving keys of every thread are
        // visible from the parent and the aggregate count matches.
        let mut expected_keys = 0u64;
        for (tid, script) in scripts.iter().enumerate() {
            let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
            for op in script {
                match *op {
                    Op::Put(k, v) => {
                        model.insert(k, vec![v; (v as usize % 32) + 1]);
                    }
                    Op::Delete(k) => {
                        model.remove(&k);
                    }
                    Op::Get(_) => {}
                }
            }
            for (k, v) in &model {
                let key = format!("t{tid}-{k:03}");
                let got = dev.get(key.as_bytes()).unwrap().expect("surviving key present");
                prop_assert_eq!(&got[..], &v[..]);
            }
            expected_keys += model.len() as u64;
        }
        prop_assert_eq!(dev.key_count(), expected_keys);
    }
}

/// The device-wide stats view is exactly the field-wise sum of the
/// per-shard stats, even while (and after) threads hammer all shards.
#[test]
fn aggregate_stats_equal_shard_sums_after_concurrency() {
    let dev = sharded(4);
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 250;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let dev = dev.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let key = format!("s{t}-{i:05}");
                    dev.put(key.as_bytes(), b"payload").unwrap();
                    assert_eq!(&dev.get(key.as_bytes()).unwrap().unwrap()[..], b"payload");
                }
                // A read of another thread's keyspace may miss (that
                // thread might not have written yet) but must not error.
                let other = (t + 1) % THREADS;
                for i in (0..PER_THREAD).step_by(50) {
                    let _ = dev.get(format!("s{other}-{i:05}").as_bytes()).unwrap();
                }
            });
        }
    });
    let total = dev.stats();
    let mut summed = DeviceStats::default();
    for s in 0..dev.shard_count() {
        summed.merge(&dev.shard_stats(s));
    }
    assert_eq!(total, summed);
    assert_eq!(total.puts, THREADS * PER_THREAD);
    assert_eq!(total.gets, THREADS * (PER_THREAD + PER_THREAD.div_ceil(50)));
    assert_eq!(dev.key_count(), THREADS * PER_THREAD);
    assert_eq!(dev.put_latencies().count(), total.puts);
}

/// The tentpole property: while shard 0's submission queue is stalled
/// (exactly what a directory resize does to its own shard), gets routed
/// to other shards complete. With the global mutex of `SharedKvssd`
/// this test would deadlock; the 10 s timeout is the proof budget.
#[test]
fn stalled_shard_does_not_block_other_shards() {
    let dev = sharded(4);
    // Pre-load every shard with readable data.
    let mut per_shard_keys = Vec::new();
    for s in 0..4 {
        let keys = keys_for_shard(&dev, s, 20);
        for k in &keys {
            dev.put(k.as_bytes(), format!("v-{k}").as_bytes()).unwrap();
        }
        per_shard_keys.push(keys);
    }

    let (stalled_tx, stalled_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let (done_tx, done_rx) = mpsc::channel::<()>();

    std::thread::scope(|scope| {
        // Occupy shard 0's queue for the duration, as a resize would.
        let stall_dev = dev.clone();
        scope.spawn(move || {
            stall_dev.with_shard(0, |_| {
                stalled_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            });
        });
        // Reader thread: waits until shard 0 is held, then reads shards
        // 1-3 and reports completion.
        let read_dev = dev.clone();
        let read_keys = per_shard_keys.clone();
        scope.spawn(move || {
            stalled_rx.recv().unwrap();
            for keys in read_keys.iter().skip(1) {
                for k in keys {
                    let got = read_dev.get(k.as_bytes()).unwrap().unwrap();
                    assert_eq!(&got[..], format!("v-{k}").as_bytes());
                }
            }
            done_tx.send(()).unwrap();
        });
        // The reads must finish while shard 0 is still stalled.
        done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("gets on shards 1-3 blocked behind shard 0's stall");
        release_tx.send(()).unwrap();
    });
}

/// A shard mid-way through an *incremental* resize keeps serving: gets on
/// the resizing shard answer correctly while the migration is in flight
/// (keys split between the frozen old directory and the half-populated
/// doubled one), and `maintain_idle` drains the remainder on idle time.
#[test]
fn resizing_shard_still_answers_gets() {
    let mut cfg = DeviceConfig::small().with_shards(4);
    // One migrated slot per command stretches the doubling across as many
    // commands as possible, so the mid-flight window is wide.
    cfg.rhik.resize_migration_batch = 1;
    let dev = ShardedKvssd::rhik(cfg);
    let fill = keys_for_shard(&dev, 0, 900);

    // Phase 1: fill shard 0 through its first doublings. Whenever a put
    // leaves the migration in flight, read earlier keys until it drains —
    // every mid-flight get must find its key, whichever side of the
    // cursor its slot is on.
    let mut mid_flight_reads = 0u32;
    let mut written = 0usize;
    for k in &fill {
        dev.put(k.as_bytes(), format!("v-{k}").as_bytes()).unwrap();
        written += 1;
        let mut probe = 0usize;
        while dev.with_shard(0, |d| d.resize_in_progress()) {
            let key = &fill[probe % written];
            let got = dev.get(key.as_bytes()).unwrap().expect("key lost mid-migration");
            assert_eq!(&got[..], format!("v-{key}").as_bytes());
            mid_flight_reads += 1;
            probe += 1;
            assert!(probe < 10_000, "reads never drained the migration");
        }
        if dev.shard_stats(0).resizes >= 2 {
            break;
        }
    }
    assert!(dev.shard_stats(0).resizes >= 2, "only {written} puts, no doublings");
    assert!(mid_flight_reads >= 3, "migrations drained without mid-flight reads");

    // Phase 2: provoke the next doubling, then drain it purely with
    // idle-time maintenance (no foreground commands touch the shard).
    for k in fill.iter().skip(written) {
        dev.put(k.as_bytes(), format!("v-{k}").as_bytes()).unwrap();
        written += 1;
        if dev.with_shard(0, |d| d.resize_in_progress()) {
            break;
        }
    }
    assert!(dev.resize_in_progress(), "no third doubling within {written} puts");
    let mut rounds = 0u32;
    while dev.resize_in_progress() {
        dev.maintain_idle().unwrap();
        rounds += 1;
        assert!(rounds < 10_000, "maintain_idle never finished the migration");
    }
    assert!(rounds >= 2, "third doubling drained in {rounds} idle rounds — not incremental");

    assert!(dev.shard_stats(0).resizes >= 3);
    for s in 1..4 {
        assert_eq!(dev.shard_stats(s).resizes, 0, "resize leaked into shard {s}");
    }
    for k in fill.iter().take(written) {
        assert_eq!(&dev.get(k.as_bytes()).unwrap().unwrap()[..], format!("v-{k}").as_bytes());
    }
}

/// Drive shard 0 through a real directory resize and verify it is
/// confined: only shard 0 records resize events, and the other shards'
/// data stays readable throughout.
#[test]
fn resize_is_per_shard() {
    let dev = sharded(4);
    let witness = keys_for_shard(&dev, 1, 30);
    for k in &witness {
        dev.put(k.as_bytes(), b"witness").unwrap();
    }
    assert_eq!(dev.stats().resizes, 0, "no resizes before the fill");

    // Shard 0 starts with a single table (small() gives 2 directory bits,
    // minus 2 shard bits). Filling it past the occupancy threshold—241
    // records per 4 KiB table, threshold 0.7—forces at least one resize.
    let fill = keys_for_shard(&dev, 0, 220);
    std::thread::scope(|scope| {
        let writer = dev.clone();
        let fill = &fill;
        scope.spawn(move || {
            for k in fill {
                writer.put(k.as_bytes(), b"fill").unwrap();
            }
        });
        // Concurrent reads on shard 1 while shard 0 fills and resizes.
        let reader = dev.clone();
        let witness = &witness;
        scope.spawn(move || {
            for _ in 0..20 {
                for k in witness.iter() {
                    assert_eq!(&reader.get(k.as_bytes()).unwrap().unwrap()[..], b"witness");
                }
            }
        });
    });

    assert!(dev.shard_stats(0).resizes >= 1, "shard 0 never resized: {:?}", dev.shard_stats(0));
    for s in 1..4 {
        assert_eq!(dev.shard_stats(s).resizes, 0, "resize leaked into shard {s}");
    }
    // Everything is still readable after the reconfiguration.
    for k in &fill {
        assert_eq!(&dev.get(k.as_bytes()).unwrap().unwrap()[..], b"fill");
    }
    for k in &witness {
        assert_eq!(&dev.get(k.as_bytes()).unwrap().unwrap()[..], b"witness");
    }
}
