//! Adversarial test for the lock-free read path: concurrent gets race a
//! directory doubling on the same shard and must stay correct, the
//! RHIK ≤1-flash-read-per-lookup bound must hold on the lock-free
//! counters, and the cross-layer auditor must come back clean after the
//! dust settles. A second test proves the structural claim directly:
//! gets complete while their own shard's queue mutex is held.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Duration;

use rhik_audit::DeviceAuditor;
use rhik_kvssd::{DeviceConfig, ShardedKvssd};
use rhik_sigs::SigHasher;

fn keys_for_shard(dev: &ShardedKvssd<rhik_core::RhikIndex>, shard: usize, n: usize) -> Vec<String> {
    let hasher = SigHasher::default();
    let mut keys = Vec::new();
    let mut i = 0u64;
    while keys.len() < n {
        let key = format!("snap-{i:06}");
        if dev.shard_of(hasher.sign(key.as_bytes())) == shard {
            keys.push(key);
        }
        i += 1;
    }
    keys
}

fn value_of(key: &str) -> Vec<u8> {
    format!("v-{key}").into_bytes()
}

/// Readers hammer shard 0 with gets while a writer drives the shard
/// through directory doublings (migration batch 1 stretches each
/// doubling across many commands, so most reads land mid-migration).
/// Every get must return the key's one immutable value; afterwards the
/// lock-free counters must show the ≤1-read bound and real lock-free
/// traffic, and the device must audit clean.
#[test]
fn gen_snapshot_reads_survive_directory_doubling() {
    let mut cfg = DeviceConfig::small().with_shards(4);
    cfg.rhik.resize_migration_batch = 1;
    let dev = ShardedKvssd::rhik(cfg);

    // Warm keys: written and flushed before the race, so they are
    // servable by the lock-free path from the first doubling onwards.
    let keys = keys_for_shard(&dev, 0, 480);
    const WARM: usize = 60;
    for k in &keys[..WARM] {
        dev.put(k.as_bytes(), &value_of(k)).unwrap();
    }
    dev.flush().unwrap();

    let written = AtomicUsize::new(WARM);
    let done = AtomicBool::new(false);
    let start = std::sync::Barrier::new(3);
    std::thread::scope(|scope| {
        // Writer: fill shard 0 through at least two doublings, flushing
        // periodically so freshly written keys become lock-free-readable
        // mid-race rather than sitting in the pending write buffer. The
        // yields and mid-migration naps keep the readers scheduled into
        // the doubling windows even on a single-core host.
        scope.spawn(|| {
            start.wait();
            for (i, k) in keys.iter().enumerate().skip(WARM) {
                dev.put(k.as_bytes(), &value_of(k)).unwrap();
                if i % 32 == 0 {
                    dev.flush().unwrap();
                }
                written.store(i + 1, Ordering::Release);
                if i % 8 == 0 && dev.with_shard(0, |d| d.resize_in_progress()) {
                    std::thread::sleep(Duration::from_micros(50));
                }
                std::thread::yield_now();
            }
            dev.flush().unwrap();
            done.store(true, Ordering::Release);
        });
        // Readers: probe only keys at indices below the published
        // watermark, so each probed key has one committed value. Each
        // reader performs at least MIN_READS gets, however fast the
        // writer finishes.
        const MIN_READS: usize = 500;
        for t in 0..2usize {
            let (dev, keys, written, done, start) = (&dev, &keys, &written, &done, &start);
            scope.spawn(move || {
                start.wait();
                let mut probe = t;
                let mut reads = 0usize;
                loop {
                    let upto = written.load(Ordering::Acquire);
                    let k = &keys[probe % upto];
                    let got = dev.get(k.as_bytes()).unwrap().expect("committed key lost mid-race");
                    assert_eq!(&got[..], &value_of(k)[..], "stale or torn value for {k}");
                    probe += 3;
                    reads += 1;
                    if reads >= MIN_READS && done.load(Ordering::Acquire) {
                        break;
                    }
                }
            });
        }
    });

    // The race really crossed doublings, confined to shard 0.
    assert!(dev.shard_stats(0).resizes >= 2, "shard 0 resized < 2 times: {:?}", dev.shard_stats(0));
    for s in 1..4 {
        assert_eq!(dev.shard_stats(s).resizes, 0, "resize leaked into shard {s}");
    }
    let racing = dev.lockfree_read_stats();
    assert!(racing.gets > 0, "no get completed lock-free during the race: {racing:?}");

    // Quiet aftermath: every key reads back correctly, entirely on the
    // lock-free path (no writes in flight, everything flushed).
    let before = dev.lockfree_read_stats();
    for k in &keys {
        let got = dev.get(k.as_bytes()).unwrap().expect("key lost across doubling");
        assert_eq!(&got[..], &value_of(k)[..]);
    }
    let after = dev.lockfree_read_stats();
    assert_eq!(
        after.hits - before.hits,
        keys.len() as u64,
        "quiet post-doubling gets left the lock-free path: {after:?}"
    );

    // RHIK's ≤1-flash-read bound, on the lock-free counters: every hit
    // costs exactly one record-page read (single-page values), every
    // abandoned optimistic attempt at most one, and misses are free.
    assert!(
        after.pages_read <= after.hits + after.fallbacks,
        "lock-free path exceeded 1 flash read per lookup: {after:?}"
    );

    let mut auditor = DeviceAuditor::new();
    let report = dev.audit(&mut auditor);
    assert!(report.is_ok(), "{report}");
}

/// The structural claim behind the tentpole: a get on shard 0 completes
/// while shard 0's queue mutex is *held*. With reads serialized behind
/// the shard lock this deadlocks; the 10 s timeout is the proof budget.
#[test]
fn gets_complete_while_their_own_shard_lock_is_held() {
    let dev = ShardedKvssd::rhik(DeviceConfig::small().with_shards(4));
    let keys = keys_for_shard(&dev, 0, 20);
    for k in &keys {
        dev.put(k.as_bytes(), &value_of(k)).unwrap();
    }
    dev.flush().unwrap();
    // Prime one lock-free read so a cold cache can't masquerade as a
    // lock dependency.
    assert!(dev.get(keys[0].as_bytes()).unwrap().is_some());

    let (held_tx, held_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let (done_tx, done_rx) = mpsc::channel::<()>();
    std::thread::scope(|scope| {
        let holder = dev.clone();
        scope.spawn(move || {
            holder.with_shard(0, |_| {
                held_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            });
        });
        let reader = dev.clone();
        let keys = &keys;
        scope.spawn(move || {
            held_rx.recv().unwrap();
            let before = reader.lockfree_read_stats();
            for k in keys {
                let got = reader.get(k.as_bytes()).unwrap().unwrap();
                assert_eq!(&got[..], &value_of(k)[..]);
            }
            let after = reader.lockfree_read_stats();
            assert_eq!(
                after.hits - before.hits,
                keys.len() as u64,
                "gets under a held shard lock dodged the lock-free path"
            );
            done_tx.send(()).unwrap();
        });
        done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("gets on shard 0 blocked behind shard 0's own queue lock");
        release_tx.send(()).unwrap();
    });
}
