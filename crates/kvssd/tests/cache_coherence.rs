//! Coherence contract of the DRAM hot-object cache tier: with the cache
//! enabled, the device stays an exact key-value store — every get
//! observes exactly the last write, through directory resizes, GC
//! relocation, and concurrent mutation — while the cache respects its
//! hard byte budget and the ≤ 1-flash-read lookup bound. The
//! [`rhik_audit::DeviceAuditor`] cross-layer pass (including the
//! cache↔index coherence samples) must stay clean throughout.

use std::collections::HashMap;

use proptest::prelude::*;
use rhik_kvssd::{DeviceConfig, KvError, ShardedKvssd, TelemetrySink};

const BUDGET: u64 = 32 * 1024;

/// A small sharded device with the hot cache on and a tiny initial
/// directory, so a few hundred inserts force resize migrations while
/// the cache is live.
fn cached(shards: u32) -> ShardedKvssd<rhik_core::RhikIndex> {
    let mut cfg = DeviceConfig::small().with_shards(shards).with_hot_cache(BUDGET);
    cfg.rhik.initial_dir_bits = 1;
    ShardedKvssd::rhik(cfg)
}

#[derive(Clone, Debug)]
enum Op {
    Put(u8, u8),
    Delete(u8),
    Get(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Get-heavy so cached entries are actually served (and re-served
    // after invalidation), put/delete-heavy enough to keep invalidating.
    prop_oneof![
        3 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k, v)),
        1 => any::<u8>().prop_map(Op::Delete),
        4 => any::<u8>().prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Four threads run independent op scripts over one cache-enabled
    /// sharded device; each thread owns a disjoint key range, so every
    /// get must observe exactly the thread's own last write — a cache
    /// serving anything stale fails the model comparison. The directory
    /// starts at 1 bit, so load drives resize migrations underneath the
    /// live cache; the final audit (flash, index, gauges, cache↔index
    /// coherence) must be clean and the byte budget must hold.
    #[test]
    fn cached_ops_are_exact_under_resize_migration(
        scripts in proptest::collection::vec(proptest::collection::vec(op_strategy(), 1..60), 4..5)
    ) {
        let dev = cached(4);
        std::thread::scope(|scope| {
            for (tid, script) in scripts.iter().enumerate() {
                let dev = dev.clone();
                scope.spawn(move || {
                    let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
                    for op in script {
                        match *op {
                            Op::Put(k, v) => {
                                let key = format!("t{tid}-{k:03}");
                                let value = vec![v; (v as usize % 32) + 1];
                                dev.put(key.as_bytes(), &value).unwrap();
                                model.insert(k, value);
                            }
                            Op::Delete(k) => {
                                let key = format!("t{tid}-{k:03}");
                                match dev.delete(key.as_bytes()) {
                                    Ok(()) => assert!(model.remove(&k).is_some(), "{key}: deleted unknown key"),
                                    Err(KvError::KeyNotFound) => assert!(!model.contains_key(&k)),
                                    Err(e) => panic!("delete {key}: {e}"),
                                }
                            }
                            Op::Get(k) => {
                                let key = format!("t{tid}-{k:03}");
                                let got = dev.get(key.as_bytes()).unwrap();
                                match (got, model.get(&k)) {
                                    (Some(g), Some(m)) => assert_eq!(&g[..], &m[..], "{key}: cache served stale value"),
                                    (None, None) => {}
                                    (g, m) => panic!("{key}: device={g:?} model={m:?}"),
                                }
                            }
                        }
                    }
                });
            }
        });
        // Replay the scripts into models and verify the survivors.
        let mut expected_keys = 0u64;
        for (tid, script) in scripts.iter().enumerate() {
            let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
            for op in script {
                match *op {
                    Op::Put(k, v) => { model.insert(k, vec![v; (v as usize % 32) + 1]); }
                    Op::Delete(k) => { model.remove(&k); }
                    Op::Get(_) => {}
                }
            }
            for (k, v) in &model {
                let key = format!("t{tid}-{k:03}");
                // Twice: the first may fill the cache, the second must
                // serve the same bytes from wherever it answers.
                for _ in 0..2 {
                    let got = dev.get(key.as_bytes()).unwrap().expect("surviving key present");
                    prop_assert_eq!(&got[..], &v[..]);
                }
            }
            expected_keys += model.len() as u64;
        }
        prop_assert_eq!(dev.key_count(), expected_keys);

        let stats = dev.hot_cache_stats().expect("cache enabled");
        prop_assert!(stats.bytes <= BUDGET, "budget breached: {} > {BUDGET}", stats.bytes);

        let report = dev.audit(&mut rhik_audit::DeviceAuditor::new());
        prop_assert!(report.is_ok(), "audit found violations:\n{}", report);
    }
}

/// Overwrite churn with page-sized values forces GC to relocate live
/// records while a separate set of small hot keys sits in the cache;
/// GC relocation funnels through index upserts, which bump invalidation
/// versions, so cached hot keys must keep serving exact bytes even as
/// the records they shadow move on flash. An auditor thread hammers the
/// cross-layer audit (including the cache↔index coherence samples)
/// concurrently — every pass must be clean.
#[test]
fn cache_stays_coherent_under_gc_and_concurrent_audit() {
    let dev = cached(2);
    const CHURN_KEYS: u64 = 120;
    const HOT_KEYS: u64 = 40;
    const ROUNDS: u64 = 80;
    // Page-sized so overwrite churn turns whole pages into garbage and
    // GC has to move live data (~37 MiB written into 2 × 16 MiB shards).
    let payload = |k: u64, round: u64| vec![(k ^ round) as u8; 4096];
    let hot_value = |k: u64| format!("hot-value-{k:03}").into_bytes();

    for k in 0..CHURN_KEYS {
        dev.put(format!("gc-{k:04}").as_bytes(), &payload(k, 0)).unwrap();
    }
    for k in 0..HOT_KEYS {
        dev.put(format!("hot-{k:03}").as_bytes(), &hot_value(k)).unwrap();
    }

    std::thread::scope(|scope| {
        let writer = dev.clone();
        scope.spawn(move || {
            for round in 1..=ROUNDS {
                for k in 0..CHURN_KEYS {
                    writer.put(format!("gc-{k:04}").as_bytes(), &payload(k, round)).unwrap();
                }
            }
        });
        let reader = dev.clone();
        scope.spawn(move || {
            for round in 0..ROUNDS {
                // Hot keys are never rewritten: a stale cache could only
                // serve wrong bytes if GC relocation broke invalidation.
                for k in 0..HOT_KEYS {
                    let got = reader.get(format!("hot-{k:03}").as_bytes()).unwrap();
                    assert_eq!(
                        &got.expect("hot keys are never deleted")[..],
                        &hot_value(k)[..],
                        "hot-{k:03} corrupted in round {round}"
                    );
                }
                for k in (0..CHURN_KEYS).step_by(7) {
                    let got = reader.get(format!("gc-{k:04}").as_bytes()).unwrap();
                    let got = got.expect("churn keys are never deleted");
                    // Any round's payload is legal; a torn value is not.
                    // All payloads are 4 KiB of one repeated byte.
                    assert_eq!(got.len(), 4096, "torn value for gc-{k:04} in round {round}");
                    let b = got[0];
                    assert!(got.iter().all(|&x| x == b), "mixed bytes for gc-{k:04}");
                    assert!(
                        (0..=ROUNDS).any(|r| (k ^ r) as u8 == b),
                        "gc-{k:04}: byte {b} matches no round's payload"
                    );
                }
            }
        });
        let audit_dev = dev.clone();
        scope.spawn(move || {
            let mut auditor = rhik_audit::DeviceAuditor::new();
            for pass in 0..20 {
                let report = audit_dev.audit(&mut auditor);
                assert!(report.is_ok(), "concurrent audit pass {pass}:\n{report}");
            }
        });
    });

    // Quiescent end state: exact values, clean audit, budget held.
    for k in 0..CHURN_KEYS {
        let got = dev.get(format!("gc-{k:04}").as_bytes()).unwrap().unwrap();
        assert_eq!(&got[..], &payload(k, ROUNDS)[..], "gc-{k:04} lost its final write");
    }
    for k in 0..HOT_KEYS {
        let got = dev.get(format!("hot-{k:03}").as_bytes()).unwrap().unwrap();
        assert_eq!(&got[..], &hot_value(k)[..], "hot-{k:03} lost after GC churn");
    }
    let stats = dev.hot_cache_stats().expect("cache enabled");
    assert!(stats.bytes <= BUDGET, "budget breached: {} > {BUDGET}", stats.bytes);
    assert!(stats.hits > 0, "workload never hit the cache: {stats:?}");
    assert!(dev.stats().gc_invocations > 0, "churn never triggered GC: {:?}", dev.stats());
    let report = dev.audit(&mut rhik_audit::DeviceAuditor::new());
    assert!(report.is_ok(), "final audit:\n{report}");
}

/// Cache hits must report zero flash reads into the telemetry
/// distribution: the ≤ 1-read-per-lookup bound (the paper's headline
/// invariant) holds with the DRAM tier in front of the index.
#[test]
fn cache_hits_preserve_the_one_read_lookup_bound() {
    let dev = cached(2);
    let sink = TelemetrySink::enabled();
    dev.set_telemetry(sink.clone());
    for k in 0..200u64 {
        dev.put(format!("rb-{k:04}").as_bytes(), format!("v{k}").as_bytes()).unwrap();
    }
    dev.flush().unwrap();
    // Three passes: fill, hit, hit.
    for _ in 0..3 {
        for k in 0..200u64 {
            let got = dev.get(format!("rb-{k:04}").as_bytes()).unwrap().unwrap();
            assert_eq!(&got[..], format!("v{k}").as_bytes());
        }
    }
    let rpl = sink.reads_per_lookup().expect("sink enabled");
    assert!(rpl.invariant_ok(), "lookup read bound violated: max {} flash reads", rpl.max);
    assert_eq!(rpl.pct_within(1), 100.0);
    let snap = sink.snapshot().expect("sink enabled");
    assert!(snap.counter("hot_cache_hits") >= 200, "second and third passes should hit");
    assert_eq!(snap.counter("kvssd_gets"), 600, "hits count as gets");
}
