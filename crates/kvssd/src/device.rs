//! The KVSSD device: the five vendor commands over a pluggable index.

use bytes::Bytes;
use rhik_baseline::{LsmConfig, LsmIndex, MultiLevelConfig, MultiLevelIndex, SimpleHashIndex};
use rhik_core::RhikIndex;
use rhik_ftl::layout::{self, PairEntry};
use rhik_ftl::{gc, Ftl, FtlError, GcConfig, IndexBackend, IndexError, WrittenExtent};
use rhik_nand::{NandError, Ppa};
use rhik_sigs::{KeySignature, SigHasher};
use rhik_telemetry::{OpKind, OpSpan, Stage, StageEvent, TelemetrySink};

use crate::config::DeviceConfig;
use crate::engine::TimingEngine;
use crate::error::KvError;
use crate::Result;

/// Device-level cumulative statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceStats {
    pub puts: u64,
    pub gets: u64,
    pub deletes: u64,
    pub exists: u64,
    pub iterates: u64,
    pub not_found: u64,
    /// Signature collisions rejected at the device boundary (§VI).
    pub collisions: u64,
    /// Record-layer insert aborts surfaced to the host.
    pub rejected: u64,
    /// Logical bytes accepted from the host (keys + values).
    pub bytes_written: u64,
    /// Logical bytes returned to the host.
    pub bytes_read: u64,
    /// GC invocations triggered by commands.
    pub gc_invocations: u64,
    /// Completed index resizes (stall events).
    pub resizes: u64,
}

impl DeviceStats {
    /// Fold another counter set into this one (field-wise sum). Used to
    /// aggregate per-shard stats into a device-wide view.
    pub fn merge(&mut self, other: &DeviceStats) {
        let DeviceStats {
            puts,
            gets,
            deletes,
            exists,
            iterates,
            not_found,
            collisions,
            rejected,
            bytes_written,
            bytes_read,
            gc_invocations,
            resizes,
        } = other;
        self.puts += puts;
        self.gets += gets;
        self.deletes += deletes;
        self.exists += exists;
        self.iterates += iterates;
        self.not_found += not_found;
        self.collisions += collisions;
        self.rejected += rejected;
        self.bytes_written += bytes_written;
        self.bytes_read += bytes_read;
        self.gc_invocations += gc_invocations;
        self.resizes += resizes;
    }
}

/// Result of an `exist` command on one key (§IV-A3: probabilistic).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExistReport {
    /// The signature-only answer the device returns fast.
    pub probably_exists: bool,
    /// Flash reads the check needed (0 when answered from DRAM).
    pub flash_reads: u64,
}

/// Per-shard gauge names, formatted once when a sink is installed so the
/// per-command gauge refresh never allocates.
struct GaugeNames {
    queue_depth: String,
    occupancy: String,
    migration_slots: String,
    migration_total: String,
}

/// Pre-command cache/lookup counters, snapshotted only while a telemetry
/// sink is live; diffed at command end to synthesize span stage events.
struct OpSnapshot {
    cache_hits: u64,
    cache_misses: u64,
    lookup_histo: [u64; 16],
}

/// A KVSSD with a pluggable index scheme.
pub struct KvssdDevice<I: IndexBackend> {
    ftl: Ftl,
    index: I,
    hasher: SigHasher,
    engine: TimingEngine,
    gc_cfg: GcConfig,
    stats: DeviceStats,
    /// Open iterator sessions (slot-indexed; `None` = free slot).
    iter_sessions: Vec<Option<crate::cmd::IterSession>>,
    /// Per-command-class latency (puts / gets), for tail analysis.
    put_latencies: crate::LatencyHistogram,
    get_latencies: crate::LatencyHistogram,
    /// Observability sink (disabled by default: one branch per command).
    telemetry: TelemetrySink,
    /// Shard id stamped into op spans (0 for an unsharded device).
    shard_id: u32,
    gauge_names: Option<GaugeNames>,
}

impl KvssdDevice<RhikIndex> {
    /// Build a device around the RHIK index (the paper's system).
    pub fn rhik(cfg: DeviceConfig) -> Self {
        let index = RhikIndex::new(cfg.rhik, cfg.geometry.page_size);
        Self::with_index(cfg, index)
    }
}

impl KvssdDevice<RhikIndex> {
    /// Re-mount a device from surviving flash state after a power loss
    /// (pair with [`rhik_ftl::Ftl::simulate_power_loss`] +
    /// [`KvssdDevice::into_parts`]). The RHIK index is rebuilt from its
    /// on-flash directory snapshot; anything indexed after the last
    /// metadata flush is lost.
    pub fn recover_rhik(cfg: DeviceConfig, mut ftl: Ftl) -> Result<Self> {
        let index = RhikIndex::recover(cfg.rhik, &mut ftl).map_err(Self::map_index_err)?;
        let engine = TimingEngine::new(cfg.engine, cfg.profile, cfg.geometry.channels);
        Ok(KvssdDevice {
            ftl,
            index,
            hasher: cfg.hasher,
            engine,
            gc_cfg: cfg.gc,
            stats: DeviceStats::default(),
            // bounded-by: one slot per concurrently open iterator
            // session; closed slots are reused before the vec grows.
            iter_sessions: Vec::new(),
            put_latencies: crate::LatencyHistogram::new(),
            get_latencies: crate::LatencyHistogram::new(),
            telemetry: TelemetrySink::disabled(),
            shard_id: 0,
            gauge_names: None,
        })
    }

    /// Raw material for the cross-layer invariant auditor: the FTL's flash
    /// accounting, the index's ownership claims, and — when telemetry is
    /// live — the occupancy/migration gauges last published, paired with
    /// their recomputed ground truth. Read-only: charges no flash reads
    /// and perturbs no statistics.
    ///
    /// Call between commands. Gauges refresh at the end of every traced
    /// command (`span_finish` runs after housekeeping), so between
    /// commands the published values must agree with live index state.
    pub fn audit_parts(
        &self,
    ) -> (rhik_audit::FlashAudit, rhik_audit::IndexAuditSnapshot, Vec<rhik_audit::GaugeCheck>) {
        let flash = self.ftl.audit_flash(self.shard_id);
        let index = self.index.audit_snapshot(&self.ftl, self.shard_id);
        let mut gauges = Vec::new();
        if let Some(names) = &self.gauge_names {
            let snap = self.telemetry.snapshot();
            let occupancy = self
                .index
                .capacity()
                .filter(|&c| c > 0)
                .map_or(0.0, |c| self.index.len() as f64 / c as f64);
            let (done, total) = self.index.migration_progress().unwrap_or((0, 0));
            for (name, actual) in [
                (&names.occupancy, occupancy),
                (&names.migration_slots, done as f64),
                (&names.migration_total, total as f64),
            ] {
                gauges.push(rhik_audit::GaugeCheck {
                    gauge: name.clone(),
                    reported: snap.as_ref().and_then(|s| s.gauge(name)),
                    actual,
                });
            }
        }
        (flash, index, gauges)
    }

    /// Run the full cross-layer audit on this device's current state.
    /// `auditor` carries cursor watermarks across calls, so repeated
    /// audits additionally verify migration-cursor monotonicity.
    pub fn audit(&self, auditor: &mut rhik_audit::DeviceAuditor) -> rhik_audit::AuditReport {
        let (flash, index, gauges) = self.audit_parts();
        auditor.check_device(&flash, &index, &gauges)
    }
}

impl KvssdDevice<MultiLevelIndex> {
    /// Build a device around the Samsung-style multi-level hash baseline.
    pub fn multilevel(cfg: DeviceConfig, ml: MultiLevelConfig) -> Self {
        let index = MultiLevelIndex::new(ml, cfg.geometry.page_size);
        Self::with_index(cfg, index)
    }
}

impl KvssdDevice<SimpleHashIndex> {
    /// Build a device around the NVMKV-style fixed hash baseline.
    pub fn simple_hash(cfg: DeviceConfig, bits: u32, hop_width: u32) -> Self {
        let index = SimpleHashIndex::new(bits, hop_width, cfg.geometry.page_size);
        Self::with_index(cfg, index)
    }
}

impl KvssdDevice<LsmIndex> {
    /// Build a device around the PinK-style LSM baseline.
    pub fn lsm(cfg: DeviceConfig, lsm: LsmConfig) -> Self {
        Self::with_index(cfg, LsmIndex::new(lsm))
    }
}

impl<I: IndexBackend> KvssdDevice<I> {
    /// Build a device around any index implementation.
    pub fn with_index(cfg: DeviceConfig, index: I) -> Self {
        Self::with_index_and_ftl(cfg, Ftl::new(cfg.ftl_config()), index)
    }

    /// Build a device around a pre-built FTL and any index. This is how a
    /// sharded device installs per-shard FTL front-ends that lease erase
    /// blocks from one shared [`rhik_ftl::FlashPool`]
    /// (see [`rhik_ftl::Ftl::with_pool`]).
    pub fn with_index_and_ftl(cfg: DeviceConfig, ftl: Ftl, index: I) -> Self {
        let engine = TimingEngine::new(cfg.engine, cfg.profile, cfg.geometry.channels);
        KvssdDevice {
            ftl,
            index,
            hasher: cfg.hasher,
            engine,
            gc_cfg: cfg.gc,
            stats: DeviceStats::default(),
            // bounded-by: one slot per concurrently open iterator
            // session; closed slots are reused before the vec grows.
            iter_sessions: Vec::new(),
            put_latencies: crate::LatencyHistogram::new(),
            get_latencies: crate::LatencyHistogram::new(),
            telemetry: TelemetrySink::disabled(),
            shard_id: 0,
            gauge_names: None,
        }
    }

    // ------------------------------------------------------------ plumbing

    pub fn stats(&self) -> DeviceStats {
        let mut s = self.stats;
        // Resizes can complete inline (inside an insert) or via deferred
        // maintenance; the index's event log is the single source of truth.
        s.resizes = self.index.stats().resizes.len() as u64;
        s
    }

    pub fn index(&self) -> &I {
        &self.index
    }

    pub fn ftl(&self) -> &Ftl {
        &self.ftl
    }

    /// Mutable FTL access for tests (fault injection, cache inspection).
    pub fn ftl_mut(&mut self) -> &mut Ftl {
        &mut self.ftl
    }

    pub fn engine(&self) -> &TimingEngine {
        &self.engine
    }

    /// A cloneable handle that reads record pages through the narrow
    /// media lock, bypassing this device's command mutex (the sharded
    /// lock-free get path).
    pub fn media_reader(&self) -> rhik_ftl::MediaReader {
        self.ftl.media_reader()
    }

    /// Offer a generation-published read view to the index backend.
    /// Returns `true` iff the backend accepted it and will keep it
    /// coherent (backends may only accept while empty); `false` leaves
    /// every get on the locked path.
    pub fn attach_read_view(&mut self, view: std::sync::Arc<rhik_ftl::ReadView>) -> bool {
        self.index.attach_read_view(view)
    }

    /// Offer the hot-object cache tier's invalidation version table to
    /// the index backend. Returns `true` iff the backend accepted it and
    /// will bump the mutated signature's stripe after every value
    /// mutation; `false` means the cache tier must stay disabled for
    /// this device.
    pub fn attach_versions(&mut self, versions: std::sync::Arc<rhik_ftl::VersionTable>) -> bool {
        self.index.attach_versions(versions)
    }

    /// Install a telemetry sink (shard id 0). The sink is shared down the
    /// stack (FTL, NAND) so media ops, cache traffic, GC and resize
    /// progress all land in one registry and trace ring.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.set_telemetry_shard(sink, 0);
    }

    /// Install a telemetry sink with an explicit shard id (used by
    /// [`crate::ShardedKvssd`]; spans and gauges are tagged per shard).
    pub fn set_telemetry_shard(&mut self, sink: TelemetrySink, shard: u32) {
        self.shard_id = shard;
        self.gauge_names = sink.is_enabled().then(|| GaugeNames {
            queue_depth: format!("shard{shard}_queue_depth"),
            occupancy: format!("shard{shard}_index_occupancy"),
            migration_slots: format!("shard{shard}_migration_slots_done"),
            migration_total: format!("shard{shard}_migration_slots_total"),
        });
        self.ftl.set_telemetry(sink.clone());
        self.telemetry = sink;
    }

    /// The installed telemetry sink (disabled unless one was set).
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// Keys currently stored.
    pub fn key_count(&self) -> u64 {
        self.index.len()
    }

    /// Live payload bytes / raw capacity.
    pub fn utilization(&self) -> f64 {
        self.ftl.utilization()
    }

    /// Simulated seconds since power-on.
    pub fn elapsed_secs(&self) -> f64 {
        self.engine.elapsed_secs()
    }

    fn sign(&self, key: &[u8]) -> KeySignature {
        self.hasher.sign(key)
    }

    fn map_index_err(e: IndexError) -> KvError {
        match e {
            IndexError::TableFull { .. } => KvError::KeyRejected,
            IndexError::CapacityExhausted => KvError::IndexFull,
            IndexError::NeedsGc => KvError::DeviceFull,
            IndexError::Unsupported(op) => KvError::Unsupported(op),
            IndexError::Flash(NandError::ReadFailed(ppa)) => KvError::ReadFault { ppa },
            IndexError::Flash(f) => KvError::Media(f.to_string()),
        }
    }

    fn map_ftl_err(e: FtlError) -> KvError {
        match e {
            FtlError::NeedsGc => KvError::DeviceFull,
            FtlError::ValueTooLarge { len, max } => KvError::ValueTooLarge { len, max },
            FtlError::KeyTooLarge { len } => KvError::KeyTooLarge { len },
            FtlError::Flash(NandError::ReadFailed(ppa)) => KvError::ReadFault { ppa },
            FtlError::Flash(f) => KvError::Media(f.to_string()),
            FtlError::Corrupt(detail) => KvError::Corrupt(detail),
        }
    }

    /// Drain media ops to the timing engine, charging `host_bytes` of host
    /// transfer to this command.
    fn settle(&mut self, host_bytes: u64) -> crate::CommandTiming {
        let ops = self.ftl.drain_timed_ops();
        self.engine.account(&ops, host_bytes)
    }

    // ---------------------------------------------------------- telemetry

    /// Begin an op span: discard stage events left over from failed
    /// commands or out-of-band maintenance, and snapshot the counters the
    /// span will be diffed against. Returns `None` (one branch, no work)
    /// when telemetry is disabled.
    fn span_begin(&mut self) -> Option<OpSnapshot> {
        if !self.telemetry.is_enabled() {
            return None;
        }
        self.ftl.drain_stage_log();
        let cache = self.ftl.cache_ref().stats();
        Some(OpSnapshot {
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            lookup_histo: self.index.stats().reads_per_lookup_histo,
        })
    }

    /// Finish an op span: drain the media stage events the FTL staged for
    /// this command, synthesize cache and queue-wait events from counter
    /// diffs, and publish the span, latency histogram, and shard gauges.
    /// `stall_ns` is queue-hold time (GC/resize housekeeping) charged to
    /// this command on top of its media timing.
    fn span_finish(
        &mut self,
        snap: Option<OpSnapshot>,
        kind: OpKind,
        timing: crate::CommandTiming,
        stall_ns: u64,
    ) {
        let Some(snap) = snap else { return };
        let mut stages = self.ftl.drain_stage_log();
        let cache = self.ftl.cache_ref().stats();
        let hits = cache.hits - snap.cache_hits;
        let misses = cache.misses - snap.cache_misses;
        if hits > 0 {
            stages.push(StageEvent { stage: Stage::CacheHit, count: hits as u32, dur_ns: 0 });
        }
        if misses > 0 {
            stages.push(StageEvent { stage: Stage::CacheMiss, count: misses as u32, dur_ns: 0 });
        }
        if stall_ns > 0 {
            stages.push(StageEvent { stage: Stage::QueueWait, count: 1, dur_ns: stall_ns });
        }

        // Flash reads this command's index lookup needed, taken from the
        // index's own per-lookup distribution rather than raw FTL read
        // counters — migration-batch reads are excluded, so the ≤ 1-read
        // invariant stays measurable mid-resize. A GC retry can record
        // more than one lookup; the highest changed bucket is the
        // worst case this command saw.
        let mut lookup_reads = None;
        if kind == OpKind::Get {
            let histo = self.index.stats().reads_per_lookup_histo;
            lookup_reads = (0..histo.len())
                .rev()
                .find(|&i| histo[i] > snap.lookup_histo[i])
                .map(|reads| reads as u64);
        }

        let (ops_counter, latency_histo) = match kind {
            OpKind::Put => ("kvssd_puts", Some("put_latency_ns")),
            OpKind::Get => ("kvssd_gets", Some("get_latency_ns")),
            OpKind::Delete => ("kvssd_deletes", Some("delete_latency_ns")),
            OpKind::Exist => ("kvssd_exists", None),
            OpKind::Maintenance => ("kvssd_maintenance_steps", None),
        };
        let latency = latency_histo.map(|name| (name, timing.latency_ns() + stall_ns));
        let span = OpSpan {
            kind,
            shard: self.shard_id,
            submitted_ns: timing.submitted_ns,
            completed_ns: timing.completed_ns + stall_ns,
            lookup_flash_reads: lookup_reads.unwrap_or(0),
            stages,
        };

        // Per-shard gauges: submission-queue depth, index occupancy, and
        // the incremental-resize migration cursor. All recording — span,
        // counter, histogram, lookup note, gauges — goes through one lock
        // acquisition; the mutex dominates per-op telemetry cost.
        if let Some(names) = &self.gauge_names {
            let occupancy = self
                .index
                .capacity()
                .filter(|&c| c > 0)
                .map_or(0.0, |c| self.index.len() as f64 / c as f64);
            let (done, total) = self.index.migration_progress().unwrap_or((0, 0));
            let gauges = [
                (names.queue_depth.as_str(), self.engine.inflight_commands() as f64),
                (names.occupancy.as_str(), occupancy),
                (names.migration_slots.as_str(), done as f64),
                (names.migration_total.as_str(), total as f64),
            ];
            self.telemetry.record_op(span, ops_counter, latency, lookup_reads, &gauges);
        } else {
            self.telemetry.record_op(span, ops_counter, latency, lookup_reads, &[]);
        }
    }

    /// Latency distribution of `put` commands (includes resize stalls).
    pub fn put_latencies(&self) -> &crate::LatencyHistogram {
        &self.put_latencies
    }

    /// Latency distribution of `get` commands.
    pub fn get_latencies(&self) -> &crate::LatencyHistogram {
        &self.get_latencies
    }

    /// Run GC; returns whether anything was reclaimed.
    fn run_gc(&mut self) -> Result<bool> {
        self.stats.gc_invocations += 1;
        let raw_before = self.ftl.free_blocks_raw();
        let r = gc::run(&mut self.ftl, &mut self.index, &self.gc_cfg);
        if std::env::var_os("RHIK_GC_TRACE").is_some() {
            eprintln!("[gc] raw {} -> {} result {:?}", raw_before, self.ftl.free_blocks_raw(), r);
        }
        match r {
            Ok(report) => Ok(report.data_blocks_erased + report.index_blocks_erased > 0),
            // Collection itself ran out of scratch blocks mid-relocation
            // and aborted (consistently — the victim was not erased).
            // That is "nothing reclaimed", not a command failure.
            Err(FtlError::NeedsGc) => Ok(false),
            Err(e) => Err(Self::map_ftl_err(e)),
        }
    }

    /// Run one garbage-collection pass now. Returns whether any block was
    /// reclaimed. Used by the sharded router's device-wide sweep: a shard
    /// only collects its own leased blocks, so when one shard exhausts
    /// the shared pool, garbage held by *other* shards is reachable only
    /// through their collectors.
    pub fn collect_garbage(&mut self) -> Result<bool> {
        self.run_gc()
    }

    /// After an allocation failed with `NeedsGc`: collect, and say whether
    /// retrying the allocation is worthwhile — either our own collection
    /// reclaimed blocks, or (sharded mode) another shard refilled the
    /// shared pool while we waited on the GC permit.
    fn gc_retry(&mut self) -> Result<bool> {
        Ok(self.run_gc()? || self.ftl.free_blocks() > 0)
    }

    /// Index lookup that garbage-collects if a cache-eviction write-back
    /// needs blocks (a *read* can allocate when it displaces a dirty
    /// cached index page).
    fn lookup_with_gc(&mut self, sig: rhik_sigs::KeySignature) -> Result<Option<Ppa>> {
        loop {
            match self.index.lookup(&mut self.ftl, sig) {
                Ok(v) => return Ok(v),
                Err(IndexError::NeedsGc) if self.gc_retry()? => continue,
                Err(e) => return Err(Self::map_index_err(e)),
            }
        }
    }

    /// Post-command housekeeping: proactive GC + deferred index maintenance
    /// (the RHIK resize, which stalls the submission queue).
    fn housekeeping(&mut self) -> Result<()> {
        if gc::should_run(&self.ftl, &self.gc_cfg) {
            let _ = self.run_gc()?;
        }
        if self.index.maintenance_due() {
            match self.index.maintain(&mut self.ftl) {
                Ok(()) => {}
                Err(IndexError::NeedsGc) => {
                    if self.run_gc()? {
                        match self.index.maintain(&mut self.ftl) {
                            Ok(()) | Err(IndexError::NeedsGc) => {}
                            Err(e) => return Err(Self::map_index_err(e)),
                        }
                    }
                }
                Err(e) => return Err(Self::map_index_err(e)),
            }
            // The resize held the submission queue (§IV-A2): charge its
            // media time as a stall.
            let ops = self.ftl.drain_timed_ops();
            let stall: u64 = ops.iter().map(|o| o.duration_ns).sum();
            self.engine.stall_until(self.engine.now_ns() + stall);
        }
        Ok(())
    }

    /// Whether the index is mid-way through an incremental directory
    /// doubling (old and new directories both live, cursor advancing).
    pub fn resize_in_progress(&self) -> bool {
        self.index.resize_in_progress()
    }

    /// Run one bounded slice of background index maintenance — the idle-time
    /// half of the incremental resize (§IV-A2 amortized). Call it when the
    /// submission queue is empty; each call migrates at most
    /// `resize_migration_batch` directory slots. Returns `true` when it did
    /// useful work (callers can loop until `false` to drain a migration).
    ///
    /// Media time is charged to the simulated clock as an idle-period stall,
    /// not to any command's latency — that is the whole point of moving the
    /// work off the foreground path.
    pub fn maintain_step(&mut self) -> Result<bool> {
        let snap = self.span_begin();
        let submitted_ns = self.engine.now_ns();
        let progressed = match self.index.maintain_step(&mut self.ftl) {
            Ok(p) => p,
            Err(IndexError::NeedsGc) => {
                // Migration paused on free space; reclaim and report "still
                // working" so drain loops retry after the collection.
                self.run_gc()?
            }
            Err(e) => return Err(Self::map_index_err(e)),
        };
        let ops = self.ftl.drain_timed_ops();
        let stall: u64 = ops.iter().map(|o| o.duration_ns).sum();
        self.engine.stall_until(self.engine.now_ns() + stall);
        if progressed {
            let timing = crate::CommandTiming { submitted_ns, completed_ns: self.engine.now_ns() };
            self.span_finish(snap, OpKind::Maintenance, timing, 0);
        }
        Ok(progressed)
    }

    /// Read the full pair stored at `head` for `sig` (write buffer aware).
    /// Returns the key, value, and the pair's on-flash extent (for
    /// staleness accounting on update/delete).
    fn read_pair(
        &mut self,
        sig: KeySignature,
        head: Ppa,
    ) -> Result<Option<(Bytes, Bytes, WrittenExtent)>> {
        if Some(head) == self.ftl.pending_head() {
            if let (Some((k, frag)), Some(extent)) =
                (self.ftl.pending_pair(sig), self.ftl.pending_extent(sig))
            {
                // The head fragment is in the DRAM buffer; the body (if
                // any) is already on flash and costs real reads.
                let mut value = frag.to_vec();
                if let Some(start) = extent.cont_start {
                    let mut remaining = extent.cont_bytes as usize;
                    let mut i = 0;
                    while remaining > 0 {
                        let (cd, _) = self
                            .ftl
                            .read_data_page(Ppa::new(start.block, start.page + i))
                            .map_err(Self::map_ftl_err)?;
                        let take = remaining.min(cd.len());
                        value.extend_from_slice(&cd[..take]);
                        remaining -= take;
                        i += 1;
                    }
                }
                return Ok(Some((k, Bytes::from(value), extent)));
            }
            return Ok(None);
        }
        let (data, _) = self.ftl.read_data_page(head).map_err(Self::map_ftl_err)?;
        let page_size = self.ftl.geometry().page_size as usize;
        let Some(entry) = layout::find_in_head(&data, page_size, sig) else {
            return Ok(None);
        };
        let extent = WrittenExtent {
            head,
            cont_start: entry.cont_start,
            cont_pages: entry.cont_pages(self.ftl.geometry().page_size),
            head_bytes: (layout::RECORD_PREFIX_LEN
                + entry.key.len()
                + entry.frag_len as usize
                + layout::SIG_ENTRY_LEN) as u64,
            cont_bytes: (entry.val_total_len - entry.frag_len) as u64,
        };
        let value = self.assemble_value(&entry)?;
        Ok(Some((entry.key.clone(), value, extent)))
    }

    fn assemble_value(&mut self, entry: &PairEntry) -> Result<Bytes> {
        let mut value = entry.value_frag.to_vec();
        let mut remaining = (entry.val_total_len - entry.frag_len) as usize;
        if remaining > 0 {
            let Some(start) = entry.cont_start else {
                return Err(KvError::Corrupt(
                    "stored pair overflows its head page but has no continuation extent".into(),
                ));
            };
            let mut i = 0;
            while remaining > 0 {
                let (cd, _) = self
                    .ftl
                    .read_data_page(Ppa::new(start.block, start.page + i))
                    .map_err(Self::map_ftl_err)?;
                let take = remaining.min(cd.len());
                value.extend_from_slice(&cd[..take]);
                remaining -= take;
                i += 1;
            }
        }
        Ok(Bytes::from(value))
    }

    // ------------------------------------------------------------ commands

    /// `put`: store a KV pair (§IV "store" flow: sign, exist-check with
    /// full-key verification, write data, update index).
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        if key.is_empty() {
            return Err(KvError::EmptyKey);
        }
        self.stats.puts += 1;
        let snap = self.span_begin();
        let sig = self.sign(key);

        // Exist check: if the signature is present, fetch and verify the
        // stored key (collision detection + update staleness accounting).
        let old = match self.lookup_with_gc(sig)? {
            Some(head) => match self.read_pair(sig, head)? {
                Some((stored_key, _v, extent)) => {
                    if stored_key != key {
                        self.stats.collisions += 1;
                        self.settle(key.len() as u64);
                        return Err(KvError::KeyCollision);
                    }
                    Some(extent)
                }
                None => None,
            },
            None => None,
        };

        // Write the new pair, garbage-collecting on demand.
        let extent = loop {
            match self.ftl.store_pair(sig, key, value, 0) {
                Ok(e) => break e,
                Err(FtlError::NeedsGc) => {
                    if !self.gc_retry()? {
                        self.settle(key.len() as u64);
                        return Err(KvError::DeviceFull);
                    }
                }
                Err(e) => {
                    self.settle(key.len() as u64);
                    return Err(Self::map_ftl_err(e));
                }
            }
        };

        // Repoint the index, garbage-collecting if the metadata write
        // itself needs blocks. On terminal failure, the freshly-written
        // extent is stale garbage (harmless; GC reclaims it).
        loop {
            match self.index.insert(&mut self.ftl, sig, extent.head) {
                Ok(_) => break,
                Err(IndexError::NeedsGc) if self.gc_retry()? => continue,
                Err(e) => {
                    self.ftl.mark_stale(&extent);
                    self.ftl.drop_pending(sig);
                    self.settle(key.len() as u64);
                    if matches!(e, IndexError::TableFull { .. }) {
                        self.stats.rejected += 1;
                    }
                    return Err(Self::map_index_err(e));
                }
            }
        }

        // Retire the superseded pair (update path). Even when the old copy
        // sits in the same open page (in-page update), its bytes are dead
        // weight and must count as stale.
        if let Some(old_extent) = old {
            self.ftl.mark_stale(&old_extent);
        }

        self.stats.bytes_written += (key.len() + value.len()) as u64;
        let timing = self.settle((key.len() + value.len()) as u64);
        let before_hk = self.engine.now_ns();
        self.housekeeping()?;
        // A resize/GC triggered by this command stalls the queue (§IV-A2);
        // charge that stall to this put's observed latency.
        let stall = self.engine.now_ns() - before_hk;
        self.put_latencies.record(timing.latency_ns() + stall);
        self.span_finish(snap, OpKind::Put, timing, stall);
        Ok(())
    }

    /// `get`: retrieve the value for `key` (full-key verification before
    /// returning, §IV-A3).
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Bytes>> {
        if key.is_empty() {
            return Err(KvError::EmptyKey);
        }
        self.stats.gets += 1;
        let snap = self.span_begin();
        let sig = self.sign(key);
        let result = match self.lookup_with_gc(sig)? {
            Some(head) => match self.read_pair(sig, head)? {
                Some((stored_key, value, _)) => {
                    if stored_key == key {
                        self.stats.bytes_read += value.len() as u64;
                        Some(value)
                    } else {
                        // Signature collision: the stored pair is a
                        // different key.
                        self.stats.not_found += 1;
                        None
                    }
                }
                None => {
                    self.stats.not_found += 1;
                    None
                }
            },
            None => {
                self.stats.not_found += 1;
                None
            }
        };
        let host = key.len() as u64 + result.as_ref().map_or(0, |v| v.len() as u64);
        let timing = self.settle(host);
        self.get_latencies.record(timing.latency_ns());
        self.span_finish(snap, OpKind::Get, timing, 0);
        Ok(result)
    }

    /// `delete`: remove a pair ("the record is then fetched from flash to
    /// match the request key", §IV).
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        if key.is_empty() {
            return Err(KvError::EmptyKey);
        }
        self.stats.deletes += 1;
        let snap = self.span_begin();
        let sig = self.sign(key);
        let Some(head) = self.lookup_with_gc(sig)? else {
            self.stats.not_found += 1;
            self.settle(key.len() as u64);
            return Err(KvError::KeyNotFound);
        };
        let Some((stored_key, _v, extent)) = self.read_pair(sig, head)? else {
            self.stats.not_found += 1;
            self.settle(key.len() as u64);
            return Err(KvError::KeyNotFound);
        };
        if stored_key != key {
            self.stats.collisions += 1;
            self.settle(key.len() as u64);
            return Err(KvError::KeyNotFound);
        }
        // Unlink, garbage-collecting if the metadata write needs blocks.
        loop {
            match self.index.remove(&mut self.ftl, sig) {
                Ok(_) => break,
                Err(IndexError::NeedsGc) if self.gc_retry()? => continue,
                Err(e) => return Err(Self::map_index_err(e)),
            }
        }
        self.ftl.mark_stale(&extent);
        self.ftl.drop_pending(sig);
        let timing = self.settle(key.len() as u64);
        let before_hk = self.engine.now_ns();
        self.housekeeping()?;
        let stall = self.engine.now_ns() - before_hk;
        self.span_finish(snap, OpKind::Delete, timing, stall);
        Ok(())
    }

    /// `exist`: probabilistic membership from signatures only (§IV-A3) —
    /// no KV data is read, so a false positive is possible at the
    /// signature-collision rate.
    pub fn exist(&mut self, key: &[u8]) -> Result<ExistReport> {
        if key.is_empty() {
            return Err(KvError::EmptyKey);
        }
        self.stats.exists += 1;
        let snap = self.span_begin();
        let sig = self.sign(key);
        let reads_before = self.ftl.stats().index_page_reads;
        let hit = self.index.contains(&mut self.ftl, sig).map_err(Self::map_index_err)?;
        let flash_reads = self.ftl.stats().index_page_reads - reads_before;
        let timing = self.settle(key.len() as u64);
        self.span_finish(snap, OpKind::Exist, timing, 0);
        Ok(ExistReport { probably_exists: hit, flash_reads })
    }

    /// `iterate`: enumerate keys with the given prefix (§VI's integrated
    /// iterator support). With the default hasher this is a full index
    /// sweep that reads each candidate pair to verify its true prefix.
    /// With [`SigHasher::PrefixSuffix`], candidates whose signature's high
    /// half cannot match the prefix are skipped *without any flash read* —
    /// the paper's "careful partitioning of the keys inside the index".
    /// Returns up to `limit` keys (unordered, like the Samsung iterator).
    pub fn iterate(&mut self, prefix: &[u8], limit: usize) -> Result<Vec<Bytes>> {
        self.stats.iterates += 1;
        let mut candidates = Vec::new();
        self.index
            .scan_records(&mut self.ftl, &mut |sig, ppa| candidates.push((sig, ppa)))
            .map_err(Self::map_index_err)?;

        // Signature-level pruning when the hasher supports it and the
        // prefix pins all four signature-prefix bytes.
        if prefix.len() >= 4 {
            if let Some(bucket) = self.hasher.prefix_bucket(prefix) {
                candidates.retain(|(sig, _)| (sig.0 >> 32) as u32 == bucket);
            }
        }

        let mut keys = Vec::new();
        let mut host_bytes = 0u64;
        for (sig, head) in candidates {
            if keys.len() >= limit {
                break;
            }
            if let Some((stored_key, _v, _)) = self.read_pair(sig, head)? {
                if stored_key.starts_with(prefix) {
                    host_bytes += stored_key.len() as u64;
                    keys.push(stored_key);
                }
            }
        }
        self.settle(host_bytes);
        Ok(keys)
    }

    /// Tear the device apart, keeping the flash (crash simulation,
    /// re-mounting with a different engine, forensics).
    pub fn into_parts(self) -> (Ftl, I) {
        (self.ftl, self.index)
    }

    /// Diagnostic: the flash head-page address currently indexed for
    /// `key` (tests and benches use this to target fault injection).
    pub fn locate(&mut self, key: &[u8]) -> Result<Option<Ppa>> {
        let sig = self.sign(key);
        self.index.lookup(&mut self.ftl, sig).map_err(Self::map_index_err)
    }

    // -------------------------------------------------- cmd.rs plumbing

    pub(crate) fn begin_compound(&mut self) {
        self.engine.set_compound(true);
    }

    pub(crate) fn end_compound(&mut self) {
        self.engine.set_compound(false);
    }

    pub(crate) fn hasher_ref(&self) -> &SigHasher {
        &self.hasher
    }

    pub(crate) fn scan_for_iterate(&mut self, out: &mut Vec<(KeySignature, Ppa)>) -> Result<()> {
        self.stats.iterates += 1;
        self.index
            .scan_records(&mut self.ftl, &mut |sig, ppa| out.push((sig, ppa)))
            .map_err(Self::map_index_err)
    }

    pub(crate) fn alloc_iter_slot(&mut self, session: crate::cmd::IterSession) -> usize {
        if let Some(slot) = self.iter_sessions.iter().position(Option::is_none) {
            self.iter_sessions[slot] = Some(session);
            slot
        } else {
            self.iter_sessions.push(Some(session));
            self.iter_sessions.len() - 1
        }
    }

    pub(crate) fn free_iter_slot(&mut self, slot: usize) -> Result<()> {
        match self.iter_sessions.get_mut(slot) {
            Some(s @ Some(_)) => {
                *s = None;
                Ok(())
            }
            _ => Err(KvError::Unsupported("iterator handle not open")),
        }
    }

    /// Current candidate of a session without consuming it.
    pub(crate) fn iter_peek(
        &mut self,
        handle: crate::cmd::IterHandle,
    ) -> Result<Option<(KeySignature, Ppa, Vec<u8>)>> {
        match self.iter_sessions.get(handle.0) {
            Some(Some(s)) => {
                Ok(s.candidates.get(s.pos).map(|&(sig, ppa)| (sig, ppa, s.prefix.clone())))
            }
            _ => Err(KvError::Unsupported("iterator handle not open")),
        }
    }

    pub(crate) fn iter_advance(&mut self, handle: crate::cmd::IterHandle) -> Result<()> {
        match self.iter_sessions.get_mut(handle.0) {
            Some(Some(s)) => {
                s.pos += 1;
                Ok(())
            }
            _ => Err(KvError::Unsupported("iterator handle not open")),
        }
    }

    /// `read_pair` for sibling modules.
    pub(crate) fn read_pair_public(
        &mut self,
        sig: KeySignature,
        head: Ppa,
    ) -> Result<Option<(Bytes, Bytes, WrittenExtent)>> {
        self.read_pair(sig, head)
    }

    /// Flush all buffered state (shutdown / checkpoint).
    pub fn flush(&mut self) -> Result<()> {
        self.ftl.flush_data_builder().map_err(Self::map_ftl_err)?;
        self.index.flush(&mut self.ftl).map_err(Self::map_index_err)?;
        self.settle(0);
        Ok(())
    }
}

impl<I: IndexBackend> std::fmt::Debug for KvssdDevice<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvssdDevice")
            .field("index", &self.index.name())
            .field("keys", &self.index.len())
            .field("utilization", &format!("{:.3}", self.utilization()))
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    fn device() -> KvssdDevice<RhikIndex> {
        KvssdDevice::rhik(DeviceConfig::small())
    }

    #[test]
    fn stats_merge_sums_every_field() {
        let a = DeviceStats {
            puts: 1,
            gets: 2,
            deletes: 3,
            exists: 4,
            iterates: 5,
            not_found: 6,
            collisions: 7,
            rejected: 8,
            bytes_written: 9,
            bytes_read: 10,
            gc_invocations: 11,
            resizes: 12,
        };
        let b = DeviceStats {
            puts: 100,
            gets: 200,
            deletes: 300,
            exists: 400,
            iterates: 500,
            not_found: 600,
            collisions: 700,
            rejected: 800,
            bytes_written: 900,
            bytes_read: 1000,
            gc_invocations: 1100,
            resizes: 1200,
        };
        let mut m = a;
        m.merge(&b);
        let expect = DeviceStats {
            puts: 101,
            gets: 202,
            deletes: 303,
            exists: 404,
            iterates: 505,
            not_found: 606,
            collisions: 707,
            rejected: 808,
            bytes_written: 909,
            bytes_read: 1010,
            gc_invocations: 1111,
            resizes: 1212,
        };
        assert_eq!(m, expect);
        // Merging the zero stats is the identity.
        let mut z = b;
        z.merge(&DeviceStats::default());
        assert_eq!(z, b);
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let mut dev = device();
        dev.put(b"alpha", b"one").unwrap();
        dev.put(b"beta", b"two").unwrap();
        assert_eq!(&dev.get(b"alpha").unwrap().unwrap()[..], b"one");
        assert_eq!(&dev.get(b"beta").unwrap().unwrap()[..], b"two");
        assert_eq!(dev.get(b"gamma").unwrap(), None);
        dev.delete(b"alpha").unwrap();
        assert_eq!(dev.get(b"alpha").unwrap(), None);
        assert_eq!(dev.delete(b"alpha").unwrap_err(), KvError::KeyNotFound);
        assert_eq!(dev.key_count(), 1);
    }

    #[test]
    fn update_replaces_value() {
        let mut dev = device();
        dev.put(b"k", b"v1").unwrap();
        dev.put(b"k", b"v2-longer-than-before").unwrap();
        assert_eq!(&dev.get(b"k").unwrap().unwrap()[..], b"v2-longer-than-before");
        assert_eq!(dev.key_count(), 1);
        assert!(dev.ftl().total_stale_bytes() > 0, "old version marked stale");
    }

    #[test]
    fn empty_keys_rejected_empty_values_fine() {
        let mut dev = device();
        assert_eq!(dev.put(b"", b"v").unwrap_err(), KvError::EmptyKey);
        assert_eq!(dev.get(b"").unwrap_err(), KvError::EmptyKey);
        dev.put(b"k", b"").unwrap();
        assert_eq!(&dev.get(b"k").unwrap().unwrap()[..], b"");
    }

    #[test]
    fn large_values_roundtrip() {
        let mut dev = device();
        // Multi-page value (4 KiB pages): 20 KiB.
        let value: Vec<u8> = (0..20 * 1024).map(|i| (i % 251) as u8).collect();
        dev.put(b"big", &value).unwrap();
        assert_eq!(&dev.get(b"big").unwrap().unwrap()[..], &value[..]);
        // Over the extent limit must be rejected cleanly.
        let max = dev.ftl().max_value_bytes();
        assert!(matches!(
            dev.put(b"too-big", &vec![0u8; max + 1]).unwrap_err(),
            KvError::ValueTooLarge { .. }
        ));
        // Device still healthy.
        assert_eq!(&dev.get(b"big").unwrap().unwrap()[..], &value[..]);
    }

    #[test]
    fn exist_is_signature_only() {
        let mut dev = device();
        dev.put(b"present", b"v").unwrap();
        assert!(dev.exist(b"present").unwrap().probably_exists);
        assert!(!dev.exist(b"absent").unwrap().probably_exists);
        // No data-page reads happened for exist.
        let data_reads = dev.ftl().stats().data_page_reads;
        for i in 0..50u64 {
            dev.exist(format!("probe-{i}").as_bytes()).unwrap();
        }
        assert_eq!(dev.ftl().stats().data_page_reads, data_reads);
    }

    #[test]
    fn iterate_by_prefix() {
        let mut dev = device();
        for i in 0..20u64 {
            dev.put(format!("user:{i:03}").as_bytes(), b"u").unwrap();
        }
        for i in 0..7u64 {
            dev.put(format!("blob:{i:03}").as_bytes(), b"b").unwrap();
        }
        let mut users = dev.iterate(b"user:", 1000).unwrap();
        users.sort();
        assert_eq!(users.len(), 20);
        assert_eq!(&users[0][..], b"user:000");
        let blobs = dev.iterate(b"blob:", 3).unwrap();
        assert_eq!(blobs.len(), 3, "limit respected");
        let all = dev.iterate(b"", 1000).unwrap();
        assert_eq!(all.len(), 27);
    }

    #[test]
    fn iterate_with_zero_limit_and_empty_device() {
        let mut dev = device();
        assert!(dev.iterate(b"any", 0).unwrap().is_empty());
        assert!(dev.iterate(b"", 100).unwrap().is_empty());
        dev.put(b"one", b"1").unwrap();
        assert!(dev.iterate(b"one", 0).unwrap().is_empty(), "limit 0 yields nothing");
        assert_eq!(dev.iterate(b"", 100).unwrap().len(), 1);
    }

    #[test]
    fn exist_rejects_empty_key() {
        let mut dev = device();
        assert_eq!(dev.exist(b"").unwrap_err(), KvError::EmptyKey);
        assert_eq!(dev.delete(b"").unwrap_err(), KvError::EmptyKey);
    }

    #[test]
    fn max_size_value_roundtrip_at_limit() {
        let mut dev = device();
        let max = dev.ftl().max_value_bytes();
        let value: Vec<u8> = (0..max).map(|i| (i % 253) as u8).collect();
        dev.put(b"max", &value).unwrap();
        assert_eq!(&dev.get(b"max").unwrap().unwrap()[..], &value[..]);
        // Update it with a tiny value; the huge old extent goes stale.
        dev.put(b"max", b"tiny").unwrap();
        assert_eq!(&dev.get(b"max").unwrap().unwrap()[..], b"tiny");
        assert!(dev.ftl().total_stale_bytes() as usize >= max);
    }

    #[test]
    fn flush_is_idempotent() {
        let mut dev = device();
        dev.put(b"k", b"v").unwrap();
        dev.flush().unwrap();
        dev.flush().unwrap();
        dev.flush().unwrap();
        assert_eq!(&dev.get(b"k").unwrap().unwrap()[..], b"v");
    }

    #[test]
    fn hyper_local_device_never_rejects() {
        // A device configured with tiny hop width + hyper-local absorbs
        // pathological bucket pressure without KeyRejected.
        let mut cfg = DeviceConfig::small();
        cfg.rhik.hop_width = 4;
        cfg.rhik.hyper_local = true;
        let mut dev = KvssdDevice::rhik(cfg);
        for i in 0..2_000u64 {
            dev.put(format!("hl-{i:06}").as_bytes(), b"v")
                .unwrap_or_else(|e| panic!("rejected at {i}: {e}"));
        }
        assert_eq!(dev.stats().rejected, 0);
        for i in (0..2_000u64).step_by(101) {
            assert!(dev.get(format!("hl-{i:06}").as_bytes()).unwrap().is_some());
        }
    }

    #[test]
    fn hyper_local_survives_gc_churn() {
        // Overflow tables are index pages too: GC must relocate them (or
        // retire them after resizes) without losing records.
        let mut cfg = DeviceConfig::small();
        cfg.rhik.hop_width = 4; // provoke overflow tables
        cfg.rhik.hyper_local = true;
        let mut dev = KvssdDevice::rhik(cfg);
        let value = vec![2u8; 8 * 1024];
        for round in 0..10u64 {
            for i in 0..300u64 {
                let mut v = value.clone();
                v[0] = round as u8;
                dev.put(format!("hlgc-{i:05}").as_bytes(), &v).unwrap();
            }
        }
        assert!(dev.stats().gc_invocations > 0, "GC exercised: {:?}", dev.stats());
        assert_eq!(dev.stats().rejected, 0);
        for i in 0..300u64 {
            let v = dev.get(format!("hlgc-{i:05}").as_bytes()).unwrap().expect("key lost");
            assert_eq!(v[0], 9);
        }
    }

    #[test]
    fn signature_collision_rejected_with_full_key_verification() {
        // Under the prefix-suffix hasher, keys sharing their first and last
        // 4 bytes collide in signature space; the device must detect the
        // mismatch by comparing full keys (§IV-A3) and reject the second
        // put (§VI: "the application needs to generate a new key").
        let mut cfg = DeviceConfig::small();
        cfg.hasher = rhik_sigs::SigHasher::PrefixSuffix { seed: 1 };
        let mut dev = KvssdDevice::rhik(cfg);
        dev.put(b"PRE-middle-one-SUF", b"first").unwrap();
        let err = dev.put(b"PRE-middle-two-SUF", b"second").unwrap_err();
        assert_eq!(err, KvError::KeyCollision);
        assert_eq!(dev.stats().collisions, 1);
        // The original pair is untouched.
        assert_eq!(&dev.get(b"PRE-middle-one-SUF").unwrap().unwrap()[..], b"first");
        // The colliding key reads as absent (full-key verification, not a
        // wrong-value return).
        assert_eq!(dev.get(b"PRE-middle-two-SUF").unwrap(), None);
        // exist() is signature-only, so it reports a false positive — the
        // documented probabilistic trade-off.
        assert!(dev.exist(b"PRE-middle-two-SUF").unwrap().probably_exists);
        // delete of the colliding key must not destroy the stored pair.
        assert_eq!(dev.delete(b"PRE-middle-two-SUF").unwrap_err(), KvError::KeyNotFound);
        assert!(dev.get(b"PRE-middle-one-SUF").unwrap().is_some());
    }

    #[test]
    fn prefix_suffix_hasher_prunes_iterate() {
        let mut cfg = DeviceConfig::small();
        cfg.hasher = rhik_sigs::SigHasher::PrefixSuffix { seed: 9 };
        let mut dev = KvssdDevice::rhik(cfg);
        for i in 0..60u64 {
            dev.put(format!("usr:{i:04}").as_bytes(), b"u").unwrap();
            dev.put(format!("img:{i:04}").as_bytes(), b"i").unwrap();
        }
        dev.flush().unwrap();
        let reads_before = dev.ftl().stats().data_page_reads;
        let mut users = dev.iterate(b"usr:", 1000).unwrap();
        let reads = dev.ftl().stats().data_page_reads - reads_before;
        users.sort();
        assert_eq!(users.len(), 60);
        // Pruning means we only read pages for usr:-bucketed candidates —
        // far fewer than the 120 pairs a full sweep would verify.
        assert!(reads <= 70, "iterate read {reads} data pages despite pruning");
        // CRUD still works under the weaker hasher.
        assert_eq!(&dev.get(b"usr:0001").unwrap().unwrap()[..], b"u");
    }

    #[test]
    fn fill_update_gc_cycle_preserves_data() {
        let mut dev = device();
        let value = vec![7u8; 8 * 1024];
        // ~2.4 MiB live working set overwritten 10x (~24 MiB of logical
        // writes on 16 MiB of raw flash) forces GC via update staleness.
        for round in 0..10u64 {
            for i in 0..300u64 {
                let key = format!("key-{i:04}");
                let mut v = value.clone();
                v[0] = round as u8;
                dev.put(key.as_bytes(), &v).unwrap();
            }
        }
        assert_eq!(dev.key_count(), 300);
        assert!(dev.stats().gc_invocations > 0, "GC never ran: {:?}", dev.stats());
        for i in 0..300u64 {
            let v = dev.get(format!("key-{i:04}").as_bytes()).unwrap().expect("key lost");
            assert_eq!(v[0], 9, "stale version resurfaced for key {i}");
        }
    }

    #[test]
    fn growth_triggers_resizes() {
        let mut dev = device();
        for i in 0..4000u64 {
            dev.put(format!("grow-{i:06}").as_bytes(), b"x").unwrap();
        }
        assert!(dev.stats().resizes >= 1, "no resize in {:?}", dev.stats());
        assert_eq!(dev.key_count(), 4000);
        for i in (0..4000u64).step_by(37) {
            assert!(dev.get(format!("grow-{i:06}").as_bytes()).unwrap().is_some());
        }
    }

    #[test]
    fn device_full_reported_not_corrupted() {
        let mut dev = device(); // 16 MiB raw
        let value = vec![1u8; 64 * 1024];
        let mut stored = 0u64;
        for i in 0..1000u64 {
            match dev.put(format!("fill-{i:05}").as_bytes(), &value) {
                Ok(()) => stored += 1,
                Err(KvError::DeviceFull) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(stored > 100, "stored only {stored}");
        // Everything accepted is retrievable.
        for i in 0..stored {
            assert!(
                dev.get(format!("fill-{i:05}").as_bytes()).unwrap().is_some(),
                "key {i} of {stored} lost"
            );
        }
        // Deleting frees space for new writes again.
        for i in 0..stored / 2 {
            dev.delete(format!("fill-{i:05}").as_bytes()).unwrap();
        }
        dev.put(b"after-delete", &value).unwrap();
        assert!(dev.get(b"after-delete").unwrap().is_some());
    }

    #[test]
    fn sim_clock_advances() {
        let mut dev = KvssdDevice::rhik(
            DeviceConfig::small().with_profile(rhik_nand::DeviceProfile::kvemu_like()),
        );
        assert_eq!(dev.elapsed_secs(), 0.0);
        for i in 0..50u64 {
            dev.put(format!("t-{i}").as_bytes(), &[0u8; 4096]).unwrap();
        }
        assert!(dev.elapsed_secs() > 0.0);
        assert!(dev.engine().latencies().count() >= 50);
    }

    #[test]
    fn read_fault_surfaces_as_typed_error() {
        let mut dev = device();
        dev.put(b"victim", b"payload").unwrap();
        dev.flush().unwrap();
        let ppa = dev.locate(b"victim").unwrap().expect("pair indexed");
        dev.ftl_mut().faults_mut().fail_read(ppa);
        // The faulted data page must surface as a typed error, not a panic
        // and not an opaque Media(String).
        assert_eq!(dev.get(b"victim").unwrap_err(), KvError::ReadFault { ppa });
        // The fault is transient media state, not corruption: clearing it
        // restores the pair and the device stays serviceable.
        dev.ftl_mut().faults_mut().clear_read(ppa);
        assert_eq!(&dev.get(b"victim").unwrap().unwrap()[..], b"payload");
        dev.put(b"after", b"ok").unwrap();
        assert!(dev.get(b"after").unwrap().is_some());
    }

    #[test]
    fn telemetry_spans_and_metrics_capture_commands() {
        let mut dev = device();
        let sink = TelemetrySink::enabled();
        dev.set_telemetry(sink.clone());
        for i in 0..300u64 {
            dev.put(format!("obs-{i:04}").as_bytes(), &[7u8; 256]).unwrap();
        }
        for i in 0..300u64 {
            assert!(dev.get(format!("obs-{i:04}").as_bytes()).unwrap().is_some());
        }
        dev.delete(b"obs-0000").unwrap();
        dev.exist(b"obs-0001").unwrap();

        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.counter("kvssd_puts"), 300);
        assert_eq!(snap.counter("kvssd_gets"), 300);
        assert_eq!(snap.counter("kvssd_deletes"), 1);
        assert_eq!(snap.counter("kvssd_exists"), 1);
        assert!(snap.counter("nand_page_programs") > 0, "media counters wired through");
        assert_eq!(snap.histogram("get_latency_ns").map(|h| h.count()), Some(300));
        assert_eq!(snap.histogram("put_latency_ns").map(|h| h.count()), Some(300));
        assert!(snap.gauge("shard0_index_occupancy").unwrap_or(0.0) > 0.0);

        // Spans carry per-stage attribution: every op notes its directory
        // walk, and the flash stages show up once traffic spills to media.
        let attr = sink.attribution();
        assert!(attr.ops > 0);
        assert!(attr.row(Stage::DirLookup).events > 0);

        // Every traced RHIK get stayed within one flash read.
        let rpl = sink.reads_per_lookup().unwrap();
        assert_eq!(rpl.lookups, 300);
        assert!(rpl.invariant_ok(), "reads-per-lookup max {}", rpl.max);
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let mut dev = device();
        dev.set_telemetry(TelemetrySink::disabled());
        dev.put(b"k", b"v").unwrap();
        assert_eq!(&dev.get(b"k").unwrap().unwrap()[..], b"v");
        assert!(dev.telemetry().snapshot().is_none());
        assert!(dev.telemetry().spans().is_empty());
    }

    #[test]
    fn baseline_devices_work_too() {
        let cfg = DeviceConfig::small();
        let mut ml = KvssdDevice::multilevel(
            cfg,
            MultiLevelConfig { initial_bits: 1, max_levels: 8, hop_width: 16 },
        );
        let mut sh = KvssdDevice::simple_hash(cfg, 4, 16);
        let mut lsm = KvssdDevice::lsm(cfg, LsmConfig::default());
        for i in 0..200u64 {
            let k = format!("key-{i:04}");
            ml.put(k.as_bytes(), b"ml").unwrap();
            sh.put(k.as_bytes(), b"sh").unwrap();
            lsm.put(k.as_bytes(), b"ls").unwrap();
        }
        for i in (0..200u64).step_by(11) {
            let k = format!("key-{i:04}");
            assert_eq!(&ml.get(k.as_bytes()).unwrap().unwrap()[..], b"ml");
            assert_eq!(&sh.get(k.as_bytes()).unwrap().unwrap()[..], b"sh");
            assert_eq!(&lsm.get(k.as_bytes()).unwrap().unwrap()[..], b"ls");
        }
    }
}
