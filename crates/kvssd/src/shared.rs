//! Thread-safe device handle.
//!
//! The emulated device is single-owner by design (real firmware serializes
//! command processing per submission queue). [`SharedKvssd`] wraps it in a
//! mutex so multiple host threads can submit commands — modelling several
//! application threads sharing one SNIA KV API handle — while the timing
//! engine still sees one serialized command stream, exactly like commands
//! interleaving on the device's submission queue.

use std::sync::Arc;

use bytes::Bytes;
// Mutex via ftl::sync so `cfg(loom)` builds model the lock (and wslint's
// `std-mutex-outside-sync` rule holds workspace-wide).
use rhik_ftl::sync::{Mutex, MutexGuard};
use rhik_ftl::IndexBackend;
use rhik_sigs::SigHasher;

use crate::cache_tier::{CacheTier, Probe};
use crate::device::{DeviceStats, ExistReport, KvssdDevice};
use crate::Result;

/// A cloneable, thread-safe handle to a device.
pub struct SharedKvssd<I: IndexBackend> {
    inner: Arc<Mutex<KvssdDevice<I>>>,
    /// Hot-object cache tier, probed *before* the submission-queue lock so
    /// hits skip the queue entirely (see [`crate::cache_tier`]). `None`
    /// unless built via [`SharedKvssd::rhik`] with the cache enabled.
    cache: Option<Arc<CacheTier>>,
    /// Copy of the device's signature hasher, so cache probes can sign
    /// keys without taking the lock.
    hasher: SigHasher,
}

impl<I: IndexBackend> Clone for SharedKvssd<I> {
    fn clone(&self) -> Self {
        SharedKvssd {
            inner: Arc::clone(&self.inner),
            cache: self.cache.clone(),
            hasher: self.hasher,
        }
    }
}

impl<I: IndexBackend + Send> SharedKvssd<I> {
    /// Wrap a device for sharing across threads (no cache tier; use
    /// [`SharedKvssd::rhik`] to honor `DeviceConfig::hot_cache`).
    pub fn new(device: KvssdDevice<I>) -> Self {
        let hasher = *device.hasher_ref();
        SharedKvssd { inner: Arc::new(Mutex::new(device)), cache: None, hasher }
    }

    /// Take the submission-queue lock. A panicked writer leaves the device
    /// in a command boundary at worst, so poisoning is not fatal here.
    fn lock(&self) -> MutexGuard<'_, KvssdDevice<I>> {
        self.inner.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.lock().put(key, value)
    }

    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        // Probe the DRAM cache before the submission-queue lock: a hit
        // completes here; a miss carries the fill version through the
        // locked read (fill protocol in `cache_tier` module docs).
        let fill = match &self.cache {
            Some(tier) if !key.is_empty() => {
                let sig = self.hasher.sign(key);
                match tier.probe(0, sig, key) {
                    Probe::Hit(value) => return Ok(Some(value)),
                    Probe::Fill(v1) => Some((sig, v1)),
                }
            }
            _ => None,
        };
        let result = self.lock().get(key);
        if let (Some(tier), Some((sig, v1)), Ok(Some(value))) = (&self.cache, fill, &result) {
            tier.try_admit(0, sig, key, value, v1);
        }
        result
    }

    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.lock().delete(key)
    }

    pub fn exist(&self, key: &[u8]) -> Result<ExistReport> {
        self.lock().exist(key)
    }

    pub fn flush(&self) -> Result<()> {
        self.lock().flush()
    }

    pub fn stats(&self) -> DeviceStats {
        let mut stats = self.lock().stats();
        if let Some(tier) = &self.cache {
            tier.fold_shard_stats(0, &mut stats);
        }
        stats
    }

    /// Hot-object cache counters and occupancy; `None` when the cache
    /// tier is disabled (or the handle was built with [`SharedKvssd::new`]).
    pub fn hot_cache_stats(&self) -> Option<rhik_hotcache::CacheStats> {
        self.cache.as_ref().map(|tier| tier.stats())
    }

    pub fn key_count(&self) -> u64 {
        self.lock().key_count()
    }

    /// One bounded slice of idle-time index maintenance (see
    /// [`KvssdDevice::maintain_step`]). Returns whether progress was made.
    pub fn maintain_step(&self) -> Result<bool> {
        self.lock().maintain_step()
    }

    /// Whether the index is mid-way through an incremental resize.
    pub fn resize_in_progress(&self) -> bool {
        self.lock().resize_in_progress()
    }

    /// Install a telemetry sink on the wrapped device (shard id 0).
    pub fn set_telemetry(&self, sink: rhik_telemetry::TelemetrySink) {
        if let Some(tier) = &self.cache {
            tier.set_telemetry(sink.clone());
        }
        self.lock().set_telemetry(sink)
    }

    /// Run `f` with exclusive access to the device (diagnostics, bulk ops).
    pub fn with_device<R>(&self, f: impl FnOnce(&mut KvssdDevice<I>) -> R) -> R {
        f(&mut self.lock())
    }

    /// Unwrap the device if this is the last handle.
    pub fn try_into_inner(self) -> std::result::Result<KvssdDevice<I>, Self> {
        let SharedKvssd { inner, cache, hasher } = self;
        match Arc::try_unwrap(inner) {
            Ok(mutex) => Ok(mutex.into_inner().unwrap_or_else(|poison| poison.into_inner())),
            Err(inner) => Err(SharedKvssd { inner, cache, hasher }),
        }
    }
}

impl SharedKvssd<rhik_core::RhikIndex> {
    /// Build a RHIK device and wrap it, honoring `cfg.hot_cache`: when the
    /// cache tier is enabled, its invalidation version table is attached
    /// to the index before the first command, and `get` probes DRAM ahead
    /// of the submission-queue lock. Falls back to an uncached handle if
    /// the index declines the version table.
    pub fn rhik(cfg: crate::DeviceConfig) -> Self {
        let mut device = KvssdDevice::rhik(cfg);
        let hasher = *device.hasher_ref();
        let cache = cfg.hot_cache.enabled.then(|| Arc::new(CacheTier::new(cfg.hot_cache, 1)));
        let cache = match cache {
            Some(tier) if device.attach_versions(Arc::clone(&tier.versions)) => Some(tier),
            _ => None,
        };
        SharedKvssd { inner: Arc::new(Mutex::new(device)), cache, hasher }
    }

    /// Cross-layer invariant audit of the wrapped device (see
    /// [`KvssdDevice::audit`]); takes the submission-queue lock.
    pub fn audit(&self, auditor: &mut rhik_audit::DeviceAuditor) -> rhik_audit::AuditReport {
        self.lock().audit(auditor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use rhik_core::RhikIndex;

    // The device must be sendable across threads (all-owned state).
    fn assert_send<T: Send>() {}

    #[test]
    fn device_is_send() {
        assert_send::<KvssdDevice<RhikIndex>>();
        assert_send::<SharedKvssd<RhikIndex>>();
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let dev = SharedKvssd::new(KvssdDevice::rhik(DeviceConfig::small()));
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 300;

        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let handle = dev.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        let key = format!("t{t}-{i:05}");
                        handle.put(key.as_bytes(), format!("v{t}-{i}").as_bytes()).unwrap();
                        // Read-your-writes through the shared handle.
                        let got = handle.get(key.as_bytes()).unwrap().unwrap();
                        assert_eq!(&got[..], format!("v{t}-{i}").as_bytes());
                    }
                });
            }
        });

        assert_eq!(dev.key_count(), THREADS * PER_THREAD);
        // Every thread's data is visible from the main thread.
        for t in 0..THREADS {
            for i in (0..PER_THREAD).step_by(37) {
                let key = format!("t{t}-{i:05}");
                assert!(dev.get(key.as_bytes()).unwrap().is_some(), "{key} missing");
            }
        }
        // Handle unwraps back to the device once threads are done.
        let device = dev.try_into_inner().ok().expect("sole handle");
        assert_eq!(device.stats().puts, THREADS * PER_THREAD);
    }

    #[test]
    fn hot_cache_serves_repeats_and_never_goes_stale() {
        let dev = SharedKvssd::rhik(DeviceConfig::small().with_hot_cache(64 * 1024));
        for i in 0..50u64 {
            dev.put(format!("hot-{i:03}").as_bytes(), format!("v0-{i}").as_bytes()).unwrap();
        }
        // First read fills, second read must hit DRAM.
        for _ in 0..2 {
            for i in 0..50u64 {
                let got = dev.get(format!("hot-{i:03}").as_bytes()).unwrap().unwrap();
                assert_eq!(&got[..], format!("v0-{i}").as_bytes());
            }
        }
        let stats = dev.hot_cache_stats().expect("cache enabled");
        assert!(stats.hits > 0, "second pass should hit the cache: {stats:?}");
        assert!(stats.bytes > 0 && stats.entries > 0);

        // Overwrites and deletes invalidate: reads observe only new state.
        for i in 0..50u64 {
            let key = format!("hot-{i:03}");
            if i % 2 == 0 {
                dev.put(key.as_bytes(), format!("v1-{i}").as_bytes()).unwrap();
            } else {
                dev.delete(key.as_bytes()).unwrap();
            }
        }
        for i in 0..50u64 {
            let got = dev.get(format!("hot-{i:03}").as_bytes()).unwrap();
            if i % 2 == 0 {
                assert_eq!(&got.unwrap()[..], format!("v1-{i}").as_bytes());
            } else {
                assert!(got.is_none(), "deleted key hot-{i:03} resurrected");
            }
        }
        // Cache hits count as gets in the folded device stats.
        assert!(dev.stats().gets >= 150);
    }

    #[test]
    fn mixed_concurrent_ops_stay_consistent() {
        let dev = SharedKvssd::new(KvssdDevice::rhik(DeviceConfig::small()));
        for i in 0..200u64 {
            dev.put(format!("base-{i:04}").as_bytes(), b"seed").unwrap();
        }
        std::thread::scope(|scope| {
            // Writer thread overwrites; deleter removes odd keys; readers
            // verify values are always one of the legal states.
            let w = dev.clone();
            scope.spawn(move || {
                for i in (0..200u64).step_by(2) {
                    w.put(format!("base-{i:04}").as_bytes(), b"updated").unwrap();
                }
            });
            let d = dev.clone();
            scope.spawn(move || {
                for i in (1..200u64).step_by(2) {
                    let _ = d.delete(format!("base-{i:04}").as_bytes());
                }
            });
            let r = dev.clone();
            scope.spawn(move || {
                for i in 0..200u64 {
                    if let Some(v) = r.get(format!("base-{i:04}").as_bytes()).unwrap() {
                        assert!(&v[..] == b"seed" || &v[..] == b"updated");
                    }
                }
            });
        });

        // Final state: evens updated, odds gone.
        for i in 0..200u64 {
            let got = dev.get(format!("base-{i:04}").as_bytes()).unwrap();
            if i % 2 == 0 {
                assert_eq!(&got.unwrap()[..], b"updated");
            } else {
                assert!(got.is_none());
            }
        }
    }
}
