//! Host-visible command structures: single commands, compound batches, and
//! iterator sessions.
//!
//! §II-A notes that "Samsung's NVMe command interface for KVSSD can be
//! inefficient at times" and cites Kim et al.'s proposal of "coalescing of
//! multiple KV API requests into a single NVMe compound command" \[8\].
//! [`KvssdDevice::execute_batch`] implements that coalescing: one
//! command-processing overhead is charged for the whole compound instead
//! of one per request.
//!
//! Iterator *sessions* model the Samsung log-structured iterator (§II-A):
//! `iterate_open` snapshots the matching candidates, `iterate_next` pages
//! through them, `iterate_close` releases the session.

use bytes::Bytes;
use rhik_ftl::IndexBackend;
use rhik_nand::Ppa;
use rhik_sigs::KeySignature;

use crate::device::KvssdDevice;
use crate::error::KvError;
use crate::Result;

/// One KV request inside a compound command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    Put { key: Vec<u8>, value: Vec<u8> },
    Get { key: Vec<u8> },
    Delete { key: Vec<u8> },
    Exist { key: Vec<u8> },
}

/// Outcome of one request inside a compound command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommandResult {
    Stored,
    Value(Option<Bytes>),
    Deleted,
    Exists(bool),
    Error(KvError),
}

/// Handle to an open iterator session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IterHandle(pub(crate) usize);

/// An open iterator session: a snapshot of candidate records to page
/// through. (Like the Samsung iterator, concurrent mutations after `open`
/// are not reflected.)
pub(crate) struct IterSession {
    pub(crate) prefix: Vec<u8>,
    pub(crate) candidates: Vec<(KeySignature, Ppa)>,
    pub(crate) pos: usize,
}

impl<I: IndexBackend> KvssdDevice<I> {
    /// Execute a compound command: every request runs back-to-back with a
    /// *single* command-processing overhead for the whole batch (Kim et
    /// al.'s coalescing, \[8\]). Individual request failures are reported
    /// per-slot; they do not abort the batch.
    pub fn execute_batch(&mut self, commands: &[Command]) -> Vec<CommandResult> {
        self.begin_compound();
        let mut results = Vec::with_capacity(commands.len());
        for cmd in commands {
            let result = match cmd {
                Command::Put { key, value } => match self.put(key, value) {
                    Ok(()) => CommandResult::Stored,
                    Err(e) => CommandResult::Error(e),
                },
                Command::Get { key } => match self.get(key) {
                    Ok(v) => CommandResult::Value(v),
                    Err(e) => CommandResult::Error(e),
                },
                Command::Delete { key } => match self.delete(key) {
                    Ok(()) => CommandResult::Deleted,
                    Err(e) => CommandResult::Error(e),
                },
                Command::Exist { key } => match self.exist(key) {
                    Ok(r) => CommandResult::Exists(r.probably_exists),
                    Err(e) => CommandResult::Error(e),
                },
            };
            results.push(result);
        }
        self.end_compound();
        results
    }

    /// Open an iterator session over keys with `prefix` (§II-A's iterate
    /// command; §VI's integrated iterator support). Returns a handle for
    /// [`KvssdDevice::iterate_next`].
    pub fn iterate_open(&mut self, prefix: &[u8]) -> Result<IterHandle> {
        let mut candidates = Vec::new();
        self.scan_for_iterate(&mut candidates)?;
        if prefix.len() >= 4 {
            if let Some(bucket) = self.hasher_ref().prefix_bucket(prefix) {
                candidates.retain(|(sig, _)| (sig.0 >> 32) as u32 == bucket);
            }
        }
        let session = IterSession { prefix: prefix.to_vec(), candidates, pos: 0 };
        let slot = self.alloc_iter_slot(session);
        Ok(IterHandle(slot))
    }

    /// Fetch up to `count` more keys from an open session. An empty vector
    /// means the session is exhausted.
    pub fn iterate_next(&mut self, handle: IterHandle, count: usize) -> Result<Vec<Bytes>> {
        let mut out = Vec::new();
        loop {
            if out.len() >= count {
                break;
            }
            let Some((sig, head, prefix)) = self.iter_peek(handle)? else { break };
            self.iter_advance(handle)?;
            if let Some((stored_key, _v, _)) = self.read_pair_public(sig, head)? {
                if stored_key.starts_with(&prefix) {
                    out.push(stored_key);
                }
            }
        }
        Ok(out)
    }

    /// Close an iterator session.
    pub fn iterate_close(&mut self, handle: IterHandle) -> Result<()> {
        self.free_iter_slot(handle.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use rhik_nand::DeviceProfile;

    #[test]
    fn batch_executes_all_and_reports_per_slot() {
        let mut dev = KvssdDevice::rhik(DeviceConfig::small());
        let results = dev.execute_batch(&[
            Command::Put { key: b"a".to_vec(), value: b"1".to_vec() },
            Command::Put { key: b"b".to_vec(), value: b"2".to_vec() },
            Command::Get { key: b"a".to_vec() },
            Command::Delete { key: b"missing".to_vec() },
            Command::Exist { key: b"b".to_vec() },
        ]);
        assert_eq!(results.len(), 5);
        assert_eq!(results[0], CommandResult::Stored);
        assert_eq!(results[1], CommandResult::Stored);
        assert_eq!(results[2], CommandResult::Value(Some(Bytes::from_static(b"1"))));
        assert_eq!(results[3], CommandResult::Error(KvError::KeyNotFound));
        assert_eq!(results[4], CommandResult::Exists(true));
    }

    #[test]
    fn batching_amortizes_command_overhead() {
        let run = |batched: bool| {
            let mut dev =
                KvssdDevice::rhik(DeviceConfig::small().with_profile(DeviceProfile::kvemu_like()));
            let cmds: Vec<Command> = (0..64u64)
                .map(|i| Command::Put {
                    key: format!("batch-{i:04}").into_bytes(),
                    value: vec![0u8; 64],
                })
                .collect();
            if batched {
                for r in dev.execute_batch(&cmds) {
                    assert!(!matches!(r, CommandResult::Error(_)));
                }
            } else {
                for c in &cmds {
                    if let Command::Put { key, value } = c {
                        dev.put(key, value).unwrap();
                    }
                }
            }
            dev.elapsed_secs()
        };
        let single = run(false);
        let compound = run(true);
        assert!(
            compound < single,
            "compound ({compound}s) should beat per-command overhead ({single}s)"
        );
    }

    #[test]
    fn iterator_session_pages_through() {
        let mut dev = KvssdDevice::rhik(DeviceConfig::small());
        for i in 0..25u64 {
            dev.put(format!("iter:{i:03}").as_bytes(), b"v").unwrap();
        }
        dev.put(b"other:x", b"v").unwrap();

        let h = dev.iterate_open(b"iter:").unwrap();
        let mut seen = Vec::new();
        loop {
            let batch = dev.iterate_next(h, 7).unwrap();
            if batch.is_empty() {
                break;
            }
            assert!(batch.len() <= 7);
            seen.extend(batch);
        }
        dev.iterate_close(h).unwrap();
        seen.sort();
        assert_eq!(seen.len(), 25);
        assert_eq!(&seen[0][..], b"iter:000");

        // Closed handle rejects further use.
        assert!(dev.iterate_next(h, 1).is_err());
        assert!(dev.iterate_close(h).is_err());
    }

    #[test]
    fn concurrent_sessions_are_independent() {
        let mut dev = KvssdDevice::rhik(DeviceConfig::small());
        for i in 0..10u64 {
            dev.put(format!("a:{i}").as_bytes(), b"v").unwrap();
            dev.put(format!("b:{i}").as_bytes(), b"v").unwrap();
        }
        let ha = dev.iterate_open(b"a:").unwrap();
        let hb = dev.iterate_open(b"b:").unwrap();
        let a1 = dev.iterate_next(ha, 4).unwrap();
        let b1 = dev.iterate_next(hb, 100).unwrap();
        let a2 = dev.iterate_next(ha, 100).unwrap();
        assert_eq!(a1.len() + a2.len(), 10);
        assert_eq!(b1.len(), 10);
        dev.iterate_close(ha).unwrap();
        dev.iterate_close(hb).unwrap();
        // Slot reuse after close.
        let hc = dev.iterate_open(b"a:").unwrap();
        assert_eq!(dev.iterate_next(hc, 100).unwrap().len(), 10);
        dev.iterate_close(hc).unwrap();
    }
}
