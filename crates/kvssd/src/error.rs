//! Device-level error taxonomy (SNIA KV API-flavoured status codes).

use rhik_nand::Ppa;

/// Errors a KV command can return to the host.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvError {
    /// `get`/`delete` on a key that is not stored.
    KeyNotFound,
    /// The key's 64-bit signature collides with a *different* stored key
    /// (§VI "Collision Management": "the application needs to generate a
    /// new key and issue a new I/O request in such instances").
    KeyCollision,
    /// The record-layer hash table rejected the key within its hop range
    /// (§IV-A1's uncorrectable error).
    KeyRejected,
    /// Device has no reclaimable space left.
    DeviceFull,
    /// The index's fixed capacity is exhausted (baselines only).
    IndexFull,
    /// Value exceeds the extent packing limit.
    ValueTooLarge { len: usize, max: usize },
    /// Key cannot fit a flash page.
    KeyTooLarge { len: usize },
    /// Zero-length keys are not addressable.
    EmptyKey,
    /// The installed index cannot serve this operation (e.g. `iterate` on
    /// a scheme without record scans).
    Unsupported(&'static str),
    /// A flash page read failed (injected or modeled media fault). Carries
    /// the failing physical address so hosts and tests can correlate the
    /// error with the device's fault plan instead of parsing a message.
    ReadFault { ppa: Ppa },
    /// Unrecoverable media error.
    Media(String),
    /// A cross-layer invariant broke while serving the command (the
    /// firmware refuses to guess; run the device audit to localize the
    /// disagreeing layer).
    Corrupt(String),
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::KeyNotFound => write!(f, "key not found"),
            KvError::KeyCollision => write!(f, "key signature collision; choose a different key"),
            KvError::KeyRejected => write!(f, "key rejected by record-layer collision handling"),
            KvError::DeviceFull => write!(f, "device full"),
            KvError::IndexFull => write!(f, "index capacity exhausted"),
            KvError::ValueTooLarge { len, max } => write!(f, "value {len} B over limit {max} B"),
            KvError::KeyTooLarge { len } => write!(f, "key {len} B over page limit"),
            KvError::EmptyKey => write!(f, "empty key"),
            KvError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            KvError::ReadFault { ppa } => write!(f, "media read failure at {ppa:?}"),
            KvError::Media(m) => write!(f, "media error: {m}"),
            KvError::Corrupt(detail) => write!(f, "device state corrupt: {detail}"),
        }
    }
}

impl std::error::Error for KvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(KvError::KeyCollision.to_string().contains("collision"));
        assert!(KvError::ValueTooLarge { len: 10, max: 5 }.to_string().contains("10"));
        assert!(KvError::ReadFault { ppa: Ppa::new(3, 7) }.to_string().contains("read failure"));
    }
}
