//! Latency histogram, re-exported from the telemetry crate.
//!
//! The log-bucketed [`LatencyHistogram`] started life here; it now lives in
//! `rhik-telemetry` so the metric registry can bucket arbitrary named
//! distributions with the same machinery. This module keeps the historical
//! `rhik_kvssd::LatencyHistogram` path working.

pub use rhik_telemetry::LatencyHistogram;
