//! Device configuration.

use rhik_ftl::{FtlConfig, GcConfig};
use rhik_hotcache::CacheConfig;
use rhik_nand::{DeviceProfile, NandGeometry};
use rhik_sigs::SigHasher;

/// How command timing is modeled (Fig. 6 evaluates both).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineMode {
    /// One command at a time; its media ops serialize.
    Sync,
    /// Up to `queue_depth` commands in flight; media ops overlap across
    /// flash channels.
    Async { queue_depth: u32 },
}

/// Full device configuration.
#[derive(Clone, Copy, Debug)]
pub struct DeviceConfig {
    pub geometry: NandGeometry,
    pub profile: DeviceProfile,
    /// SSD DRAM budget for the shared index-page cache.
    pub cache_budget_bytes: usize,
    pub gc: GcConfig,
    /// Blocks withheld from normal allocation for GC scratch.
    pub gc_reserve_blocks: u32,
    pub engine: EngineMode,
    /// Signature hash (MurmurHash2 by default; prefix-suffix hashing is a
    /// per-call option of `iterate`-aware workloads).
    pub hasher: SigHasher,
    /// RHIK: initial directory bits / occupancy threshold / hop width.
    pub rhik: rhik_core::RhikConfig,
    /// Shard count for [`crate::ShardedKvssd`] (power of two, ≥ 1). Each
    /// shard owns a slice of the signature space with its own submission
    /// queue and index; 1 = unsharded. Ignored by the single-queue
    /// `KvssdDevice` / `SharedKvssd` entry points.
    pub shards: u32,
    /// DRAM hot-object cache tier above the index (distinct from
    /// `cache_budget_bytes`, which funds the FTL's index-*page* cache).
    /// Default **off**; honored by [`crate::ShardedKvssd`] and
    /// [`crate::SharedKvssd::rhik`].
    pub hot_cache: CacheConfig,
}

impl DeviceConfig {
    /// A small, fast device for tests and the quickstart example:
    /// 16 MiB of flash, 4 KiB pages, 64 KiB cache, instant timing.
    pub fn small() -> Self {
        let geometry = NandGeometry {
            blocks: 64,
            pages_per_block: 64,
            page_size: 4096,
            spare_size: 128,
            channels: 4,
        };
        DeviceConfig {
            geometry,
            profile: DeviceProfile::instant(),
            cache_budget_bytes: 64 * 1024,
            gc: GcConfig { low_watermark: 3, high_watermark: 6, ..Default::default() },
            gc_reserve_blocks: 2,
            engine: EngineMode::Sync,
            hasher: SigHasher::default(),
            rhik: rhik_core::RhikConfig {
                initial_dir_bits: 2,
                occupancy_threshold: 0.7,
                hop_width: 32,
                ..Default::default()
            },
            shards: 1,
            hot_cache: CacheConfig::off(),
        }
    }

    /// The paper's emulator setup scaled to `capacity_bytes`: 32 KiB pages,
    /// 256 pages per erase block, KVEMU-like timing (§V-A).
    pub fn paper(capacity_bytes: u64, cache_budget_bytes: usize) -> Self {
        DeviceConfig {
            geometry: NandGeometry::paper_default(capacity_bytes),
            profile: DeviceProfile::kvemu_like(),
            cache_budget_bytes,
            gc: GcConfig { low_watermark: 4, high_watermark: 8, ..Default::default() },
            gc_reserve_blocks: 4,
            engine: EngineMode::Sync,
            hasher: SigHasher::default(),
            rhik: rhik_core::RhikConfig::default(),
            shards: 1,
            hot_cache: CacheConfig::off(),
        }
    }

    /// Switch to async timing with the given queue depth.
    pub fn with_async(mut self, queue_depth: u32) -> Self {
        self.engine = EngineMode::Async { queue_depth: queue_depth.max(1) };
        self
    }

    /// Switch the timing profile.
    pub fn with_profile(mut self, profile: DeviceProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Set the shard count for [`crate::ShardedKvssd`]. Must be a power
    /// of two so shards map to a fixed number of high signature bits.
    pub fn with_shards(mut self, shards: u32) -> Self {
        assert!(shards >= 1 && shards.is_power_of_two(), "shards must be a power of two ≥ 1");
        self.shards = shards;
        self
    }

    /// Enable the DRAM hot-object cache tier with `budget_bytes` of DRAM
    /// (hard cap; default policy: TinyLFU admission, 8 lock stripes,
    /// 80% protected segment, no hot-key replication).
    pub fn with_hot_cache(mut self, budget_bytes: u64) -> Self {
        self.hot_cache = CacheConfig::with_budget(budget_bytes);
        self
    }

    /// `log2(shards)` — how many high signature bits select the shard.
    pub fn shard_bits(&self) -> u32 {
        self.shards.trailing_zeros()
    }

    pub(crate) fn ftl_config(&self) -> FtlConfig {
        FtlConfig {
            geometry: self.geometry,
            profile: self.profile,
            cache_budget_bytes: self.cache_budget_bytes,
            gc_reserve_blocks: self.gc_reserve_blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_is_valid() {
        let c = DeviceConfig::small();
        c.geometry.validate().unwrap();
        assert_eq!(c.engine, EngineMode::Sync);
    }

    #[test]
    fn paper_config_matches_section_v() {
        let c = DeviceConfig::paper(1 << 30, 10 << 20);
        assert_eq!(c.geometry.page_size, 32 * 1024);
        assert_eq!(c.geometry.pages_per_block, 256);
        assert_eq!(c.cache_budget_bytes, 10 << 20);
    }

    #[test]
    fn with_async_clamps_depth() {
        let c = DeviceConfig::small().with_async(0);
        assert_eq!(c.engine, EngineMode::Async { queue_depth: 1 });
    }

    #[test]
    fn shard_bits_follow_count() {
        assert_eq!(DeviceConfig::small().shards, 1);
        assert_eq!(DeviceConfig::small().shard_bits(), 0);
        let c = DeviceConfig::small().with_shards(4);
        assert_eq!(c.shards, 4);
        assert_eq!(c.shard_bits(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn with_shards_rejects_non_power_of_two() {
        let _ = DeviceConfig::small().with_shards(3);
    }
}
