//! Command timing on the simulated clock.
//!
//! The OpenMPDK emulator models device time with an IOPS model rather than
//! real hardware timing; we do the same, deterministically. Every command
//! yields a list of [`TimedOp`]s (from the FTL) plus fixed
//! command-processing overhead and host-transfer time:
//!
//! * **Sync** — the host waits for each command: overhead + host transfer +
//!   all media ops serialized.
//! * **Async** — the host keeps up to `queue_depth` commands in flight.
//!   Command issue costs only the overhead; media ops start no earlier
//!   than issue and queue FIFO per flash channel, so independent commands
//!   overlap across channels. Completion is the last media op (or the
//!   host transfer, whichever is later).

use rhik_ftl::TimedOp;
use rhik_nand::DeviceProfile;

use crate::config::EngineMode;
use crate::histogram::LatencyHistogram;

/// Timing outcome of one command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommandTiming {
    pub submitted_ns: u64,
    pub completed_ns: u64,
}

impl CommandTiming {
    pub fn latency_ns(&self) -> u64 {
        self.completed_ns - self.submitted_ns
    }
}

/// The device's clock and scheduling state.
pub struct TimingEngine {
    mode: EngineMode,
    profile: DeviceProfile,
    /// Next instant the host CPU is free to issue a command.
    issue_free_ns: u64,
    /// Next free instant per flash channel.
    channel_free_ns: Vec<u64>,
    /// Completion times of commands still "in flight" (bounded by queue
    /// depth in async mode).
    inflight: Vec<u64>,
    /// Largest completion time seen.
    horizon_ns: u64,
    latencies: LatencyHistogram,
    /// Inside a compound command: overhead charged once, then waived.
    compound: bool,
    compound_overhead_charged: bool,
}

impl TimingEngine {
    pub fn new(mode: EngineMode, profile: DeviceProfile, channels: u32) -> Self {
        TimingEngine {
            mode,
            profile,
            issue_free_ns: 0,
            channel_free_ns: vec![0; channels as usize],
            // bounded-by: submit evicts the earliest completion once len
            // reaches the profile's queue depth.
            inflight: Vec::new(),
            horizon_ns: 0,
            latencies: LatencyHistogram::new(),
            compound: false,
            compound_overhead_charged: false,
        }
    }

    /// Enter/leave compound-command mode (Kim et al.'s request coalescing:
    /// one command-processing overhead per batch).
    pub fn set_compound(&mut self, on: bool) {
        self.compound = on;
        self.compound_overhead_charged = false;
    }

    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// Simulated time at which all issued work has completed.
    pub fn now_ns(&self) -> u64 {
        self.horizon_ns.max(self.issue_free_ns)
    }

    pub fn latencies(&self) -> &LatencyHistogram {
        &self.latencies
    }

    /// Commands still in flight (async mode; always 0 in sync mode, where
    /// the host blocks per command). Telemetry exports this as the
    /// per-shard submission-queue-depth gauge.
    pub fn inflight_commands(&self) -> usize {
        self.inflight.len()
    }

    /// Account one command: its media ops, plus `host_bytes` moved across
    /// the host interface.
    pub fn account(&mut self, ops: &[TimedOp], host_bytes: u64) -> CommandTiming {
        let overhead = if self.compound && self.compound_overhead_charged {
            0
        } else {
            self.compound_overhead_charged = true;
            self.profile.command_overhead_ns
        };
        let transfer = self.profile.host_transfer_ns(host_bytes);

        let timing = match self.mode {
            EngineMode::Sync => {
                // The host blocks: everything serializes after the later of
                // "host free" and "all previous work done".
                let start = self.now_ns();
                let mut t = start + overhead + transfer;
                for op in ops {
                    t += op.duration_ns;
                }
                self.issue_free_ns = t;
                self.horizon_ns = self.horizon_ns.max(t);
                CommandTiming { submitted_ns: start, completed_ns: t }
            }
            EngineMode::Async { queue_depth } => {
                // Respect the queue bound: wait until a slot frees.
                let mut start = self.issue_free_ns;
                if self.inflight.len() >= queue_depth as usize {
                    self.inflight.sort_unstable();
                    let freed = self.inflight.remove(0);
                    start = start.max(freed);
                }
                let issued = start + overhead;
                self.issue_free_ns = issued;

                // Media ops queue FIFO on their channels, starting no
                // earlier than issue time.
                let mut done = issued + transfer;
                for op in ops {
                    let ch = op.channel as usize % self.channel_free_ns.len();
                    let begin = self.channel_free_ns[ch].max(issued);
                    self.channel_free_ns[ch] = begin + op.duration_ns;
                    done = done.max(self.channel_free_ns[ch]);
                }
                self.inflight.push(done);
                self.horizon_ns = self.horizon_ns.max(done);
                CommandTiming { submitted_ns: start, completed_ns: done }
            }
        };
        self.latencies.record(timing.latency_ns());
        timing
    }

    /// Stall the device (resize holds the submission queue, §IV-A2): no
    /// command may be issued before `until_ns`.
    pub fn stall_until(&mut self, until_ns: u64) {
        self.issue_free_ns = self.issue_free_ns.max(until_ns);
        self.horizon_ns = self.horizon_ns.max(until_ns);
    }

    /// Simulated seconds elapsed since power-on.
    pub fn elapsed_secs(&self) -> f64 {
        self.now_ns() as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(channel: u32, duration_ns: u64) -> TimedOp {
        TimedOp { channel, duration_ns }
    }

    fn profile() -> DeviceProfile {
        DeviceProfile {
            latency: rhik_nand::LatencyModel {
                read_ns: 10,
                program_ns: 100,
                erase_ns: 1000,
                transfer_ns_per_byte: 0.0,
            },
            command_overhead_ns: 5,
            host_bandwidth_bps: 1_000_000_000, // 1 B/ns
            name: "test",
        }
    }

    #[test]
    fn sync_serializes_everything() {
        let mut e = TimingEngine::new(EngineMode::Sync, profile(), 4);
        let t1 = e.account(&[op(0, 100), op(1, 100)], 1000);
        // 5 overhead + 1000 transfer (1ns/B) + 200 media.
        assert_eq!(t1.latency_ns(), 5 + 1000 + 200);
        let t2 = e.account(&[op(2, 50)], 0);
        assert_eq!(t2.submitted_ns, t1.completed_ns);
        assert_eq!(e.now_ns(), t2.completed_ns);
    }

    #[test]
    fn async_overlaps_channels() {
        let mut e = TimingEngine::new(EngineMode::Async { queue_depth: 8 }, profile(), 4);
        // Two commands on different channels overlap almost fully.
        let a = e.account(&[op(0, 1000)], 0);
        let b = e.account(&[op(1, 1000)], 0);
        assert!(b.completed_ns < a.completed_ns + 1000, "no overlap: {a:?} {b:?}");
        // Same channel: serialized.
        let c = e.account(&[op(0, 1000)], 0);
        assert!(c.completed_ns >= a.completed_ns + 1000);
    }

    #[test]
    fn async_faster_than_sync_for_parallel_work() {
        let ops: Vec<Vec<TimedOp>> = (0..16).map(|i| vec![op(i % 4, 1000)]).collect();
        let mut sync = TimingEngine::new(EngineMode::Sync, profile(), 4);
        let mut asn = TimingEngine::new(EngineMode::Async { queue_depth: 8 }, profile(), 4);
        for o in &ops {
            sync.account(o, 0);
            asn.account(o, 0);
        }
        assert!(
            asn.now_ns() * 2 < sync.now_ns(),
            "async {} vs sync {}",
            asn.now_ns(),
            sync.now_ns()
        );
    }

    #[test]
    fn queue_depth_bounds_inflight() {
        let mut e = TimingEngine::new(EngineMode::Async { queue_depth: 2 }, profile(), 8);
        let a = e.account(&[op(0, 10_000)], 0);
        let _b = e.account(&[op(1, 10_000)], 0);
        // Third command must wait for a slot.
        let c = e.account(&[op(2, 10)], 0);
        assert!(c.submitted_ns >= a.completed_ns);
    }

    #[test]
    fn stall_delays_next_command() {
        let mut e = TimingEngine::new(EngineMode::Sync, profile(), 2);
        e.stall_until(1_000_000);
        let t = e.account(&[], 0);
        assert!(t.submitted_ns >= 1_000_000);
    }

    #[test]
    fn compound_mode_waives_overhead_after_first() {
        for mode in [EngineMode::Sync, EngineMode::Async { queue_depth: 4 }] {
            let mut e = TimingEngine::new(mode, profile(), 2);
            e.set_compound(true);
            let a = e.account(&[], 0);
            let b = e.account(&[], 0);
            // First command pays the 5ns overhead, the second none.
            assert_eq!(a.latency_ns(), 5, "{mode:?}");
            assert_eq!(b.latency_ns(), 0, "{mode:?}");
            e.set_compound(false);
            let c = e.account(&[], 0);
            assert_eq!(c.latency_ns(), 5, "{mode:?}: overhead restored");
        }
    }

    #[test]
    fn latencies_recorded() {
        let mut e = TimingEngine::new(EngineMode::Sync, profile(), 2);
        e.account(&[op(0, 100)], 0);
        e.account(&[op(0, 100)], 0);
        assert_eq!(e.latencies().count(), 2);
    }
}
