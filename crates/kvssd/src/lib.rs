//! KVSSD device emulator (§IV-C: "we develop an advanced version of the KV
//! Emulator by extending OpenMPDK KV Emulator [...] imitates the
//! fundamental hardware primitives of an SSD").
//!
//! The device glues together the NAND model, the FTL services, and a
//! pluggable [`rhik_ftl::IndexBackend`]:
//!
//! * [`KvssdDevice`] — the five vendor commands of the Samsung KVSSD
//!   interface (§II-A): `put`, `get`, `delete`, `exist`, `iterate` — with
//!   full-key verification against signature collisions, GC triggering,
//!   and the resize submission-queue stall.
//! * [`TimingEngine`] — sync and async command timing on the simulated
//!   clock: sync serializes each command's media ops; async overlaps them
//!   across flash channels under a queue-depth bound (the emulator's IOPS
//!   model, §V-B).
//! * [`DeviceConfig`] — capacity, cache budget, timing profile, GC
//!   watermarks, index choice.
//!
//! Convenience constructors build a device around each index scheme:
//! [`KvssdDevice::rhik`], [`KvssdDevice::multilevel`],
//! [`KvssdDevice::simple_hash`], [`KvssdDevice::lsm`].
//!
//! Two concurrent entry points wrap the single-owner device:
//!
//! * [`ShardedKvssd`] — the recommended one: `S` submission queues, each
//!   owning a slice of the signature space (routed by high signature
//!   bits) with its own index and timing engine, over one shared flash
//!   pool. Resizes stall only the affected shard.
//! * [`SharedKvssd`] — the single-queue baseline: one global mutex, one
//!   serialized command stream.

mod cache_tier;
mod cmd;
mod config;
mod device;
mod engine;
mod error;
mod histogram;
mod sharded;
mod shared;

pub use cmd::{Command, CommandResult, IterHandle};
pub use config::{DeviceConfig, EngineMode};
pub use device::{DeviceStats, ExistReport, KvssdDevice};
pub use engine::{CommandTiming, TimingEngine};
pub use error::KvError;
pub use histogram::LatencyHistogram;
pub use sharded::{BatchOp, BatchReply, GroupCommitStats, LockfreeReadStats, ShardedKvssd};
pub use shared::SharedKvssd;

// Observability types, re-exported so device users need not depend on the
// telemetry crate directly.
pub use rhik_telemetry::{
    Attribution, MetricRegistry, MetricSnapshot, OpKind, OpSpan, ReadsPerLookup, Stage, StageEvent,
    TelemetrySink, TraceRing,
};

// Hot-object cache configuration and counters, re-exported so device users
// need not depend on the hotcache crate directly.
pub use rhik_hotcache::{CacheConfig, CacheStats};

/// Result alias for device commands.
pub type Result<T> = std::result::Result<T, KvError>;
