//! Sharded multi-queue device execution.
//!
//! [`crate::SharedKvssd`] serializes every command behind one global
//! mutex — one submission queue, like a single-queue host driver. Real
//! KV-SSDs expose multiple submission queues, and RHIK's directory makes
//! the keyspace trivially partitionable: the directory entry is selected
//! by *low* signature bits, so taking the *high* bits as a shard id
//! splits the signature space into `S` disjoint slices whose index
//! structures never interact.
//!
//! [`ShardedKvssd`] exploits that: each shard owns a full device
//! front-end (its own `RhikIndex` directory slice, submission-queue
//! mutex, timing engine, and latency histograms), while all shards lease
//! erase blocks from one shared [`FlashPool`] — one physical flash
//! array, many command streams. Commands route by the high signature
//! bits of the key, so:
//!
//! * threads hitting different shards proceed in parallel;
//! * a directory resize (the reconfiguration stall of §IV-C) runs inside
//!   one shard and stalls only that shard's queue — a `1/S` partial
//!   stall instead of a whole-device pause;
//! * per-shard stats and histograms aggregate into a device-wide view
//!   via [`DeviceStats::merge`] / `LatencyHistogram::merge`.
//!
//! Trade-offs (documented, not hidden): GC and wear accounting are per
//! shard — a shard can only reclaim its *own* leased blocks, and the
//! global free-block watermark may trigger GC in a shard with little to
//! reclaim. When one shard exhausts the pool while another still holds
//! garbage, the router runs a device-wide GC sweep (every shard's
//! collector, serialized by the pool's GC permit) and retries before
//! surfacing `DeviceFull`. The single-queue `SharedKvssd` remains the
//! baseline for timing-faithful single-stream experiments.

use std::sync::Arc;

use bytes::Bytes;
use rhik_core::RhikIndex;
use rhik_ftl::layout;
// Per-shard locks via ftl::sync so `cfg(loom)` builds model them (and
// wslint's `std-mutex-outside-sync` rule holds workspace-wide).
use rhik_ftl::sync::{Condvar, Counter, Mutex, MutexGuard};
use rhik_ftl::{FlashPool, Ftl, IndexBackend, Lookup, MediaReader, ReadView};
use rhik_nand::Ppa;
use rhik_sigs::{KeySignature, SigHasher};
use rhik_telemetry::{OpKind, OpSpan, TelemetrySink};

use crate::cache_tier::{CacheTier, Probe};
use crate::config::DeviceConfig;
use crate::device::{DeviceStats, ExistReport, KvssdDevice};
use crate::error::KvError;
use crate::histogram::LatencyHistogram;
use crate::Result;

// ------------------------------------------------------ lock-free reads

/// Per-shard lock-free get machinery: the generation-published index
/// mirror ([`ReadView`]) plus a [`MediaReader`] that reads record pages
/// through the narrow media lock — never the shard's command mutex.
/// All counters are relaxed [`Counter`]s; the latency histogram and
/// telemetry sink sit behind their own short-hold mutexes, touched only
/// *after* the lock-free walk and flash read complete.
struct ReadPath {
    view: Arc<ReadView>,
    media: MediaReader,
    gets: Counter,
    hits: Counter,
    not_found: Counter,
    fallbacks: Counter,
    pages_read: Counter,
    bytes_read: Counter,
    /// Simulated media time spent by lock-free reads (pages × t_read).
    /// Folded into the shard's device clock: these reads bypass the
    /// timing engine, so the clock must account for them separately.
    read_ns: Counter,
    latencies: Mutex<LatencyHistogram>,
    /// 1 when an enabled telemetry sink is installed (checked before
    /// taking the sink mutex, so disabled telemetry costs one load).
    telemetry_on: Counter,
    telemetry: Mutex<TelemetrySink>,
}

impl ReadPath {
    fn new(view: Arc<ReadView>, media: MediaReader) -> Self {
        ReadPath {
            view,
            media,
            gets: Counter::new(),
            hits: Counter::new(),
            not_found: Counter::new(),
            fallbacks: Counter::new(),
            pages_read: Counter::new(),
            bytes_read: Counter::new(),
            read_ns: Counter::new(),
            latencies: Mutex::new(LatencyHistogram::new()),
            telemetry_on: Counter::new(),
            telemetry: Mutex::new(TelemetrySink::disabled()),
        }
    }

    /// Record one completed lock-free get (media time already charged).
    fn record(&self, shard: u32, pages: u64, bytes: u64, hit: bool) {
        let latency = pages * self.media.page_read_ns();
        let start = self.read_ns.get();
        self.read_ns.add(latency);
        self.gets.incr();
        if hit {
            self.hits.incr();
            self.bytes_read.add(bytes);
        } else {
            self.not_found.incr();
        }
        self.pages_read.add(pages);
        self.latencies.lock().unwrap_or_else(|p| p.into_inner()).record(latency);
        if self.telemetry_on.get() != 0 {
            let sink = self.telemetry.lock().unwrap_or_else(|p| p.into_inner()).clone();
            let span = OpSpan {
                kind: OpKind::Get,
                shard,
                submitted_ns: start,
                completed_ns: start + latency,
                lookup_flash_reads: 0,
                stages: Vec::new(), // bounded-by: built empty; the read path records no stages
            };
            // Zero *index* flash reads by construction: the walk is the
            // DRAM mirror, and only record pages were read.
            sink.record_op(span, "kvssd_gets", Some(("get_latency_ns", latency)), Some(0), &[]);
        }
    }
}

/// Aggregated lock-free read-path counters (diagnostics, benches, the
/// adversarial snapshot-read test).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockfreeReadStats {
    /// Gets completed entirely on the lock-free path.
    pub gets: u64,
    /// Of those, gets that returned a value.
    pub hits: u64,
    /// Validated misses (zero flash reads spent).
    pub not_found: u64,
    /// Attempts that bounced to the locked path (contention, pending
    /// write buffer, failed post-read validation).
    pub fallbacks: u64,
    /// Record pages read through the media lock (head + continuation).
    pub pages_read: u64,
    /// Value bytes returned by lock-free hits.
    pub bytes_read: u64,
}

// ------------------------------------------------------- group commit

/// One waiter's mailbox in the put group-commit queue.
struct PutSlot {
    result: Mutex<Option<Result<()>>>,
    ready: Condvar,
}

struct PendingPut {
    key: Vec<u8>,
    value: Vec<u8>,
    slot: Arc<PutSlot>,
}

struct CommitQueue {
    items: Vec<PendingPut>,
    /// True while some thread is draining the queue into the shard.
    /// Cleared only in the same critical section that observes the
    /// queue empty, so no enqueued item can be stranded: a push either
    /// lands before that observation (the leader drains it) or after
    /// the flag cleared (the pusher elects itself leader).
    leader_active: bool,
}

/// Per-shard write group commit: concurrent puts enqueue, the first
/// arrival becomes the *leader* and drains the queue into the shard
/// under one lock acquisition per batch (one compound submission),
/// while followers block on their slot's condvar. Coalescing turns N
/// contended lock hand-offs into one critical section per batch.
struct GroupCommit {
    queue: Mutex<CommitQueue>,
    batches: Counter,
    batched_puts: Counter,
    max_batch: Counter,
}

impl GroupCommit {
    fn new() -> Self {
        GroupCommit {
            // bounded-by: the batch leader swaps out the whole queue each
            // commit round (drain_commits), so it holds at most the puts
            // enqueued during one batch submission.
            queue: Mutex::new(CommitQueue { items: Vec::new(), leader_active: false }),
            batches: Counter::new(),
            batched_puts: Counter::new(),
            max_batch: Counter::new(),
        }
    }

    fn lock_queue(&self) -> MutexGuard<'_, CommitQueue> {
        self.queue.lock().unwrap_or_else(|poison| poison.into_inner())
    }
}

/// Aggregated group-commit counters (diagnostics and benches).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Batches drained (shard-lock acquisitions for puts).
    pub batches: u64,
    /// Puts that flowed through the queue.
    pub batched_puts: u64,
    /// Largest single batch observed on any shard.
    pub max_batch: u64,
}

// ---------------------------------------------------- batch submission

/// One operation in a host-assembled per-shard batch. Network front ends
/// (`rhik-server`) coalesce pipelined commands per shard and hand the
/// whole batch over in one [`ShardedKvssd::submit_batch`] call, so N
/// pipelined ops cost one shard handoff instead of N.
#[derive(Clone, Debug)]
pub enum BatchOp {
    Get { key: Vec<u8> },
    Put { key: Vec<u8>, value: Vec<u8> },
    Delete { key: Vec<u8> },
    Exists { key: Vec<u8> },
}

impl BatchOp {
    /// The key this op addresses (routing + cost accounting).
    pub fn key(&self) -> &[u8] {
        match self {
            BatchOp::Get { key }
            | BatchOp::Put { key, .. }
            | BatchOp::Delete { key }
            | BatchOp::Exists { key } => key,
        }
    }

    /// Payload bytes this op carries (admission-control cost accounting).
    pub fn payload_bytes(&self) -> usize {
        match self {
            BatchOp::Put { key, value } => key.len() + value.len(),
            BatchOp::Get { key } | BatchOp::Delete { key } | BatchOp::Exists { key } => key.len(),
        }
    }
}

/// Reply to one [`BatchOp`], in submission order.
#[derive(Clone, Debug)]
pub enum BatchReply {
    Get(Result<Option<Bytes>>),
    Put(Result<()>),
    Delete(Result<()>),
    Exists(Result<bool>),
}

/// Outcome of one fast-path (no shard lock) get attempt.
enum FastGet {
    /// Completed on the cache or lock-free path; stats recorded.
    Done(Result<Option<Bytes>>),
    /// Needs the locked path; carries the cache fill ticket (version
    /// observed before the read) so a locked-path hit can still be
    /// admitted under the re-check protocol.
    NeedsLock { fill_version: Option<u64> },
}

/// Per-shard state living *outside* the shard's command mutex.
struct ShardExt {
    /// `Some` when the index backend accepted a read view at
    /// construction; `None` keeps every get on the locked path.
    read: Option<ReadPath>,
    commit: GroupCommit,
}

/// A cloneable handle to a sharded device: `S` independent command
/// queues over one shared flash array.
pub struct ShardedKvssd<I: IndexBackend> {
    shards: Arc<[Mutex<KvssdDevice<I>>]>,
    ext: Arc<[ShardExt]>,
    pool: Arc<FlashPool>,
    hasher: SigHasher,
    /// High signature bits selecting the shard (`log2(shard count)`).
    shard_bits: u32,
    /// DRAM hot-object cache tier, `Some` when `cfg.hot_cache.enabled`
    /// and every shard's index accepted the invalidation version table.
    cache: Option<Arc<CacheTier>>,
}

impl<I: IndexBackend> Clone for ShardedKvssd<I> {
    fn clone(&self) -> Self {
        ShardedKvssd {
            shards: Arc::clone(&self.shards),
            ext: Arc::clone(&self.ext),
            pool: Arc::clone(&self.pool),
            hasher: self.hasher,
            shard_bits: self.shard_bits,
            cache: self.cache.clone(),
        }
    }
}

impl ShardedKvssd<RhikIndex> {
    /// Build a sharded RHIK device with `cfg.shards` shards (see
    /// [`DeviceConfig::with_shards`]).
    ///
    /// Each shard gets `1/S` of the DRAM cache budget and a directory
    /// starting `log2(S)` bits smaller ([`rhik_core::RhikConfig::for_shard`]),
    /// so aggregate initial capacity matches the unsharded device. The
    /// GC reserve is global: at least one scratch block per shard.
    pub fn rhik(cfg: DeviceConfig) -> Self {
        let count = cfg.shards;
        let shard_bits = cfg.shard_bits();
        // The reserve is tiered (see [`rhik_ftl::AcquireClass`]): host
        // writes stop at `reserve` free blocks, index write-backs at
        // `reserve/2`, GC at zero. Collection is serialized device-wide
        // (the pool's GC permit), so the bottom half must cover ONE
        // collection's worst-case scratch — open data/extent/index
        // relocation targets plus a directory resize triggered
        // mid-relocation, and any open blocks an aborted collection left
        // behind. Scale with shard count, floor of 8, capped for tiny
        // geometries.
        let reserve =
            (2 * cfg.gc_reserve_blocks * count).max(8).min(cfg.geometry.blocks / 4).max(1);
        let pool = Arc::new(FlashPool::new(cfg.geometry, reserve));

        let mut shard_cfg = cfg;
        shard_cfg.cache_budget_bytes =
            (cfg.cache_budget_bytes / count as usize).max(cfg.geometry.page_size as usize);
        shard_cfg.rhik = cfg.rhik.for_shard(shard_bits);
        // The GC watermarks are compared against the *global* free count
        // (above the reserve), but each shard can only reclaim its own
        // garbage — and S shards together keep up to 3·S blocks open.
        // Add one block of trigger margin and two of target hysteresis
        // per shard so every shard starts collecting while the others
        // still have allocation headroom.
        shard_cfg.gc = rhik_ftl::GcConfig {
            low_watermark: cfg.gc.low_watermark + count,
            high_watermark: cfg.gc.high_watermark + 2 * count,
            // Incremental collection: one huge run would land on
            // whichever shard holds the GC permit and serialize the
            // whole debt onto that one queue's clock. Small slices let
            // the watermark re-trigger on later commands, spreading
            // collection across shards.
            max_victims_per_run: 2,
            ..cfg.gc
        };

        // One version table + hot cache for the whole device: mutations
        // route to exactly one shard per signature, so a single table
        // sees every bump for a given key.
        let mut cache =
            cfg.hot_cache.enabled.then(|| Arc::new(CacheTier::new(cfg.hot_cache, count as usize)));

        let mut shards: Vec<Mutex<KvssdDevice<RhikIndex>>> = Vec::with_capacity(count as usize);
        let mut ext: Vec<ShardExt> = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let ftl = Ftl::with_pool(shard_cfg.ftl_config(), Arc::clone(&pool));
            let index = RhikIndex::new(shard_cfg.rhik, shard_cfg.geometry.page_size);
            let mut dev = KvssdDevice::with_index_and_ftl(shard_cfg, ftl, index);
            // Offer the index a generation-published mirror; gets go
            // lock-free only if the backend accepted it (it publishes
            // the right directory bits itself).
            let view = Arc::new(ReadView::new(0));
            let read = dev
                .attach_read_view(Arc::clone(&view))
                .then(|| ReadPath::new(view, dev.media_reader()));
            // The cache tier requires the backend to bump invalidation
            // versions; a refusal disables the cache (fail-open).
            if let Some(tier) = &cache {
                if !dev.attach_versions(Arc::clone(&tier.versions)) {
                    cache = None;
                }
            }
            shards.push(Mutex::new(dev));
            ext.push(ShardExt { read, commit: GroupCommit::new() });
        }

        ShardedKvssd {
            shards: shards.into(),
            ext: ext.into(),
            pool,
            hasher: cfg.hasher,
            shard_bits,
            cache,
        }
    }

    /// Cross-layer audit over every shard, including the global checks no
    /// single shard can run: no PPA claimed by two shards' directories,
    /// no erase block leased twice, and free + leased covering the pool
    /// exactly. Holds every shard's lock simultaneously (acquired in
    /// shard order; no other path holds two at once) so the cross-shard
    /// pool accounting is one consistent snapshot — safe to call while
    /// other threads keep issuing commands.
    pub fn audit(&self, auditor: &mut rhik_audit::DeviceAuditor) -> rhik_audit::AuditReport {
        let guards: Vec<_> = (0..self.shards.len()).map(|s| self.lock(s)).collect();
        let mut shards = Vec::with_capacity(self.shards.len());
        let mut gauges = Vec::new();
        let mut cache_samples = Vec::new();
        for (shard, dev) in guards.iter().enumerate() {
            let (flash, index, shard_gauges) = dev.audit_parts();
            shards.push((flash, index));
            gauges.extend(shard_gauges);
            // Cache↔index coherence: with every shard lock held the
            // keyspace is quiescent — join every still-current cached
            // entry of this shard's slice against the directory →
            // record-page → FTL chain.
            self.collect_cache_samples(shard, &mut cache_samples);
        }
        let mut report = auditor.check_sharded(&shards, &gauges);
        report.violations.extend(auditor.check_cache(&cache_samples).violations);
        report
    }

    /// Gather [`rhik_audit::CacheCoherenceSample`]s for `shard`'s slice
    /// of the signature space. Caller holds (or just held) the shard
    /// lock; mutations for these signatures route only through that
    /// shard, so versions observed here are stable for the join.
    fn collect_cache_samples(
        &self,
        shard: usize,
        samples: &mut Vec<rhik_audit::CacheCoherenceSample>,
    ) {
        let Some(tier) = &self.cache else { return };
        let Some(read) = &self.ext[shard].read else { return };
        for entry in tier.snapshot() {
            if self.shard_of(KeySignature(entry.sig)) != shard {
                continue;
            }
            let current = tier.versions.load(entry.sig);
            if current != entry.version {
                continue; // unservable by construction — not sampled
            }
            samples.push(rhik_audit::CacheCoherenceSample {
                shard: shard as u32,
                sig: entry.sig,
                fill_version: entry.version,
                current_version: current,
                cached_value: entry.value.to_vec(),
                index_value: self.audit_chain_read(read, KeySignature(entry.sig), &entry.key),
            });
        }
    }

    /// Re-read one key through the lock-free chain for the audit join,
    /// without touching command counters or the shard clock. `None`
    /// means the chain could not be walked without side effects (page
    /// still in the write buffer) — the sample is skipped.
    fn audit_chain_read(
        &self,
        read: &ReadPath,
        sig: KeySignature,
        key: &[u8],
    ) -> Option<Option<Vec<u8>>> {
        let hit = match read.view.lookup(sig.0) {
            // A validated miss is authoritative: the key is absent.
            Lookup::Miss => return Some(None),
            Lookup::Contended => return None, // writer active: skip
            Lookup::Hit(hit) => hit,
        };
        let (data, _) = read.media.read_page(hit.head).ok()?;
        let page_size = read.media.geometry().page_size as usize;
        let entry = layout::find_in_head(&data, page_size, sig)?;
        if entry.key != key {
            return Some(None); // signature collision: this key is absent
        }
        let mut value = entry.value_frag.to_vec();
        let mut remaining = (entry.val_total_len - entry.frag_len) as usize;
        if remaining > 0 {
            let start = entry.cont_start?;
            let mut i = 0;
            while remaining > 0 {
                let (cd, _) = read.media.read_page(Ppa::new(start.block, start.page + i)).ok()?;
                let take = remaining.min(cd.len());
                value.extend_from_slice(&cd[..take]);
                remaining -= take;
                i += 1;
            }
        }
        if !hit.validate() {
            return None;
        }
        Some(Some(value))
    }
}

impl<I: IndexBackend + Send> ShardedKvssd<I> {
    /// Which shard serves `sig`: the high `shard_bits` bits of the
    /// signature. Disjoint from the directory's low-bit selection, so
    /// sharding never skews per-shard directory occupancy.
    pub fn shard_of(&self, sig: KeySignature) -> usize {
        if self.shard_bits == 0 {
            0
        } else {
            (sig.0 >> (64 - self.shard_bits)) as usize
        }
    }

    fn route(&self, key: &[u8]) -> usize {
        self.shard_of(self.hasher.sign(key))
    }

    /// Take one shard's submission-queue lock. Poisoning is not fatal
    /// (a panicked command leaves the shard at a command boundary).
    fn lock(&self, shard: usize) -> MutexGuard<'_, KvssdDevice<I>> {
        self.shards[shard].lock().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Device-wide GC sweep. A shard's collector can only reclaim blocks
    /// that shard leased, so when the pool runs dry the garbage may sit
    /// in *other* shards' blocks — unreachable to the shard that hit the
    /// wall. Runs every shard's collector (one at a time; the pool's GC
    /// permit serializes collection anyway) and reports whether anything
    /// was reclaimed.
    fn gc_sweep(&self) -> Result<bool> {
        let mut reclaimed = false;
        for shard in 0..self.shards.len() {
            reclaimed |= self.lock(shard).collect_garbage()?;
        }
        Ok(reclaimed)
    }

    /// Run `op` on one shard, recovering from `DeviceFull` with a
    /// device-wide GC sweep. Retries as long as each sweep reclaims
    /// blocks; `DeviceFull` surfaces only when no shard has garbage
    /// left. The shard lock is released between attempt and sweep so
    /// the sweep can visit this shard too.
    fn with_full_retry<R>(
        &self,
        shard: usize,
        mut op: impl FnMut(&mut KvssdDevice<I>) -> Result<R>,
    ) -> Result<R> {
        loop {
            let r = op(&mut self.lock(shard));
            match r {
                Err(KvError::DeviceFull) => {
                    if !self.gc_sweep()? {
                        return Err(KvError::DeviceFull);
                    }
                }
                other => return other,
            }
        }
    }

    /// `put` with write group commit: enqueue, then either drain the
    /// shard as batch leader or wait for the current leader to carry
    /// this item in its next batch. Either way the result comes back
    /// through the slot; `DeviceFull` is retried by the *owner* (with a
    /// device-wide GC sweep) outside all queue and shard locks.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let shard = self.route(key);
        let slot = Arc::new(PutSlot { result: Mutex::new(None), ready: Condvar::new() });
        let lead = {
            let mut q = self.ext[shard].commit.lock_queue();
            q.items.push(PendingPut {
                key: key.to_vec(),
                value: value.to_vec(),
                slot: Arc::clone(&slot),
            });
            !std::mem::replace(&mut q.leader_active, true)
        };
        if lead {
            self.drain_commits(shard);
        }
        // The leader filled its own slot while draining; followers wait.
        let result = {
            let mut done = slot.result.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(r) = done.take() {
                    break r;
                }
                done = slot.ready.wait(done).unwrap_or_else(|p| p.into_inner());
            }
        };
        match result {
            Err(KvError::DeviceFull) => self.with_full_retry(shard, |dev| dev.put(key, value)),
            other => other,
        }
    }

    /// Batch leader: repeatedly swap the queue out and execute it as one
    /// compound submission under a single shard-lock acquisition. The
    /// `leader_active` flag is cleared only in the critical section that
    /// sees the queue empty, so every concurrently enqueued item is
    /// either drained here or enqueued by a thread that sees the flag
    /// down and leads its own batch.
    fn drain_commits(&self, shard: usize) {
        let commit = &self.ext[shard].commit;
        loop {
            let batch = {
                let mut q = commit.lock_queue();
                if q.items.is_empty() {
                    q.leader_active = false;
                    return;
                }
                std::mem::take(&mut q.items)
            };
            commit.batches.incr();
            commit.batched_puts.add(batch.len() as u64);
            commit.max_batch.note_max(batch.len() as u64);
            let mut results = Vec::with_capacity(batch.len());
            {
                let mut dev = self.lock(shard);
                if batch.len() > 1 {
                    dev.begin_compound();
                }
                for item in &batch {
                    results.push(dev.put(&item.key, &item.value));
                }
                if batch.len() > 1 {
                    dev.end_compound();
                }
            }
            for (item, result) in batch.into_iter().zip(results) {
                let mut done = item.slot.result.lock().unwrap_or_else(|p| p.into_inner());
                *done = Some(result);
                item.slot.ready.notify_one();
            }
        }
    }

    /// `get`: the hot-object cache answers first (a validated DRAM hit
    /// costs zero directory work and zero flash reads), then the
    /// lock-free path when the shard has a read view — walk the
    /// published snapshot, read record pages through the media lock,
    /// validate, and return without ever touching the shard's command
    /// mutex. Any ambiguity (contended bucket, pending write buffer,
    /// failed validation) falls back to the classic locked path. Values
    /// read from the index are offered back to the cache under the
    /// version-re-check fill protocol (see `cache_tier`).
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        let sig = self.hasher.sign(key);
        let shard = self.shard_of(sig);
        match self.fast_get(shard, sig, key) {
            FastGet::Done(result) => result,
            FastGet::NeedsLock { fill_version } => {
                let result = self.lock(shard).get(key);
                self.admit_after_read(shard, sig, key, fill_version, &result);
                result
            }
        }
    }

    /// The no-shard-lock prefix of a get: cache probe, then a lock-free
    /// index walk. Both `get` and `submit_batch` start here; only the
    /// locked fallback differs (single command vs. compound batch).
    fn fast_get(&self, shard: usize, sig: KeySignature, key: &[u8]) -> FastGet {
        if key.is_empty() {
            // The locked path owns argument validation.
            return FastGet::NeedsLock { fill_version: None };
        }
        let fill_version = match &self.cache {
            Some(tier) => match tier.probe(shard as u32, sig, key) {
                Probe::Hit(value) => return FastGet::Done(Ok(Some(value))),
                Probe::Fill(v1) => Some(v1),
            },
            None => None,
        };
        if let Some(read) = &self.ext[shard].read {
            match self.lockfree_get(read, shard as u32, sig, key) {
                Some(result) => {
                    self.admit_after_read(shard, sig, key, fill_version, &result);
                    return FastGet::Done(result);
                }
                None => read.fallbacks.incr(),
            }
        }
        FastGet::NeedsLock { fill_version }
    }

    /// Step 3 of the cache fill protocol, shared by every read path.
    fn admit_after_read(
        &self,
        shard: usize,
        sig: KeySignature,
        key: &[u8],
        fill_version: Option<u64>,
        result: &Result<Option<Bytes>>,
    ) {
        if let (Some(tier), Some(v1), Ok(Some(value))) = (&self.cache, fill_version, result) {
            tier.try_admit(shard as u32, sig, key, value, v1);
        }
    }

    /// Which shard a key routes to (front ends use this to assemble
    /// per-shard batches for [`ShardedKvssd::submit_batch`]).
    pub fn shard_for_key(&self, key: &[u8]) -> usize {
        self.route(key)
    }

    /// Execute a host-assembled batch of ops that all route to `shard`,
    /// in order, under at most one shard-lock acquisition. Gets are first
    /// answered on the cache / lock-free path (no lock at all); whatever
    /// remains — puts, deletes, exists, fallback gets — runs as one
    /// compound submission, so the modeled device sees one queue handoff
    /// for the whole batch. Replies come back in submission order.
    /// `DeviceFull` is retried per op with a device-wide GC sweep after
    /// the compound ends (the sweep needs the shard lock released).
    pub fn submit_batch(&self, shard: usize, ops: &[BatchOp]) -> Vec<BatchReply> {
        let mut replies: Vec<Option<BatchReply>> = ops.iter().map(|_| None).collect();
        let mut locked: Vec<(usize, Option<u64>)> = Vec::new();
        // Gets may leave the batch for the no-lock fast path only while
        // no earlier op in the batch mutates: a get *after* a put/delete
        // must observe it (pipelined read-your-writes), and neither the
        // cache nor the published read view reflects the mutation until
        // the locked pass below actually runs it.
        let mut mutated = false;
        for (i, op) in ops.iter().enumerate() {
            debug_assert_eq!(
                self.route(op.key()),
                shard,
                "batch op routed to the wrong shard queue"
            );
            match op {
                BatchOp::Get { key } if !mutated => {
                    let sig = self.hasher.sign(key);
                    match self.fast_get(shard, sig, key) {
                        FastGet::Done(result) => replies[i] = Some(BatchReply::Get(result)),
                        FastGet::NeedsLock { fill_version } => locked.push((i, fill_version)),
                    }
                }
                BatchOp::Get { .. } | BatchOp::Exists { .. } => locked.push((i, None)),
                BatchOp::Put { .. } | BatchOp::Delete { .. } => {
                    mutated = true;
                    locked.push((i, None));
                }
            }
        }
        if !locked.is_empty() {
            let mut dev = self.lock(shard);
            if locked.len() > 1 {
                dev.begin_compound();
            }
            for &(i, _) in &locked {
                replies[i] = Some(match &ops[i] {
                    BatchOp::Get { key } => BatchReply::Get(dev.get(key)),
                    BatchOp::Put { key, value } => BatchReply::Put(dev.put(key, value)),
                    BatchOp::Delete { key } => BatchReply::Delete(dev.delete(key)),
                    BatchOp::Exists { key } => {
                        BatchReply::Exists(dev.exist(key).map(|r| r.probably_exists))
                    }
                });
            }
            if locked.len() > 1 {
                dev.end_compound();
            }
        }
        for &(i, fill_version) in &locked {
            match (&ops[i], &replies[i]) {
                // Locked-path read hits still feed the hot cache.
                (BatchOp::Get { key }, Some(BatchReply::Get(result))) => {
                    let sig = self.hasher.sign(key);
                    self.admit_after_read(shard, sig, key, fill_version, result);
                }
                // Full-device mutations retry outside the compound, where
                // the device-wide sweep can take every shard lock.
                (BatchOp::Put { key, value }, Some(BatchReply::Put(Err(KvError::DeviceFull)))) => {
                    replies[i] = Some(BatchReply::Put(
                        self.with_full_retry(shard, |dev| dev.put(key, value)),
                    ));
                }
                (BatchOp::Delete { key }, Some(BatchReply::Delete(Err(KvError::DeviceFull)))) => {
                    replies[i] = Some(BatchReply::Delete(
                        self.with_full_retry(shard, |dev| dev.delete(key)),
                    ));
                }
                _ => {}
            }
        }
        replies
            .into_iter()
            .map(|r| match r {
                Some(reply) => reply,
                // Unreachable: every index is either answered in pass 1 or
                // pushed to `locked` and answered in pass 2.
                None => BatchReply::Get(Err(KvError::Corrupt("unanswered batch op".into()))),
            })
            .collect()
    }

    /// One lock-free get attempt. `Some(result)` is a completed command
    /// (stats and latency recorded); `None` means fall back to the
    /// locked path, which re-runs the command from scratch.
    fn lockfree_get(
        &self,
        read: &ReadPath,
        shard: u32,
        sig: KeySignature,
        key: &[u8],
    ) -> Option<Result<Option<Bytes>>> {
        let hit = match read.view.lookup(sig.0) {
            // A validated miss costs zero flash reads — the §IV-A3
            // signature-only answer, straight from DRAM.
            Lookup::Miss => {
                read.record(shard, 0, 0, false);
                return Some(Ok(None));
            }
            Lookup::Contended => return None,
            Lookup::Hit(hit) => hit,
        };
        // Optimistic flash read: the head may be stale (concurrent
        // update/GC) or still in the DRAM write buffer (unprogrammed
        // page ⇒ the media read errors). Validation decides.
        let mut pages = 1u64;
        let charge_wasted = |pages: u64| {
            // The optimistic reads happened on real media; charge them
            // to the shard clock even though the locked retry pays again.
            read.pages_read.add(pages);
            read.read_ns.add(pages * read.media.page_read_ns());
        };
        let Ok((data, _)) = read.media.read_page(hit.head) else {
            return None;
        };
        let page_size = read.media.geometry().page_size as usize;
        let Some(entry) = layout::find_in_head(&data, page_size, sig) else {
            charge_wasted(pages);
            return None;
        };
        if entry.key != key {
            // Stored pair is a different key: either a true signature
            // collision (report not-found) or a stale page — validate
            // to tell them apart.
            if !hit.validate() {
                charge_wasted(pages);
                return None;
            }
            read.record(shard, pages, 0, false);
            return Some(Ok(None));
        }
        let mut value = entry.value_frag.to_vec();
        let mut remaining = (entry.val_total_len - entry.frag_len) as usize;
        if remaining > 0 {
            let Some(start) = entry.cont_start else {
                charge_wasted(pages);
                return None;
            };
            let mut i = 0;
            while remaining > 0 {
                let Ok((cd, _)) = read.media.read_page(Ppa::new(start.block, start.page + i))
                else {
                    charge_wasted(pages);
                    return None;
                };
                pages += 1;
                let take = remaining.min(cd.len());
                value.extend_from_slice(&cd[..take]);
                remaining -= take;
                i += 1;
            }
        }
        if !hit.validate() {
            charge_wasted(pages);
            return None;
        }
        read.record(shard, pages, value.len() as u64, true);
        Some(Ok(Some(Bytes::from(value))))
    }

    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.with_full_retry(self.route(key), |dev| dev.delete(key))
    }

    pub fn exist(&self, key: &[u8]) -> Result<ExistReport> {
        self.lock(self.route(key)).exist(key)
    }

    /// Store a batch of pairs, grouped by shard so each shard's queue is
    /// locked once and its commands run as one compound submission.
    /// Results come back in input order.
    pub fn put_batch(&self, items: &[(&[u8], &[u8])]) -> Vec<Result<()>> {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, (key, _)) in items.iter().enumerate() {
            by_shard[self.route(key)].push(i);
        }
        let mut results: Vec<Option<Result<()>>> = items.iter().map(|_| None).collect();
        for (shard, idxs) in by_shard.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let mut dev = self.lock(shard);
            dev.begin_compound();
            for &i in idxs {
                let (key, value) = items[i];
                results[i] = Some(dev.put(key, value));
            }
            dev.end_compound();
        }
        // Items that hit a full device retry individually: the compound
        // holds the shard lock, so the device-wide sweep must run after
        // it ends.
        for (i, slot) in results.iter_mut().enumerate() {
            if matches!(slot, Some(Err(KvError::DeviceFull))) {
                let (key, value) = items[i];
                *slot = Some(self.with_full_retry(self.route(key), |dev| dev.put(key, value)));
            }
        }
        results.into_iter().map(|r| r.expect("every item routed to a shard")).collect()
    }

    /// Fetch a batch of keys, grouped by shard (one lock + one compound
    /// submission per shard). Results come back in input order.
    pub fn get_batch(&self, keys: &[&[u8]]) -> Vec<Result<Option<Bytes>>> {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, key) in keys.iter().enumerate() {
            by_shard[self.route(key)].push(i);
        }
        let mut results: Vec<Option<Result<Option<Bytes>>>> = keys.iter().map(|_| None).collect();
        for (shard, idxs) in by_shard.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let mut dev = self.lock(shard);
            dev.begin_compound();
            for &i in idxs {
                results[i] = Some(dev.get(keys[i]));
            }
            dev.end_compound();
        }
        results.into_iter().map(|r| r.expect("every key routed to a shard")).collect()
    }

    /// Flush every shard (shutdown / checkpoint).
    pub fn flush(&self) -> Result<()> {
        for shard in 0..self.shards.len() {
            self.lock(shard).flush()?;
        }
        Ok(())
    }

    /// Device-wide stats: field-wise sum over shards.
    pub fn stats(&self) -> DeviceStats {
        let mut total = DeviceStats::default();
        for shard in 0..self.shards.len() {
            total.merge(&self.shard_stats(shard));
        }
        total
    }

    /// Stats of one shard (diagnostics, load-balance analysis). Gets
    /// completed on the lock-free path are folded in, so per-shard and
    /// device-wide views both cover every command.
    pub fn shard_stats(&self, shard: usize) -> DeviceStats {
        let mut stats = self.lock(shard).stats();
        if let Some(read) = &self.ext[shard].read {
            stats.gets += read.gets.get();
            stats.not_found += read.not_found.get();
            stats.bytes_read += read.bytes_read.get();
        }
        if let Some(tier) = &self.cache {
            tier.fold_shard_stats(shard, &mut stats);
        }
        stats
    }

    /// Hot-object cache counters and occupancy; `None` when the cache
    /// tier is disabled.
    pub fn hot_cache_stats(&self) -> Option<rhik_hotcache::CacheStats> {
        self.cache.as_ref().map(|tier| tier.stats())
    }

    /// Aggregated lock-free read-path counters over every shard. All
    /// zeros when no shard accepted a read view.
    pub fn lockfree_read_stats(&self) -> LockfreeReadStats {
        let mut total = LockfreeReadStats::default();
        for ext in self.ext.iter() {
            let Some(read) = &ext.read else { continue };
            total.gets += read.gets.get();
            total.hits += read.hits.get();
            total.not_found += read.not_found.get();
            total.fallbacks += read.fallbacks.get();
            total.pages_read += read.pages_read.get();
            total.bytes_read += read.bytes_read.get();
        }
        total
    }

    /// Aggregated put group-commit counters over every shard.
    pub fn group_commit_stats(&self) -> GroupCommitStats {
        let mut total = GroupCommitStats::default();
        for ext in self.ext.iter() {
            total.batches += ext.commit.batches.get();
            total.batched_puts += ext.commit.batched_puts.get();
            total.max_batch = total.max_batch.max(ext.commit.max_batch.get());
        }
        total
    }

    pub fn key_count(&self) -> u64 {
        (0..self.shards.len()).map(|s| self.lock(s).key_count()).sum()
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub fn shard_bits(&self) -> u32 {
        self.shard_bits
    }

    /// The shared free-block pool (capacity diagnostics).
    pub fn pool(&self) -> &FlashPool {
        &self.pool
    }

    /// Simulated device time since power-on. Shard queues run in
    /// parallel on the modeled hardware, so the device is done when its
    /// *slowest* shard is — the max over per-shard clocks. (Compare:
    /// `SharedKvssd` accrues every command on one clock.)
    pub fn device_elapsed_secs(&self) -> f64 {
        (0..self.shards.len())
            .map(|s| {
                // Lock-free reads bypass the timing engine; their media
                // time is accrued separately and charged to the shard's
                // clock serially (a conservative bound — on the modeled
                // hardware they could overlap queued commands).
                let lockfree =
                    self.ext[s].read.as_ref().map_or(0.0, |read| read.read_ns.get() as f64 / 1e9);
                self.lock(s).elapsed_secs() + lockfree
            })
            .fold(0.0, f64::max)
    }

    /// Merged put-latency histogram across shards.
    pub fn put_latencies(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for shard in 0..self.shards.len() {
            h.merge(self.lock(shard).put_latencies());
        }
        h
    }

    /// Merged get-latency histogram across shards (locked-path and
    /// lock-free gets both included).
    pub fn get_latencies(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for shard in 0..self.shards.len() {
            h.merge(self.lock(shard).get_latencies());
            if let Some(read) = &self.ext[shard].read {
                h.merge(&read.latencies.lock().unwrap_or_else(|p| p.into_inner()));
            }
        }
        if let Some(tier) = &self.cache {
            tier.merge_latencies(&mut h);
        }
        h
    }

    /// Run `f` with exclusive access to one shard's device (diagnostics,
    /// targeted fault injection, forcing a resize in tests).
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&mut KvssdDevice<I>) -> R) -> R {
        f(&mut self.lock(shard))
    }

    /// Install one telemetry sink across every shard. Shards share the
    /// sink's registry and trace ring; spans and gauges are tagged with
    /// the shard id, so per-queue behaviour (resize stalls, queue depth,
    /// occupancy skew) stays distinguishable in the merged stream.
    pub fn set_telemetry(&self, sink: rhik_telemetry::TelemetrySink) {
        for shard in 0..self.shards.len() {
            self.lock(shard).set_telemetry_shard(sink.clone(), shard as u32);
            if let Some(read) = &self.ext[shard].read {
                *read.telemetry.lock().unwrap_or_else(|p| p.into_inner()) = sink.clone();
                read.telemetry_on.set(u64::from(sink.is_enabled()));
            }
        }
        if let Some(tier) = &self.cache {
            tier.set_telemetry(sink);
        }
    }

    /// Whether any shard is mid-way through an incremental directory
    /// doubling.
    pub fn resize_in_progress(&self) -> bool {
        (0..self.shards.len()).any(|s| self.lock(s).resize_in_progress())
    }

    /// Run one bounded maintenance slice on every shard whose queue is
    /// idle right now (its mutex is uncontended). A host driver calls
    /// this between submissions so in-flight directory migrations drain
    /// on idle time instead of riding foreground commands. Returns how
    /// many shards made progress.
    pub fn maintain_idle(&self) -> Result<usize> {
        let mut progressed = 0;
        for shard in self.shards.iter() {
            // Never queue behind a command: busy shard ⇒ not idle ⇒ skip.
            let Ok(mut dev) = shard.try_lock() else { continue };
            if dev.maintain_step()? {
                progressed += 1;
            }
        }
        Ok(progressed)
    }
}

impl<I: IndexBackend + Send> std::fmt::Debug for ShardedKvssd<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedKvssd")
            .field("shards", &self.shards.len())
            .field("keys", &self.key_count())
            .field("pool", &self.pool)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::KvError;

    fn sharded(shards: u32) -> ShardedKvssd<RhikIndex> {
        ShardedKvssd::rhik(DeviceConfig::small().with_shards(shards))
    }

    #[test]
    fn roundtrip_across_shards() {
        let dev = sharded(4);
        assert_eq!(dev.shard_count(), 4);
        for i in 0..200u64 {
            let key = format!("key-{i:04}");
            dev.put(key.as_bytes(), format!("val-{i}").as_bytes()).unwrap();
        }
        for i in 0..200u64 {
            let key = format!("key-{i:04}");
            assert_eq!(
                &dev.get(key.as_bytes()).unwrap().unwrap()[..],
                format!("val-{i}").as_bytes()
            );
        }
        assert_eq!(dev.key_count(), 200);
        assert_eq!(dev.get(b"absent").unwrap(), None);
        dev.delete(b"key-0000").unwrap();
        assert_eq!(dev.get(b"key-0000").unwrap(), None);
        assert_eq!(dev.delete(b"key-0000").unwrap_err(), KvError::KeyNotFound);
    }

    #[test]
    fn keys_actually_spread_over_shards() {
        let dev = sharded(4);
        for i in 0..400u64 {
            dev.put(format!("spread-{i}").as_bytes(), b"v").unwrap();
        }
        let mut busy = 0;
        for s in 0..dev.shard_count() {
            if dev.shard_stats(s).puts > 0 {
                busy += 1;
            }
        }
        // 400 murmur-hashed keys over 4 shards: every shard sees traffic.
        assert_eq!(
            busy,
            4,
            "per-shard puts: {:?}",
            (0..4).map(|s| dev.shard_stats(s).puts).collect::<Vec<_>>()
        );
    }

    #[test]
    fn aggregate_stats_are_shard_sums() {
        let dev = sharded(2);
        for i in 0..100u64 {
            dev.put(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        for i in 0..100u64 {
            dev.get(format!("k{i}").as_bytes()).unwrap();
        }
        dev.get(b"missing").unwrap();
        let total = dev.stats();
        assert_eq!(total.puts, 100);
        assert_eq!(total.gets, 101);
        assert_eq!(total.not_found, 1);
        let mut summed = DeviceStats::default();
        for s in 0..dev.shard_count() {
            summed.merge(&dev.shard_stats(s));
        }
        assert_eq!(total, summed);
        assert_eq!(dev.put_latencies().count(), 100);
        assert_eq!(dev.get_latencies().count(), 101);
    }

    #[test]
    fn single_shard_matches_unsharded_results() {
        let dev = sharded(1);
        assert_eq!(dev.shard_bits(), 0);
        dev.put(b"k", b"v").unwrap();
        assert_eq!(&dev.get(b"k").unwrap().unwrap()[..], b"v");
        assert_eq!(dev.shard_of(KeySignature(u64::MAX)), 0);
    }

    #[test]
    fn routing_uses_high_bits() {
        let dev = sharded(4);
        assert_eq!(dev.shard_of(KeySignature(0)), 0);
        assert_eq!(dev.shard_of(KeySignature(1 << 62)), 1);
        assert_eq!(dev.shard_of(KeySignature(u64::MAX)), 3);
        // Low bits (directory selection) never influence the shard.
        assert_eq!(dev.shard_of(KeySignature(0xFFFF)), 0);
    }

    #[test]
    fn batch_apis_preserve_input_order() {
        let dev = sharded(4);
        let keys: Vec<String> = (0..50).map(|i| format!("batch-{i:03}")).collect();
        let values: Vec<String> = (0..50).map(|i| format!("value-{i:03}")).collect();
        let items: Vec<(&[u8], &[u8])> =
            keys.iter().zip(values.iter()).map(|(k, v)| (k.as_bytes(), v.as_bytes())).collect();
        for r in dev.put_batch(&items) {
            r.unwrap();
        }
        let key_refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
        let got = dev.get_batch(&key_refs);
        for (i, r) in got.iter().enumerate() {
            assert_eq!(&r.as_ref().unwrap().as_ref().unwrap()[..], values[i].as_bytes());
        }
        // Batch with an invalid key: the error lands at the right index.
        let mixed: Vec<(&[u8], &[u8])> = vec![(b"ok-1", b"v"), (b"", b"v"), (b"ok-2", b"v")];
        let results = dev.put_batch(&mixed);
        assert!(results[0].is_ok());
        assert_eq!(results[1].as_ref().unwrap_err(), &KvError::EmptyKey);
        assert!(results[2].is_ok());
    }

    #[test]
    fn shards_share_one_flash_pool() {
        let dev = sharded(4);
        let before = dev.pool().free_blocks_raw();
        for i in 0..300u64 {
            dev.put(format!("fill-{i}").as_bytes(), &[0u8; 512]).unwrap();
        }
        dev.flush().unwrap();
        // Writing through any shard consumes device-wide capacity.
        assert!(dev.pool().free_blocks_raw() < before);
        assert_eq!(dev.pool().total_blocks(), DeviceConfig::small().geometry.blocks);
    }

    #[test]
    fn sharded_telemetry_tags_spans_per_shard() {
        let dev = sharded(4);
        let sink = rhik_telemetry::TelemetrySink::enabled();
        dev.set_telemetry(sink.clone());
        for i in 0..400u64 {
            dev.put(format!("obs-{i}").as_bytes(), b"v").unwrap();
            dev.get(format!("obs-{i}").as_bytes()).unwrap();
        }
        let spans = sink.spans();
        let shards_seen: std::collections::BTreeSet<u32> = spans.iter().map(|s| s.shard).collect();
        assert!(shards_seen.len() > 1, "spans from one shard only: {shards_seen:?}");
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.counter("kvssd_puts"), 400);
        assert_eq!(snap.counter("kvssd_gets"), 400);
        // Per-shard gauges exist for every shard that saw traffic.
        for s in &shards_seen {
            assert!(snap.gauge(&format!("shard{s}_index_occupancy")).is_some());
        }
    }

    #[test]
    fn lockfree_gets_bypass_the_shard_locks() {
        let dev = sharded(4);
        for i in 0..300u64 {
            dev.put(format!("lf-{i:04}").as_bytes(), format!("value-{i}").as_bytes()).unwrap();
        }
        // Seal the write buffers so every head page is on flash: from
        // here on a quiet get must complete on the lock-free path.
        dev.flush().unwrap();
        let before = dev.lockfree_read_stats();
        for i in 0..300u64 {
            let got = dev.get(format!("lf-{i:04}").as_bytes()).unwrap().unwrap();
            assert_eq!(&got[..], format!("value-{i}").as_bytes());
        }
        assert_eq!(dev.get(b"lf-absent").unwrap(), None);
        let after = dev.lockfree_read_stats();
        assert_eq!(after.gets - before.gets, 301, "quiet gets must not fall back");
        assert_eq!(after.hits - before.hits, 300);
        assert_eq!(after.not_found - before.not_found, 1);
        assert_eq!(after.fallbacks, before.fallbacks);
        // The miss cost zero flash reads; the ≤1-read lookup bound means
        // page reads are bounded by hits (single-page values here).
        assert_eq!(after.pages_read - before.pages_read, 300);
        // Lock-free gets still land in the merged stats and histograms.
        let total = dev.stats();
        assert_eq!(total.gets, 301);
        assert_eq!(dev.get_latencies().count(), 301);
    }

    #[test]
    fn group_commit_carries_every_put() {
        let dev = sharded(2);
        for i in 0..80u64 {
            dev.put(format!("gc-{i}").as_bytes(), b"v").unwrap();
        }
        let gc = dev.group_commit_stats();
        // Single-threaded: every put leads its own batch of one.
        assert_eq!(gc.batched_puts, 80);
        assert_eq!(gc.batches, 80);
        assert_eq!(gc.max_batch, 1);
        assert_eq!(dev.stats().puts, 80);
    }

    #[test]
    fn concurrent_puts_and_gets_stay_coherent() {
        let dev = sharded(4);
        for i in 0..64u64 {
            dev.put(format!("mix-{i:02}").as_bytes(), format!("seed-{i}").as_bytes()).unwrap();
        }
        std::thread::scope(|scope| {
            for t in 0..2 {
                let dev = dev.clone();
                scope.spawn(move || {
                    for i in 0..64u64 {
                        let key = format!("mix-{i:02}");
                        dev.put(key.as_bytes(), format!("w{t}-{i}").as_bytes()).unwrap();
                    }
                });
            }
            for _ in 0..2 {
                let dev = dev.clone();
                scope.spawn(move || {
                    for round in 0..128u64 {
                        let i = (round * 7) % 64;
                        let got = dev.get(format!("mix-{i:02}").as_bytes()).unwrap();
                        let got = got.expect("seeded key never deleted");
                        // Any of the three writers' values is coherent;
                        // a torn or stale-beyond-linearizable read is not.
                        let s = std::str::from_utf8(&got).unwrap();
                        assert!(
                            s == format!("seed-{i}") || s.ends_with(&format!("-{i}")),
                            "incoherent value for key {i}: {s:?}"
                        );
                    }
                });
            }
        });
        assert_eq!(dev.key_count(), 64);
        let mut auditor = rhik_audit::DeviceAuditor::new();
        let report = dev.audit(&mut auditor);
        assert!(report.is_ok(), "audit after concurrent load:\n{report}");
    }

    #[test]
    fn submit_batch_matches_single_op_semantics() {
        let dev =
            ShardedKvssd::rhik(DeviceConfig::small().with_shards(4).with_hot_cache(64 * 1024));
        for i in 0..120u64 {
            dev.put(format!("sb-{i:03}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        dev.flush().unwrap();
        // Assemble one mixed batch per shard, exactly as a front end would.
        let mut per_shard: Vec<Vec<BatchOp>> = vec![Vec::new(); dev.shard_count()];
        for i in 0..120u64 {
            let key = format!("sb-{i:03}").into_bytes();
            let shard = dev.shard_for_key(&key);
            let op = match i % 4 {
                0 => BatchOp::Get { key },
                1 => BatchOp::Put { key, value: format!("w{i}").into_bytes() },
                2 => BatchOp::Exists { key },
                _ => BatchOp::Delete { key },
            };
            per_shard[shard].push(op);
        }
        for (shard, ops) in per_shard.iter().enumerate() {
            let replies = dev.submit_batch(shard, ops);
            assert_eq!(replies.len(), ops.len());
            for (op, reply) in ops.iter().zip(&replies) {
                match (op, reply) {
                    (BatchOp::Get { key }, BatchReply::Get(Ok(Some(v)))) => {
                        let i: u64 = std::str::from_utf8(&key[3..6]).unwrap().parse().unwrap();
                        assert_eq!(&v[..], format!("v{i}").as_bytes());
                    }
                    (BatchOp::Put { .. }, BatchReply::Put(Ok(()))) => {}
                    (BatchOp::Exists { .. }, BatchReply::Exists(Ok(true))) => {}
                    (BatchOp::Delete { .. }, BatchReply::Delete(Ok(()))) => {}
                    other => panic!("unexpected batch outcome: {other:?}"),
                }
            }
        }
        // Post-batch reads see the batch's writes and deletes.
        for i in 0..120u64 {
            let got = dev.get(format!("sb-{i:03}").as_bytes()).unwrap();
            match i % 4 {
                1 => assert_eq!(&got.unwrap()[..], format!("w{i}").as_bytes()),
                3 => assert!(got.is_none(), "deleted key sb-{i:03} still present"),
                _ => assert_eq!(&got.unwrap()[..], format!("v{i}").as_bytes()),
            }
        }
        // Batched gets ride the lock-free read path, not the shard locks.
        assert!(dev.lockfree_read_stats().gets > 0);
        let mut auditor = rhik_audit::DeviceAuditor::new();
        let report = dev.audit(&mut auditor);
        assert!(report.is_ok(), "audit after batches:\n{report}");
    }

    #[test]
    fn submit_batch_get_observes_earlier_writes_in_same_batch() {
        // Read-your-writes inside one batch: a pipelined client that
        // sends SET then GET of the same key may land both in a single
        // submit_batch call. The GET must not ride the lock-free fast
        // path (or a stale cache entry) past the not-yet-executed PUT.
        let dev =
            ShardedKvssd::rhik(DeviceConfig::small().with_shards(2).with_hot_cache(64 * 1024));
        dev.put(b"ryw-warm", b"old").unwrap();
        // Admit the warm key into the hot cache so a stale hit is possible.
        assert_eq!(dev.get(b"ryw-warm").unwrap().as_deref(), Some(&b"old"[..]));
        assert_eq!(dev.get(b"ryw-warm").unwrap().as_deref(), Some(&b"old"[..]));

        let shard = dev.shard_for_key(b"ryw-warm");
        let mut fresh = b"ryw-fresh".to_vec();
        while dev.shard_for_key(&fresh) != shard {
            fresh.push(b'x');
        }
        let ops = [
            // Pre-mutation get: still eligible for the fast path.
            BatchOp::Get { key: b"ryw-warm".to_vec() },
            BatchOp::Put { key: b"ryw-warm".to_vec(), value: b"new".to_vec() },
            BatchOp::Get { key: b"ryw-warm".to_vec() },
            BatchOp::Put { key: fresh.clone(), value: b"first".to_vec() },
            BatchOp::Get { key: fresh.clone() },
            BatchOp::Exists { key: fresh.clone() },
            BatchOp::Delete { key: fresh.clone() },
            BatchOp::Get { key: fresh.clone() },
        ];
        let replies = dev.submit_batch(shard, &ops);
        match &replies[0] {
            BatchReply::Get(Ok(Some(v))) => assert_eq!(&v[..], b"old"),
            other => panic!("pre-mutation get: {other:?}"),
        }
        match &replies[2] {
            BatchReply::Get(Ok(Some(v))) => assert_eq!(&v[..], b"new", "get missed same-batch put"),
            other => panic!("get after put: {other:?}"),
        }
        match &replies[4] {
            BatchReply::Get(Ok(Some(v))) => assert_eq!(&v[..], b"first"),
            other => panic!("get after first-ever put: {other:?}"),
        }
        match &replies[5] {
            BatchReply::Exists(Ok(true)) => {}
            other => panic!("exists after put: {other:?}"),
        }
        match &replies[7] {
            BatchReply::Get(Ok(None)) => {}
            other => panic!("get after same-batch delete: {other:?}"),
        }
    }

    #[test]
    fn submit_batch_reports_per_op_errors_in_place() {
        let dev = sharded(2);
        dev.put(b"present", b"v").unwrap();
        let ops = [
            BatchOp::Get { key: b"present".to_vec() },
            BatchOp::Delete { key: b"absent".to_vec() },
            BatchOp::Get { key: b"missing".to_vec() },
        ];
        // Route each op through its own shard's queue like a server would;
        // single-op batches take the uncompounded path.
        for (i, op) in ops.iter().enumerate() {
            let shard = dev.shard_for_key(op.key());
            let replies = dev.submit_batch(shard, std::slice::from_ref(op));
            match (i, &replies[0]) {
                (0, BatchReply::Get(Ok(Some(v)))) => assert_eq!(&v[..], b"v"),
                (1, BatchReply::Delete(Err(KvError::KeyNotFound))) => {}
                (2, BatchReply::Get(Ok(None))) => {}
                other => panic!("unexpected reply: {other:?}"),
            }
        }
    }

    #[test]
    fn exist_routes_like_get() {
        let dev = sharded(4);
        dev.put(b"present", b"v").unwrap();
        assert!(dev.exist(b"present").unwrap().probably_exists);
        assert!(!dev.exist(b"absent-key").unwrap().probably_exists);
    }

    #[test]
    fn sharded_audit_stays_clean_under_load() {
        let dev = sharded(4);
        let sink = rhik_telemetry::TelemetrySink::enabled();
        dev.set_telemetry(sink);
        let mut auditor = rhik_audit::DeviceAuditor::new();
        for i in 0..600u64 {
            dev.put(format!("audit-{i:04}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
            if i % 3 == 0 {
                dev.get(format!("audit-{i:04}").as_bytes()).unwrap();
            }
            if i % 7 == 0 && i > 0 {
                let _ = dev.delete(format!("audit-{:04}", i - 7).as_bytes());
            }
            if i % 50 == 0 {
                let report = dev.audit(&mut auditor);
                assert!(report.is_ok(), "audit after op {i}:\n{report}");
            }
        }
        dev.flush().unwrap();
        let report = dev.audit(&mut auditor);
        assert!(report.is_ok(), "final audit:\n{report}");
    }

    #[test]
    fn hot_cache_hits_skip_flash_and_stay_coherent() {
        let dev =
            ShardedKvssd::rhik(DeviceConfig::small().with_shards(4).with_hot_cache(128 * 1024));
        let sink = rhik_telemetry::TelemetrySink::enabled();
        dev.set_telemetry(sink.clone());
        for i in 0..100u64 {
            dev.put(format!("hc-{i:03}").as_bytes(), format!("v0-{i}").as_bytes()).unwrap();
        }
        dev.flush().unwrap();
        // Pass 1 fills, pass 2 hits DRAM.
        for _ in 0..2 {
            for i in 0..100u64 {
                let got = dev.get(format!("hc-{i:03}").as_bytes()).unwrap().unwrap();
                assert_eq!(&got[..], format!("v0-{i}").as_bytes());
            }
        }
        let stats = dev.hot_cache_stats().expect("cache enabled");
        assert!(stats.admits > 0, "pass 1 should admit: {stats:?}");
        assert_eq!(stats.hits, 100, "pass 2 should be all hits: {stats:?}");
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.counter("hot_cache_hits"), 100);
        assert_eq!(snap.counter("kvssd_gets"), 200, "hits still count as gets");
        assert!(snap.gauge("hot_cache_bytes").unwrap() > 0.0);

        // Every mutation invalidates its cached entry.
        for i in 0..100u64 {
            let key = format!("hc-{i:03}");
            if i % 2 == 0 {
                dev.put(key.as_bytes(), format!("v1-{i}").as_bytes()).unwrap();
            } else {
                dev.delete(key.as_bytes()).unwrap();
            }
        }
        for i in 0..100u64 {
            let got = dev.get(format!("hc-{i:03}").as_bytes()).unwrap();
            if i % 2 == 0 {
                assert_eq!(&got.unwrap()[..], format!("v1-{i}").as_bytes());
            } else {
                assert!(got.is_none(), "deleted key hc-{i:03} resurrected from cache");
            }
        }
        // Cache hits fold into aggregate and per-shard stats identically.
        let total = dev.stats();
        let summed: u64 = (0..dev.shard_count()).map(|s| dev.shard_stats(s).gets).sum();
        assert_eq!(total.gets, summed);
        // The audit's cache↔index coherence pass sees only clean entries.
        let mut auditor = rhik_audit::DeviceAuditor::new();
        let report = dev.audit(&mut auditor);
        assert!(report.is_ok(), "coherence audit:\n{report}");
    }
}
