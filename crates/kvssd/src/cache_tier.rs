//! The device side of the DRAM hot-object cache tier: one
//! [`CacheTier`] per device, shared by [`crate::ShardedKvssd`] and
//! [`crate::SharedKvssd`], pairing the [`HotCache`] with the
//! [`VersionTable`] the index bumps.
//!
//! The fill protocol (the whole correctness story, pinned down by the
//! loom model in `rhik-hotcache`):
//!
//! 1. [`CacheTier::probe`] loads the signature's stripe version `v1`
//!    *before* any index work. A hit validated at `v1` serves from DRAM;
//!    a stale or absent entry falls through carrying `v1`.
//! 2. The caller reads the value through the index — either under the
//!    shard lock or via the validated lock-free path, both of which
//!    synchronize with every index mutation.
//! 3. [`CacheTier::try_admit`] re-loads the version and admits only if
//!    it still equals `v1`. The index bumps *after* mutating, so "bump
//!    visible at step 1, mutation invisible at step 2" cannot happen —
//!    any interleaved writer either fails the step-3 re-check (no
//!    admission, a spurious refill later) or its value was already what
//!    step 2 read.
//!
//! Every failure mode — version raced, budget full, TinyLFU rejection —
//! degrades to a plain index read. The cache never answers for the
//! index; it only short-circuits reads it can prove current.

use std::sync::Arc;

use bytes::Bytes;
use rhik_ftl::sync::{Counter, Mutex, VersionTable};
use rhik_hotcache::{AdmitReport, CacheConfig, CacheLookup, CacheStats, HotCache};
use rhik_sigs::KeySignature;
use rhik_telemetry::{OpKind, OpSpan, Stage, StageEvent, TelemetrySink};

use crate::histogram::LatencyHistogram;

/// Version-table stripes: `1 << 14` per-bucket versions (128 KiB of
/// DRAM). Stripe collisions only cause spurious invalidation, so the
/// table can be much smaller than the keyspace.
const VERSION_BITS: u32 = 14;

/// Per-shard cache-hit counters, folded into [`crate::DeviceStats`] so
/// `stats()` still equals the sum of `shard_stats()` with the cache on.
struct ShardHits {
    gets: Counter,
    bytes: Counter,
}

/// Outcome of a cache probe, from the device's point of view.
pub(crate) enum Probe {
    /// Served from DRAM; the command is complete.
    Hit(Bytes),
    /// Fall through to the index; on a successful read, offer the value
    /// back via [`CacheTier::try_admit`] with this fill version.
    Fill(u64),
}

pub(crate) struct CacheTier {
    cache: HotCache,
    pub(crate) versions: Arc<VersionTable>,
    per_shard: Box<[ShardHits]>,
    /// Cache hits recorded at zero simulated latency (no directory walk,
    /// no flash read) — merged into the device's get histogram.
    latencies: Mutex<LatencyHistogram>,
    telemetry_on: Counter,
    telemetry: Mutex<TelemetrySink>,
}

impl CacheTier {
    pub(crate) fn new(cfg: CacheConfig, shards: usize) -> Self {
        CacheTier {
            cache: HotCache::new(cfg),
            versions: Arc::new(VersionTable::new(VERSION_BITS)),
            per_shard: (0..shards.max(1))
                .map(|_| ShardHits { gets: Counter::new(), bytes: Counter::new() })
                .collect::<Vec<_>>()
                .into(),
            latencies: Mutex::new(LatencyHistogram::new()),
            telemetry_on: Counter::new(),
            telemetry: Mutex::new(TelemetrySink::disabled()),
        }
    }

    fn sink(&self) -> Option<TelemetrySink> {
        if self.telemetry_on.get() == 0 {
            return None;
        }
        Some(self.telemetry.lock().unwrap_or_else(|p| p.into_inner()).clone())
    }

    /// Step 1 of the fill protocol (see module docs).
    pub(crate) fn probe(&self, shard: u32, sig: KeySignature, key: &[u8]) -> Probe {
        let v1 = self.versions.load(sig.0);
        match self.cache.get(sig.0, key, v1) {
            CacheLookup::Hit(value) => {
                self.record_hit(shard, value.len() as u64);
                Probe::Hit(value)
            }
            CacheLookup::Stale => {
                if let Some(sink) = self.sink() {
                    sink.counter_add("hot_cache_stale", 1);
                    sink.record_span(self.stage_span(shard, Stage::CacheStale, 1));
                }
                Probe::Fill(v1)
            }
            CacheLookup::Miss => Probe::Fill(v1),
        }
    }

    /// Step 3 of the fill protocol: re-check the version, then admit.
    pub(crate) fn try_admit(
        &self,
        shard: u32,
        sig: KeySignature,
        key: &[u8],
        value: &Bytes,
        fill_version: u64,
    ) {
        if self.versions.load(sig.0) != fill_version {
            // A writer landed between the version read and the value
            // read — the value may predate it. Skip; the next get
            // re-fills at the new version.
            return;
        }
        let report = self.cache.admit(sig.0, key, value.clone(), fill_version);
        self.record_admit(shard, report);
    }

    fn stage_span(&self, shard: u32, stage: Stage, count: u64) -> OpSpan {
        // Cache-tier work costs zero simulated device time; the span
        // exists to attribute stage *frequency*, not duration.
        OpSpan {
            kind: OpKind::Get,
            shard,
            submitted_ns: 0,
            completed_ns: 0,
            lookup_flash_reads: 0,
            stages: vec![StageEvent { stage, count: count as u32, dur_ns: 0 }],
        }
    }

    fn record_hit(&self, shard: u32, bytes: u64) {
        let counters = &self.per_shard[shard as usize % self.per_shard.len()];
        counters.gets.incr();
        counters.bytes.add(bytes);
        self.latencies.lock().unwrap_or_else(|p| p.into_inner()).record(0);
        if let Some(sink) = self.sink() {
            sink.counter_add("hot_cache_hits", 1);
            // A hot hit is a completed get with zero flash reads — it
            // counts toward the op counter, the latency histogram, and
            // the ≤1-read distribution like any other get.
            sink.record_op(
                self.stage_span(shard, Stage::CacheHotHit, 1),
                "kvssd_gets",
                Some(("get_latency_ns", 0)),
                Some(0),
                &[],
            );
        }
    }

    fn record_admit(&self, shard: u32, report: AdmitReport) {
        let Some(sink) = self.sink() else { return };
        sink.counter_add(if report.admitted { "hot_cache_admits" } else { "hot_cache_rejects" }, 1);
        if report.evicted > 0 {
            sink.counter_add("hot_cache_evictions", report.evicted);
            sink.record_span(self.stage_span(shard, Stage::CacheEvict, report.evicted));
        }
        if report.admitted {
            sink.record_span(self.stage_span(shard, Stage::CacheAdmit, 1));
            sink.gauge_set("hot_cache_bytes", self.cache.bytes() as f64);
            sink.gauge_set("hot_cache_entries", self.cache.entries() as f64);
        }
    }

    pub(crate) fn set_telemetry(&self, sink: TelemetrySink) {
        self.telemetry_on.set(u64::from(sink.is_enabled()));
        *self.telemetry.lock().unwrap_or_else(|p| p.into_inner()) = sink;
    }

    /// Fold this shard's cache hits into its device stats.
    pub(crate) fn fold_shard_stats(&self, shard: usize, stats: &mut crate::device::DeviceStats) {
        let counters = &self.per_shard[shard % self.per_shard.len()];
        stats.gets += counters.gets.get();
        stats.bytes_read += counters.bytes.get();
    }

    /// Merge the zero-latency hit samples into a get histogram.
    pub(crate) fn merge_latencies(&self, h: &mut LatencyHistogram) {
        h.merge(&self.latencies.lock().unwrap_or_else(|p| p.into_inner()));
    }

    pub(crate) fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Snapshot resident entries for the coherence audit.
    pub(crate) fn snapshot(&self) -> Vec<rhik_hotcache::CacheEntrySnapshot> {
        self.cache.snapshot()
    }
}
