//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `bytes` API it actually uses: an
//! immutable, cheaply-cloneable byte buffer backed by `Arc<[u8]>`.
//! Clones share the allocation, exactly like upstream `Bytes` — the
//! property the NAND model relies on ("reading hands back cheap clones").

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Reference-counted immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer (no allocation shared with anything else).
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Wrap a static slice (copies; the zero-copy trick is irrelevant here).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copy an arbitrary slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self[..] == *other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self[..] == *other.as_bytes()
    }
}

impl PartialEq<String> for Bytes {
    fn eq(&self, other: &String) -> bool {
        self[..] == *other.as_bytes()
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a.data, &b.data));
    }

    #[test]
    fn slice_semantics() {
        let a = Bytes::copy_from_slice(b"hello");
        assert_eq!(&a[..], b"hello");
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(a.to_vec(), b"hello".to_vec());
    }

    #[test]
    fn equality_against_plain_buffers() {
        let a = Bytes::from_static(b"xy");
        assert_eq!(a, *b"xy".as_slice());
        assert_eq!(a, vec![b'x', b'y']);
    }
}
