//! Offline stand-in for the `loom` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the loom API subset its concurrency models use: [`model`],
//! [`thread::spawn`]/[`thread::yield_now`], [`sync::Arc`], [`sync::Mutex`]
//! and the atomics behind the FlashPool free count. Instead of loom's
//! exhaustive DPOR state-space enumeration, [`model`] runs the closure
//! under many deterministic pseudo-random schedules: each iteration
//! reseeds a shared generator, and every mutex acquisition consults it to
//! maybe spin through `yield_now`, shifting thread interleavings between
//! iterations. That is strictly weaker than real loom — it samples
//! schedules rather than enumerating them — but keeps `cfg(loom)` models
//! compiling and meaningfully stressed until the real crate can be
//! vendored. Models written against this shim use only the portable API,
//! so they upgrade to exhaustive checking by swapping the dependency.

mod sched {
    use std::sync::atomic::{AtomicU64, Ordering};

    static SEED: AtomicU64 = AtomicU64::new(0x9e37_79b9_7f4a_7c15);

    pub(crate) fn reseed(iteration: u64) {
        let mixed = 0x9e37_79b9_7f4a_7c15u64 ^ iteration.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        SEED.store(mixed, Ordering::Relaxed);
    }

    /// One splitmix64 step off a seed shared by all model threads; the
    /// contention on the atomic is itself a source of schedule variation.
    pub(crate) fn perturb() {
        let x = SEED.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        for _ in 0..(z % 4) {
            std::thread::yield_now();
        }
    }
}

/// Run `f` under many perturbed schedules (loom runs it under every
/// schedule). Assertions inside `f` fire on the iteration that found the
/// bad interleaving, same as with the real crate.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    const ITERATIONS: u64 = 64;
    for iteration in 0..ITERATIONS {
        sched::reseed(iteration);
        f();
    }
}

pub mod thread {
    pub use std::thread::{yield_now, JoinHandle};

    /// Spawn a model thread. The schedule perturbation lives in the sync
    /// primitives, so plain `std::thread::spawn` is enough here.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(f)
    }
}

pub mod sync {
    use std::time::Duration;

    pub use std::sync::{
        Arc, LockResult, MutexGuard, TryLockError, TryLockResult, WaitTimeoutResult,
    };

    /// Condition variable with the std API whose wakeups vary the thread
    /// schedule between model iterations. It composes with the shim
    /// [`Mutex`] because that mutex hands out plain std `MutexGuard`s.
    #[derive(Debug, Default)]
    pub struct Condvar {
        inner: std::sync::Condvar,
    }

    impl Condvar {
        pub fn new() -> Self {
            Condvar { inner: std::sync::Condvar::new() }
        }

        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            crate::sched::perturb();
            self.inner.wait(guard)
        }

        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            crate::sched::perturb();
            self.inner.wait_timeout(guard, dur)
        }

        pub fn notify_one(&self) {
            crate::sched::perturb();
            self.inner.notify_one();
        }

        pub fn notify_all(&self) {
            crate::sched::perturb();
            self.inner.notify_all();
        }
    }

    /// Mutex with the std API whose acquisitions vary the thread schedule
    /// between model iterations.
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex { inner: std::sync::Mutex::new(value) }
        }

        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            crate::sched::perturb();
            self.inner.lock()
        }

        pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
            crate::sched::perturb();
            self.inner.try_lock()
        }

        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }

    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}
