//! Offline stand-in for the `serde_json` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the serde_json API its bench harness uses:
//! [`Value`], the [`json!`] macro, and [`to_string_pretty`]. Object keys
//! keep insertion order (upstream's `preserve_order` feature) so emitted
//! experiment JSON diffs cleanly.

use std::fmt;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

/// Serialization error (the shim's serializer cannot actually fail, but
/// the upstream signature returns `Result`).
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::UInt(v as u64)
            }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value {
                Value::UInt(*v as u64)
            }
        }
    )*};
}

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Int(v as i64)
            }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value {
                Value::Int(*v as i64)
            }
        }
    )*};
}

macro_rules! impl_from_float {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Float(v as f64)
            }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value {
                Value::Float(*v as f64)
            }
        }
    )*};
}

impl_from_unsigned!(u8, u16, u32, u64, usize);
impl_from_signed!(i8, i16, i32, i64, isize);
impl_from_float!(f32, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&bool> for Value {
    fn from(v: &bool) -> Value {
        Value::Bool(*v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<&&str> for Value {
    fn from(v: &&str) -> Value {
        Value::String((*v).to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        if f == f.trunc() && f.abs() < 1e15 {
            // Keep whole floats recognizable as floats, like serde_json.
            out.push_str(&format!("{f:.1}"));
        } else {
            out.push_str(&format!("{f}"));
        }
    } else {
        // JSON has no inf/nan; upstream errors, the bench shim degrades.
        out.push_str("null");
    }
}

impl Value {
    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        let pad = |out: &mut String, level: usize| {
            if pretty {
                out.push('\n');
                out.extend(std::iter::repeat_n(' ', level * 2));
            }
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(f) => write_float(out, *f),
            Value::String(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    item.write(out, indent + 1, pretty);
                }
                pad(out, indent);
                out.push(']');
            }
            Value::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    out.push('"');
                    escape_into(out, k);
                    out.push_str("\": ");
                    v.write(out, indent + 1, pretty);
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        f.write_str(&out)
    }
}

/// Compact serialization.
pub fn to_string(value: &Value) -> Result<String, Error> {
    Ok(value.to_string())
}

/// Two-space-indented serialization (upstream-compatible shape).
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    value.write(&mut out, 0, true);
    Ok(out)
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_obj {
    ($pairs:ident) => {};
    ($pairs:ident $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $pairs.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $($crate::__json_obj!($pairs $($rest)*);)?
    };
    ($pairs:ident $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $pairs.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $($crate::__json_obj!($pairs $($rest)*);)?
    };
    ($pairs:ident $key:literal : $($rest:tt)+) => {
        $crate::__json_val!($pairs $key [] $($rest)+);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_val {
    ($pairs:ident $key:literal [$($val:tt)+] , $($rest:tt)*) => {
        $pairs.push(($key.to_string(), $crate::Value::from($($val)+)));
        $crate::__json_obj!($pairs $($rest)*);
    };
    ($pairs:ident $key:literal [$($val:tt)+]) => {
        $pairs.push(($key.to_string(), $crate::Value::from($($val)+)));
    };
    ($pairs:ident $key:literal [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::__json_val!($pairs $key [$($val)* $next] $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_arr {
    ($items:ident) => {};
    ($items:ident { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $items.push($crate::json!({ $($inner)* }));
        $($crate::__json_arr!($items $($rest)*);)?
    };
    ($items:ident [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $items.push($crate::json!([ $($inner)* ]));
        $($crate::__json_arr!($items $($rest)*);)?
    };
    ($items:ident $($rest:tt)+) => {
        $crate::__json_arr_val!($items [] $($rest)+);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_arr_val {
    ($items:ident [$($val:tt)+] , $($rest:tt)*) => {
        $items.push($crate::Value::from($($val)+));
        $crate::__json_arr!($items $($rest)*);
    };
    ($items:ident [$($val:tt)+]) => {
        $items.push($crate::Value::from($($val)+));
    };
    ($items:ident [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::__json_arr_val!($items [$($val)* $next] $($rest)*);
    };
}

/// Build a [`Value`] from JSON-shaped syntax with expression interpolation.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object(Vec::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut pairs: Vec<(String, $crate::Value)> = Vec::new();
        $crate::__json_obj!(pairs $($tt)+);
        $crate::Value::Object(pairs)
    }};
    ([]) => { $crate::Value::Array(Vec::new()) };
    ([ $($tt:tt)+ ]) => {{
        let mut items: Vec<$crate::Value> = Vec::new();
        $crate::__json_arr!(items $($tt)+);
        $crate::Value::Array(items)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_and_nesting() {
        let keys = 42u64;
        let ratio = 0.5f64;
        let label = "hash";
        let series: Vec<Value> =
            (0..2).map(|i| json!({"util": i, "mbps": (i as f64) * 2.0})).collect();
        let v = json!({
            "label": label,
            "keys": keys,
            "ratio": ratio,
            "nested": { "lo": 1, "hi": 2 },
            "series": series,
            "flag": true,
            "none": null,
        });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"label\": \"hash\""));
        assert!(s.contains("\"keys\": 42"));
        assert!(s.contains("\"ratio\": 0.5"));
        assert!(s.contains("\"lo\": 1"));
        assert!(s.contains("\"mbps\": 2.0"));
        assert!(s.contains("\"none\": null"));
    }

    #[test]
    fn exprs_with_method_calls_and_commas() {
        fn pair(a: u32, b: u32) -> u32 {
            a + b
        }
        let xs = [1u32, 2, 3];
        let v = json!({
            "sum": pair(1, 2),
            "collected": xs.iter().map(|x| x * 2).collect::<Vec<_>>(),
        });
        assert_eq!(
            v,
            Value::Object(vec![
                ("sum".into(), Value::UInt(3)),
                (
                    "collected".into(),
                    Value::Array(vec![Value::UInt(2), Value::UInt(4), Value::UInt(6)])
                ),
            ])
        );
    }

    #[test]
    fn arrays_and_refs() {
        let u = &1.25f64;
        let v = json!([1, 2.0, "three", {"four": 4}, [5]]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2.0,\"three\",{\"four\": 4},[5]]");
        assert_eq!(json!(u), Value::Float(1.25));
    }

    #[test]
    fn string_escaping() {
        let v = json!({"msg": "line\n\"quoted\""});
        let s = to_string(&v).unwrap();
        assert_eq!(s, "{\"msg\": \"line\\n\\\"quoted\\\"\"}");
    }

    #[test]
    fn pretty_shape() {
        let v = json!({"a": [1, 2]});
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }
}
