//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the `rand` 0.8 API its workloads and benches
//! use: `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range` over
//! integer ranges, and `Rng::gen_bool`. The generator is deterministic
//! (splitmix64-seeded xoshiro256**), which is all the experiment harness
//! requires — reproducible streams, not cryptographic quality.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construct a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain (`Rng::gen`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u128) - (start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..=5);
            assert!(y <= 5);
            let z: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn unit_floats() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut acc = 0.0;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            acc += f;
        }
        // Mean of 1000 uniform draws should be near 0.5.
        assert!((acc / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
