//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the proptest API its property suites use:
//! `proptest!`, `prop_oneof!`, `prop_assert*!`, `any`, `Just`, ranges and
//! tuples as strategies, `collection::{vec, hash_set}`, and
//! `array::uniform4`. Cases are generated from a deterministic RNG seeded
//! by the test's module path and name, so failures reproduce exactly.
//! There is no shrinking: a failing case reports its seed and values
//! instead of a minimized counterexample.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Why a single generated case failed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// Assertion failure (`prop_assert*` or an explicit `fail`).
        Fail(String),
        /// The case asked to be discarded (`prop_assume`).
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic splitmix64 stream for case generation.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng(seed)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; modulo bias is irrelevant at test
        /// scale.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// Stable per-test seed: FNV-1a over the test's full path, mixed with
    /// the case number.
    pub fn seed_for(module: &str, name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in module.bytes().chain(b"::".iter().copied()).chain(name.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ ((case as u64) << 32 | case as u64)
    }
}

pub use test_runner::{TestCaseError, TestCaseResult, TestRng};

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values (`.prop_map(...)`).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produce a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Whole-domain strategy for `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: uniform over its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128 - start as u128 + 1) as u64;
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_strategy_for_ranges!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident $idx:tt),+);)+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_strategy_for_tuples! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Weighted choice between boxed alternatives (`prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(arms.iter().any(|(w, _)| *w > 0), "prop_oneof! weights sum to zero");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

impl<T> fmt::Debug for OneOf<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OneOf({} arms)", self.arms.len())
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// `Vec` of `len` elements drawn from `elem`, length uniform in `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `HashSet` built like [`vec`]; duplicates shrink the set naturally.
    pub struct HashSetStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    pub fn hash_set<S: Strategy>(elem: S, len: Range<usize>) -> HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        HashSetStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod array {
    use super::{Strategy, TestRng};

    /// Fixed `[T; 4]` of independent draws.
    pub struct Uniform4<S>(S);

    pub fn uniform4<S: Strategy>(elem: S) -> Uniform4<S> {
        Uniform4(elem)
    }

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; 4] {
            [self.0.generate(rng), self.0.generate(rng), self.0.generate(rng), self.0.generate(rng)]
        }
    }
}

/// Everything a property-test file normally imports.
pub mod prelude {
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                format_args!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assert_eq failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assert_eq failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format_args!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assert_ne failed: both `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assert_ne failed: both `{:?}`: {}",
            left,
            format_args!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $({
                let boxed: ::std::boxed::Box<dyn $crate::Strategy<Value = _>> =
                    ::std::boxed::Box::new($strat);
                (($weight) as u32, boxed)
            }),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rejected: u32 = 0;
            for __case in 0..__config.cases {
                let __seed = $crate::test_runner::seed_for(
                    module_path!(),
                    stringify!($name),
                    __case,
                );
                let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                match __result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        __rejected += 1;
                        assert!(
                            __rejected < __config.cases.saturating_mul(4).max(64),
                            "proptest: too many rejected cases in {}",
                            stringify!($name),
                        );
                    }
                    ::std::result::Result::Err(e) => {
                        panic!(
                            "proptest case {} of {} failed (seed {:#x}): {}",
                            __case, stringify!($name), __seed, e
                        );
                    }
                }
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_stable() {
        let a = crate::test_runner::seed_for("m", "t", 0);
        let b = crate::test_runner::seed_for("m", "t", 0);
        assert_eq!(a, b);
        assert_ne!(a, crate::test_runner::seed_for("m", "t", 1));
        assert_ne!(a, crate::test_runner::seed_for("m", "u", 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 5u8..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((5..=9).contains(&y));
        }

        /// Doc comments on proptest cases must parse.
        #[test]
        fn maps_and_tuples(pair in (any::<u16>(), 0usize..4).prop_map(|(a, b)| (a as usize, b))) {
            prop_assert!(pair.1 < 4, "b was {}", pair.1);
        }

        #[test]
        fn collections_sized(v in crate::collection::vec(any::<u8>(), 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
        }

        #[test]
        fn oneof_picks_every_weighted_arm(
            picks in crate::collection::vec(
                prop_oneof![
                    2 => Just(0u8),
                    1 => Just(1u8),
                    1 => (2u8..=3u8),
                ],
                64..65,
            )
        ) {
            prop_assert!(picks.iter().all(|&p| p <= 3));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_seed() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(x in 0u32..1) {
                prop_assert!(x == 99);
            }
        }
        always_fails();
    }
}
