//! Property tests: RHIK behaves exactly like a `HashMap<sig, ppa>` under
//! arbitrary insert/update/remove/lookup interleavings — across resizes,
//! cache evictions, and write-backs — and never needs more than one flash
//! read per lookup. `resize_migration_batch: 1` stretches every doubling
//! across as many operations as possible, so the interleavings routinely
//! land mid-migration (keys split between the frozen old directory and
//! the half-populated new one).

use proptest::prelude::*;
use rhik_core::{RecordTable, RhikConfig, RhikIndex, TableInsert};
use rhik_ftl::{Ftl, FtlConfig, IndexBackend};
use rhik_nand::{NandGeometry, Ppa};
use rhik_sigs::KeySignature;
use std::collections::HashMap;

fn mix(n: u64) -> u64 {
    let mut z = n.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn big_ftl() -> Ftl {
    Ftl::new(FtlConfig {
        geometry: NandGeometry {
            blocks: 512,
            pages_per_block: 8,
            page_size: 512,
            spare_size: 16,
            channels: 2,
        },
        ..FtlConfig::tiny()
    })
}

fn index() -> RhikIndex {
    RhikIndex::new(
        RhikConfig {
            initial_dir_bits: 0,
            hop_width: 16,
            occupancy_threshold: 0.6,
            dir_flush_interval: 64,
            resize_migration_batch: 1,
            ..Default::default()
        },
        512,
    )
}

#[derive(Clone, Debug)]
enum Op {
    Insert(u16, u8),
    Remove(u16),
    Lookup(u16),
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u16>(), any::<u8>()).prop_map(|(k, p)| Op::Insert(k, p)),
        2 => any::<u16>().prop_map(Op::Remove),
        3 => any::<u16>().prop_map(Op::Lookup),
        1 => Just(Op::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn rhik_matches_hashmap(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut ftl = big_ftl();
        let mut idx = index();
        let mut model: HashMap<u64, Ppa> = HashMap::new();

        for op in ops {
            match op {
                Op::Insert(k, p) => {
                    let sig = KeySignature(mix(k as u64));
                    let ppa = Ppa::new(p as u32 % 512, p as u32 % 8);
                    match idx.insert(&mut ftl, sig, ppa) {
                        Ok(_) => {
                            model.insert(sig.0, ppa);
                        }
                        // The paper's legitimate abort: hop-range full. The
                        // index must stay consistent, the key is just not
                        // stored.
                        Err(rhik_ftl::IndexError::TableFull { .. }) => {}
                        Err(e) => prop_assert!(false, "insert failed: {e}"),
                    }
                }
                Op::Remove(k) => {
                    let sig = KeySignature(mix(k as u64));
                    let got = idx.remove(&mut ftl, sig).unwrap();
                    prop_assert_eq!(got, model.remove(&sig.0));
                }
                Op::Lookup(k) => {
                    let sig = KeySignature(mix(k as u64));
                    let got = idx.lookup(&mut ftl, sig).unwrap();
                    prop_assert_eq!(got, model.get(&sig.0).copied());
                }
                Op::Flush => {
                    idx.flush(&mut ftl).unwrap();
                }
            }
            prop_assert_eq!(idx.len(), model.len() as u64);
        }

        // Final sweep: every model key is present with the right value, and
        // no lookup ever needed more than one flash read.
        for (&raw, &ppa) in &model {
            prop_assert_eq!(idx.lookup(&mut ftl, KeySignature(raw)).unwrap(), Some(ppa));
        }
        prop_assert!(idx.stats().pct_lookups_within(1) > 100.0 - 1e-9);
    }

    /// The record table in isolation matches a HashMap for any op sequence.
    #[test]
    fn table_matches_hashmap(ops in proptest::collection::vec((any::<u8>(), any::<bool>()), 1..200)) {
        let mut t = RecordTable::new(60, 16);
        let mut model: HashMap<u64, Ppa> = HashMap::new();
        for (k, is_insert) in ops {
            let sig = KeySignature(mix(k as u64));
            let ppa = Ppa::new(k as u32, 0);
            if is_insert {
                match t.insert(sig, ppa) {
                    TableInsert::Inserted => {
                        prop_assert!(!model.contains_key(&sig.0));
                        model.insert(sig.0, ppa);
                    }
                    TableInsert::Updated { old } => {
                        prop_assert_eq!(Some(old), model.insert(sig.0, ppa));
                    }
                    TableInsert::Full => {
                        prop_assert!(!model.contains_key(&sig.0));
                    }
                }
            } else {
                prop_assert_eq!(t.remove(sig), model.remove(&sig.0));
            }
            t.check_invariants().map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(t.len() as usize, model.len());
        }
        for (&raw, &ppa) in &model {
            prop_assert_eq!(t.lookup(KeySignature(raw)), Some(ppa));
        }
    }

    /// Page serialization round-trips arbitrary table states.
    #[test]
    fn table_page_roundtrip(keys in proptest::collection::hash_set(any::<u32>(), 0..40)) {
        let mut t = RecordTable::new(60, 16);
        for &k in &keys {
            let _ = t.insert(KeySignature(mix(k as u64)), Ppa::new(k % 100, k % 8));
        }
        let page = t.to_page(60 * 17 + 7);
        let back = RecordTable::from_page(&page, 60, 16);
        prop_assert_eq!(back.len(), t.len());
        for (sig, ppa) in t.iter() {
            prop_assert_eq!(back.lookup(sig), Some(ppa));
        }
        back.check_invariants().map_err(|e| TestCaseError::fail(e.to_string()))?;
    }
}

/// Grow an index through many resizes with a tiny cache, then verify the
/// ≤1-read bound holds on a cold cache (the hard case for the guarantee).
#[test]
fn one_read_bound_cold_cache() {
    let mut ftl = big_ftl();
    let mut idx = index();
    const N: u64 = 2_000;
    for i in 0..N {
        idx.insert(&mut ftl, KeySignature(mix(i)), Ppa::new((i % 500) as u32, (i % 8) as u32))
            .unwrap();
    }
    idx.flush(&mut ftl).unwrap();
    assert!(idx.stats().resizes.len() >= 5, "resizes: {}", idx.stats().resizes.len());

    // Evict everything: walk keys until the cache only holds recent tables.
    let before = idx.stats().clone();
    for i in 0..N {
        assert!(
            idx.lookup(&mut ftl, KeySignature(mix(i))).unwrap().is_some(),
            "key {i} lost across {} resizes",
            idx.stats().resizes.len()
        );
    }
    let after = idx.stats();
    let lookups = after.lookups - before.lookups;
    let reads = after.metadata_flash_reads - before.metadata_flash_reads;
    assert!(reads <= lookups, "more than one read per lookup: {reads}/{lookups}");
    assert!(after.pct_lookups_within(1) > 100.0 - 1e-9);
}
