//! The directory layer (§IV-A): `D = 2^bits` DRAM-resident entries, each
//! pointing at the flash page holding one record-layer table, selected by
//! the low bits of the key signature. A persistent snapshot is periodically
//! written to flash.

use bytes::Bytes;
use rhik_nand::Ppa;
use rhik_sigs::KeySignature;

/// One directory entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirEntry {
    /// Flash location of this slot's record-layer table (`I_PPA`), or
    /// `None` while the table has never been persisted (still empty or
    /// dirty-only in cache).
    pub table_ppa: Option<Ppa>,
    /// Records currently stored in this slot's table (kept in DRAM so the
    /// global occupancy check needs no flash access).
    pub records: u32,
    /// §VI hyper-local scaling: a per-bucket overflow table absorbing
    /// records the primary table's hop range rejected. `None` unless the
    /// feature is enabled and the bucket overflowed.
    pub overflow_ppa: Option<Ppa>,
    /// Records in the overflow table.
    pub overflow_records: u32,
    /// Whether an overflow table exists (it may be cache-only, like the
    /// primary).
    pub has_overflow: bool,
}

impl DirEntry {
    pub const fn empty() -> Self {
        DirEntry {
            table_ppa: None,
            records: 0,
            overflow_ppa: None,
            overflow_records: 0,
            has_overflow: false,
        }
    }

    /// Total records this bucket holds (primary + overflow).
    pub fn total_records(&self) -> u32 {
        self.records + self.overflow_records
    }
}

/// The DRAM-resident directory.
#[derive(Clone, Debug)]
pub struct Directory {
    bits: u32,
    entries: Vec<DirEntry>,
    /// Generation counter, bumped by every resize; cache keys embed it so
    /// stale cached tables of a previous configuration can never alias the
    /// current ones.
    generation: u32,
}

const SNAPSHOT_ENTRY_LEN: usize = 12; // [tag, ppa×5] for primary and overflow
const SNAPSHOT_HEADER_LEN: usize = 24; // bits (4) + generation (4) + seq (8) + fragment (4) + count (4)

impl Directory {
    /// Fresh directory with `2^bits` empty entries.
    pub fn new(bits: u32) -> Self {
        assert!(bits <= 32, "directory bits capped at 32");
        Directory { bits, entries: vec![DirEntry::empty(); 1usize << bits], generation: 0 }
    }

    /// Number of entries `D`.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        false // a directory always has at least one entry (bits = 0 → 1)
    }

    /// Directory size in bits.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    #[inline]
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// The "variable hash function": slot for `sig` = low `bits` bits.
    #[inline]
    pub fn slot_of(&self, sig: KeySignature) -> u32 {
        sig.low_bits(self.bits) as u32
    }

    #[inline]
    pub fn entry(&self, slot: u32) -> &DirEntry {
        &self.entries[slot as usize]
    }

    #[inline]
    pub fn entry_mut(&mut self, slot: u32) -> &mut DirEntry {
        &mut self.entries[slot as usize]
    }

    /// Total records across all tables (the numerator of the global
    /// occupancy check that triggers resizing).
    pub fn total_records(&self) -> u64 {
        self.entries.iter().map(|e| e.total_records() as u64).sum()
    }

    /// Cache key of `slot`'s table under the current generation.
    #[inline]
    pub fn cache_key(&self, slot: u32) -> u64 {
        ((self.generation as u64) << 32) | slot as u64
    }

    /// Whether `key` belongs to the current generation.
    #[inline]
    pub fn is_current_key(&self, key: u64) -> bool {
        (key >> 32) as u32 == self.generation && ((key & 0xffff_ffff) as usize) < self.entries.len()
    }

    /// Slot encoded in a cache key (caller must have checked the
    /// generation).
    #[inline]
    pub fn slot_of_key(key: u64) -> u32 {
        (key & 0xffff_ffff) as u32
    }

    /// Replace this directory by a doubled, empty successor and return the
    /// old one (resize step 1). Generation advances.
    pub fn begin_doubling(&mut self) -> Directory {
        let next = Directory {
            bits: self.bits + 1,
            entries: vec![DirEntry::empty(); 1usize << (self.bits + 1)],
            generation: self.generation + 1,
        };
        std::mem::replace(self, next)
    }

    /// The two successor slots an old slot's records split into when the
    /// directory doubles: low-bit-extension means old slot `s` maps to `s`
    /// and `s + D_old`.
    pub fn split_targets(old_slot: u32, old_bits: u32) -> (u32, u32) {
        (old_slot, old_slot + (1 << old_bits))
    }

    /// DRAM footprint of the directory layer in bytes. The paper quotes
    /// ~0.005 bytes/key for 32 KiB pages: 10 bytes/entry ÷ 1927 keys/table.
    pub fn dram_bytes(&self) -> u64 {
        (self.entries.len() * std::mem::size_of::<DirEntry>()) as u64
    }

    /// Serialize the directory into page-sized snapshot fragments for the
    /// periodic persistent copy. Each fragment carries the header so any
    /// fragment identifies the configuration.
    /// `seq` is a monotonically increasing snapshot sequence number (the
    /// index bumps it every flush) so a mount-time scan can tell flushes of
    /// the same configuration apart.
    pub fn snapshot_pages(&self, page_size: usize, seq: u64) -> Vec<Bytes> {
        assert!(page_size > SNAPSHOT_HEADER_LEN + SNAPSHOT_ENTRY_LEN, "page too small");
        let per_page = (page_size - SNAPSHOT_HEADER_LEN) / SNAPSHOT_ENTRY_LEN;
        let mut pages = Vec::new();
        for (frag_idx, chunk) in self.entries.chunks(per_page).enumerate() {
            let mut buf = Vec::with_capacity(page_size);
            buf.extend_from_slice(&self.bits.to_le_bytes());
            buf.extend_from_slice(&self.generation.to_le_bytes());
            buf.extend_from_slice(&seq.to_le_bytes());
            buf.extend_from_slice(&(frag_idx as u32).to_le_bytes());
            buf.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
            for e in chunk {
                for (present_tag, ppa) in
                    [(1u8, e.table_ppa), (if e.has_overflow { 3 } else { 2 }, e.overflow_ppa)]
                {
                    match ppa {
                        Some(ppa) => {
                            buf.push(present_tag);
                            buf.extend_from_slice(&ppa.to_bytes());
                        }
                        None => {
                            buf.push(0);
                            buf.extend_from_slice(&[0u8; 5]);
                        }
                    }
                }
            }
            buf.resize(page_size, 0);
            pages.push(Bytes::from(buf));
        }
        pages
    }

    /// Parse a snapshot fragment's header: `(bits, generation, fragment
    /// index)`. Recovery uses this to group and order fragments found by a
    /// raw flash scan.
    pub fn fragment_meta(page: &[u8]) -> Option<(u32, u32, u64, u32)> {
        if page.len() < SNAPSHOT_HEADER_LEN {
            return None;
        }
        let bits = u32::from_le_bytes(page[0..4].try_into().ok()?);
        if bits > 32 {
            return None;
        }
        let generation = u32::from_le_bytes(page[4..8].try_into().ok()?);
        let seq = u64::from_le_bytes(page[8..16].try_into().ok()?);
        let frag = u32::from_le_bytes(page[16..20].try_into().ok()?);
        Some((bits, generation, seq, frag))
    }

    /// Rebuild a directory from snapshot fragments in fragment order
    /// (recovery path; record counts are re-learned by loading tables).
    pub fn from_snapshot_pages(pages: &[Bytes]) -> Option<Directory> {
        let first = pages.first()?;
        if first.len() < SNAPSHOT_HEADER_LEN {
            return None;
        }
        let bits = u32::from_le_bytes(first[0..4].try_into().ok()?);
        let generation = u32::from_le_bytes(first[4..8].try_into().ok()?);
        if bits > 32 {
            return None;
        }
        let mut entries = Vec::with_capacity(1usize << bits);
        for page in pages {
            if page.len() < SNAPSHOT_HEADER_LEN {
                return None;
            }
            let count = u32::from_le_bytes(page[20..24].try_into().ok()?) as usize;
            for i in 0..count {
                let off = SNAPSHOT_HEADER_LEN + i * SNAPSHOT_ENTRY_LEN;
                if off + SNAPSHOT_ENTRY_LEN > page.len() {
                    return None;
                }
                let read_slot = |at: usize| -> Option<(u8, Option<Ppa>)> {
                    let tag = page[at];
                    let ppa = if tag == 0 {
                        None
                    } else {
                        let raw: [u8; 5] = page[at + 1..at + 6].try_into().ok()?;
                        Some(Ppa::from_bytes(raw))
                    };
                    Some((tag, ppa))
                };
                let (_, table_ppa) = read_slot(off)?;
                let (otag, overflow_ppa) = read_slot(off + 6)?;
                entries.push(DirEntry {
                    table_ppa,
                    records: 0,
                    overflow_ppa,
                    overflow_records: 0,
                    has_overflow: otag == 3 || overflow_ppa.is_some(),
                });
            }
        }
        if entries.len() != 1usize << bits {
            return None;
        }
        Some(Directory { bits, entries, generation })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_selection_uses_low_bits() {
        let d = Directory::new(3);
        assert_eq!(d.len(), 8);
        assert_eq!(d.slot_of(KeySignature(0b10110)), 0b110);
        assert_eq!(d.slot_of(KeySignature(0)), 0);
        let d0 = Directory::new(0);
        assert_eq!(d0.len(), 1);
        assert_eq!(d0.slot_of(KeySignature(u64::MAX)), 0);
    }

    #[test]
    fn cache_keys_embed_generation() {
        let mut d = Directory::new(2);
        let k0 = d.cache_key(3);
        assert!(d.is_current_key(k0));
        let _old = d.begin_doubling();
        assert!(!d.is_current_key(k0), "old-generation key rejected");
        let k1 = d.cache_key(3);
        assert_ne!(k0, k1);
        assert_eq!(Directory::slot_of_key(k1), 3);
    }

    #[test]
    fn doubling_replaces_and_returns_old() {
        let mut d = Directory::new(2);
        d.entry_mut(1).records = 7;
        let old = d.begin_doubling();
        assert_eq!(old.bits(), 2);
        assert_eq!(old.entry(1).records, 7);
        assert_eq!(d.bits(), 3);
        assert_eq!(d.len(), 8);
        assert_eq!(d.total_records(), 0);
        assert_eq!(d.generation(), old.generation() + 1);
    }

    #[test]
    fn split_targets_low_bit_extension() {
        assert_eq!(Directory::split_targets(0, 2), (0, 4));
        assert_eq!(Directory::split_targets(3, 2), (3, 7));
        // A signature in old slot s lands in one of the two targets.
        let old = Directory::new(2);
        let new = Directory::new(3);
        for raw in [0u64, 5, 1023, 0xdeadbeef] {
            let sig = KeySignature(raw);
            let (a, b) = Directory::split_targets(old.slot_of(sig), 2);
            let target = new.slot_of(sig);
            assert!(target == a || target == b, "sig {raw:#x} → {target}, expected {a} or {b}");
        }
    }

    #[test]
    fn total_records_sums_including_overflow() {
        let mut d = Directory::new(2);
        d.entry_mut(0).records = 3;
        d.entry_mut(3).records = 5;
        d.entry_mut(3).overflow_records = 2;
        assert_eq!(d.entry(3).total_records(), 7);
        assert_eq!(d.total_records(), 10);
    }

    #[test]
    fn snapshot_preserves_overflow_pointers() {
        let mut d = Directory::new(2);
        d.entry_mut(1).table_ppa = Some(Ppa::new(5, 5));
        d.entry_mut(1).overflow_ppa = Some(Ppa::new(6, 6));
        d.entry_mut(1).has_overflow = true;
        let pages = d.snapshot_pages(256, 9);
        let back = Directory::from_snapshot_pages(&pages).unwrap();
        assert_eq!(back.entry(1).table_ppa, Some(Ppa::new(5, 5)));
        assert_eq!(back.entry(1).overflow_ppa, Some(Ppa::new(6, 6)));
        assert!(back.entry(1).has_overflow);
        assert!(!back.entry(0).has_overflow);
    }

    #[test]
    fn snapshot_roundtrip_small_page() {
        let mut d = Directory::new(6); // 64 entries → several 128-byte pages
        d.entry_mut(5).table_ppa = Some(Ppa::new(9, 3));
        d.entry_mut(63).table_ppa = Some(Ppa::new(1, 1));
        let pages = d.snapshot_pages(128, 1);
        assert!(pages.len() > 1);
        assert!(pages.iter().all(|p| p.len() == 128));
        let back = Directory::from_snapshot_pages(&pages).unwrap();
        assert_eq!(back.bits(), 6);
        assert_eq!(back.generation(), d.generation());
        assert_eq!(back.entry(5).table_ppa, Some(Ppa::new(9, 3)));
        assert_eq!(back.entry(63).table_ppa, Some(Ppa::new(1, 1)));
        assert_eq!(back.entry(0).table_ppa, None);
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let d = Directory::new(3);
        let pages = d.snapshot_pages(256, 1);
        assert!(Directory::from_snapshot_pages(&pages[..0]).is_none());
        let mut corrupt = pages[0].to_vec();
        corrupt[0] = 0xff; // bits = huge
        assert!(Directory::from_snapshot_pages(&[Bytes::from(corrupt)]).is_none());
    }

    #[test]
    fn dram_footprint_is_small() {
        // Paper: 0.005 bytes/key at 32 KiB pages. Our DirEntry is larger
        // in DRAM (record counters + the hyper-local overflow pointer) but
        // the same order: ~32 / 1927 ≈ 0.017 bytes per key.
        let d = Directory::new(10);
        let per_entry = d.dram_bytes() as f64 / d.len() as f64;
        assert!(per_entry <= 40.0, "entry size {per_entry}");
    }
}
