//! The packed 17-byte index record (§IV-A: "each record in the hash table
//! stores the 64-bit key signature, the physical address of the KV pair on
//! flash, and information related to index occupancy for each bucket (also
//! known as hopinfo)").

use rhik_nand::Ppa;
use rhik_sigs::KeySignature;

/// One record-layer slot: signature (8 B) + PPA (5 B) + hopinfo (4 B).
///
/// The hopinfo bitmap belongs to the slot in its role as a *home bucket*:
/// bit `d` set means the slot `d` positions ahead (mod R) holds a record
/// whose home is this slot. An empty slot keeps [`IndexRecord::EMPTY_PPA`]
/// in its address field; its hopinfo can still be non-zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexRecord {
    pub sig: KeySignature,
    /// Packed 40-bit PPA, or [`IndexRecord::EMPTY_PPA`].
    pub ppa_raw: u64,
    pub hopinfo: u32,
}

impl IndexRecord {
    /// On-flash footprint: `kh + ppa + hi` of Eq. 1.
    pub const PACKED_LEN: usize = 8 + 5 + 4;

    /// Sentinel marking an unoccupied slot (a real 40-bit PPA never has all
    /// bits set: the geometry validator caps blocks below 2^24 - 1).
    pub const EMPTY_PPA: u64 = (1 << 40) - 1;

    /// An empty slot.
    pub const fn empty() -> Self {
        IndexRecord { sig: KeySignature(0), ppa_raw: Self::EMPTY_PPA, hopinfo: 0 }
    }

    /// Whether this slot currently stores a record.
    #[inline]
    pub fn is_occupied(&self) -> bool {
        self.ppa_raw != Self::EMPTY_PPA
    }

    /// The stored physical address (must be occupied).
    #[inline]
    pub fn ppa(&self) -> Ppa {
        debug_assert!(self.is_occupied(), "ppa() on an empty record slot");
        Ppa::unpack(self.ppa_raw)
    }

    /// Occupy the slot.
    #[inline]
    pub fn set(&mut self, sig: KeySignature, ppa: Ppa) {
        self.sig = sig;
        self.ppa_raw = ppa.pack();
    }

    /// Vacate the slot (hopinfo is preserved — it describes the bucket,
    /// not the stored record).
    #[inline]
    pub fn clear(&mut self) {
        self.sig = KeySignature(0);
        self.ppa_raw = Self::EMPTY_PPA;
    }

    /// Serialize into `out` (exactly [`IndexRecord::PACKED_LEN`] bytes).
    pub fn encode_into(&self, out: &mut [u8]) {
        debug_assert_eq!(out.len(), Self::PACKED_LEN, "encode buffer must be exactly one record");
        out[..8].copy_from_slice(&self.sig.0.to_le_bytes());
        let ppa = self.ppa_raw.to_le_bytes();
        out[8..13].copy_from_slice(&ppa[..5]);
        out[13..17].copy_from_slice(&self.hopinfo.to_le_bytes());
    }

    /// Deserialize from exactly [`IndexRecord::PACKED_LEN`] bytes.
    pub fn decode(raw: &[u8]) -> Self {
        debug_assert_eq!(raw.len(), Self::PACKED_LEN, "decode input must be exactly one record");
        let sig = KeySignature(u64::from_le_bytes(raw[..8].try_into().expect("8 bytes")));
        let mut ppa = [0u8; 8];
        ppa[..5].copy_from_slice(&raw[8..13]);
        let hopinfo = u32::from_le_bytes(raw[13..17].try_into().expect("4 bytes"));
        IndexRecord { sig, ppa_raw: u64::from_le_bytes(ppa), hopinfo }
    }
}

impl Default for IndexRecord {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_len_matches_eq1_terms() {
        assert_eq!(IndexRecord::PACKED_LEN, 17);
    }

    #[test]
    fn empty_is_unoccupied() {
        let r = IndexRecord::empty();
        assert!(!r.is_occupied());
        assert_eq!(r.hopinfo, 0);
    }

    #[test]
    fn set_clear_roundtrip() {
        let mut r = IndexRecord::empty();
        r.set(KeySignature(0xdead_beef), Ppa::new(10, 20));
        r.hopinfo = 0b1010;
        assert!(r.is_occupied());
        assert_eq!(r.ppa(), Ppa::new(10, 20));
        r.clear();
        assert!(!r.is_occupied());
        assert_eq!(r.hopinfo, 0b1010, "hopinfo survives clear");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut r = IndexRecord::empty();
        r.set(KeySignature(u64::MAX - 3), Ppa::new((1 << 24) - 2, 65_535));
        r.hopinfo = 0xdead_cafe;
        let mut buf = [0u8; IndexRecord::PACKED_LEN];
        r.encode_into(&mut buf);
        assert_eq!(IndexRecord::decode(&buf), r);

        let e = IndexRecord::empty();
        e.encode_into(&mut buf);
        let back = IndexRecord::decode(&buf);
        assert!(!back.is_occupied());
    }

    #[test]
    fn sentinel_outside_valid_ppa_space() {
        // The sentinel equals the pack of (block 2^24-1, page 2^16-1). The
        // geometry validator caps block *counts* below 2^24, so the highest
        // real block id is 2^24 - 2 and the sentinel can never collide with
        // a stored address.
        assert_eq!(Ppa::new((1 << 24) - 1, (1 << 16) - 1).pack(), IndexRecord::EMPTY_PPA);
        let g = rhik_nand::NandGeometry::paper_default(1 << 30);
        assert!(g.blocks < (1 << 24));
    }
}
