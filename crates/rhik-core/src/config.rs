//! RHIK configuration and the paper's sizing equations.

use rhik_sigs::SigHasher;

use crate::record::IndexRecord;

/// Tunables of the RHIK index (§IV-A: "can be configured at
/// initialization").
#[derive(Clone, Copy, Debug)]
pub struct RhikConfig {
    /// Signature hash function (paper default: MurmurHash2).
    pub hasher: SigHasher,
    /// Hopscotch neighborhood width H, 1..=32 (paper default: 32).
    pub hop_width: u32,
    /// Resize trigger: fraction of total record capacity occupied
    /// (paper default: 0.80; §V-C shows collision handling degrades
    /// heavily above 80 %).
    pub occupancy_threshold: f64,
    /// Initial directory size in bits (`2^dir_bits` entries). Conservative
    /// initialization keeps space waste low (§IV-A2).
    pub initial_dir_bits: u32,
    /// Flush the directory snapshot to flash every this many mutations
    /// ("a periodically updated persistent copy of these D entries resides
    /// on flash", §IV-A).
    pub dir_flush_interval: u64,
    /// §VI "hyper-local scaling": when a record-layer table rejects an
    /// insert within its hop range, attach a per-bucket overflow table
    /// instead of aborting. Lookups into overflowed buckets may need a
    /// second flash read, so this trades the strict ≤ 1-read bound for
    /// zero key rejections. Off by default (the paper's design aborts).
    pub hyper_local: bool,
    /// Incremental resize: old slots migrated per index operation while a
    /// doubling is in flight. Small values spread the migration thin
    /// (lowest per-op stall); large values finish sooner. Ignored when
    /// `stop_the_world` is set.
    pub resize_migration_batch: u32,
    /// Paper-fidelity fallback (§IV-A2): migrate the whole directory in
    /// one pass, stalling the submission queue — the behavior Fig. 7
    /// measures. Off by default in favor of incremental migration.
    pub stop_the_world: bool,
}

impl Default for RhikConfig {
    fn default() -> Self {
        RhikConfig {
            hasher: SigHasher::default(),
            hop_width: 32,
            occupancy_threshold: 0.80,
            initial_dir_bits: 2,
            dir_flush_interval: 4096,
            hyper_local: false,
            resize_migration_batch: 4,
            stop_the_world: false,
        }
    }
}

impl RhikConfig {
    /// Validate invariants; panics with a clear message on misuse (configs
    /// are built once at device bring-up).
    pub fn validated(self) -> Self {
        assert!((1..=32).contains(&self.hop_width), "hop_width must be 1..=32");
        assert!(
            self.occupancy_threshold > 0.0 && self.occupancy_threshold <= 1.0,
            "occupancy_threshold must be in (0, 1]"
        );
        assert!(self.initial_dir_bits <= 32, "initial_dir_bits must be <= 32");
        assert!(self.dir_flush_interval > 0, "dir_flush_interval must be positive");
        assert!(self.resize_migration_batch >= 1, "resize_migration_batch must be >= 1");
        self
    }

    /// Eq. 1: `R = ⌊p / (kh + ppa + hi)⌋` — records per record-layer table,
    /// chosen so one table exactly fills one flash page.
    ///
    /// `kh` = 8 (64-bit signature), `ppa` = 5, `hi` = 4 (32-bit hopinfo).
    pub fn records_per_table(page_size: u32) -> u32 {
        page_size / IndexRecord::PACKED_LEN as u32
    }

    /// Eq. 2: `D = anticipated_keys / R`, rounded up to the next power of
    /// two (the directory is selected by low signature bits). Returns the
    /// directory size in bits.
    pub fn directory_bits_for(anticipated_keys: u64, page_size: u32) -> u32 {
        let r = Self::records_per_table(page_size) as u64;
        let d = anticipated_keys.div_ceil(r).max(1);
        if d <= 1 {
            0
        } else {
            64 - (d - 1).leading_zeros()
        }
    }

    /// Start the index sized for an anticipated workload (Eq. 2).
    pub fn with_anticipated_keys(mut self, keys: u64, page_size: u32) -> Self {
        self.initial_dir_bits = Self::directory_bits_for(keys, page_size);
        self
    }

    /// Size one shard's index of a sharded device. Each of `2^shard_bits`
    /// shards serves `1/2^shard_bits` of the signature space, so its
    /// directory starts `shard_bits` smaller than the whole-device sizing
    /// (floor 0: one table). Aggregate initial capacity across shards is
    /// then unchanged, and each shard resizes independently as its slice
    /// of the keyspace fills.
    pub fn for_shard(mut self, shard_bits: u32) -> Self {
        self.initial_dir_bits = self.initial_dir_bits.saturating_sub(shard_bits);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_paper_numbers() {
        // 32 KiB page, 17-byte records → 1927 records per table.
        assert_eq!(RhikConfig::records_per_table(32 * 1024), 1927);
        assert_eq!(RhikConfig::records_per_table(512), 30);
    }

    #[test]
    fn eq2_directory_sizing() {
        // 1927 records/table at 32 KiB pages.
        assert_eq!(RhikConfig::directory_bits_for(1, 32 * 1024), 0); // 1 table
        assert_eq!(RhikConfig::directory_bits_for(1927, 32 * 1024), 0);
        assert_eq!(RhikConfig::directory_bits_for(1928, 32 * 1024), 1); // 2 tables
                                                                        // 11 M keys → ceil(11e6 / 1927) = 5709 tables → 13 bits (8192).
        assert_eq!(RhikConfig::directory_bits_for(11_000_000, 32 * 1024), 13);
    }

    #[test]
    fn with_anticipated_keys_sets_bits() {
        let c = RhikConfig::default().with_anticipated_keys(1_000_000, 32 * 1024);
        // ceil(1e6/1927) = 519 → 10 bits (1024 tables).
        assert_eq!(c.initial_dir_bits, 10);
    }

    #[test]
    fn default_matches_paper() {
        let c = RhikConfig::default();
        assert_eq!(c.hop_width, 32);
        assert!((c.occupancy_threshold - 0.80).abs() < 1e-12);
        c.validated();
    }

    #[test]
    #[should_panic(expected = "hop_width")]
    fn validation_rejects_wide_hop() {
        RhikConfig { hop_width: 33, ..Default::default() }.validated();
    }

    #[test]
    #[should_panic(expected = "occupancy_threshold")]
    fn validation_rejects_zero_threshold() {
        RhikConfig { occupancy_threshold: 0.0, ..Default::default() }.validated();
    }

    #[test]
    #[should_panic(expected = "resize_migration_batch")]
    fn validation_rejects_zero_migration_batch() {
        RhikConfig { resize_migration_batch: 0, ..Default::default() }.validated();
    }

    #[test]
    fn for_shard_splits_directory_capacity() {
        let base = RhikConfig::default().with_anticipated_keys(1_000_000, 32 * 1024);
        assert_eq!(base.initial_dir_bits, 10);
        // 4 shards (2 bits): each starts with 2^8 tables — 4 × 256 = 1024,
        // the same aggregate capacity as the unsharded 2^10.
        assert_eq!(base.for_shard(2).initial_dir_bits, 8);
        // Floor at a single table, never underflow.
        assert_eq!(base.for_shard(12).initial_dir_bits, 0);
    }

    #[test]
    fn directory_bits_monotone() {
        let mut prev = 0;
        for keys in [1u64, 1_000, 100_000, 10_000_000, 1_000_000_000] {
            let bits = RhikConfig::directory_bits_for(keys, 32 * 1024);
            assert!(bits >= prev);
            prev = bits;
        }
    }
}
