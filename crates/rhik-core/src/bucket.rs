//! One record-layer hash table — page-sized, hopscotch-hashed (§IV-A1).
//!
//! "To handle index-local collisions and achieve high index occupancy in
//! the record layer hash tables, by default RHIK employs Hopscotch hashing
//! with hopinfo size 32. [...] Suppose an empty record slot can not be
//! found within these confines. In that case, an uncorrectable error is
//! returned, and the operation is aborted."
//!
//! Every table holds exactly `R` slots (Eq. 1) so its serialized form fills
//! one flash page. All tables share one *fixed* hash function mapping a
//! signature to its home slot; the directory layer has already consumed the
//! low signature bits, so the home hash mixes the full signature.

use bytes::Bytes;
use rhik_audit::InvariantViolation;
use rhik_nand::Ppa;
use rhik_sigs::KeySignature;

use crate::record::IndexRecord;

/// Result of a table-local insert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TableInsert {
    Inserted,
    Updated {
        old: Ppa,
    },
    /// No slot reachable within the hop width — the paper's uncorrectable
    /// abort. The table is left unchanged.
    Full,
}

/// A fixed-size hopscotch hash table sized to one flash page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordTable {
    slots: Vec<IndexRecord>,
    hop_width: u32,
    len: u32,
    /// Hopscotch displacements performed by inserts on this in-DRAM copy
    /// (not serialized; telemetry drains it per operation).
    displacements: u64,
}

impl RecordTable {
    /// Fresh empty table with `records` slots (Eq. 1) and hop width `h`.
    pub fn new(records: u32, hop_width: u32) -> Self {
        assert!(records > 0, "table needs at least one slot");
        assert!((1..=32).contains(&hop_width), "hop width must be 1..=32");
        assert!(hop_width <= records, "hop width cannot exceed table size");
        RecordTable {
            slots: vec![IndexRecord::empty(); records as usize],
            hop_width,
            len: 0,
            displacements: 0,
        }
    }

    /// Hopscotch displacements inserts have performed on this copy.
    #[inline]
    pub fn displacements(&self) -> u64 {
        self.displacements
    }

    /// Records currently stored.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots `R`.
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Occupancy fraction in [0, 1].
    #[inline]
    pub fn occupancy(&self) -> f64 {
        self.len as f64 / self.slots.len() as f64
    }

    /// The record layer's fixed hash: home slot for `sig`.
    ///
    /// Fibonacci multiplicative mix over the full signature — independent
    /// of the directory's low-bit selection, identical across all tables
    /// ("a fixed hash function for all hash tables in the record layer").
    #[inline]
    pub fn home_slot(&self, sig: KeySignature) -> u32 {
        let mixed = sig.0.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        ((mixed >> 24) % self.slots.len() as u64) as u32
    }

    #[inline]
    fn at(&self, base: u32, dist: u32) -> usize {
        ((base + dist) % self.slots.len() as u32) as usize
    }

    /// Look up `sig`; probes only the home bucket's hop neighborhood, so
    /// cost is bounded by the hop width.
    pub fn lookup(&self, sig: KeySignature) -> Option<Ppa> {
        let home = self.home_slot(sig);
        let mut hops = self.slots[home as usize].hopinfo;
        while hops != 0 {
            let d = hops.trailing_zeros();
            let slot = &self.slots[self.at(home, d)];
            if slot.is_occupied() && slot.sig == sig {
                return Some(slot.ppa());
            }
            hops &= hops - 1;
        }
        None
    }

    /// Insert or update `sig → ppa`.
    pub fn insert(&mut self, sig: KeySignature, ppa: Ppa) -> TableInsert {
        let home = self.home_slot(sig);

        // Update in place if the signature is already present.
        let mut hops = self.slots[home as usize].hopinfo;
        while hops != 0 {
            let d = hops.trailing_zeros();
            let idx = self.at(home, d);
            if self.slots[idx].is_occupied() && self.slots[idx].sig == sig {
                let old = self.slots[idx].ppa();
                self.slots[idx].set(sig, ppa);
                return TableInsert::Updated { old };
            }
            hops &= hops - 1;
        }

        if self.len == self.capacity() {
            return TableInsert::Full;
        }

        // Linear-probe for an empty slot starting at home.
        let cap = self.slots.len() as u32;
        let mut free_dist = None;
        for d in 0..cap {
            if !self.slots[self.at(home, d)].is_occupied() {
                free_dist = Some(d);
                break;
            }
        }
        let Some(mut free_dist) = free_dist else {
            return TableInsert::Full;
        };

        // Hopscotch displacement: while the free slot is out of hop range,
        // move an earlier-homed record into it to pull the hole closer.
        while free_dist >= self.hop_width {
            match self.pull_hole_closer(home, free_dist) {
                Some(new_dist) => {
                    free_dist = new_dist;
                    self.displacements += 1;
                }
                None => return TableInsert::Full,
            }
        }

        let idx = self.at(home, free_dist);
        self.slots[idx].set(sig, ppa);
        self.slots[home as usize].hopinfo |= 1 << free_dist;
        self.len += 1;
        TableInsert::Inserted
    }

    /// Classic hopscotch displacement step: the hole sits `free_dist` slots
    /// after `home`. Find a record in the window of `hop_width - 1` slots
    /// before the hole that may legally move into it (the hole stays within
    /// its own home's hop range), move it, and return the hole's new
    /// distance from `home`.
    fn pull_hole_closer(&mut self, home: u32, free_dist: u32) -> Option<u32> {
        let cap = self.slots.len() as u32;
        let hole_abs = (home + free_dist) % cap;
        // Candidate positions: hole - (hop_width - 1) .. hole, in order, so
        // the hole moves as far back as possible per step.
        for back in (1..self.hop_width).rev() {
            let cand_abs = (hole_abs + cap - back) % cap;
            // The candidate's home must be able to reach the hole: distance
            // from the candidate's home to the hole < hop_width. Check every
            // home that currently points at the candidate — there is exactly
            // one (the bit in its home's hopinfo).
            // Find the candidate's home by scanning the hop_width homes that
            // could own it.
            for hd in (back..self.hop_width).rev() {
                let cand_home = (cand_abs + cap - (hd - back)) % cap;
                // distance from cand_home to candidate is hd - back;
                // distance from cand_home to hole is hd.
                let info = self.slots[cand_home as usize].hopinfo;
                let cand_dist = hd - back;
                if info & (1 << cand_dist) != 0 {
                    let cand_idx = cand_abs as usize;
                    if !self.slots[cand_idx].is_occupied() {
                        continue;
                    }
                    // Verify this record really homes here (hopinfo bits are
                    // authoritative, but be defensive about aliasing).
                    if self.home_slot(self.slots[cand_idx].sig) != cand_home {
                        continue;
                    }
                    // Move candidate into the hole.
                    let (sig, ppa_raw) = (self.slots[cand_idx].sig, self.slots[cand_idx].ppa_raw);
                    let hole_idx = hole_abs as usize;
                    self.slots[hole_idx].sig = sig;
                    self.slots[hole_idx].ppa_raw = ppa_raw;
                    self.slots[cand_idx].clear();
                    let home_info = &mut self.slots[cand_home as usize].hopinfo;
                    *home_info = (*home_info & !(1 << cand_dist)) | (1 << hd);
                    // The hole is now at the candidate's old position.
                    let new_dist = (cand_abs + cap - home) % cap;
                    return Some(new_dist);
                }
            }
        }
        None
    }

    /// Remove `sig`, returning its PPA.
    pub fn remove(&mut self, sig: KeySignature) -> Option<Ppa> {
        let home = self.home_slot(sig);
        let mut hops = self.slots[home as usize].hopinfo;
        while hops != 0 {
            let d = hops.trailing_zeros();
            let idx = self.at(home, d);
            if self.slots[idx].is_occupied() && self.slots[idx].sig == sig {
                let ppa = self.slots[idx].ppa();
                self.slots[idx].clear();
                self.slots[home as usize].hopinfo &= !(1 << d);
                self.len -= 1;
                return Some(ppa);
            }
            hops &= hops - 1;
        }
        None
    }

    /// Iterate over stored `(signature, ppa)` pairs (migration, GC).
    pub fn iter(&self) -> impl Iterator<Item = (KeySignature, Ppa)> + '_ {
        self.slots.iter().filter(|s| s.is_occupied()).map(|s| (s.sig, s.ppa()))
    }

    /// Serialize into a flash-page image of `page_size` bytes.
    pub fn to_page(&self, page_size: usize) -> Bytes {
        assert!(self.slots.len() * IndexRecord::PACKED_LEN <= page_size, "table exceeds page");
        let mut out = vec![0u8; page_size];
        for (i, slot) in self.slots.iter().enumerate() {
            slot.encode_into(
                &mut out[i * IndexRecord::PACKED_LEN..(i + 1) * IndexRecord::PACKED_LEN],
            );
        }
        Bytes::from(out)
    }

    /// Reconstruct from a flash-page image.
    pub fn from_page(data: &[u8], records: u32, hop_width: u32) -> Self {
        let mut table = RecordTable::new(records, hop_width);
        let mut len = 0;
        for i in 0..records as usize {
            let rec = IndexRecord::decode(
                &data[i * IndexRecord::PACKED_LEN..(i + 1) * IndexRecord::PACKED_LEN],
            );
            if rec.is_occupied() {
                len += 1;
            }
            table.slots[i] = rec;
        }
        table.len = len;
        table
    }

    /// Internal consistency check (tests and the device auditor): every
    /// hopinfo bit points at an occupied slot homed at that bucket, and
    /// every occupied slot is covered by exactly one hopinfo bit of its
    /// home. Violations carry structured context (slot, home, signature)
    /// so callers can assert on the failure class.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let cap = self.slots.len() as u32;
        let mut covered = vec![false; self.slots.len()];
        for home in 0..cap {
            let mut hops = self.slots[home as usize].hopinfo;
            while hops != 0 {
                let d = hops.trailing_zeros();
                if d >= self.hop_width {
                    return Err(InvariantViolation::HopBitOutOfRange {
                        home,
                        bit: d,
                        hop_width: self.hop_width,
                    });
                }
                let idx = self.at(home, d);
                let slot = &self.slots[idx];
                if !slot.is_occupied() {
                    return Err(InvariantViolation::HopBitTargetsEmptySlot {
                        home,
                        bit: d,
                        slot: idx as u32,
                    });
                }
                if self.home_slot(slot.sig) != home {
                    return Err(InvariantViolation::MisHomedRecord {
                        slot: idx as u32,
                        home,
                        sig: slot.sig.0,
                    });
                }
                if covered[idx] {
                    return Err(InvariantViolation::SlotCoveredTwice {
                        slot: idx as u32,
                        sig: slot.sig.0,
                    });
                }
                covered[idx] = true;
                hops &= hops - 1;
            }
        }
        let covered_count = covered.iter().filter(|&&c| c).count() as u32;
        let occupied = self.slots.iter().filter(|s| s.is_occupied()).count() as u32;
        if covered_count != occupied || occupied != self.len {
            return Err(InvariantViolation::CoverageMismatch {
                covered: covered_count,
                occupied,
                len: self.len,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(n: u64) -> KeySignature {
        KeySignature(n)
    }

    fn ppa(n: u32) -> Ppa {
        Ppa::new(n, 0)
    }

    #[test]
    fn insert_lookup_remove() {
        let mut t = RecordTable::new(30, 8);
        assert_eq!(t.insert(sig(1), ppa(10)), TableInsert::Inserted);
        assert_eq!(t.lookup(sig(1)), Some(ppa(10)));
        assert_eq!(t.lookup(sig(2)), None);
        assert_eq!(t.remove(sig(1)), Some(ppa(10)));
        assert_eq!(t.lookup(sig(1)), None);
        assert_eq!(t.remove(sig(1)), None);
        assert!(t.is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn update_replaces_ppa() {
        let mut t = RecordTable::new(30, 8);
        t.insert(sig(5), ppa(1));
        assert_eq!(t.insert(sig(5), ppa(2)), TableInsert::Updated { old: ppa(1) });
        assert_eq!(t.lookup(sig(5)), Some(ppa(2)));
        assert_eq!(t.len(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn fills_to_high_occupancy() {
        // Hopscotch with H=32 should fill a small table near-completely.
        let mut t = RecordTable::new(64, 32);
        let mut inserted = 0;
        for i in 0..64u64 {
            if t.insert(sig(i.wrapping_mul(0x1234_5678_9abc_def1)), ppa(i as u32))
                == TableInsert::Inserted
            {
                inserted += 1;
            }
        }
        assert!(inserted >= 60, "only {inserted}/64 inserted");
        t.check_invariants().unwrap();
    }

    #[test]
    fn full_table_aborts_cleanly() {
        let mut t = RecordTable::new(8, 8);
        let mut stored = Vec::new();
        for i in 0..100u64 {
            let s = sig(i.wrapping_mul(0x9e37_79b9) + 1);
            match t.insert(s, ppa(i as u32)) {
                TableInsert::Inserted => stored.push((s, ppa(i as u32))),
                TableInsert::Full => break,
                TableInsert::Updated { .. } => {}
            }
        }
        assert_eq!(t.len() as usize, stored.len());
        // Everything that reported success is still retrievable.
        for (s, p) in stored {
            assert_eq!(t.lookup(s), Some(p));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn displacement_rescues_distant_holes() {
        // Force many keys into the same home so the free slot drifts out of
        // hop range and displacement must kick in. With capacity 64 and
        // H=4, colliding keys exercise pull_hole_closer quickly.
        let mut t = RecordTable::new(64, 4);
        let mut ok = 0;
        for i in 0..48u64 {
            if t.insert(sig(i * 7 + 3), ppa(i as u32)) == TableInsert::Inserted {
                ok += 1;
            }
            t.check_invariants().unwrap();
        }
        assert!(ok > 30, "inserted {ok}");
        for i in 0..48u64 {
            if t.lookup(sig(i * 7 + 3)).is_some() {
                assert_eq!(t.lookup(sig(i * 7 + 3)), Some(ppa(i as u32)));
            }
        }
    }

    #[test]
    fn page_serialization_roundtrip() {
        let mut t = RecordTable::new(30, 16);
        for i in 0..20u64 {
            t.insert(sig(i * 31 + 7), ppa(i as u32));
        }
        let page = t.to_page(512);
        assert_eq!(page.len(), 512);
        let back = RecordTable::from_page(&page, 30, 16);
        assert_eq!(back, t);
        back.check_invariants().unwrap();
    }

    #[test]
    fn occupancy_math() {
        let mut t = RecordTable::new(10, 8);
        assert_eq!(t.occupancy(), 0.0);
        t.insert(sig(1), ppa(1));
        t.insert(sig(2), ppa(2));
        assert!((t.occupancy() - 0.2).abs() < 1e-12);
        assert_eq!(t.capacity(), 10);
    }

    #[test]
    fn iter_yields_all_records() {
        let mut t = RecordTable::new(30, 16);
        let mut expect = std::collections::HashMap::new();
        for i in 0..15u64 {
            let s = sig(i * 1_000_003);
            if t.insert(s, ppa(i as u32)) == TableInsert::Inserted {
                expect.insert(s, ppa(i as u32));
            }
        }
        let got: std::collections::HashMap<_, _> = t.iter().collect();
        assert_eq!(got, expect);
    }

    #[test]
    #[should_panic(expected = "hop width cannot exceed")]
    fn hop_wider_than_table_rejected() {
        RecordTable::new(8, 16);
    }

    #[test]
    fn lookup_cost_bounded_by_hop_width() {
        // The lookup only inspects slots flagged in one hopinfo word, i.e.
        // ≤ hop_width probes; verify indirectly: a signature whose home
        // bucket has empty hopinfo is answered without scanning.
        let t = RecordTable::new(64, 32);
        assert_eq!(t.lookup(sig(12345)), None);
    }
}
