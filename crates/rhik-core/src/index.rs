//! The RHIK index proper: directory + cached record-layer tables, with the
//! ≤ 1-flash-read lookup guarantee.

use bytes::Bytes;
use rhik_ftl::layout::SpareMeta;
use rhik_ftl::{Ftl, IndexBackend, IndexError, IndexStats, InsertOutcome};
use rhik_nand::Ppa;
use rhik_sigs::KeySignature;

use crate::bucket::{RecordTable, TableInsert};
use crate::config::RhikConfig;
use crate::directory::Directory;

/// Cache keys with this bit set identify directory snapshot pages rather
/// than record-layer tables (they share the FTL's index-page namespace for
/// GC relocation).
const DIR_PAGE_KEY: u64 = 1 << 63;

/// Cache keys with this bit set identify §VI hyper-local overflow tables.
pub(crate) const OVERFLOW_KEY: u64 = 1 << 62;

/// The Re-configurable Hash Index (§IV).
pub struct RhikIndex {
    cfg: RhikConfig,
    dir: Directory,
    /// Records per table (Eq. 1, fixed for the device's page size).
    records_per_table: u32,
    len: u64,
    stats: IndexStats,
    /// Flash pages of the latest directory snapshot (retired on re-flush).
    dir_snapshot: Vec<Ppa>,
    /// Mutations since the last snapshot flush.
    dirty_mutations: u64,
    /// Monotonic snapshot sequence (distinguishes flushes at mount time).
    snapshot_seq: u64,
    /// A resize hit NeedsGc and was deferred; the device will GC and call
    /// [`IndexBackend::maintain`].
    pub(crate) resize_deferred: bool,
    /// In-flight incremental doubling (§IV-A2, amortized — see
    /// `resize.rs`). `None` outside migrations.
    pub(crate) migration: Option<crate::resize::Migration>,
    /// Buckets lost at mount time because GC had reclaimed their
    /// snapshot-referenced pages (see [`RhikIndex::recover`]).
    recovery_lost_tables: u64,
    /// Generation-published mirror of the `sig → head PPA` mapping for
    /// the device's lock-free read path (attached by the sharded device;
    /// `None` on single-owner devices). Every mutation that changes where
    /// a pair lives funnels through the `note_view_*` helpers.
    view: Option<std::sync::Arc<rhik_ftl::ReadView>>,
    /// Invalidation versions for the hot-object cache tier (attached by
    /// the device when the cache is enabled; `None` otherwise). Bumped in
    /// the same `note_view_*` funnel as the read view: every value
    /// mutation — insert, update, delete, GC relocation — invalidates
    /// the signature's stripe. Directory doublings move mappings without
    /// changing values, so `note_view_doubled` does not bump.
    versions: Option<std::sync::Arc<rhik_ftl::VersionTable>>,
}

impl RhikIndex {
    /// Build an index for a device with `page_size`-byte flash pages.
    pub fn new(cfg: RhikConfig, page_size: u32) -> Self {
        let cfg = cfg.validated();
        let records_per_table = RhikConfig::records_per_table(page_size);
        assert!(records_per_table >= cfg.hop_width, "page too small for the configured hop width");
        RhikIndex {
            dir: Directory::new(cfg.initial_dir_bits),
            cfg,
            records_per_table,
            len: 0,
            stats: IndexStats::default(),
            dir_snapshot: Vec::new(),
            dirty_mutations: 0,
            snapshot_seq: 0,
            resize_deferred: false,
            migration: None,
            recovery_lost_tables: 0,
            view: None,
            versions: None,
        }
    }

    /// Rebuild the index from flash after a power loss (§IV-A: "a
    /// periodically updated persistent copy of these D entries resides on
    /// flash").
    ///
    /// Scans the device for directory-snapshot fragments, reconstructs the
    /// newest complete snapshot's directory, and re-learns per-table record
    /// counts by loading every referenced table (the mount-time cost).
    /// Pairs indexed after the last snapshot flush are lost — the bounded
    /// loss window the paper's design accepts.
    pub fn recover(cfg: RhikConfig, ftl: &mut Ftl) -> Result<Self, IndexError> {
        let cfg = cfg.validated();
        let page_size = ftl.geometry().page_size;
        let records_per_table = RhikConfig::records_per_table(page_size);

        // Mount-time scan: find every directory fragment still on flash.
        use rhik_ftl::layout::{PageKind, SpareMeta};
        let mut fragments: Vec<(u64, u32, Ppa, Bytes)> = Vec::new(); // (seq, frag, ppa, data)
        for ppa in ftl.programmed_pages() {
            let Ok((data, spare)) = ftl.read_data_page(ppa) else { continue };
            let Some(meta) = SpareMeta::decode(&spare) else { continue };
            if meta.kind != PageKind::Directory {
                continue;
            }
            if let Some((_bits, _gen, seq, frag)) = Directory::fragment_meta(&data) {
                fragments.push((seq, frag, ppa, data));
            }
        }

        // Newest flush (highest sequence) with a complete, well-formed
        // fragment set wins.
        fragments.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut recovered: Option<(Directory, Vec<Ppa>, u64)> = None;
        let mut i = 0;
        while i < fragments.len() {
            let seq = fragments[i].0;
            let group_end =
                fragments[i..].iter().position(|f| f.0 != seq).map_or(fragments.len(), |p| i + p);
            let group = &fragments[i..group_end];
            let pages: Vec<Bytes> = group.iter().map(|f| f.3.clone()).collect();
            if let Some(dir) = Directory::from_snapshot_pages(&pages) {
                recovered = Some((dir, group.iter().map(|f| f.2).collect(), seq));
                break;
            }
            i = group_end;
        }
        let (mut dir, dir_snapshot, snapshot_seq) =
            recovered.unwrap_or_else(|| (Directory::new(cfg.initial_dir_bits), Vec::new(), 0));

        // Re-learn record counts table by table (overflow tables included).
        //
        // A snapshot pointer can dangle: between the snapshot flush and the
        // crash, a table may have been rewritten (retiring the snapshot's
        // copy) and GC may have erased the retired page. Real firmware pins
        // checkpoint-referenced pages or replays an OOB scan; the emulator
        // degrades gracefully — the bucket's records are lost, counted in
        // the returned index's `recovery_lost_tables` diagnostics — rather
        // than failing the whole mount.
        let mut len = 0u64;
        let mut lost_tables = 0u64;
        for slot in 0..dir.len() as u32 {
            if let Some(ppa) = dir.entry(slot).table_ppa {
                match ftl.read_index_page(ppa) {
                    Ok(bytes) => {
                        let table =
                            RecordTable::from_page(&bytes, records_per_table, cfg.hop_width);
                        dir.entry_mut(slot).records = table.len();
                        len += table.len() as u64;
                    }
                    Err(_) => {
                        dir.entry_mut(slot).table_ppa = None;
                        dir.entry_mut(slot).records = 0;
                        lost_tables += 1;
                    }
                }
            }
            if let Some(ppa) = dir.entry(slot).overflow_ppa {
                match ftl.read_index_page(ppa) {
                    Ok(bytes) => {
                        let table =
                            RecordTable::from_page(&bytes, records_per_table, cfg.hop_width);
                        dir.entry_mut(slot).overflow_records = table.len();
                        dir.entry_mut(slot).has_overflow = true;
                        len += table.len() as u64;
                    }
                    Err(_) => {
                        dir.entry_mut(slot).overflow_ppa = None;
                        dir.entry_mut(slot).overflow_records = 0;
                        dir.entry_mut(slot).has_overflow = false;
                        lost_tables += 1;
                    }
                }
            }
        }

        let mut idx = RhikIndex {
            dir,
            cfg,
            records_per_table,
            len,
            stats: IndexStats::default(),
            dir_snapshot,
            dirty_mutations: 0,
            snapshot_seq,
            resize_deferred: false,
            migration: None,
            recovery_lost_tables: lost_tables,
            view: None,
            versions: None,
        };
        // The snapshot pages just consumed may themselves have been retired
        // (GC churn); re-anchor the persistent copy immediately so the next
        // crash has a self-consistent mount point.
        idx.flush_directory(ftl)?;
        Ok(idx)
    }

    /// Buckets whose snapshot-referenced table page had already been
    /// reclaimed when this index was recovered (0 on a clean mount).
    pub fn recovery_lost_tables(&self) -> u64 {
        self.recovery_lost_tables
    }

    /// The current configuration.
    pub fn config(&self) -> &RhikConfig {
        &self.cfg
    }

    /// Directory accessor (diagnostics, experiments).
    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    /// Records one record-layer table holds (Eq. 1).
    pub fn records_per_table(&self) -> u32 {
        self.records_per_table
    }

    /// Total record capacity of the current configuration.
    pub fn total_capacity(&self) -> u64 {
        self.dir.len() as u64 * self.records_per_table as u64
    }

    /// Global occupancy in [0, 1].
    pub fn occupancy(&self) -> f64 {
        self.len as f64 / self.total_capacity() as f64
    }

    pub(crate) fn stats_mut(&mut self) -> &mut IndexStats {
        &mut self.stats
    }

    pub(crate) fn dir_mut(&mut self) -> &mut Directory {
        &mut self.dir
    }

    /// While migrating: the frozen old directory's `(cache key, entry)`
    /// for `sig`, if its slot has not yet split — reads must then go to
    /// the old table. `None` once the slot (or the whole migration) is
    /// done.
    fn old_route(&self, sig: KeySignature) -> Option<(u64, crate::directory::DirEntry)> {
        let m = self.migration.as_ref()?;
        let slot = m.old.slot_of(sig);
        if m.is_split(slot) {
            None
        } else {
            Some((m.old.cache_key(slot), *m.old.entry(slot)))
        }
    }

    /// Advance an in-flight incremental migration before serving an index
    /// operation: at most `resize_migration_batch` old slots, plus — for
    /// mutations, which pass their signature — the operation's own slot,
    /// split first so the old tables stay frozen.
    fn migration_work(
        &mut self,
        ftl: &mut Ftl,
        mutates: Option<KeySignature>,
    ) -> Result<(), IndexError> {
        let Some(m) = self.migration.as_ref() else { return Ok(()) };
        let target = mutates.map(|sig| m.old.slot_of(sig));
        let batch = self.cfg.resize_migration_batch;
        match crate::resize::step(self, ftl, batch, target) {
            Ok(_) => Ok(()),
            Err(IndexError::NeedsGc) => {
                // Out of space mid-migration: pause the cursor and flag the
                // device for GC. Background slots can wait, but a mutation
                // whose own slot is still pending cannot proceed (the old
                // tables are frozen).
                self.resize_deferred = true;
                match (target, self.migration.as_ref()) {
                    (Some(t), Some(m)) if !m.is_split(t) => Err(IndexError::NeedsGc),
                    _ => Ok(()),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Load the record-layer table for `slot`, through the DRAM cache.
    ///
    /// Returns the table and the number of flash reads performed (0 on a
    /// cache hit or a never-persisted empty table, 1 otherwise — the
    /// paper's bound).
    pub(crate) fn load_table(
        &mut self,
        ftl: &mut Ftl,
        slot: u32,
    ) -> Result<(RecordTable, u64), IndexError> {
        let key = self.dir.cache_key(slot);
        let ppa = self.dir.entry(slot).table_ppa;
        self.load_any_table(ftl, key, ppa)
    }

    /// Load `slot`'s hyper-local overflow table (creating an empty one).
    fn load_overflow(
        &mut self,
        ftl: &mut Ftl,
        slot: u32,
    ) -> Result<(RecordTable, u64), IndexError> {
        let key = OVERFLOW_KEY | self.dir.cache_key(slot);
        let ppa = self.dir.entry(slot).overflow_ppa;
        self.load_any_table(ftl, key, ppa)
    }

    fn load_any_table(
        &mut self,
        ftl: &mut Ftl,
        key: u64,
        ppa: Option<Ppa>,
    ) -> Result<(RecordTable, u64), IndexError> {
        if let Some(bytes) = ftl.cache().get(key) {
            return Ok((
                RecordTable::from_page(&bytes, self.records_per_table, self.cfg.hop_width),
                0,
            ));
        }
        match ppa {
            Some(ppa) => {
                let bytes = ftl.read_index_page(ppa)?;
                self.stats.metadata_flash_reads += 1;
                let table =
                    RecordTable::from_page(&bytes, self.records_per_table, self.cfg.hop_width);
                self.install_in_cache(ftl, key, bytes, false)?;
                Ok((table, 1))
            }
            None => Ok((RecordTable::new(self.records_per_table, self.cfg.hop_width), 0)),
        }
    }

    /// Put a (possibly mutated) table back into the cache as dirty.
    pub(crate) fn store_table(
        &mut self,
        ftl: &mut Ftl,
        slot: u32,
        table: &RecordTable,
    ) -> Result<(), IndexError> {
        let key = self.dir.cache_key(slot);
        let page = table.to_page(ftl.geometry().page_size as usize);
        self.install_in_cache(ftl, key, page, true)
    }

    /// Put an overflow table back into the cache as dirty.
    fn store_overflow(
        &mut self,
        ftl: &mut Ftl,
        slot: u32,
        table: &RecordTable,
    ) -> Result<(), IndexError> {
        let key = OVERFLOW_KEY | self.dir.cache_key(slot);
        let page = table.to_page(ftl.geometry().page_size as usize);
        let entry = self.dir.entry_mut(slot);
        entry.has_overflow = true;
        entry.overflow_records = table.len();
        self.install_in_cache(ftl, key, page, true)
    }

    /// Insert into the cache, writing back any dirty evictions.
    fn install_in_cache(
        &mut self,
        ftl: &mut Ftl,
        key: u64,
        bytes: Bytes,
        dirty: bool,
    ) -> Result<(), IndexError> {
        let evicted = ftl.cache().insert(key, bytes, dirty);
        for ev in evicted {
            self.write_back(ftl, ev.key, ev.data, ev.dirty)?;
        }
        Ok(())
    }

    /// Persist an evicted page if it is dirty and still belongs to the
    /// current configuration.
    fn write_back(
        &mut self,
        ftl: &mut Ftl,
        key: u64,
        data: Bytes,
        dirty: bool,
    ) -> Result<(), IndexError> {
        if !dirty || key & DIR_PAGE_KEY != 0 {
            return Ok(()); // snapshots are written eagerly, never dirty
        }
        let is_overflow = key & OVERFLOW_KEY != 0;
        let key = key & !OVERFLOW_KEY;
        if !self.dir.is_current_key(key) {
            // Mid-migration, a dirty page of the frozen pre-doubling
            // directory is still the authoritative copy of an un-split
            // slot: persist it and repoint the old entry, or the split
            // would read a stale flash image.
            let old_pending = self.migration.as_ref().is_some_and(|m| {
                m.old.is_current_key(key) && !m.is_split(Directory::slot_of_key(key))
            });
            if old_pending {
                let slot = Directory::slot_of_key(key);
                let page_bytes = data.len() as u64;
                let new_ppa = ftl.write_index_page(data, SpareMeta::index_page())?;
                self.stats.metadata_flash_programs += 1;
                let entry = self.migration.as_mut().expect("checked above").old.entry_mut(slot);
                let target =
                    if is_overflow { &mut entry.overflow_ppa } else { &mut entry.table_ppa };
                if let Some(old) = target.replace(new_ppa) {
                    ftl.retire_index_page(old, page_bytes);
                }
            }
            return Ok(()); // otherwise pre-resize generation: already retired
        }
        let slot = Directory::slot_of_key(key);
        let page_bytes = data.len() as u64;
        let new_ppa = ftl.write_index_page(data, SpareMeta::index_page())?;
        self.stats.metadata_flash_programs += 1;
        let entry = self.dir.entry_mut(slot);
        let target = if is_overflow { &mut entry.overflow_ppa } else { &mut entry.table_ppa };
        if let Some(old) = target.replace(new_ppa) {
            ftl.retire_index_page(old, page_bytes);
        }
        Ok(())
    }

    /// Mirror a `sig → head` change into the attached read view (no-op
    /// without one). Called at every insert/update success point,
    /// including GC relocation, which funnels through `insert`.
    #[inline]
    pub(crate) fn note_view_upsert(&self, sig: KeySignature, ppa: Ppa) {
        if let Some(view) = &self.view {
            view.upsert(sig.0, ppa);
        }
        // Bump *after* the index mutation: once a cache fill observes the
        // new version it is guaranteed to also observe the new value.
        if let Some(versions) = &self.versions {
            versions.bump(sig.0);
        }
    }

    /// Mirror a deletion into the attached read view (no-op without one).
    #[inline]
    pub(crate) fn note_view_remove(&self, sig: KeySignature) {
        if let Some(view) = &self.view {
            view.remove(sig.0);
        }
        if let Some(versions) = &self.versions {
            versions.bump(sig.0);
        }
    }

    /// Publish the read view's next generation after the directory
    /// doubled (`resize::begin`): readers re-walk under the new bits and
    /// stale-snapshot holders are poisoned into the locked path.
    pub(crate) fn note_view_doubled(&self) {
        if let Some(view) = &self.view {
            view.publish_generation(self.dir.bits());
        }
    }

    /// Resize check: called after each insert (§IV-A2 "once the total
    /// occupancy of RHIK reaches a pre-defined threshold, its resizing
    /// function is triggered").
    fn maybe_resize(&mut self, ftl: &mut Ftl) -> Result<(), IndexError> {
        if self.migration.is_some() {
            return Ok(()); // one doubling at a time
        }
        if self.occupancy() >= self.cfg.occupancy_threshold {
            match crate::resize::begin(self, ftl) {
                Ok(()) => {
                    self.resize_deferred = false;
                    if self.cfg.stop_the_world {
                        // Paper-fidelity fallback: migrate everything now,
                        // in one stall (§IV-A2 / Fig. 7).
                        match crate::resize::step(self, ftl, u32::MAX, None) {
                            Ok(_) => {}
                            Err(IndexError::NeedsGc) => self.resize_deferred = true,
                            Err(e) => return Err(e),
                        }
                    }
                }
                Err(IndexError::NeedsGc) => {
                    // Not enough free blocks right now. The record that
                    // triggered this check is already safely inserted; defer
                    // the doubling until the device has garbage-collected
                    // (it polls `maintenance_due` after every command).
                    self.resize_deferred = true;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Flush the directory snapshot if the mutation interval elapsed.
    /// Suppressed while a migration is in flight — a snapshot cannot
    /// describe a half-split configuration, so the pre-doubling snapshot
    /// (re-anchored by `resize::begin`) stays the crash recovery point
    /// until the migration completes and flushes the doubled directory.
    fn maybe_flush_directory(&mut self, ftl: &mut Ftl) -> Result<(), IndexError> {
        self.dirty_mutations += 1;
        if self.dirty_mutations >= self.cfg.dir_flush_interval && self.migration.is_none() {
            self.flush_directory(ftl)?;
        }
        Ok(())
    }

    /// Write the directory's persistent copy (§IV-A) and retire the old
    /// snapshot pages.
    pub fn flush_directory(&mut self, ftl: &mut Ftl) -> Result<(), IndexError> {
        let page_size = ftl.geometry().page_size as usize;
        self.snapshot_seq += 1;
        let pages = self.dir.snapshot_pages(page_size, self.snapshot_seq);
        let mut new_snapshot = Vec::with_capacity(pages.len());
        for page in pages {
            let len = page.len() as u64;
            let ppa = ftl.write_index_page(page, SpareMeta::directory_page())?;
            let _ = len;
            new_snapshot.push(ppa);
        }
        self.stats.metadata_flash_programs += new_snapshot.len() as u64;
        for old in std::mem::replace(&mut self.dir_snapshot, new_snapshot) {
            ftl.retire_index_page(old, page_size as u64);
        }
        self.dirty_mutations = 0;
        Ok(())
    }

    /// Flash pages of the current directory snapshot (diagnostics).
    pub fn dir_snapshot(&self) -> &[Ppa] {
        &self.dir_snapshot
    }

    /// Snapshot the index's cross-layer claims for the invariant auditor:
    /// every flash page the directory owns (with the spare-area kind the
    /// auditor should find there), per-entry record counts, and the state
    /// of any in-flight migration. Pages are observed through
    /// [`Ftl::peek_page`], so the audit charges no flash reads and cannot
    /// disturb the ≤1-read statistics.
    pub fn audit_snapshot(&self, ftl: &Ftl, shard: u32) -> rhik_audit::IndexAuditSnapshot {
        use rhik_audit::{ObservedPage, OwnedPage, KIND_DIRECTORY, KIND_INDEX};

        let observe = |ppa: Ppa| -> ObservedPage {
            match ftl.peek_page(ppa) {
                None => ObservedPage::Unprogrammed,
                Some((_, spare)) => match SpareMeta::decode(&spare) {
                    Some(_) => ObservedPage::Kind(spare[0]),
                    None => ObservedPage::Undecodable,
                },
            }
        };
        let mut owned_pages = Vec::new();
        let mut own = |key: u64, ppa: Ppa, expected_kind: u8| {
            owned_pages.push(OwnedPage {
                key,
                ppa: (ppa.block, ppa.page),
                expected_kind,
                observed: observe(ppa),
            });
        };

        let mut entries = Vec::with_capacity(self.dir.len());
        let mut directory_records = 0u64;
        for slot in 0..self.dir.len() as u32 {
            let e = self.dir.entry(slot);
            entries.push(rhik_audit::EntryAudit {
                slot,
                records: e.records,
                overflow_records: e.overflow_records,
                has_overflow: e.has_overflow,
            });
            directory_records += e.total_records() as u64;
            if let Some(ppa) = e.table_ppa {
                own(self.dir.cache_key(slot), ppa, KIND_INDEX);
            }
            if let Some(ppa) = e.overflow_ppa {
                own(OVERFLOW_KEY | self.dir.cache_key(slot), ppa, KIND_INDEX);
            }
        }

        // Mid-migration, un-split slots of the frozen old directory still
        // own their pages and hold the authoritative copy of their records.
        let migration = self.migration.as_ref().map(|m| {
            let mut pending = 0u64;
            for slot in 0..m.old.len() as u32 {
                if m.is_split(slot) {
                    continue;
                }
                let e = m.old.entry(slot);
                pending += e.total_records() as u64;
                if let Some(ppa) = e.table_ppa {
                    own(m.old.cache_key(slot), ppa, KIND_INDEX);
                }
                if let Some(ppa) = e.overflow_ppa {
                    own(OVERFLOW_KEY | m.old.cache_key(slot), ppa, KIND_INDEX);
                }
            }
            directory_records += pending;
            rhik_audit::MigrationAudit {
                generation: self.dir.generation() as u64,
                cursor: m.cursor(),
                migrated: m.migrated(),
                keys_before: m.keys_before(),
                pending,
            }
        });

        for (i, &ppa) in self.dir_snapshot.iter().enumerate() {
            own(DIR_PAGE_KEY | i as u64, ppa, KIND_DIRECTORY);
        }

        rhik_audit::IndexAuditSnapshot {
            shard,
            len: self.len,
            records_per_table: self.records_per_table,
            directory_records,
            entries,
            owned_pages,
            migration,
        }
    }
}

impl IndexBackend for RhikIndex {
    fn insert(
        &mut self,
        ftl: &mut Ftl,
        sig: KeySignature,
        ppa: Ppa,
    ) -> Result<InsertOutcome, IndexError> {
        self.stats.inserts += 1;
        ftl.note_stage(rhik_telemetry::Stage::DirLookup, 0);
        self.migration_work(ftl, Some(sig))?;
        let slot = self.dir.slot_of(sig);
        let (mut table, _reads) = self.load_table(ftl, slot)?;

        // If the bucket has overflowed before, the signature may already
        // live in the overflow table; updates must land there, not create
        // a duplicate in the primary.
        if self.dir.entry(slot).has_overflow && table.lookup(sig).is_none() {
            let (mut overflow, _) = self.load_overflow(ftl, slot)?;
            if overflow.lookup(sig).is_some() {
                let TableInsert::Updated { old } = overflow.insert(sig, ppa) else {
                    unreachable!("lookup said present");
                };
                self.store_overflow(ftl, slot, &overflow)?;
                self.note_view_upsert(sig, ppa);
                self.maybe_flush_directory(ftl)?;
                return Ok(InsertOutcome::Updated { old });
            }
        }

        let outcome = match table.insert(sig, ppa) {
            TableInsert::Inserted => {
                self.store_table(ftl, slot, &table)?;
                self.dir.entry_mut(slot).records = table.len();
                self.len += 1;
                InsertOutcome::Inserted
            }
            TableInsert::Updated { old } => {
                self.store_table(ftl, slot, &table)?;
                InsertOutcome::Updated { old }
            }
            TableInsert::Full if self.cfg.hyper_local => {
                // §VI hyper-local scaling: absorb the reject in a
                // per-bucket overflow table instead of aborting.
                let (mut overflow, _) = self.load_overflow(ftl, slot)?;
                match overflow.insert(sig, ppa) {
                    TableInsert::Inserted => {
                        self.store_overflow(ftl, slot, &overflow)?;
                        self.len += 1;
                        InsertOutcome::Inserted
                    }
                    TableInsert::Updated { old } => {
                        self.store_overflow(ftl, slot, &overflow)?;
                        InsertOutcome::Updated { old }
                    }
                    TableInsert::Full => {
                        self.stats.insert_aborts += 1;
                        return Err(IndexError::TableFull { table: slot as u64 });
                    }
                }
            }
            TableInsert::Full => {
                self.stats.insert_aborts += 1;
                return Err(IndexError::TableFull { table: slot as u64 });
            }
        };
        if table.displacements() > 0 {
            ftl.telemetry().counter_add("rhik_hopscotch_displacements", table.displacements());
        }
        self.note_view_upsert(sig, ppa);
        self.maybe_resize(ftl)?;
        self.maybe_flush_directory(ftl)?;
        Ok(outcome)
    }

    fn lookup(&mut self, ftl: &mut Ftl, sig: KeySignature) -> Result<Option<Ppa>, IndexError> {
        self.stats.lookups += 1;
        ftl.note_stage(rhik_telemetry::Stage::DirLookup, 0);
        self.migration_work(ftl, None)?;
        if let Some((key, entry)) = self.old_route(sig) {
            // Un-migrated slot: serve from the frozen old table, same
            // ≤ 1-flash-read path as a live table.
            let (table, mut reads) = self.load_any_table(ftl, key, entry.table_ppa)?;
            debug_assert!(reads <= 1, "old-table lookup exceeded one flash read");
            if let Some(hit) = table.lookup(sig) {
                self.stats.note_lookup_reads(reads);
                return Ok(Some(hit));
            }
            let mut hit = None;
            if entry.has_overflow {
                let (overflow, r2) =
                    self.load_any_table(ftl, OVERFLOW_KEY | key, entry.overflow_ppa)?;
                reads += r2;
                hit = overflow.lookup(sig);
            }
            self.stats.note_lookup_reads(reads);
            return Ok(hit);
        }
        let slot = self.dir.slot_of(sig);
        let (table, mut reads) = self.load_table(ftl, slot)?;
        debug_assert!(reads <= 1, "primary lookup exceeded one flash read");
        if let Some(hit) = table.lookup(sig) {
            self.stats.note_lookup_reads(reads);
            return Ok(Some(hit));
        }
        // Overflowed buckets may need a second read — the documented cost
        // of hyper-local scaling (resize migration may also create overflow
        // tables as a survival measure, so this is checked unconditionally).
        let mut hit = None;
        if self.dir.entry(slot).has_overflow {
            let (overflow, r2) = self.load_overflow(ftl, slot)?;
            reads += r2;
            hit = overflow.lookup(sig);
        }
        self.stats.note_lookup_reads(reads);
        Ok(hit)
    }

    fn remove(&mut self, ftl: &mut Ftl, sig: KeySignature) -> Result<Option<Ppa>, IndexError> {
        self.stats.removes += 1;
        ftl.note_stage(rhik_telemetry::Stage::DirLookup, 0);
        self.migration_work(ftl, Some(sig))?;
        let slot = self.dir.slot_of(sig);
        let (mut table, _) = self.load_table(ftl, slot)?;
        let mut removed = table.remove(sig);
        if removed.is_some() {
            self.store_table(ftl, slot, &table)?;
            self.dir.entry_mut(slot).records = table.len();
        } else if self.dir.entry(slot).has_overflow {
            let (mut overflow, _) = self.load_overflow(ftl, slot)?;
            removed = overflow.remove(sig);
            if removed.is_some() {
                self.store_overflow(ftl, slot, &overflow)?;
            }
        }
        if removed.is_some() {
            self.len -= 1;
            self.note_view_remove(sig);
            self.maybe_flush_directory(ftl)?;
        }
        Ok(removed)
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn capacity(&self) -> Option<u64> {
        Some(self.total_capacity())
    }

    fn dram_bytes(&self) -> u64 {
        self.dir.dram_bytes()
    }

    fn stats(&self) -> &IndexStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "rhik"
    }

    fn flush(&mut self, ftl: &mut Ftl) -> Result<(), IndexError> {
        // A snapshot cannot describe a half-migrated configuration: drive
        // any in-flight migration to completion first.
        while self.migration.is_some() {
            crate::resize::step(self, ftl, u32::MAX, None)?;
        }
        // Persist every dirty cached table, then the directory snapshot.
        let dirty = ftl.cache().drain_dirty();
        for ev in dirty {
            self.write_back(ftl, ev.key, ev.data, true)?;
        }
        self.flush_directory(ftl)
    }

    fn live_index_pages_in(&self, block: u32) -> Vec<(u64, Ppa)> {
        let mut pages = Vec::new();
        for slot in 0..self.dir.len() as u32 {
            let e = self.dir.entry(slot);
            if let Some(ppa) = e.table_ppa {
                if ppa.block == block {
                    pages.push((self.dir.cache_key(slot), ppa));
                }
            }
            if let Some(ppa) = e.overflow_ppa {
                if ppa.block == block {
                    pages.push((OVERFLOW_KEY | self.dir.cache_key(slot), ppa));
                }
            }
        }
        // Old-generation tables of un-split slots are still live
        // mid-migration; GC must relocate, not erase them.
        if let Some(m) = &self.migration {
            for slot in 0..m.old.len() as u32 {
                if m.is_split(slot) {
                    continue;
                }
                let e = m.old.entry(slot);
                if let Some(ppa) = e.table_ppa {
                    if ppa.block == block {
                        pages.push((m.old.cache_key(slot), ppa));
                    }
                }
                if let Some(ppa) = e.overflow_ppa {
                    if ppa.block == block {
                        pages.push((OVERFLOW_KEY | m.old.cache_key(slot), ppa));
                    }
                }
            }
        }
        for (i, &ppa) in self.dir_snapshot.iter().enumerate() {
            if ppa.block == block {
                pages.push((DIR_PAGE_KEY | i as u64, ppa));
            }
        }
        pages
    }

    fn maintenance_due(&self) -> bool {
        // A healthily-progressing migration is not maintenance — per-op
        // batches drain it. Only a deferral (NeedsGc) or a doubling not
        // yet begun needs the device's help.
        self.resize_deferred
            || (self.migration.is_none() && self.occupancy() >= self.cfg.occupancy_threshold)
    }

    fn maintain(&mut self, ftl: &mut Ftl) -> Result<(), IndexError> {
        if self.migration.is_some() {
            // Deferred mid-migration (out of space): after GC, drive the
            // remainder to completion.
            match crate::resize::step(self, ftl, u32::MAX, None) {
                Ok(_) => return Ok(()),
                Err(IndexError::NeedsGc) => {
                    self.resize_deferred = true;
                    return Err(IndexError::NeedsGc);
                }
                Err(e) => return Err(e),
            }
        }
        self.maybe_resize(ftl)?;
        if self.resize_deferred {
            return Err(IndexError::NeedsGc);
        }
        Ok(())
    }

    fn maintain_step(&mut self, ftl: &mut Ftl) -> Result<bool, IndexError> {
        if self.migration.is_none() {
            return Ok(false);
        }
        match crate::resize::step(self, ftl, self.cfg.resize_migration_batch, None) {
            Ok(n) => Ok(n > 0 || self.migration.is_none()),
            Err(IndexError::NeedsGc) => {
                self.resize_deferred = true;
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    fn resize_in_progress(&self) -> bool {
        self.migration.is_some()
    }

    fn migration_progress(&self) -> Option<(u64, u64)> {
        self.migration.as_ref().map(|m| m.progress())
    }

    fn attach_read_view(&mut self, view: std::sync::Arc<rhik_ftl::ReadView>) -> bool {
        if self.len != 0 {
            // The view starts empty; adopting it now would make every
            // pre-existing key a (validated) lock-free miss.
            return false;
        }
        if view.snapshot().bits() != self.dir.bits() {
            view.publish_generation(self.dir.bits());
        }
        self.view = Some(view);
        true
    }

    fn attach_versions(&mut self, versions: std::sync::Arc<rhik_ftl::VersionTable>) -> bool {
        // Safe at any point: versions are equality-compared against a
        // fill-time read, and no cache entries predate the attach.
        self.versions = Some(versions);
        true
    }

    fn scan_records(
        &mut self,
        ftl: &mut Ftl,
        visit: &mut dyn FnMut(KeySignature, Ppa),
    ) -> Result<(), IndexError> {
        for slot in 0..self.dir.len() as u32 {
            if self.dir.entry(slot).records > 0 {
                let (table, _) = self.load_table(ftl, slot)?;
                for (sig, ppa) in table.iter() {
                    visit(sig, ppa);
                }
            }
            if self.dir.entry(slot).overflow_records > 0 {
                let (overflow, _) = self.load_overflow(ftl, slot)?;
                for (sig, ppa) in overflow.iter() {
                    visit(sig, ppa);
                }
            }
        }
        // Mid-migration, records of un-split slots still live in the
        // frozen old tables (their new-directory entries are empty).
        let mut pending: Vec<(u64, Option<Ppa>)> = Vec::new();
        if let Some(m) = &self.migration {
            for slot in 0..m.old.len() as u32 {
                if m.is_split(slot) {
                    continue;
                }
                let e = m.old.entry(slot);
                if e.records > 0 {
                    pending.push((m.old.cache_key(slot), e.table_ppa));
                }
                if e.overflow_records > 0 {
                    pending.push((OVERFLOW_KEY | m.old.cache_key(slot), e.overflow_ppa));
                }
            }
        }
        for (key, ppa) in pending {
            let (table, _) = self.load_any_table(ftl, key, ppa)?;
            for (sig, ppa) in table.iter() {
                visit(sig, ppa);
            }
        }
        Ok(())
    }

    fn relocate_index_page(
        &mut self,
        ftl: &mut Ftl,
        key: u64,
        old: Ppa,
    ) -> Result<Option<Ppa>, IndexError> {
        let page_size = ftl.geometry().page_size as u64;
        if key & DIR_PAGE_KEY != 0 {
            // A directory snapshot fragment: rewrite the whole snapshot
            // (it is small and this is rare).
            if self.dir_snapshot.contains(&old) {
                self.flush_directory(ftl)?;
                return Ok(self.dir_snapshot.first().copied());
            }
            return Ok(None);
        }
        let is_overflow = key & OVERFLOW_KEY != 0;
        let key = key & !OVERFLOW_KEY;
        if !self.dir.is_current_key(key) {
            // A still-live old-generation page of an un-split slot must be
            // moved and its frozen-directory entry repointed.
            let old_current = match &self.migration {
                Some(m) if m.old.is_current_key(key) => {
                    let slot = Directory::slot_of_key(key);
                    if m.is_split(slot) {
                        None
                    } else if is_overflow {
                        m.old.entry(slot).overflow_ppa
                    } else {
                        m.old.entry(slot).table_ppa
                    }
                }
                _ => None,
            };
            if old_current != Some(old) {
                return Ok(None);
            }
            let bytes = ftl.read_index_page(old)?;
            self.stats.metadata_flash_reads += 1;
            let new_ppa = ftl.write_index_page(bytes, SpareMeta::index_page())?;
            self.stats.metadata_flash_programs += 1;
            let slot = Directory::slot_of_key(key);
            let entry = self.migration.as_mut().expect("checked above").old.entry_mut(slot);
            if is_overflow {
                entry.overflow_ppa = Some(new_ppa);
            } else {
                entry.table_ppa = Some(new_ppa);
            }
            ftl.retire_index_page(old, page_size);
            return Ok(Some(new_ppa));
        }
        let slot = Directory::slot_of_key(key);
        let current = if is_overflow {
            self.dir.entry(slot).overflow_ppa
        } else {
            self.dir.entry(slot).table_ppa
        };
        if current != Some(old) {
            return Ok(None); // already moved elsewhere
        }
        let bytes = ftl.read_index_page(old)?;
        self.stats.metadata_flash_reads += 1;
        let new_ppa = ftl.write_index_page(bytes, SpareMeta::index_page())?;
        self.stats.metadata_flash_programs += 1;
        let entry = self.dir.entry_mut(slot);
        if is_overflow {
            entry.overflow_ppa = Some(new_ppa);
        } else {
            entry.table_ppa = Some(new_ppa);
        }
        ftl.retire_index_page(old, page_size);
        Ok(Some(new_ppa))
    }
}

impl std::fmt::Debug for RhikIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RhikIndex")
            .field("keys", &self.len)
            .field("dir_bits", &self.dir.bits())
            .field("tables", &self.dir.len())
            .field("records_per_table", &self.records_per_table)
            .field("occupancy", &format!("{:.3}", self.occupancy()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhik_ftl::FtlConfig;

    fn setup() -> (Ftl, RhikIndex) {
        setup_with_blocks(8)
    }

    /// Larger device for index-churn-heavy tests (no GC runs inside these
    /// tests, so retired metadata pages are never reclaimed).
    fn setup_with_blocks(blocks: u32) -> (Ftl, RhikIndex) {
        let ftl = Ftl::new(FtlConfig {
            geometry: rhik_nand::NandGeometry {
                blocks,
                pages_per_block: 8,
                page_size: 512,
                spare_size: 16,
                channels: 2,
            },
            ..FtlConfig::tiny()
        });
        let idx = RhikIndex::new(
            RhikConfig {
                initial_dir_bits: 1,
                dir_flush_interval: 1_000_000,
                hop_width: 16,
                occupancy_threshold: 0.6,
                ..Default::default()
            },
            512,
        );
        (ftl, idx)
    }

    fn sig(n: u64) -> KeySignature {
        // splitmix64: well-mixed bits, standing in for real murmur output.
        let mut z = n.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        KeySignature(z ^ (z >> 31))
    }

    #[test]
    fn insert_lookup_remove_cycle() {
        let (mut ftl, mut idx) = setup();
        let p = Ppa::new(1, 2);
        assert_eq!(idx.insert(&mut ftl, sig(0xabc), p).unwrap(), InsertOutcome::Inserted);
        assert_eq!(idx.lookup(&mut ftl, sig(0xabc)).unwrap(), Some(p));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.remove(&mut ftl, sig(0xabc)).unwrap(), Some(p));
        assert_eq!(idx.lookup(&mut ftl, sig(0xabc)).unwrap(), None);
        assert_eq!(idx.len(), 0);
    }

    #[test]
    fn update_reports_old_location() {
        let (mut ftl, mut idx) = setup();
        idx.insert(&mut ftl, sig(7), Ppa::new(0, 1)).unwrap();
        let out = idx.insert(&mut ftl, sig(7), Ppa::new(0, 2)).unwrap();
        assert_eq!(out, InsertOutcome::Updated { old: Ppa::new(0, 1) });
        assert_eq!(idx.len(), 1, "updates do not grow the index");
        assert_eq!(idx.lookup(&mut ftl, sig(7)).unwrap(), Some(Ppa::new(0, 2)));
    }

    #[test]
    fn lookups_never_exceed_one_flash_read() {
        let (mut ftl, mut idx) = setup_with_blocks(512);
        // Insert enough keys to spill tables to flash (cache is 4 KiB = 8
        // tables of 512 B; dir starts at 2 tables but resizes up).
        for i in 0..400u64 {
            idx.insert(&mut ftl, sig(i), Ppa::new(0, (i % 8) as u32)).unwrap();
        }
        // Force write-back so tables live on flash, then drop the cache.
        idx.flush(&mut ftl).unwrap();
        for i in 0..400u64 {
            let s = sig(i);
            assert!(idx.lookup(&mut ftl, s).unwrap().is_some(), "key {i} lost");
        }
        let st = idx.stats();
        assert!(st.pct_lookups_within(1) >= 100.0 - 1e-9, "max-1-read violated");
    }

    #[test]
    fn occupancy_triggers_resize() {
        let (mut ftl, mut idx) = setup();
        let cap0 = idx.total_capacity();
        let bits0 = idx.directory().bits();
        let mut i = 0u64;
        while idx.directory().bits() == bits0 {
            idx.insert(&mut ftl, sig(i ^ 0xAAAA_0000), Ppa::new(0, 0)).unwrap();
            i += 1;
            assert!(i < 10_000, "resize never triggered");
        }
        assert_eq!(idx.directory().bits(), bits0 + 1);
        assert_eq!(idx.total_capacity(), cap0 * 2);
        // Every key survives the migration.
        for k in 0..i {
            let s = sig(k ^ 0xAAAA_0000);
            assert!(idx.lookup(&mut ftl, s).unwrap().is_some(), "key {k} lost in resize");
        }
        assert_eq!(idx.stats().resizes.len(), 1);
        let ev = idx.stats().resizes[0];
        assert!(ev.keys_before > 0);
        assert!(ev.flash_programs > 0);
    }

    #[test]
    fn many_keys_many_resizes() {
        let (mut ftl, mut idx) = setup_with_blocks(2048);
        let n = 1500u64;
        for i in 0..n {
            idx.insert(&mut ftl, sig(i ^ 0xBBBB_0000), Ppa::new(0, 0)).unwrap();
        }
        assert_eq!(idx.len(), n);
        assert!(idx.stats().resizes.len() >= 3, "resizes: {}", idx.stats().resizes.len());
        assert!(idx.occupancy() < idx.config().occupancy_threshold);
        for i in 0..n {
            let s = sig(i ^ 0xBBBB_0000);
            assert!(idx.lookup(&mut ftl, s).unwrap().is_some(), "key {i} lost");
        }
    }

    #[test]
    fn contains_is_signature_membership() {
        let (mut ftl, mut idx) = setup();
        idx.insert(&mut ftl, sig(1), Ppa::new(0, 0)).unwrap();
        assert!(idx.contains(&mut ftl, sig(1)).unwrap());
        assert!(!idx.contains(&mut ftl, sig(2)).unwrap());
    }

    #[test]
    fn flush_persists_tables_and_directory() {
        let (mut ftl, mut idx) = setup();
        for i in 0..50u64 {
            idx.insert(&mut ftl, sig(i.wrapping_add(5_000_000)), Ppa::new(0, 0)).unwrap();
        }
        idx.flush(&mut ftl).unwrap();
        assert!(!idx.dir_snapshot().is_empty());
        // All tables with records have a persistent location.
        for slot in 0..idx.directory().len() as u32 {
            let e = idx.directory().entry(slot);
            if e.records > 0 {
                assert!(e.table_ppa.is_some(), "slot {slot} not persisted");
            }
        }
        // The snapshot round-trips through flash bytes.
        let mut pages = Vec::new();
        for &ppa in idx.dir_snapshot() {
            pages.push(ftl.read_index_page(ppa).unwrap());
        }
        let rebuilt = Directory::from_snapshot_pages(&pages).unwrap();
        assert_eq!(rebuilt.bits(), idx.directory().bits());
    }

    #[test]
    fn live_pages_reported_per_block() {
        let (mut ftl, mut idx) = setup();
        for i in 0..100u64 {
            idx.insert(&mut ftl, sig(i.wrapping_add(6_000_000)), Ppa::new(0, 0)).unwrap();
        }
        idx.flush(&mut ftl).unwrap();
        let mut total = 0;
        for b in 0..ftl.geometry().blocks {
            total += idx.live_index_pages_in(b).len();
        }
        let persisted_tables = (0..idx.directory().len() as u32)
            .filter(|&s| idx.directory().entry(s).table_ppa.is_some())
            .count();
        assert_eq!(total, persisted_tables + idx.dir_snapshot().len());
    }

    #[test]
    fn relocation_moves_table_and_preserves_lookups() {
        let (mut ftl, mut idx) = setup();
        for i in 0..60u64 {
            idx.insert(&mut ftl, sig(i.wrapping_add(7_000_000)), Ppa::new(0, 0)).unwrap();
        }
        idx.flush(&mut ftl).unwrap();
        let slot = (0..idx.directory().len() as u32)
            .find(|&s| idx.directory().entry(s).table_ppa.is_some())
            .unwrap();
        let old = idx.directory().entry(slot).table_ppa.unwrap();
        let key = idx.directory().cache_key(slot);
        // Drop the cached copy so relocation reads from flash.
        ftl.cache().remove(key);
        let new = idx.relocate_index_page(&mut ftl, key, old).unwrap().unwrap();
        assert_ne!(new, old);
        assert_eq!(idx.directory().entry(slot).table_ppa, Some(new));
        // Stale relocation requests are ignored.
        assert_eq!(idx.relocate_index_page(&mut ftl, key, old).unwrap(), None);
    }

    #[test]
    fn stale_generation_cache_entries_are_not_written_back() {
        let (mut ftl, mut idx) = setup();
        let mut i = 0u64;
        let bits0 = idx.directory().bits();
        while idx.directory().bits() == bits0 {
            idx.insert(&mut ftl, sig(i ^ 0xCCCC_0000), Ppa::new(0, 0)).unwrap();
            i += 1;
        }
        // After resize the cache may still hold old-generation pages; a
        // flush must not resurrect them.
        let tables_before = (0..idx.directory().len() as u32)
            .filter_map(|s| idx.directory().entry(s).table_ppa)
            .collect::<Vec<_>>();
        idx.flush(&mut ftl).unwrap();
        for ppa in tables_before {
            // Old pointers may have been superseded but never dangle into
            // erased blocks (GC hasn't run here).
            let _ = ftl.read_index_page(ppa).unwrap();
        }
    }

    #[test]
    fn hyper_local_absorbs_table_full() {
        // Tiny tables (R=30, hop 4) + threshold 1.0 so the global resize
        // never rescues a locally-full bucket: without hyper-local this
        // aborts, with it every insert lands.
        let mk = |hyper_local: bool| {
            RhikIndex::new(
                RhikConfig {
                    initial_dir_bits: 0,
                    hop_width: 4,
                    occupancy_threshold: 1.0,
                    dir_flush_interval: 1_000_000,
                    hyper_local,
                    ..Default::default()
                },
                512,
            )
        };
        // Baseline: find a fill level where the paper design aborts.
        let mut ftl = Ftl::new(FtlConfig::tiny());
        let mut plain = mk(false);
        let mut abort_at = None;
        for i in 0..30u64 {
            if plain.insert(&mut ftl, sig(i), Ppa::new(0, 0)).is_err() {
                abort_at = Some(i);
                break;
            }
        }
        let abort_at = abort_at.expect("hop width 4 must abort before 30 inserts");

        // Hyper-local: same stream sails past the abort point.
        let mut ftl = Ftl::new(FtlConfig::tiny());
        let mut hl = mk(true);
        for i in 0..=abort_at {
            hl.insert(&mut ftl, sig(i), Ppa::new(0, 0))
                .unwrap_or_else(|e| panic!("hyper-local aborted at {i}: {e}"));
        }
        assert_eq!(hl.len(), abort_at + 1);
        // Every key — primary or overflow — resolves, updates and removals
        // included.
        for i in 0..=abort_at {
            assert!(hl.lookup(&mut ftl, sig(i)).unwrap().is_some(), "key {i} lost");
        }
        hl.insert(&mut ftl, sig(0), Ppa::new(1, 1)).unwrap();
        assert_eq!(hl.lookup(&mut ftl, sig(0)).unwrap(), Some(Ppa::new(1, 1)));
        assert_eq!(hl.remove(&mut ftl, sig(abort_at)).unwrap(), Some(Ppa::new(0, 0)));
        assert_eq!(hl.len(), abort_at);
    }

    #[test]
    fn hyper_local_overflow_dissolves_on_resize() {
        let mut ftl = Ftl::new(FtlConfig {
            geometry: rhik_nand::NandGeometry {
                blocks: 256,
                pages_per_block: 8,
                page_size: 512,
                spare_size: 16,
                channels: 2,
            },
            ..FtlConfig::tiny()
        });
        let mut idx = RhikIndex::new(
            RhikConfig {
                initial_dir_bits: 0,
                hop_width: 4, // aborts early → overflow tables form
                occupancy_threshold: 0.9,
                dir_flush_interval: 1_000_000,
                hyper_local: true,
                ..Default::default()
            },
            512,
        );
        let n = 400u64;
        for i in 0..n {
            idx.insert(&mut ftl, sig(i), Ppa::new(0, 0)).unwrap();
            if idx.maintenance_due() {
                idx.maintain(&mut ftl).unwrap();
            }
        }
        assert!(idx.stats().resizes.len() >= 3);
        assert_eq!(idx.len(), n);
        for i in 0..n {
            assert!(idx.lookup(&mut ftl, sig(i)).unwrap().is_some(), "key {i} lost");
        }
    }

    #[test]
    fn mid_migration_interleaving_loses_no_keys() {
        // Batch 1 keeps each doubling in flight across many operations;
        // mirror the index against a HashMap while inserts, lookups, and
        // removes land mid-migration, then drain it completely — every key
        // must come out exactly once (no loss, no double-residency).
        let mut ftl = Ftl::new(FtlConfig {
            geometry: rhik_nand::NandGeometry {
                blocks: 1024,
                pages_per_block: 8,
                page_size: 512,
                spare_size: 16,
                channels: 2,
            },
            ..FtlConfig::tiny()
        });
        let mut idx = RhikIndex::new(
            RhikConfig {
                initial_dir_bits: 0,
                dir_flush_interval: 1_000_000,
                hop_width: 16,
                occupancy_threshold: 0.6,
                resize_migration_batch: 1,
                ..Default::default()
            },
            512,
        );
        let mut mirror = std::collections::HashMap::new();
        let mut in_flight_ops = 0u64;
        for i in 0..1200u64 {
            let s = sig(i ^ 0xD1D1_0000);
            let p = Ppa::new((i % 32) as u32, (i % 8) as u32);
            idx.insert(&mut ftl, s, p).unwrap();
            mirror.insert(s, p);
            if idx.resize_in_progress() {
                in_flight_ops += 1;
                // Probe older keys while the cursor is mid-directory: some
                // route to the frozen old tables, some to already-split
                // slots.
                let probe = sig((i / 2) ^ 0xD1D1_0000);
                assert_eq!(idx.lookup(&mut ftl, probe).unwrap(), mirror.get(&probe).copied());
                if i % 5 == 0 {
                    let victim = sig((i / 3) ^ 0xD1D1_0000);
                    assert_eq!(idx.remove(&mut ftl, victim).unwrap(), mirror.remove(&victim));
                }
            }
        }
        assert!(idx.stats().resizes.len() >= 3, "want ≥3 doublings under interleaved ops");
        assert!(in_flight_ops > 50, "migrations completed too eagerly: {in_flight_ops}");
        assert_eq!(idx.len(), mirror.len() as u64);
        for (s, p) in &mirror {
            assert_eq!(idx.lookup(&mut ftl, *s).unwrap(), Some(*p), "key lost");
        }
        // Un-migrated-slot lookups stayed within the one-flash-read bound.
        assert!(idx.stats().pct_lookups_within(1) >= 100.0 - 1e-9);
        // Drain: each key removable exactly once, then gone.
        let keys: Vec<_> = mirror.keys().copied().collect();
        for s in &keys {
            assert!(idx.remove(&mut ftl, *s).unwrap().is_some(), "key vanished before drain");
        }
        assert_eq!(idx.len(), 0);
        for s in &keys {
            assert_eq!(idx.lookup(&mut ftl, *s).unwrap(), None, "double-resident key");
        }
    }

    #[test]
    fn maintain_step_drains_migration_without_foreground_ops() {
        let (mut ftl, mut idx) = setup_with_blocks(256);
        let bits0 = idx.directory().bits();
        let mut i = 0u64;
        while !idx.resize_in_progress() {
            idx.insert(&mut ftl, sig(i ^ 0xEEEE_0000), Ppa::new(0, 0)).unwrap();
            i += 1;
            assert!(i < 10_000, "resize never triggered");
        }
        // Idle-time stepping only: no further foreground traffic.
        let mut steps = 0u32;
        while idx.maintain_step(&mut ftl).unwrap() {
            steps += 1;
            assert!(steps < 10_000, "maintain_step never converged");
        }
        assert!(!idx.resize_in_progress());
        assert_eq!(idx.directory().bits(), bits0 + 1);
        assert_eq!(idx.stats().resizes.len(), 1);
        for k in 0..i {
            assert!(idx.lookup(&mut ftl, sig(k ^ 0xEEEE_0000)).unwrap().is_some(), "key {k} lost");
        }
    }

    #[test]
    fn audit_snapshot_stays_clean_through_resizes() {
        let (mut ftl, mut idx) = setup_with_blocks(512);
        let mut auditor = rhik_audit::DeviceAuditor::new();
        for i in 0..400u64 {
            idx.insert(&mut ftl, sig(i ^ 0xF00D_0000), Ppa::new(0, (i % 8) as u32)).unwrap();
            if i % 50 == 0 {
                let report =
                    auditor.check_device(&ftl.audit_flash(0), &idx.audit_snapshot(&ftl, 0), &[]);
                assert!(report.is_ok(), "mid-fill audit failed: {report}");
            }
        }
        assert!(idx.stats().resizes.len() >= 2, "audit must cover post-resize state");
        idx.flush(&mut ftl).unwrap();
        let report = auditor.check_device(&ftl.audit_flash(0), &idx.audit_snapshot(&ftl, 0), &[]);
        assert!(report.is_ok(), "post-flush audit failed: {report}");
        let snap = idx.audit_snapshot(&ftl, 0);
        assert_eq!(snap.len, idx.len());
        assert_eq!(snap.directory_records, idx.len());
        assert!(!snap.owned_pages.is_empty());
    }

    #[test]
    fn audit_snapshot_tracks_migration_accounting() {
        let (mut ftl, _) = setup_with_blocks(512);
        let mut idx = RhikIndex::new(
            RhikConfig {
                initial_dir_bits: 1,
                dir_flush_interval: 1_000_000,
                hop_width: 16,
                occupancy_threshold: 0.6,
                resize_migration_batch: 1,
                ..Default::default()
            },
            512,
        );
        let mut auditor = rhik_audit::DeviceAuditor::new();
        let mut saw_migration = false;
        for i in 0..600u64 {
            idx.insert(&mut ftl, sig(i ^ 0xBEEF_0000), Ppa::new(0, 0)).unwrap();
            if idx.resize_in_progress() {
                saw_migration = true;
                let snap = idx.audit_snapshot(&ftl, 0);
                let m = snap.migration.as_ref().expect("migration reported");
                assert_eq!(m.migrated + m.pending, m.keys_before, "accounting broke mid-split");
                let report = auditor.check_device(&ftl.audit_flash(0), &snap, &[]);
                assert!(report.is_ok(), "mid-migration audit failed: {report}");
            }
        }
        assert!(saw_migration, "batch 1 must leave migrations observable");
    }

    #[test]
    fn dram_bytes_is_directory_only() {
        let (_, idx) = setup();
        assert_eq!(idx.dram_bytes(), idx.directory().dram_bytes());
        assert_eq!(idx.name(), "rhik");
        assert_eq!(idx.capacity(), Some(idx.total_capacity()));
    }
}
