//! RHIK — the Re-configurable Hash-based Index for KVSSD (§IV).
//!
//! A two-level hash table:
//!
//! * the **directory layer** lives in SSD DRAM, holds `D` entries selected
//!   by the `log2(D)` least-significant bits of the 64-bit key signature,
//!   and points each entry at one flash page;
//! * the **record layer** is one fixed-size hopscotch hash table per flash
//!   page (`R = ⌊p / (kh + ppa + hi)⌋` records, Eq. 1), served from flash
//!   unless cached in the shared DRAM page cache.
//!
//! The design guarantees **at most one flash read per index lookup**, and
//! re-configures itself — doubling the directory and the table count, and
//! migrating records *by stored signature*, never touching KV data — when
//! occupancy crosses a threshold (default 80 %).
//!
//! Entry point: [`RhikIndex`], which implements
//! [`rhik_ftl::IndexBackend`], so it plugs straight into the device
//! emulator and the GC machinery.

mod bucket;
mod config;
mod directory;
mod index;
mod record;
mod resize;

pub use bucket::{RecordTable, TableInsert};
pub use config::RhikConfig;
pub use directory::{DirEntry, Directory};
pub use index::RhikIndex;
pub use record::IndexRecord;
