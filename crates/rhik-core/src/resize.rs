//! Index re-configuration (§IV-A2), amortized.
//!
//! "Every time while resizing, a new index is initialized with double the
//! capacity of the current active index. [...] Our key to achieving faster
//! migration lies in the fact that we store the 64-bit key signatures
//! inside the hash indexes in the secondary layer. We reuse these key
//! signatures to rearrange the records in the new index quickly. The KV
//! pairs stored in the device are not accessed."
//!
//! The paper's implementation holds the submission queue for the whole
//! migration (§VI calls real-time index scaling out as future work). Here
//! the doubling is a resumable state machine instead: [`begin`] installs
//! the doubled directory next to the frozen old one with a migration
//! cursor, and [`step`] — invoked with a small batch bound by every index
//! operation, or with no bound by idle-time maintenance / the
//! `stop_the_world` fallback — splits old slots one at a time. Each old
//! table splits into exactly two successor tables (low-bit extension),
//! written to flash as they fill, so peak DRAM is two tables regardless of
//! index size; old pages are marked stale for the garbage collector once
//! their slot has split. The completion [`ResizeEvent`] carries CPU and
//! simulated-media time plus the per-step breakdown (`steps`,
//! `max_step_media_ns`) so the stop-the-world vs incremental stall
//! comparison is measurable.
//!
//! Invariants while a migration is in flight:
//!
//! * **Old tables are frozen.** Mutations split their own slot on demand
//!   (the `target` argument) before touching it, so record content only
//!   ever moves forward into the new generation. Old pages may still
//!   change *location* (dirty write-back, GC relocation) — the old
//!   directory entry tracks that.
//! * **Lookups on un-split slots read the old table** — through the same
//!   cache path as live tables, preserving the ≤ 1-flash-read bound.
//! * **Never fail half-done.** [`begin`] keeps the monolithic pre-flight
//!   free-space check; every slot split is internally retryable (successor
//!   pages are replaced and the losers retired if a flash write fails
//!   partway), and a mid-migration `NeedsGc` simply pauses the cursor
//!   until the device garbage-collects.

use rhik_ftl::layout::SpareMeta;
use rhik_ftl::{Ftl, IndexBackend, IndexError, ResizeEvent};
use rhik_nand::NandOp;

use crate::bucket::{RecordTable, TableInsert};
use crate::directory::Directory;
use crate::index::{RhikIndex, OVERFLOW_KEY};

/// An in-flight incremental doubling.
pub(crate) struct Migration {
    /// The frozen pre-doubling directory. Tables it references never gain
    /// or lose records after [`begin`]; only their flash location may move.
    pub(crate) old: Directory,
    /// Slots `< cursor` have migrated (plus any in `split_ahead`).
    cursor: u32,
    /// Out-of-order splits forced by mutations ahead of the cursor.
    split_ahead: Vec<bool>,
    /// Completion flag: the new directory is flushed and the event is ready.
    finalized: bool,
    // ---- instrumentation for the completion ResizeEvent.
    keys_before: u64,
    tables_before: u64,
    migrated: u64,
    flash_reads: u64,
    flash_programs: u64,
    cpu_ns: u64,
    media_ns: u64,
    steps: u64,
    max_step_media_ns: u64,
}

impl Migration {
    /// Whether `old_slot`'s records have already moved to the new
    /// directory (reads for it must then use the current directory).
    pub(crate) fn is_split(&self, old_slot: u32) -> bool {
        old_slot < self.cursor || self.split_ahead[old_slot as usize]
    }

    /// `(slots_migrated, slots_total)` over the frozen old directory,
    /// counting out-of-order splits forced by mutations.
    pub(crate) fn progress(&self) -> (u64, u64) {
        let total = self.split_ahead.len() as u64;
        let done = (0..self.split_ahead.len() as u32).filter(|&s| self.is_split(s)).count() as u64;
        (done, total)
    }

    /// Position of the in-order migration cursor (audit).
    pub(crate) fn cursor(&self) -> u32 {
        self.cursor
    }

    /// Records moved to the new generation so far (audit).
    pub(crate) fn migrated(&self) -> u64 {
        self.migrated
    }

    /// Index size captured at [`begin`] (audit: `migrated + pending`
    /// over the frozen old tables must equal this).
    pub(crate) fn keys_before(&self) -> u64 {
        self.keys_before
    }

    fn event(&self) -> ResizeEvent {
        ResizeEvent {
            keys_before: self.keys_before,
            tables_before: self.tables_before,
            flash_reads: self.flash_reads,
            flash_programs: self.flash_programs,
            cpu_ns: self.cpu_ns,
            media_ns: self.media_ns,
            steps: self.steps,
            max_step_media_ns: self.max_step_media_ns,
        }
    }
}

/// Simulated media time for `reads` + `programs` full-page transfers.
fn media_ns(ftl: &Ftl, reads: u64, programs: u64) -> u64 {
    let lat = &ftl.profile().latency;
    let page_bytes = ftl.geometry().page_size;
    let zero = rhik_nand::Ppa::new(0, 0);
    reads * lat.duration_ns(&NandOp::Read { ppa: zero, bytes: page_bytes })
        + programs * lat.duration_ns(&NandOp::Program { ppa: zero, bytes: page_bytes })
}

/// Install the doubled directory and the migration cursor (resize step 1).
///
/// Keeps the monolithic pre-flight: the whole migration must fit the free
/// pool up front, or the resize is deferred wholesale (`NeedsGc`) with the
/// directory untouched. Also re-anchors the persistent snapshot to the
/// pre-doubling directory — periodic snapshot flushes are suppressed while
/// migrating (a snapshot cannot describe a half-split configuration), so
/// this is what a mid-migration crash mounts.
pub(crate) fn begin(idx: &mut RhikIndex, ftl: &mut Ftl) -> Result<(), IndexError> {
    debug_assert!(idx.migration.is_none(), "resize begun while one is in flight");
    let old_tables = idx.directory().len() as u64;
    let page_size = ftl.geometry().page_size as usize;
    let snapshot_pages = idx.directory().snapshot_pages(page_size, 0).len() as u64 * 2;
    let overflow_tables = (0..idx.directory().len() as u32)
        .filter(|&s| idx.directory().entry(s).has_overflow)
        .count() as u64;
    // Worst case each split target also needs a fresh overflow table.
    let pages_needed = 4 * old_tables + overflow_tables + snapshot_pages + 1;
    let ppb = ftl.geometry().pages_per_block as u64;
    if (ftl.free_blocks() as u64) * ppb < pages_needed {
        return Err(IndexError::NeedsGc);
    }

    let t0 = std::time::Instant::now();
    let stats_before = ftl.stats();
    idx.flush_directory(ftl)?;
    let stats_after = ftl.stats();
    let flash_programs = stats_after.index_page_programs - stats_before.index_page_programs;

    let keys_before = idx.len();
    let old = idx.dir_mut().begin_doubling();
    let slots = old.len();
    idx.migration = Some(Migration {
        old,
        cursor: 0,
        split_ahead: vec![false; slots],
        finalized: false,
        keys_before,
        tables_before: old_tables,
        migrated: 0,
        flash_reads: 0,
        flash_programs,
        cpu_ns: t0.elapsed().as_nanos() as u64,
        media_ns: media_ns(ftl, 0, flash_programs),
        steps: 0,
        max_step_media_ns: 0,
    });
    ftl.telemetry().counter_add("rhik_resizes_started", 1);
    // The DRAM directory just doubled; publish the read view's next
    // generation so lock-free readers re-walk under the new bits (record
    // head PPAs are untouched by the table splits that follow, so the
    // view needs no per-split work).
    idx.note_view_doubled();
    Ok(())
}

/// Advance the in-flight migration by up to `max_slots` old slots. A
/// mutation passes its `target` slot, which splits first (and does not
/// count against slots the cursor owes). Finalizes — new directory
/// flushed, [`ResizeEvent`] recorded, migration cleared — when the last
/// slot migrates. No-op if no migration is in flight.
///
/// Returns the number of slots split. On `NeedsGc` the cursor simply
/// pauses where it is; the caller re-enters after garbage collection.
pub(crate) fn step(
    idx: &mut RhikIndex,
    ftl: &mut Ftl,
    max_slots: u32,
    target: Option<u32>,
) -> Result<u32, IndexError> {
    let Some(mut m) = idx.migration.take() else { return Ok(0) };
    let t0 = std::time::Instant::now();
    let before = ftl.stats();
    // Media ops in this batch attribute to the resize stage, not to the
    // command-level flash read/program stages of the op that triggered it.
    let scope = ftl.set_stage_scope(Some(rhik_telemetry::Stage::ResizeMigrateBatch));
    let result = advance(idx, ftl, &mut m, max_slots, target);
    ftl.set_stage_scope(scope);
    let after = ftl.stats();
    let reads = after.index_page_reads - before.index_page_reads;
    let programs = after.index_page_programs - before.index_page_programs;
    let step_media = media_ns(ftl, reads, programs);
    m.flash_reads += reads;
    m.flash_programs += programs;
    m.cpu_ns += t0.elapsed().as_nanos() as u64;
    m.media_ns += step_media;
    m.steps += 1;
    m.max_step_media_ns = m.max_step_media_ns.max(step_media);
    let telemetry = ftl.telemetry();
    if telemetry.is_enabled() {
        telemetry.counter_add("rhik_resize_steps", 1);
        if let Ok(split) = &result {
            telemetry.counter_add("rhik_resize_slots_migrated", *split as u64);
        }
        if m.finalized {
            telemetry.counter_add("rhik_resizes_completed", 1);
        }
    }
    if m.finalized {
        debug_assert_eq!(m.migrated, m.keys_before, "resize lost records");
        idx.stats_mut().resizes.push(m.event());
        idx.resize_deferred = false;
    } else {
        idx.migration = Some(m);
    }
    result
}

fn advance(
    idx: &mut RhikIndex,
    ftl: &mut Ftl,
    m: &mut Migration,
    max_slots: u32,
    target: Option<u32>,
) -> Result<u32, IndexError> {
    let mut split = 0u32;
    if let Some(slot) = target {
        if !m.is_split(slot) {
            split_one(idx, ftl, m, slot)?;
            m.split_ahead[slot as usize] = true;
            split += 1;
        }
    }
    loop {
        // Skip slots mutations already split ahead of the cursor (free).
        while (m.cursor as usize) < m.split_ahead.len() && m.split_ahead[m.cursor as usize] {
            m.cursor += 1;
        }
        if (m.cursor as usize) >= m.split_ahead.len() || split >= max_slots {
            break;
        }
        let slot = m.cursor;
        split_one(idx, ftl, m, slot)?;
        m.cursor += 1;
        split += 1;
    }
    if (m.cursor as usize) >= m.split_ahead.len() {
        // Persist the new directory (the paper keeps a periodically-updated
        // copy; once migration completes the old snapshot describes a dead
        // configuration).
        idx.flush_directory(ftl)?;
        m.finalized = true;
    }
    Ok(split)
}

/// Split one old slot's records into its two successor slots by stored
/// signature, write the successors to flash, and retire the old pages.
fn split_one(
    idx: &mut RhikIndex,
    ftl: &mut Ftl,
    m: &mut Migration,
    slot: u32,
) -> Result<(), IndexError> {
    let page_size = ftl.geometry().page_size as usize;
    // The pre-flight budgeted the whole migration, but foreground writes
    // interleave with it; re-check the single-slot worst case (two
    // successors, each with a fresh overflow) so a split never starts it
    // cannot finish.
    let ppb = ftl.geometry().pages_per_block as u64;
    if (ftl.free_blocks() as u64) * ppb < 4 {
        return Err(IndexError::NeedsGc);
    }

    let records_per_table = idx.records_per_table();
    let hop_width = idx.config().hop_width;
    let old_bits = m.old.bits();
    let old_key = m.old.cache_key(slot);
    let entry = *m.old.entry(slot);

    // Fetch the old table (and its hyper-local overflow, if any): cache
    // first (old-generation keys), flash next. Read non-destructively —
    // the cached copy may be the only up-to-date one, and it must survive
    // if a successor write fails below.
    let fetch = |ftl: &mut Ftl,
                 idx: &mut RhikIndex,
                 cache_key: u64,
                 ppa: Option<rhik_nand::Ppa>|
     -> Result<Option<RecordTable>, IndexError> {
        if let Some(bytes) = ftl.cache().get(cache_key) {
            return Ok(Some(RecordTable::from_page(&bytes, records_per_table, hop_width)));
        }
        match ppa {
            Some(ppa) => {
                let bytes = ftl.read_index_page(ppa)?;
                idx.stats_mut().metadata_flash_reads += 1;
                Ok(Some(RecordTable::from_page(&bytes, records_per_table, hop_width)))
            }
            None => Ok(None),
        }
    };
    let table = fetch(ftl, idx, old_key, entry.table_ppa)?;
    let overflow = if entry.has_overflow {
        fetch(ftl, idx, OVERFLOW_KEY | old_key, entry.overflow_ppa)?
    } else {
        None
    };
    if table.is_none() && overflow.is_none() {
        debug_assert_eq!(
            entry.total_records(),
            0,
            "pageless directory entry must count no records"
        );
        return Ok(());
    }

    // Split by the new low bit, re-homing every record by signature.
    // Overflow records fold back into the halved primaries where they
    // fit; if hopscotch clustering rejects a record mid-migration, it
    // goes to a fresh overflow table for the target slot — the resize
    // must never fail half-done.
    let (lo_slot, hi_slot) = Directory::split_targets(slot, old_bits);
    let mut lo = RecordTable::new(records_per_table, hop_width);
    let mut hi = RecordTable::new(records_per_table, hop_width);
    let mut lo_ovf: Option<RecordTable> = None;
    let mut hi_ovf: Option<RecordTable> = None;
    let mut moved = 0u64;
    for (sig, ppa) in
        table.iter().flat_map(|t| t.iter()).chain(overflow.iter().flat_map(|t| t.iter()))
    {
        let target_slot = idx.directory().slot_of(sig);
        debug_assert!(
            target_slot == lo_slot || target_slot == hi_slot,
            "split record re-homed outside the two successor slots"
        );
        let (target, target_ovf) =
            if target_slot == lo_slot { (&mut lo, &mut lo_ovf) } else { (&mut hi, &mut hi_ovf) };
        match target.insert(sig, ppa) {
            TableInsert::Inserted => moved += 1,
            TableInsert::Updated { .. } => unreachable!("signatures unique within a table"),
            TableInsert::Full => {
                let ovf = target_ovf
                    .get_or_insert_with(|| RecordTable::new(records_per_table, hop_width));
                match ovf.insert(sig, ppa) {
                    TableInsert::Inserted => moved += 1,
                    TableInsert::Updated { .. } => {
                        unreachable!("signatures unique within a bucket")
                    }
                    TableInsert::Full => {
                        // Primary and a whole fresh overflow both full
                        // within hop range: statistically unreachable
                        // (the overflow is at most half a table); a
                        // half-done resize is unrecoverable, so fail
                        // loudly rather than corrupt.
                        panic!(
                            "resize migration overflowed twice at slot {target_slot}; \
                             hop width {hop_width} cannot sustain this distribution"
                        );
                    }
                }
            }
        }
    }

    // Persist the successors immediately (streamed migration). Replacing
    // (and retiring) any existing successor pointer makes a retry after a
    // mid-slot flash failure clean: the losing attempt's pages go stale.
    for (new_slot, new_table, new_ovf) in [(lo_slot, lo, lo_ovf), (hi_slot, hi, hi_ovf)] {
        if !new_table.is_empty() {
            let page = new_table.to_page(page_size);
            let ppa = ftl.write_index_page(page, SpareMeta::index_page())?;
            idx.stats_mut().metadata_flash_programs += 1;
            let entry = idx.dir_mut().entry_mut(new_slot);
            entry.records = new_table.len();
            if let Some(prev) = entry.table_ppa.replace(ppa) {
                ftl.retire_index_page(prev, page_size as u64);
            }
        }
        if let Some(ovf) = new_ovf {
            let page = ovf.to_page(page_size);
            let ppa = ftl.write_index_page(page, SpareMeta::index_page())?;
            idx.stats_mut().metadata_flash_programs += 1;
            let entry = idx.dir_mut().entry_mut(new_slot);
            entry.overflow_records = ovf.len();
            entry.has_overflow = true;
            if let Some(prev) = entry.overflow_ppa.replace(ppa) {
                ftl.retire_index_page(prev, page_size as u64);
            }
        }
    }

    // Retire the old pages for the garbage collector ("the flash pages
    // containing the old index records are marked stale", §IV-A2), and
    // drop their now-dead cached copies.
    for old_ppa in [entry.table_ppa, entry.overflow_ppa].into_iter().flatten() {
        ftl.retire_index_page(old_ppa, page_size as u64);
    }
    ftl.cache().remove(old_key);
    if entry.has_overflow {
        ftl.cache().remove(OVERFLOW_KEY | old_key);
    }
    m.migrated += moved;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RhikConfig;
    use rhik_ftl::{FtlConfig, IndexBackend};
    use rhik_nand::Ppa;
    use rhik_sigs::KeySignature;

    fn sig(n: u64) -> KeySignature {
        let mut z = n.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        KeySignature(z ^ (z >> 31))
    }

    fn grown_index_with(keys: u64, stop_the_world: bool) -> (Ftl, RhikIndex) {
        let mut ftl = Ftl::new(FtlConfig {
            geometry: rhik_nand::NandGeometry {
                blocks: 64,
                pages_per_block: 16,
                page_size: 512,
                spare_size: 16,
                channels: 2,
            },
            ..FtlConfig::tiny()
        });
        let mut idx = RhikIndex::new(
            RhikConfig {
                initial_dir_bits: 0,
                dir_flush_interval: 1_000_000,
                hop_width: 16,
                occupancy_threshold: 0.6,
                stop_the_world,
                ..Default::default()
            },
            512,
        );
        for i in 0..keys {
            idx.insert(&mut ftl, sig(i), Ppa::new(0, 0)).unwrap();
        }
        (ftl, idx)
    }

    fn grown_index(keys: u64) -> (Ftl, RhikIndex) {
        grown_index_with(keys, false)
    }

    #[test]
    fn resize_preserves_every_record() {
        let (mut ftl, mut idx) = grown_index(500);
        assert!(idx.stats().resizes.len() >= 4, "several doublings happened");
        for i in 0..500 {
            assert!(idx.lookup(&mut ftl, sig(i)).unwrap().is_some(), "key {i} lost");
        }
        assert_eq!(idx.len(), 500);
    }

    #[test]
    fn resize_never_reads_kv_data() {
        // Migration must only touch index pages: data-page read count stays
        // zero in an index-only workload.
        let (ftl, idx) = grown_index(300);
        assert!(idx.stats().resizes.len() >= 3);
        assert_eq!(ftl.stats().data_page_reads, 0);
    }

    #[test]
    fn resize_events_scale_linearly() {
        let (_ftl, idx) = grown_index(800);
        let events = &idx.stats().resizes;
        assert!(events.len() >= 4);
        // Table count doubles event over event...
        for w in events.windows(2) {
            assert_eq!(w[1].tables_before, w[0].tables_before * 2);
        }
        // ...and media work grows proportionally with the index, i.e. the
        // rate of change of resize cost stays bounded (Fig. 7's claim).
        for w in events.windows(2) {
            let grow = w[1].media_ns as f64 / w[0].media_ns.max(1) as f64;
            assert!(grow <= 4.0, "resize cost exploded: {grow}");
        }
    }

    #[test]
    fn old_pages_marked_stale() {
        let (ftl, idx) = grown_index(600);
        assert!(idx.stats().resizes.len() >= 3);
        // The superseded tables and snapshots appear as stale bytes on the
        // index stream.
        assert!(ftl.total_stale_bytes() > 0);
    }

    #[test]
    fn incremental_spreads_migration_over_steps() {
        let (_ftl, idx) = grown_index(500);
        let last = *idx.stats().resizes.last().unwrap();
        assert!(last.tables_before >= 8);
        // Amortized over many operations: several steps, each touching a
        // bounded slice of the media work.
        assert!(last.steps > 1, "incremental resize ran as one stall: {last:?}");
        assert!(
            last.max_step_media_ns < last.media_ns,
            "one step absorbed the whole migration: {last:?}"
        );
    }

    #[test]
    fn stop_the_world_runs_as_one_step() {
        let (_ftl, idx) = grown_index_with(500, true);
        assert!(idx.stats().resizes.len() >= 4);
        for ev in &idx.stats().resizes {
            assert_eq!(ev.steps, 1, "stop-the-world must migrate in one pass");
            // The single step absorbs all migration media work (media_ns
            // additionally counts the begin-time snapshot flush).
            assert!(ev.max_step_media_ns > 0);
            assert!(ev.max_step_media_ns <= ev.media_ns);
        }
    }

    #[test]
    fn incremental_and_monolithic_media_work_match() {
        // Amortization must not inflate flash traffic: the same fill in
        // both modes performs (nearly) identical migration reads/programs.
        let (_f1, inc) = grown_index_with(800, false);
        let (_f2, stw) = grown_index_with(800, true);
        let sum = |idx: &RhikIndex| {
            idx.stats().resizes.iter().map(|e| e.flash_reads + e.flash_programs).sum::<u64>()
        };
        let (a, b) = (sum(&inc) as f64, sum(&stw) as f64);
        assert!((a - b).abs() / b.max(1.0) <= 0.10, "incremental media work diverged: {a} vs {b}");
    }

    #[test]
    fn resize_precheck_defers_to_maintenance() {
        // A device too small for the doubled index must defer the resize —
        // directory untouched, record still inserted, maintenance flagged.
        let mut ftl = Ftl::new(FtlConfig::tiny()); // 8 blocks x 8 pages
        let mut idx = RhikIndex::new(
            RhikConfig {
                initial_dir_bits: 0,
                dir_flush_interval: 1_000_000,
                hop_width: 16,
                occupancy_threshold: 0.6,
                ..Default::default()
            },
            512,
        );
        // Consume nearly all flash with data.
        let mut i = 0u64;
        while ftl.store_pair(KeySignature(i), b"k", &[0u8; 400], 0).is_ok() {
            i += 1;
        }
        let _ = i;
        let bits_before = idx.directory().bits();
        // Insert past the threshold: records land, resize defers.
        let mut inserted = 0u64;
        for k in 0..25u64 {
            match idx.insert(&mut ftl, sig(k), Ppa::new(0, 0)) {
                Ok(_) => inserted += 1,
                Err(IndexError::TableFull { .. }) => break,
                Err(IndexError::NeedsGc) => break, // metadata write itself failed
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(inserted >= 18, "inserted {inserted}");
        if idx.maintenance_due() {
            // Deferred resize: directory untouched until maintain succeeds.
            assert_eq!(idx.directory().bits(), bits_before);
            assert_eq!(idx.maintain(&mut ftl).unwrap_err(), IndexError::NeedsGc);
        }
        // Every inserted record is still reachable.
        for k in 0..inserted {
            assert!(idx.lookup(&mut ftl, sig(k)).unwrap().is_some(), "key {k} lost");
        }
    }
}
