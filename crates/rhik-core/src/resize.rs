//! Index re-configuration (§IV-A2).
//!
//! "Every time while resizing, a new index is initialized with double the
//! capacity of the current active index. [...] Our key to achieving faster
//! migration lies in the fact that we store the 64-bit key signatures
//! inside the hash indexes in the secondary layer. We reuse these key
//! signatures to rearrange the records in the new index quickly. The KV
//! pairs stored in the device are not accessed."
//!
//! The migration streams: each old table splits into exactly two successor
//! tables (low-bit extension), which are written to flash as they fill, so
//! peak DRAM is two tables regardless of index size. Old table pages are
//! marked stale for the garbage collector afterwards. The device holds its
//! submission queue during the migration (§IV-A2); the recorded
//! [`ResizeEvent`] carries both CPU and simulated-media time so Fig. 7 can
//! report the resizing-time growth rate.

use rhik_ftl::layout::SpareMeta;
use rhik_ftl::{Ftl, IndexBackend, IndexError, ResizeEvent};
use rhik_nand::NandOp;

use crate::bucket::{RecordTable, TableInsert};
use crate::directory::Directory;
use crate::index::RhikIndex;

/// Double the index capacity, migrating all records by stored signature.
pub(crate) fn resize(idx: &mut RhikIndex, ftl: &mut Ftl) -> Result<(), IndexError> {
    let t0 = std::time::Instant::now();
    let keys_before = idx.len();
    let stats_before = ftl.stats();

    // ---- pre-flight: make sure the whole migration fits the free pool so
    // we never fail halfway with a half-built directory.
    let old_tables = idx.directory().len() as u64;
    let page_size = ftl.geometry().page_size as usize;
    let snapshot_pages = idx.directory().snapshot_pages(page_size, 0).len() as u64 * 2;
    let overflow_tables = (0..idx.directory().len() as u32)
        .filter(|&s| idx.directory().entry(s).has_overflow)
        .count() as u64;
    // Worst case each split target also needs a fresh overflow table.
    let pages_needed = 4 * old_tables + overflow_tables + snapshot_pages + 1;
    let ppb = ftl.geometry().pages_per_block as u64;
    if (ftl.free_blocks() as u64) * ppb < pages_needed {
        return Err(IndexError::NeedsGc);
    }

    let records_per_table = idx.records_per_table();
    let hop_width = idx.config().hop_width;
    let old_dir: Directory = idx.dir_mut().begin_doubling();
    let old_bits = old_dir.bits();

    let mut migrated = 0u64;
    for slot in 0..old_dir.len() as u32 {
        // Fetch the old table (and its hyper-local overflow, if any):
        // cache first (old-generation keys), flash next.
        let fetch = |ftl: &mut Ftl,
                     idx: &mut RhikIndex,
                     cache_key: u64,
                     ppa: Option<rhik_nand::Ppa>|
         -> Result<Option<RecordTable>, IndexError> {
            if let Some(ev) = ftl.cache().remove(cache_key) {
                return Ok(Some(RecordTable::from_page(&ev.data, records_per_table, hop_width)));
            }
            match ppa {
                Some(ppa) => {
                    let bytes = ftl.read_index_page(ppa)?;
                    idx.stats_mut().metadata_flash_reads += 1;
                    Ok(Some(RecordTable::from_page(&bytes, records_per_table, hop_width)))
                }
                None => Ok(None),
            }
        };
        let old_key = old_dir.cache_key(slot);
        let entry = *old_dir.entry(slot);
        let table = fetch(ftl, idx, old_key, entry.table_ppa)?;
        let overflow = if entry.has_overflow {
            fetch(ftl, idx, crate::index::OVERFLOW_KEY | old_key, entry.overflow_ppa)?
        } else {
            None
        };
        if table.is_none() && overflow.is_none() {
            debug_assert_eq!(entry.total_records(), 0);
            continue;
        }

        // Split by the new low bit, re-homing every record by signature.
        // Overflow records fold back into the halved primaries where they
        // fit; if hopscotch clustering rejects a record mid-migration, it
        // goes to a fresh overflow table for the target slot — the resize
        // must never fail half-done.
        let (lo_slot, hi_slot) = Directory::split_targets(slot, old_bits);
        let mut lo = RecordTable::new(records_per_table, hop_width);
        let mut hi = RecordTable::new(records_per_table, hop_width);
        let mut lo_ovf: Option<RecordTable> = None;
        let mut hi_ovf: Option<RecordTable> = None;
        for (sig, ppa) in
            table.iter().flat_map(|t| t.iter()).chain(overflow.iter().flat_map(|t| t.iter()))
        {
            let target_slot = idx.directory().slot_of(sig);
            debug_assert!(target_slot == lo_slot || target_slot == hi_slot);
            let (target, target_ovf) = if target_slot == lo_slot {
                (&mut lo, &mut lo_ovf)
            } else {
                (&mut hi, &mut hi_ovf)
            };
            match target.insert(sig, ppa) {
                TableInsert::Inserted => migrated += 1,
                TableInsert::Updated { .. } => unreachable!("signatures unique within a table"),
                TableInsert::Full => {
                    let ovf = target_ovf
                        .get_or_insert_with(|| RecordTable::new(records_per_table, hop_width));
                    match ovf.insert(sig, ppa) {
                        TableInsert::Inserted => migrated += 1,
                        TableInsert::Updated { .. } => {
                            unreachable!("signatures unique within a bucket")
                        }
                        TableInsert::Full => {
                            // Primary and a whole fresh overflow both full
                            // within hop range: statistically unreachable
                            // (the overflow is at most half a table); a
                            // half-done resize is unrecoverable, so fail
                            // loudly rather than corrupt.
                            panic!(
                                "resize migration overflowed twice at slot {target_slot};                                  hop width {hop_width} cannot sustain this distribution"
                            );
                        }
                    }
                }
            }
        }

        // Persist the successors immediately (streamed migration).
        for (new_slot, new_table, new_ovf) in [(lo_slot, lo, lo_ovf), (hi_slot, hi, hi_ovf)] {
            if !new_table.is_empty() {
                let page = new_table.to_page(page_size);
                let ppa = ftl.write_index_page(page, SpareMeta::index_page())?;
                idx.stats_mut().metadata_flash_programs += 1;
                let entry = idx.dir_mut().entry_mut(new_slot);
                entry.table_ppa = Some(ppa);
                entry.records = new_table.len();
            }
            if let Some(ovf) = new_ovf {
                let page = ovf.to_page(page_size);
                let ppa = ftl.write_index_page(page, SpareMeta::index_page())?;
                idx.stats_mut().metadata_flash_programs += 1;
                let entry = idx.dir_mut().entry_mut(new_slot);
                entry.overflow_ppa = Some(ppa);
                entry.overflow_records = ovf.len();
                entry.has_overflow = true;
            }
        }

        // Retire the old pages for the garbage collector ("the flash pages
        // containing the old index records are marked stale", §IV-A2).
        for old_ppa in [entry.table_ppa, entry.overflow_ppa].into_iter().flatten() {
            ftl.retire_index_page(old_ppa, page_size as u64);
        }
    }
    debug_assert_eq!(migrated, keys_before, "resize lost records");
    idx.set_len(migrated);

    // Persist the new directory (the paper keeps a periodically-updated
    // copy; after a resize the old snapshot describes a dead configuration).
    idx.flush_directory(ftl)?;

    // ---- instrumentation for Fig. 7.
    let stats_after = ftl.stats();
    let flash_reads = stats_after.index_page_reads - stats_before.index_page_reads;
    let flash_programs = stats_after.index_page_programs - stats_before.index_page_programs;
    let lat = &ftl.profile().latency;
    let page_bytes = ftl.geometry().page_size;
    let zero = rhik_nand::Ppa::new(0, 0);
    let media_ns = flash_reads * lat.duration_ns(&NandOp::Read { ppa: zero, bytes: page_bytes })
        + flash_programs * lat.duration_ns(&NandOp::Program { ppa: zero, bytes: page_bytes });
    idx.stats_mut().resizes.push(ResizeEvent {
        keys_before,
        tables_before: old_tables,
        flash_reads,
        flash_programs,
        cpu_ns: t0.elapsed().as_nanos() as u64,
        media_ns,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RhikConfig;
    use rhik_ftl::{FtlConfig, IndexBackend};
    use rhik_nand::Ppa;
    use rhik_sigs::KeySignature;

    fn sig(n: u64) -> KeySignature {
        let mut z = n.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        KeySignature(z ^ (z >> 31))
    }

    fn grown_index(keys: u64) -> (Ftl, RhikIndex) {
        let mut ftl = Ftl::new(FtlConfig {
            geometry: rhik_nand::NandGeometry {
                blocks: 64,
                pages_per_block: 16,
                page_size: 512,
                spare_size: 16,
                channels: 2,
            },
            ..FtlConfig::tiny()
        });
        let mut idx = RhikIndex::new(
            RhikConfig {
                initial_dir_bits: 0,
                dir_flush_interval: 1_000_000,
                hop_width: 16,
                occupancy_threshold: 0.6,
                ..Default::default()
            },
            512,
        );
        for i in 0..keys {
            idx.insert(&mut ftl, sig(i), Ppa::new(0, 0)).unwrap();
        }
        (ftl, idx)
    }

    #[test]
    fn resize_preserves_every_record() {
        let (mut ftl, mut idx) = grown_index(500);
        assert!(idx.stats().resizes.len() >= 4, "several doublings happened");
        for i in 0..500 {
            assert!(idx.lookup(&mut ftl, sig(i)).unwrap().is_some(), "key {i} lost");
        }
        assert_eq!(idx.len(), 500);
    }

    #[test]
    fn resize_never_reads_kv_data() {
        // Migration must only touch index pages: data-page read count stays
        // zero in an index-only workload.
        let (ftl, idx) = grown_index(300);
        assert!(idx.stats().resizes.len() >= 3);
        assert_eq!(ftl.stats().data_page_reads, 0);
    }

    #[test]
    fn resize_events_scale_linearly() {
        let (_ftl, idx) = grown_index(800);
        let events = &idx.stats().resizes;
        assert!(events.len() >= 4);
        // Table count doubles event over event...
        for w in events.windows(2) {
            assert_eq!(w[1].tables_before, w[0].tables_before * 2);
        }
        // ...and media work grows proportionally with the index, i.e. the
        // rate of change of resize cost stays bounded (Fig. 7's claim).
        for w in events.windows(2) {
            let grow = w[1].media_ns as f64 / w[0].media_ns.max(1) as f64;
            assert!(grow <= 4.0, "resize cost exploded: {grow}");
        }
    }

    #[test]
    fn old_pages_marked_stale() {
        let (ftl, idx) = grown_index(600);
        assert!(idx.stats().resizes.len() >= 3);
        // The superseded tables and snapshots appear as stale bytes on the
        // index stream.
        assert!(ftl.total_stale_bytes() > 0);
    }

    #[test]
    fn resize_precheck_defers_to_maintenance() {
        // A device too small for the doubled index must defer the resize —
        // directory untouched, record still inserted, maintenance flagged.
        let mut ftl = Ftl::new(FtlConfig::tiny()); // 8 blocks x 8 pages
        let mut idx = RhikIndex::new(
            RhikConfig {
                initial_dir_bits: 0,
                dir_flush_interval: 1_000_000,
                hop_width: 16,
                occupancy_threshold: 0.6,
                ..Default::default()
            },
            512,
        );
        // Consume nearly all flash with data.
        let mut i = 0u64;
        while ftl.store_pair(KeySignature(i), b"k", &[0u8; 400], 0).is_ok() {
            i += 1;
        }
        let _ = i;
        let bits_before = idx.directory().bits();
        // Insert past the threshold: records land, resize defers.
        let mut inserted = 0u64;
        for k in 0..25u64 {
            match idx.insert(&mut ftl, sig(k), Ppa::new(0, 0)) {
                Ok(_) => inserted += 1,
                Err(IndexError::TableFull { .. }) => break,
                Err(IndexError::NeedsGc) => break, // metadata write itself failed
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(inserted >= 18, "inserted {inserted}");
        if idx.maintenance_due() {
            // Deferred resize: directory untouched until maintain succeeds.
            assert_eq!(idx.directory().bits(), bits_before);
            assert_eq!(idx.maintain(&mut ftl).unwrap_err(), IndexError::NeedsGc);
        }
        // Every inserted record is still reachable.
        for k in 0..inserted {
            assert!(idx.lookup(&mut ftl, sig(k)).unwrap().is_some(), "key {k} lost");
        }
    }
}
