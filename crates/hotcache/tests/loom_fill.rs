#![cfg(loom)]
//! Loom model of the fill protocol race that version-based invalidation
//! must win: a writer mutates the authoritative "index" and *then* bumps
//! the version table, while a filler loads the version, reads the index,
//! re-checks the version, and only then admits. Loom explores every
//! interleaving of the two; in all of them a cache hit validated at the
//! current version must equal the index value (no interleaving may park
//! a stale value behind a current version tag).
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p rhik-hotcache --release loom_`

use bytes::Bytes;
use loom::sync::Arc;
use loom::thread;
use rhik_ftl::sync::atomic::{AtomicU64, Ordering};
use rhik_ftl::sync::VersionTable;
use rhik_hotcache::{CacheConfig, CacheLookup, HotCache};

const SIG: u64 = 0x5EED_CAFE_F00D_D00D;
const KEY: &[u8] = b"k";

fn value_of(index_value: u64) -> Bytes {
    Bytes::copy_from_slice(&index_value.to_le_bytes())
}

/// One writer performs bump-after-mutate updates; one filler runs the
/// load-version → read-index → re-check-version → admit protocol. After
/// both quiesce, a probe at the current version either misses or serves
/// exactly the final index value.
#[test]
fn loom_fill_race_never_caches_stale_under_current_version() {
    loom::model(|| {
        let index = Arc::new(AtomicU64::new(1));
        let versions = Arc::new(VersionTable::new(2));
        let cache = Arc::new(HotCache::new(CacheConfig::with_budget(4096)));

        let writer = {
            let (index, versions) = (Arc::clone(&index), Arc::clone(&versions));
            thread::spawn(move || {
                for v in 2..=3u64 {
                    // Bump-after-mutate: the index changes first, then
                    // the version — exactly the order the RHIK index's
                    // note_view_upsert/remove hooks use.
                    index.store(v, Ordering::SeqCst);
                    versions.bump(SIG);
                }
            })
        };
        let filler = {
            let (index, versions, cache) =
                (Arc::clone(&index), Arc::clone(&versions), Arc::clone(&cache));
            thread::spawn(move || {
                // Step 1: version before the index read.
                let v1 = versions.load(SIG);
                // Step 2: the index read (a racing writer may already
                // have mutated — then the re-check must fail).
                let observed = index.load(Ordering::SeqCst);
                // Step 3: re-check before admitting.
                if versions.load(SIG) == v1 {
                    cache.admit(SIG, KEY, value_of(observed), v1);
                }
            })
        };
        writer.join().unwrap();
        filler.join().unwrap();

        let current = versions.load(SIG);
        match cache.get(SIG, KEY, current) {
            CacheLookup::Hit(bytes) => {
                let truth = index.load(Ordering::SeqCst);
                assert_eq!(
                    &bytes[..],
                    &value_of(truth)[..],
                    "current-version hit disagrees with the index"
                );
            }
            CacheLookup::Stale | CacheLookup::Miss => {}
        }
    });
}

/// Two fillers race the same writer (e.g. two readers both missing on a
/// hot key while it is being overwritten): whichever admission lands,
/// a current-version hit still equals the index value.
#[test]
fn loom_concurrent_fills_agree_with_final_index_state() {
    loom::model(|| {
        let index = Arc::new(AtomicU64::new(1));
        let versions = Arc::new(VersionTable::new(2));
        let cache = Arc::new(HotCache::new(CacheConfig::with_budget(4096)));

        let writer = {
            let (index, versions) = (Arc::clone(&index), Arc::clone(&versions));
            thread::spawn(move || {
                index.store(2, Ordering::SeqCst);
                versions.bump(SIG);
            })
        };
        let fillers: Vec<_> = (0..2)
            .map(|_| {
                let (index, versions, cache) =
                    (Arc::clone(&index), Arc::clone(&versions), Arc::clone(&cache));
                thread::spawn(move || {
                    let v1 = versions.load(SIG);
                    let observed = index.load(Ordering::SeqCst);
                    if versions.load(SIG) == v1 {
                        cache.admit(SIG, KEY, value_of(observed), v1);
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for f in fillers {
            f.join().unwrap();
        }

        if let CacheLookup::Hit(bytes) = cache.get(SIG, KEY, versions.load(SIG)) {
            assert_eq!(&bytes[..], &value_of(2)[..], "hit after quiesce must be the final write");
        }
    });
}
