//! DRAM hot-object cache tier for the RHIK KVSSD.
//!
//! Sits *above* the index: a `get` probes the cache first and a hit
//! returns the value with zero directory work and zero flash reads —
//! the multiplicative read win on zipf-skewed workloads once the read
//! path itself is lock-free. Three mechanisms (DESIGN.md §cache tier):
//!
//! * **TinyLFU admission** ([`sketch`]): a count-min frequency sketch
//!   with periodic halving gates what may enter; a candidate only
//!   displaces a victim it out-ranks, so scans cannot flush the head.
//! * **Segmented-LRU eviction** ([`segment`]): probation/protected
//!   segments under a *hard* per-stripe byte budget (key + value +
//!   per-entry overhead all charged); the cache never exceeds its cap,
//!   rejecting admission instead (fail-open).
//! * **Version-based invalidation**: the index bumps a
//!   [`VersionTable`](rhik_ftl::sync::VersionTable) stripe after every
//!   value mutation; a fill tags its entry with the version read
//!   *before* the value, and a lookup serves only entries whose fill
//!   version still equals the current one. Staleness detection is
//!   therefore O(1) at the reader with no writer → cache communication.
//!
//! The cache is sharded into power-of-two stripes, each its own mutex,
//! so reader threads rarely contend; optionally, ultra-hot keys are
//!   replicated into every stripe so the hottest key's cacheline isn't
//! a convoy point either. All failure modes degrade to a miss — the
//! index stays the sole source of truth.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use bytes::Bytes;
use rhik_ftl::sync::{Counter, Mutex};

pub mod segment;
pub mod sketch;

use segment::{AdmitOutcome, Stripe, StripeLookup};

/// Per-entry DRAM overhead charged against the budget (re-exported for
/// budget math in benches/tests).
pub use segment::ENTRY_OVERHEAD;

/// Sketch frequency at which a key counts as ultra-hot and is
/// replicated into every stripe (when replication is enabled).
const REPLICATE_FREQ: u32 = 64;

/// Hot-object cache configuration. `Copy` so it can ride inside the
/// device config; default is **off** — the cache tier is strictly
/// opt-in and cache-off behavior is bit-identical to a build without it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    pub enabled: bool,
    /// Hard DRAM budget across all stripes, in bytes.
    pub budget_bytes: u64,
    /// Lock stripes (rounded up to a power of two, min 1).
    pub stripes: u32,
    /// Share of each stripe reserved for the protected LRU segment.
    pub protected_pct: u8,
    /// Replicate ultra-hot keys into every stripe so one hot key's
    /// cacheline is not a convoy point.
    pub replicate_hot: bool,
}

impl CacheConfig {
    /// The default: no cache tier.
    pub const fn off() -> Self {
        CacheConfig {
            enabled: false,
            budget_bytes: 0,
            stripes: 8,
            protected_pct: 80,
            replicate_hot: false,
        }
    }

    /// An enabled cache with `budget_bytes` of DRAM and default policy.
    pub const fn with_budget(budget_bytes: u64) -> Self {
        CacheConfig {
            enabled: true,
            budget_bytes,
            stripes: 8,
            protected_pct: 80,
            replicate_hot: false,
        }
    }

    pub const fn replicate(mut self, on: bool) -> Self {
        self.replicate_hot = on;
        self
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::off()
    }
}

/// Outcome of a cache probe.
pub enum CacheLookup {
    /// Current-version hit: serve the value, touch nothing else.
    Hit(Bytes),
    /// A resident entry's fill version was superseded — it has been
    /// dropped; fall through to the index.
    Stale,
    Miss,
}

/// Monotonic counters snapshot (all since construction).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub lookups: u64,
    pub hits: u64,
    pub stale_hits: u64,
    pub admits: u64,
    pub rejects: u64,
    pub evictions: u64,
    pub replica_admits: u64,
    /// Resident bytes / entries at snapshot time (gauges, not counters).
    pub bytes: u64,
    pub entries: u64,
}

/// What one [`HotCache::admit`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmitReport {
    /// The entry is now resident (in at least the home stripe).
    pub admitted: bool,
    /// Entries displaced (all stripes) to make room.
    pub evicted: u64,
    /// Replica copies placed in non-home stripes.
    pub replicated: u64,
}

/// One resident entry, exported for the cache↔index coherence audit.
pub struct CacheEntrySnapshot {
    pub sig: u64,
    pub key: Box<[u8]>,
    pub value: Bytes,
    /// The version the entry was filled at. Only entries whose fill
    /// version still matches the table are serveable (and auditable).
    pub version: u64,
}

/// The sharded hot-object cache.
pub struct HotCache {
    stripes: Box<[Mutex<Stripe>]>,
    stripe_mask: u64,
    replicate_hot: bool,
    lookups: Counter,
    hits: Counter,
    stale_hits: Counter,
    admits: Counter,
    rejects: Counter,
    evictions: Counter,
    replica_admits: Counter,
}

impl HotCache {
    /// Build a cache from its config. Callers gate on `cfg.enabled`
    /// themselves — constructing from a disabled config yields a
    /// functional cache with `cfg.budget_bytes` of room (used by tests).
    pub fn new(cfg: CacheConfig) -> Self {
        let n = cfg.stripes.clamp(1, 1 << 10).next_power_of_two() as usize;
        let per_stripe = cfg.budget_bytes / n as u64;
        let stripes = (0..n)
            .map(|_| Mutex::new(Stripe::new(per_stripe, cfg.protected_pct)))
            .collect::<Vec<_>>()
            .into();
        HotCache {
            stripes,
            stripe_mask: n as u64 - 1,
            replicate_hot: cfg.replicate_hot,
            lookups: Counter::new(),
            hits: Counter::new(),
            stale_hits: Counter::new(),
            admits: Counter::new(),
            rejects: Counter::new(),
            evictions: Counter::new(),
            replica_admits: Counter::new(),
        }
    }

    /// Home stripe of a signature. A different mix shift than the
    /// version table's so stripe and version striping decorrelate.
    #[inline]
    fn home(&self, sig: u64) -> usize {
        ((sig.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) & self.stripe_mask) as usize
    }

    /// The calling thread's affine stripe (replication probe order):
    /// different threads hammering the same ultra-hot key land on
    /// different stripes, so its replicas split the contention.
    #[inline]
    fn affine(&self) -> usize {
        let mut h = DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        (h.finish() & self.stripe_mask) as usize
    }

    fn lock(&self, idx: usize) -> rhik_ftl::sync::MutexGuard<'_, Stripe> {
        self.stripes[idx].lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Probe the cache. `current_version` must be the signature's
    /// version-table value loaded *before* this call (and before any
    /// fallback index read the caller will make on a miss).
    pub fn get(&self, sig: u64, key: &[u8], current_version: u64) -> CacheLookup {
        self.lookups.incr();
        let home = self.home(sig);
        let first = if self.replicate_hot { self.affine() } else { home };
        match self.lock(first).lookup(sig, key, current_version) {
            StripeLookup::Hit(v) => {
                self.hits.incr();
                return CacheLookup::Hit(v);
            }
            StripeLookup::Stale => {
                self.stale_hits.incr();
                return CacheLookup::Stale;
            }
            StripeLookup::Miss => {}
        }
        if first == home {
            return CacheLookup::Miss;
        }
        match self.lock(home).lookup(sig, key, current_version) {
            StripeLookup::Hit(v) => {
                self.hits.incr();
                CacheLookup::Hit(v)
            }
            StripeLookup::Stale => {
                self.stale_hits.incr();
                CacheLookup::Stale
            }
            StripeLookup::Miss => CacheLookup::Miss,
        }
    }

    /// Offer `(sig, key, value)` read from the index at `fill_version`.
    ///
    /// The caller must have (1) loaded `fill_version` *before* the index
    /// read and (2) re-checked that the table still holds that version
    /// *after* it — the bump-after-mutate protocol then guarantees the
    /// value is not older than the version it is tagged with.
    ///
    pub fn admit(&self, sig: u64, key: &[u8], value: Bytes, fill_version: u64) -> AdmitReport {
        let home = self.home(sig);
        let (outcome, replicate) = {
            let mut stripe = self.lock(home);
            let outcome = stripe.admit(sig, key, value.clone(), fill_version);
            let replicate =
                self.replicate_hot && outcome.admitted && stripe.estimate(sig) >= REPLICATE_FREQ;
            (outcome, replicate)
        };
        self.note_admit(&outcome);
        let mut report =
            AdmitReport { admitted: outcome.admitted, evicted: outcome.evicted, replicated: 0 };
        if replicate {
            for idx in 0..self.stripes.len() {
                if idx == home {
                    continue;
                }
                let outcome = self.lock(idx).admit(sig, key, value.clone(), fill_version);
                if outcome.admitted {
                    self.replica_admits.incr();
                    report.replicated += 1;
                }
                self.note_admit(&outcome);
                report.evicted += outcome.evicted;
            }
        }
        report
    }

    fn note_admit(&self, outcome: &AdmitOutcome) {
        if outcome.admitted {
            self.admits.incr();
        } else {
            self.rejects.incr();
        }
        self.evictions.add(outcome.evicted);
    }

    /// Resident bytes across all stripes.
    pub fn bytes(&self) -> u64 {
        (0..self.stripes.len()).map(|i| self.lock(i).bytes()).sum()
    }

    /// Resident entries across all stripes (replicas counted).
    pub fn entries(&self) -> u64 {
        (0..self.stripes.len()).map(|i| self.lock(i).entries() as u64).sum()
    }

    /// Counter + occupancy snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.lookups.get(),
            hits: self.hits.get(),
            stale_hits: self.stale_hits.get(),
            admits: self.admits.get(),
            rejects: self.rejects.get(),
            evictions: self.evictions.get(),
            replica_admits: self.replica_admits.get(),
            bytes: self.bytes(),
            entries: self.entries(),
        }
    }

    /// Snapshot every resident entry (replicas included) for the
    /// cache↔index coherence audit.
    pub fn snapshot(&self) -> Vec<CacheEntrySnapshot> {
        let mut out = Vec::new();
        for i in 0..self.stripes.len() {
            self.lock(i).for_each(&mut |sig, entry| {
                out.push(CacheEntrySnapshot {
                    sig,
                    key: entry.key.clone(),
                    value: entry.value.clone(),
                    version: entry.version,
                });
            });
        }
        out
    }
}

impl std::fmt::Debug for HotCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HotCache")
            .field("stripes", &self.stripes.len())
            .field("entries", &self.entries())
            .field("bytes", &self.bytes())
            .finish()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use rhik_ftl::sync::VersionTable;
    use std::sync::Arc;

    fn val(n: usize) -> Bytes {
        Bytes::copy_from_slice(&vec![0xCD; n])
    }

    #[test]
    fn fill_then_hit_then_invalidate() {
        let cache = HotCache::new(CacheConfig::with_budget(64 * 1024));
        let versions = VersionTable::new(10);
        let sig = 0xDEAD_BEEF;
        let v1 = versions.load(sig);
        assert!(matches!(cache.get(sig, b"k", v1), CacheLookup::Miss));
        cache.admit(sig, b"k", val(100), v1);
        match cache.get(sig, b"k", versions.load(sig)) {
            CacheLookup::Hit(v) => assert_eq!(v.len(), 100),
            _ => panic!("expected hit"),
        }
        versions.bump(sig); // a put/delete/relocation happened
        assert!(matches!(cache.get(sig, b"k", versions.load(sig)), CacheLookup::Stale));
        assert!(matches!(cache.get(sig, b"k", versions.load(sig)), CacheLookup::Miss));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.stale_hits), (1, 1));
    }

    #[test]
    fn hard_budget_holds_under_load() {
        let budget = 16 * 1024;
        let cache = HotCache::new(CacheConfig::with_budget(budget));
        for sig in 0..2000u64 {
            let key = sig.to_le_bytes();
            cache.get(sig, &key, 0);
            cache.admit(sig, &key, val(100), 0);
            assert!(cache.bytes() <= budget, "cache exceeded its hard budget");
        }
        assert!(cache.entries() > 0);
    }

    #[test]
    fn replication_spreads_hot_key_to_stripes() {
        let mut cfg = CacheConfig::with_budget(256 * 1024).replicate(true);
        cfg.stripes = 4;
        let cache = HotCache::new(cfg);
        let sig = 42u64;
        // Heat the key past REPLICATE_FREQ at its home stripe, re-admitting
        // so the post-admit estimate check can see it hot.
        for _ in 0..(REPLICATE_FREQ + 8) {
            cache.get(sig, b"hot", 0);
        }
        cache.admit(sig, b"hot", val(64), 0);
        assert!(cache.stats().replica_admits >= 3, "hot key must replicate to other stripes");
        assert!(cache.entries() >= 4);
    }

    #[test]
    fn concurrent_get_admit_with_invalidation_never_serves_stale() {
        let cache = Arc::new(HotCache::new(CacheConfig::with_budget(64 * 1024)));
        let versions = Arc::new(VersionTable::new(8));
        // The index: a mutex-protected value + version bumped after write,
        // mirroring the device protocol.
        let index = Arc::new(Mutex::new(0u64));
        let sig = 7u64;
        std::thread::scope(|scope| {
            // Writer: bump the value, then the version (the funnel order).
            {
                let (index, versions) = (Arc::clone(&index), Arc::clone(&versions));
                scope.spawn(move || {
                    for _ in 0..2000 {
                        *index.lock().unwrap_or_else(|p| p.into_inner()) += 1;
                        versions.bump(sig);
                    }
                });
            }
            for _ in 0..3 {
                let (cache, versions, index) =
                    (Arc::clone(&cache), Arc::clone(&versions), Arc::clone(&index));
                scope.spawn(move || {
                    for _ in 0..2000 {
                        let v1 = versions.load(sig);
                        match cache.get(sig, b"k", v1) {
                            CacheLookup::Hit(v) => {
                                let mut buf = [0u8; 8];
                                buf.copy_from_slice(&v);
                                let cached = u64::from_le_bytes(buf);
                                // The writer makes value == #increments and
                                // bumps after each, so a hit validated at
                                // version v1 must carry the value as of v1
                                // (± the one in-flight mutation). A stale
                                // serve shows up as cached < v1.
                                assert!(
                                    cached >= v1 && cached <= v1 + 1,
                                    "hit at version {v1} served value {cached}"
                                );
                            }
                            CacheLookup::Stale | CacheLookup::Miss => {
                                let value = *index.lock().unwrap_or_else(|p| p.into_inner());
                                if versions.load(sig) == v1 {
                                    cache.admit(
                                        sig,
                                        b"k",
                                        Bytes::copy_from_slice(&value.to_le_bytes()),
                                        v1,
                                    );
                                }
                            }
                        }
                    }
                });
            }
        });
    }
}
