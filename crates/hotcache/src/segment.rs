//! One cache stripe: a segmented LRU (probation / protected) under a
//! hard per-stripe byte budget, with TinyLFU-gated admission.
//!
//! New entries land in *probation*; a hit while on probation promotes to
//! *protected* (capped at a configured share of the stripe budget, the
//! overflow demoting back to probation). Eviction drains the probation
//! LRU first, so a key must prove itself twice — once to the frequency
//! sketch to get in, once with a real hit to escape probation — before
//! it can displace the protected working set.
//!
//! Everything here is mutated under the stripe's mutex (held by
//! [`HotCache`](crate::HotCache)); no interior synchronization.

use std::collections::{BTreeMap, HashMap};

use bytes::Bytes;

use crate::sketch::TinyLfu;

/// DRAM charged per entry beyond key+value payload (map node, orders,
/// bookkeeping) — keeps the budget honest for small values.
pub const ENTRY_OVERHEAD: u64 = 64;

/// A resident cache entry.
pub(crate) struct Entry {
    /// Full key bytes: signature collisions must miss, never alias.
    pub key: Box<[u8]>,
    pub value: Bytes,
    /// Stripe version observed *before* the value was read (the fill
    /// version). Serveable only while it equals the current version.
    pub version: u64,
    /// Recency stamp; doubles as the key into the segment order maps.
    stamp: u64,
    protected: bool,
}

impl Entry {
    pub(crate) fn charge(&self) -> u64 {
        self.key.len() as u64 + self.value.len() as u64 + ENTRY_OVERHEAD
    }
}

fn charge_of(key: &[u8], value: &Bytes) -> u64 {
    key.len() as u64 + value.len() as u64 + ENTRY_OVERHEAD
}

/// Outcome of a stripe lookup.
pub(crate) enum StripeLookup {
    Hit(Bytes),
    /// The entry's fill version no longer matches — it was removed; the
    /// caller falls through to the index.
    Stale,
    Miss,
}

/// Eviction/admission bookkeeping returned to the cache front-end.
#[derive(Default)]
pub(crate) struct AdmitOutcome {
    pub admitted: bool,
    pub evicted: u64,
}

pub(crate) struct Stripe {
    map: HashMap<u64, Entry>,
    /// stamp → sig recency orders (first = LRU).
    probation: BTreeMap<u64, u64>,
    protected: BTreeMap<u64, u64>,
    bytes: u64,
    protected_bytes: u64,
    budget: u64,
    protected_cap: u64,
    tick: u64,
    sketch: TinyLfu,
}

impl Stripe {
    pub(crate) fn new(budget: u64, protected_pct: u8) -> Self {
        let protected_cap = budget / 100 * protected_pct.min(95) as u64;
        Stripe {
            // bounded-by: eviction keeps `bytes <= budget`, capping
            // resident entries at what the byte budget admits.
            map: HashMap::new(),
            probation: BTreeMap::new(), // bounded-by: one stamp per resident entry (see map)
            protected: BTreeMap::new(), // bounded-by: one stamp per resident entry (see map)
            bytes: 0,
            protected_bytes: 0,
            budget,
            protected_cap,
            tick: 0,
            // One counter per plausible resident entry, ×8 so the sketch
            // also remembers the non-resident keys competing for entry.
            sketch: TinyLfu::new((budget / ENTRY_OVERHEAD * 8).max(64) as usize),
        }
    }

    fn next_stamp(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Look up `sig`, validating the full key and the fill version.
    /// Every call trains the frequency sketch (hits and misses alike —
    /// TinyLFU needs to see the keys it is keeping *out*).
    pub(crate) fn lookup(&mut self, sig: u64, key: &[u8], current_version: u64) -> StripeLookup {
        self.sketch.record(sig);
        let Some(entry) = self.map.get(&sig) else {
            return StripeLookup::Miss;
        };
        if &*entry.key != key {
            // Signature collision: serve nothing, keep the resident entry.
            return StripeLookup::Miss;
        }
        if entry.version != current_version {
            self.evict_sig(sig);
            return StripeLookup::Stale;
        }
        let value = entry.value.clone();
        self.touch(sig);
        StripeLookup::Hit(value)
    }

    /// Promote a just-hit entry: probation → protected (or refresh its
    /// protected recency), demoting the protected LRU if over the cap.
    fn touch(&mut self, sig: u64) {
        let stamp = self.next_stamp();
        let Some(entry) = self.map.get_mut(&sig) else {
            return;
        };
        let charge = entry.charge();
        if entry.protected {
            self.protected.remove(&entry.stamp);
        } else {
            self.probation.remove(&entry.stamp);
            entry.protected = true;
            self.protected_bytes += charge;
        }
        entry.stamp = stamp;
        self.protected.insert(stamp, sig);
        while self.protected_bytes > self.protected_cap {
            let Some((&lru_stamp, &lru_sig)) = self.protected.iter().next() else {
                break;
            };
            if lru_sig == sig {
                break; // never demote the entry just touched
            }
            self.protected.remove(&lru_stamp);
            let demote_stamp = self.next_stamp();
            if let Some(e) = self.map.get_mut(&lru_sig) {
                e.protected = false;
                e.stamp = demote_stamp;
                self.protected_bytes -= e.charge();
                self.probation.insert(demote_stamp, lru_sig);
            }
        }
    }

    /// Remove `sig` (stale entry, or audit-driven purge), fixing the
    /// byte accounting. Returns true if it was resident.
    pub(crate) fn evict_sig(&mut self, sig: u64) -> bool {
        let Some(entry) = self.map.remove(&sig) else {
            return false;
        };
        self.bytes -= entry.charge();
        if entry.protected {
            self.protected.remove(&entry.stamp);
            self.protected_bytes -= entry.charge();
        } else {
            self.probation.remove(&entry.stamp);
        }
        true
    }

    /// The segment eviction order: probation LRU first, protected LRU
    /// only once probation is empty.
    fn victim(&self) -> Option<u64> {
        self.probation.iter().next().or_else(|| self.protected.iter().next()).map(|(_, &sig)| sig)
    }

    /// Try to admit `(sig, key, value)` filled at `fill_version`.
    ///
    /// Freeing room is TinyLFU-gated: the candidate only displaces a
    /// victim it out-ranks in estimated frequency; otherwise admission
    /// is rejected and the cache keeps its current residents (fail-open
    /// — the caller already has the value from the index).
    pub(crate) fn admit(
        &mut self,
        sig: u64,
        key: &[u8],
        value: Bytes,
        fill_version: u64,
    ) -> AdmitOutcome {
        let charge = charge_of(key, &value);
        if charge > self.budget {
            return AdmitOutcome { admitted: false, evicted: 0 };
        }
        // Replace any resident entry for the sig outright (refill after
        // a stale hit, or a sig collision — the newcomer was requested
        // more recently).
        let mut out = AdmitOutcome::default();
        if self.evict_sig(sig) {
            out.evicted += 1;
        }
        while self.bytes + charge > self.budget {
            let Some(victim) = self.victim() else {
                return out; // budget too small for this entry right now
            };
            if self.sketch.estimate(sig) <= self.sketch.estimate(victim) {
                return out; // candidate does not out-rank the resident
            }
            self.evict_sig(victim);
            out.evicted += 1;
        }
        let stamp = self.next_stamp();
        self.bytes += charge;
        self.probation.insert(stamp, sig);
        self.map.insert(
            sig,
            Entry { key: key.into(), value, version: fill_version, stamp, protected: false },
        );
        out.admitted = true;
        out
    }

    /// Estimated frequency of `sig` (replication threshold checks).
    pub(crate) fn estimate(&self, sig: u64) -> u32 {
        self.sketch.estimate(sig)
    }

    pub(crate) fn bytes(&self) -> u64 {
        self.bytes
    }

    pub(crate) fn entries(&self) -> usize {
        self.map.len()
    }

    /// Visit every resident entry (coherence audit snapshot).
    pub(crate) fn for_each(&self, visit: &mut dyn FnMut(u64, &Entry)) {
        for (&sig, entry) in self.map.iter() {
            visit(sig, entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(n: usize) -> Bytes {
        Bytes::copy_from_slice(&vec![0xAB; n])
    }

    #[test]
    fn admit_then_hit_roundtrip() {
        let mut s = Stripe::new(4096, 80);
        let out = s.admit(1, b"k1", val(100), 7);
        assert!(out.admitted);
        match s.lookup(1, b"k1", 7) {
            StripeLookup::Hit(v) => assert_eq!(v.len(), 100),
            _ => panic!("expected hit"),
        }
        assert_eq!(s.entries(), 1);
        assert_eq!(s.bytes(), 100 + 2 + ENTRY_OVERHEAD);
    }

    #[test]
    fn version_mismatch_is_stale_and_self_evicts() {
        let mut s = Stripe::new(4096, 80);
        s.admit(1, b"k1", val(10), 7);
        assert!(matches!(s.lookup(1, b"k1", 8), StripeLookup::Stale));
        assert!(matches!(s.lookup(1, b"k1", 8), StripeLookup::Miss));
        assert_eq!(s.bytes(), 0);
    }

    #[test]
    fn sig_collision_misses_without_evicting() {
        let mut s = Stripe::new(4096, 80);
        s.admit(1, b"k1", val(10), 7);
        assert!(matches!(s.lookup(1, b"other", 7), StripeLookup::Miss));
        assert!(matches!(s.lookup(1, b"k1", 7), StripeLookup::Hit(_)));
    }

    #[test]
    fn budget_is_a_hard_cap() {
        let mut s = Stripe::new(1024, 80);
        for sig in 0..100u64 {
            s.admit(sig, &sig.to_le_bytes(), val(64), 0);
            assert!(s.bytes() <= 1024, "stripe exceeded its budget");
        }
        assert!(s.entries() < 100);
    }

    #[test]
    fn tinylfu_rejects_cold_candidate_against_hot_residents() {
        let mut s = Stripe::new(400, 80); // room for 2 entries, not 3
        s.admit(10, b"hot-a", val(100), 0);
        s.admit(11, b"hot-b", val(100), 0);
        for _ in 0..50 {
            s.lookup(10, b"hot-a", 0);
            s.lookup(11, b"hot-b", 0);
        }
        // One cold access must not displace a 50-hit resident.
        let out = s.admit(99, b"cold", val(100), 0);
        assert!(!out.admitted);
        assert!(matches!(s.lookup(10, b"hot-a", 0), StripeLookup::Hit(_)));
        assert!(matches!(s.lookup(11, b"hot-b", 0), StripeLookup::Hit(_)));
    }

    #[test]
    fn protected_survives_probation_churn() {
        let mut s = Stripe::new(2048, 50);
        s.admit(1, b"keeper", val(100), 0);
        // Hit it so it's promoted to protected.
        assert!(matches!(s.lookup(1, b"keeper", 0), StripeLookup::Hit(_)));
        // Churn enough distinct keys through probation to wrap the budget;
        // make each churn key "popular enough" to pass the gate once.
        for sig in 100..140u64 {
            s.lookup(sig, &sig.to_le_bytes(), 0); // train sketch
            s.lookup(sig, &sig.to_le_bytes(), 0);
            s.admit(sig, &sig.to_le_bytes(), val(100), 0);
        }
        assert!(
            matches!(s.lookup(1, b"keeper", 0), StripeLookup::Hit(_)),
            "protected entry displaced by probation churn"
        );
    }
}
