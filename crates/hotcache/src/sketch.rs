//! TinyLFU admission filter: a 4-row count-min sketch of access
//! frequency with periodic halving (the "reset" that makes the estimate
//! a sliding window rather than an all-time count).
//!
//! The sketch answers one question for the eviction policy: *is the
//! candidate more popular than the victim?* A cold key scanning through
//! the workload loses that comparison against any resident hot key, so
//! one-hit-wonders never displace the working set — the property that
//! lets a hard byte budget far below the dataset size still capture the
//! zipf head.
//!
//! Counters are 4-bit-equivalent (u8 saturating, halved at the sample
//! cap); width scales with the stripe's budget so a bigger cache also
//! remembers more distinct keys. One sketch per stripe, mutated under
//! the stripe lock — no atomics needed.

/// Odd 64-bit seeds for the four rows (splitmix64 constants).
const SEEDS: [u64; 4] =
    [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 0xD6E8_FEB8_6659_FD93];

/// Count-min frequency sketch with periodic halving.
pub struct TinyLfu {
    rows: [Box<[u8]>; 4],
    mask: u64,
    /// Accesses recorded since the last halving.
    samples: u64,
    /// Halve every counter once this many samples accumulate.
    sample_cap: u64,
}

impl TinyLfu {
    /// A sketch with at least `width_hint` counters per row (rounded up
    /// to a power of two, clamped to a sane range).
    pub fn new(width_hint: usize) -> Self {
        let width = width_hint.next_power_of_two().clamp(64, 1 << 20);
        let row = || vec![0u8; width].into_boxed_slice();
        TinyLfu {
            rows: [row(), row(), row(), row()],
            mask: width as u64 - 1,
            samples: 0,
            sample_cap: width as u64 * 8,
        }
    }

    #[inline]
    fn slot(sig: u64, row: usize, mask: u64) -> usize {
        // Mix the signature with the row seed; take high bits so the
        // rows decorrelate even for sequential signatures.
        ((sig ^ SEEDS[row]).wrapping_mul(SEEDS[row]) >> 32 & mask) as usize
    }

    /// Record one access to `sig`.
    pub fn record(&mut self, sig: u64) {
        for (row, counters) in self.rows.iter_mut().enumerate() {
            let c = &mut counters[Self::slot(sig, row, self.mask)];
            *c = c.saturating_add(1);
        }
        self.samples += 1;
        if self.samples >= self.sample_cap {
            self.halve();
        }
    }

    /// Estimated access frequency of `sig` (min over rows).
    pub fn estimate(&self, sig: u64) -> u32 {
        let mut est = u8::MAX;
        for (row, counters) in self.rows.iter().enumerate() {
            est = est.min(counters[Self::slot(sig, row, self.mask)]);
        }
        est as u32
    }

    /// The periodic reset: halving every counter ages out stale
    /// popularity so yesterday's hot key cannot squat on the cache.
    fn halve(&mut self) {
        for row in self.rows.iter_mut() {
            for c in row.iter_mut() {
                *c >>= 1;
            }
        }
        self.samples >>= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_key_outranks_cold_key() {
        let mut s = TinyLfu::new(256);
        for _ in 0..40 {
            s.record(7);
        }
        s.record(9);
        assert!(s.estimate(7) > s.estimate(9));
        assert!(s.estimate(7) >= 32); // sketch may over- but not under-count
    }

    #[test]
    fn halving_ages_out_old_popularity() {
        let mut s = TinyLfu::new(64); // sample_cap = 512
        for _ in 0..200 {
            s.record(1);
        }
        let before = s.estimate(1);
        // Flood with other keys to trip the halving at least once.
        for sig in 0..400u64 {
            s.record(sig.wrapping_mul(31) + 1000);
        }
        assert!(s.estimate(1) < before, "halving must decay the hot estimate");
    }

    #[test]
    fn estimates_saturate_without_overflow() {
        let mut s = TinyLfu::new(1 << 20); // huge cap: no halving below
        for _ in 0..300 {
            s.record(5);
        }
        assert_eq!(s.estimate(5), u8::MAX as u32);
    }
}
