//! Property tests for the signature hashes.

use proptest::prelude::*;
use rhik_sigs::{fnv1a_64, murmur2_64a, murmur3_x64_128, prefix_suffix_signature, SigHasher};

proptest! {
    /// Hashing is a pure function of (bytes, seed).
    #[test]
    fn murmur2_deterministic(key in proptest::collection::vec(any::<u8>(), 0..256), seed in any::<u64>()) {
        prop_assert_eq!(murmur2_64a(&key, seed), murmur2_64a(&key, seed));
    }

    /// A clone of the byte content hashes identically regardless of the
    /// allocation it lives in.
    #[test]
    fn murmur2_content_only(key in proptest::collection::vec(any::<u8>(), 0..256), seed in any::<u64>()) {
        let copy = key.clone();
        prop_assert_eq!(murmur2_64a(&key, seed), murmur2_64a(&copy, seed));
    }

    /// Appending a byte changes the hash (no trivial length-extension
    /// collisions) for arbitrary inputs. A true collision here is a ~2^-64
    /// event; treat any hit as a bug.
    #[test]
    fn murmur2_extension_sensitive(key in proptest::collection::vec(any::<u8>(), 0..128), b in any::<u8>()) {
        let mut ext = key.clone();
        ext.push(b);
        prop_assert_ne!(murmur2_64a(&key, 7), murmur2_64a(&ext, 7));
    }

    #[test]
    fn murmur3_deterministic(key in proptest::collection::vec(any::<u8>(), 0..256), seed in any::<u64>()) {
        prop_assert_eq!(murmur3_x64_128(&key, seed), murmur3_x64_128(&key, seed));
    }

    #[test]
    fn fnv_deterministic(key in proptest::collection::vec(any::<u8>(), 0..256), seed in any::<u64>()) {
        prop_assert_eq!(fnv1a_64(&key, seed), fnv1a_64(&key, seed));
    }

    /// All hasher variants produce stable signatures through the enum.
    #[test]
    fn sighasher_consistent(key in proptest::collection::vec(any::<u8>(), 0..64), seed in any::<u64>()) {
        for hasher in [
            SigHasher::Murmur2 { seed },
            SigHasher::Murmur3Folded { seed },
            SigHasher::Fnv1a { seed },
        ] {
            prop_assert_eq!(hasher.sign(&key), hasher.sign(&key));
            let s128 = hasher.sign128(&key);
            prop_assert_eq!(s128, hasher.sign128(&key));
        }
    }

    /// low_bits/high_bits round-trip the full signature for any split point.
    #[test]
    fn bit_partition_roundtrip(raw in any::<u64>(), bits in 0u32..64) {
        let s = rhik_sigs::KeySignature(raw);
        prop_assert_eq!((s.high_bits(bits) << bits) | s.low_bits(bits), raw);
    }

    /// Prefix-suffix signatures: equal 4-byte prefixes → equal high halves.
    #[test]
    fn prefix_signature_prefix_stable(
        prefix in proptest::array::uniform4(any::<u8>()),
        tail_a in proptest::collection::vec(any::<u8>(), 1..32),
        tail_b in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        let mut a = prefix.to_vec();
        a.extend_from_slice(&tail_a);
        let mut b = prefix.to_vec();
        b.extend_from_slice(&tail_b);
        let sa = prefix_suffix_signature(&a, 11);
        let sb = prefix_suffix_signature(&b, 11);
        prop_assert_eq!(sa.0 >> 32, sb.0 >> 32);
    }
}

/// Empirical collision-rate sanity: hashing 200k distinct keys must produce
/// zero 64-bit collisions (expected ≈ 1e-9) and a near-uniform bucket spread.
#[test]
fn empirical_uniformity_murmur2() {
    use std::collections::HashSet;
    const N: usize = 200_000;
    const BUCKETS: usize = 64;
    let mut seen = HashSet::with_capacity(N);
    let mut counts = [0usize; BUCKETS];
    for i in 0..N {
        let key = format!("uniformity-key-{i:08}");
        let h = murmur2_64a(key.as_bytes(), 0);
        assert!(seen.insert(h), "64-bit collision at {i}");
        counts[(h % BUCKETS as u64) as usize] += 1;
    }
    let expected = N / BUCKETS;
    for (b, &c) in counts.iter().enumerate() {
        assert!(
            (expected * 8 / 10..=expected * 12 / 10).contains(&c),
            "bucket {b} count {c} deviates from {expected}"
        );
    }
}
