//! Key-signature hashing for RHIK.
//!
//! RHIK (Section IV-A of the paper) transforms variable-sized application
//! keys into fixed-size *key signatures* using a simple hash function —
//! MurmurHash2 by default. The signature is the key's identity inside the
//! index: it selects the directory bucket (low bits), the record-layer slot,
//! and answers probabilistic membership checks without touching flash.
//!
//! This crate implements, from scratch:
//!
//! * [`murmur2_64a`] — the paper's default 64-bit signature hash,
//! * [`murmur3_x64_128`] — the 128-bit alternative discussed in §IV-A3 for
//!   reducing signature collisions,
//! * [`fnv1a_64`] — a cheap comparison hash used in ablations,
//! * [`KeySignature`] / [`Signature128`] newtypes,
//! * [`SigHasher`] — a runtime-selectable hasher configuration,
//! * [`estimate`] — birthday-bound collision estimators used by the Fig. 8a
//!   analysis and the membership-checking documentation,
//! * [`prefix_suffix_signature`] — the 4 B-prefix + 4 B-suffix signature the
//!   paper proposes for iterator support (§VI).

pub mod estimate;
mod fnv;
mod murmur;
mod signature;

pub use fnv::fnv1a_64;
pub use murmur::{murmur2_64a, murmur3_x64_128};
pub use signature::{prefix_suffix_signature, KeySignature, SigHasher, Signature128};

/// Default seed used across the workspace so signatures are reproducible.
pub const DEFAULT_SEED: u64 = 0x5249_494b_5353_4421;
