//! FNV-1a, the cheap comparison hash used by the signature-quality ablation.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `key`, with `seed` folded into the offset basis so the
/// same workload can be replayed under independent hash instances.
#[inline]
pub fn fnv1a_64(key: &[u8], seed: u64) -> u64 {
    let mut h = FNV_OFFSET ^ seed;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors_seed_zero() {
        // Published FNV-1a test vectors (seed 0 leaves the offset basis intact).
        assert_eq!(fnv1a_64(b"", 0), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a", 0), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar", 0), 0x85944171f73967e8);
    }

    #[test]
    fn seed_changes_output() {
        assert_ne!(fnv1a_64(b"key", 0), fnv1a_64(b"key", 1));
    }
}
