//! Birthday-bound collision estimators.
//!
//! §IV-A3 of the paper notes that as index occupancy reaches millions of
//! entries, the probability of a collision in the 64-bit global signature
//! space rises (the classic birthday problem, the paper's reference \[15\]).
//! These estimators back the Fig. 8a analysis and the membership-checking
//! docs: they predict how many signature collisions a workload of `n` keys
//! should see, independent of key size — which is exactly the "different key
//! sizes show similar collision trends" claim.

/// Probability that at least one pair among `n` uniformly-hashed keys
/// collides in a `bits`-wide signature space.
///
/// Uses the standard approximation `1 - exp(-n(n-1) / 2^(bits+1))`, accurate
/// for the regimes the paper evaluates (n up to ~10^8, 64-bit space).
pub fn collision_probability(n: u64, bits: u32) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let n = n as f64;
    let space = (bits as f64).exp2();
    let exponent = -(n * (n - 1.0)) / (2.0 * space);
    1.0 - exponent.exp()
}

/// Expected number of colliding *pairs* among `n` keys in a `bits`-wide
/// space: `C(n,2) / 2^bits`.
pub fn expected_collisions(n: u64, bits: u32) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let n = n as f64;
    let space = (bits as f64).exp2();
    n * (n - 1.0) / (2.0 * space)
}

/// Expected *percentage* of keys involved in at least one signature
/// collision — the y-axis of Fig. 8a. Each colliding pair involves two keys,
/// so for the sparse regime this is `2 * expected_collisions / n * 100`.
pub fn expected_collision_pct(n: u64, bits: u32) -> f64 {
    if n == 0 {
        return 0.0;
    }
    100.0 * 2.0 * expected_collisions(n, bits) / n as f64
}

/// Number of keys at which the collision probability reaches `p`
/// (inverse birthday bound): `n ≈ sqrt(2^(bits+1) * ln(1/(1-p)))`.
pub fn keys_for_probability(p: f64, bits: u32) -> u64 {
    assert!((0.0..1.0).contains(&p), "p must be in [0, 1)");
    if p == 0.0 {
        return 1;
    }
    let space = (bits as f64).exp2();
    (2.0 * space * (1.0 / (1.0 - p)).ln()).sqrt() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_keys_never_collide() {
        assert_eq!(collision_probability(0, 64), 0.0);
        assert_eq!(collision_probability(1, 64), 0.0);
        assert_eq!(expected_collisions(1, 64), 0.0);
        assert_eq!(expected_collision_pct(0, 64), 0.0);
    }

    #[test]
    fn classic_birthday_paradox() {
        // 23 people, 365 "days" ≈ space of ~8.51 bits. Use the exact-space
        // variant by checking the 32-bit analogue instead: ~77,000 keys give
        // ~50% probability in a 32-bit space (sqrt(2^33 * ln 2) ≈ 77163).
        let n = keys_for_probability(0.5, 32);
        assert!((70_000..85_000).contains(&n), "n = {n}");
        let p = collision_probability(n, 32);
        assert!((0.45..0.55).contains(&p), "p = {p}");
    }

    #[test]
    fn sixty_four_bit_space_is_roomy() {
        // 100 M keys in a 64-bit space: expected pairs ≈ n^2 / 2^65 ≈ 2.7e-4.
        let e = expected_collisions(100_000_000, 64);
        assert!((2.0e-4..4.0e-4).contains(&e), "e = {e}");
        // Collision percentage stays far below 1% — the Fig. 8a regime.
        assert!(expected_collision_pct(100_000_000, 64) < 1.0);
    }

    #[test]
    fn monotone_in_n_and_antitone_in_bits() {
        assert!(collision_probability(1_000, 32) < collision_probability(10_000, 32));
        assert!(collision_probability(10_000, 48) < collision_probability(10_000, 32));
        assert!(expected_collisions(10_000, 128) < expected_collisions(10_000, 64));
    }

    #[test]
    fn probability_saturates() {
        let p = collision_probability(10_000_000, 32);
        assert!(p > 0.999999, "p = {p}");
        assert!(p <= 1.0);
    }
}
