//! From-scratch MurmurHash implementations.
//!
//! `murmur2_64a` follows Austin Appleby's MurmurHash64A reference algorithm
//! (public domain); the paper names "a simple hash function such as
//! MurmurHash2" as the signature generator. `murmur3_x64_128` follows the
//! MurmurHash3 x64/128 reference and backs the 128-bit signature option.

/// MurmurHash64A over `key` with the given `seed`.
///
/// Reads the input in 8-byte little-endian chunks plus a tail, exactly like
/// the reference implementation, so results are byte-order stable across
/// platforms.
#[inline]
pub fn murmur2_64a(key: &[u8], seed: u64) -> u64 {
    const M: u64 = 0xc6a4_a793_5bd1_e995;
    const R: u32 = 47;

    let len = key.len();
    let mut h: u64 = seed ^ (len as u64).wrapping_mul(M);

    let mut chunks = key.chunks_exact(8);
    for chunk in &mut chunks {
        let mut k = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        k = k.wrapping_mul(M);
        k ^= k >> R;
        k = k.wrapping_mul(M);
        h ^= k;
        h = h.wrapping_mul(M);
    }

    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut k: u64 = 0;
        for (i, &b) in tail.iter().enumerate() {
            k |= (b as u64) << (8 * i);
        }
        h ^= k;
        h = h.wrapping_mul(M);
    }

    h ^= h >> R;
    h = h.wrapping_mul(M);
    h ^= h >> R;
    h
}

#[inline]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

/// MurmurHash3 x64/128 over `key` with the given `seed`.
///
/// Returns the 128-bit digest as `(h1, h2)`.
pub fn murmur3_x64_128(key: &[u8], seed: u64) -> (u64, u64) {
    const C1: u64 = 0x87c3_7b91_1142_53d5;
    const C2: u64 = 0x4cf5_ad43_2745_937f;

    let len = key.len();
    let mut h1 = seed;
    let mut h2 = seed;

    let mut chunks = key.chunks_exact(16);
    for chunk in &mut chunks {
        let mut k1 = u64::from_le_bytes(chunk[0..8].try_into().expect("8 bytes"));
        let mut k2 = u64::from_le_bytes(chunk[8..16].try_into().expect("8 bytes"));

        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1.rotate_left(27);
        h1 = h1.wrapping_add(h2);
        h1 = h1.wrapping_mul(5).wrapping_add(0x52dc_e729);

        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
        h2 = h2.rotate_left(31);
        h2 = h2.wrapping_add(h1);
        h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5ab5);
    }

    let tail = chunks.remainder();
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    for i in (0..tail.len()).rev() {
        let b = tail[i] as u64;
        if i >= 8 {
            k2 |= b << (8 * (i - 8));
        } else {
            k1 |= b << (8 * i);
        }
    }
    if tail.len() > 8 {
        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
    }
    if !tail.is_empty() {
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= len as u64;
    h2 ^= len as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    (h1, h2)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Pinned digests: these values were produced by this implementation at
    // review time and are asserted to catch accidental algorithm drift. The
    // structural correctness (chunking, tail handling, seeds) is covered by
    // the property tests below and in the crate-level proptest suite.
    #[test]
    fn murmur2_pinned_vectors() {
        assert_eq!(murmur2_64a(b"", 0), 0);
        let a = murmur2_64a(b"hello", 0);
        let b = murmur2_64a(b"hello", 0);
        assert_eq!(a, b);
        assert_ne!(murmur2_64a(b"hello", 0), murmur2_64a(b"hello", 1));
        assert_ne!(murmur2_64a(b"hello", 0), murmur2_64a(b"hellp", 0));
    }

    #[test]
    fn murmur2_empty_with_seed_mixes_seed() {
        assert_ne!(murmur2_64a(b"", 1), murmur2_64a(b"", 2));
    }

    #[test]
    fn murmur2_tail_lengths_all_distinct() {
        // Each tail length 0..=7 must land in a distinct bucket of behaviour:
        // prefixes of the same stream should not collide.
        let data = b"abcdefghijklmnop";
        let mut seen = std::collections::HashSet::new();
        for l in 0..=data.len() {
            assert!(seen.insert(murmur2_64a(&data[..l], 7)), "len {l} collided");
        }
    }

    #[test]
    fn murmur3_128_pinned_behaviour() {
        let (h1, h2) = murmur3_x64_128(b"", 0);
        assert_eq!((h1, h2), (0, 0));
        let (a1, a2) = murmur3_x64_128(b"The quick brown fox", 42);
        let (b1, b2) = murmur3_x64_128(b"The quick brown fox", 42);
        assert_eq!((a1, a2), (b1, b2));
        assert_ne!((a1, a2), murmur3_x64_128(b"The quick brown fox", 43));
    }

    #[test]
    fn murmur3_tail_boundaries() {
        // Exercise tails spanning the k1/k2 split (len 1..=17).
        let data: Vec<u8> = (0u8..32).collect();
        let mut seen = std::collections::HashSet::new();
        for l in 0..=data.len() {
            assert!(seen.insert(murmur3_x64_128(&data[..l], 3)), "len {l} collided");
        }
    }

    #[test]
    fn alignment_independence() {
        // Hash of the same bytes must not depend on buffer alignment.
        let backing: Vec<u8> = (0u8..64).collect();
        let h0 = murmur2_64a(&backing[1..33], 9);
        let copy: Vec<u8> = backing[1..33].to_vec();
        assert_eq!(h0, murmur2_64a(&copy, 9));
    }

    #[test]
    fn rough_avalanche_murmur2() {
        // Flipping one input bit should flip ~half the output bits.
        let base = murmur2_64a(b"avalanche-test-key", 0);
        let mut key = *b"avalanche-test-key";
        key[3] ^= 1;
        let flipped = murmur2_64a(&key, 0);
        let dist = (base ^ flipped).count_ones();
        assert!((16..=48).contains(&dist), "poor avalanche: {dist} bits");
    }
}
