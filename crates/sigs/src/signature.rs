//! Signature newtypes and the runtime-selectable hasher.

use crate::{fnv1a_64, murmur2_64a, murmur3_x64_128};

/// A fixed-size key signature — the key's identity inside the index.
///
/// The paper uses 64-bit signatures by default; the width is configurable at
/// index initialization (§IV-A). Narrower widths are modelled by masking,
/// which is how the `ablation_sig_bits` experiment sweeps 32/48/64 bits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeySignature(pub u64);

impl KeySignature {
    /// The low `bits` of the signature, used by the directory layer's
    /// variable hash function ("D least significant bits", §IV-A).
    #[inline]
    pub fn low_bits(self, bits: u32) -> u64 {
        debug_assert!(bits <= 64, "low_bits width exceeds the signature");
        if bits == 64 {
            self.0
        } else {
            self.0 & ((1u64 << bits) - 1)
        }
    }

    /// The remaining high bits, used by the record layer's fixed hash
    /// function so directory selection and in-table placement stay
    /// independent.
    #[inline]
    pub fn high_bits(self, skip: u32) -> u64 {
        debug_assert!(skip <= 64, "high_bits skip exceeds the signature");
        if skip == 64 {
            0
        } else {
            self.0 >> skip
        }
    }

    /// Truncate the signature to `bits` of resolution (ablation support).
    #[inline]
    pub fn truncated(self, bits: u32) -> KeySignature {
        KeySignature(self.low_bits(bits))
    }
}

impl std::fmt::Debug for KeySignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sig({:#018x})", self.0)
    }
}

/// A 128-bit signature — §IV-A3's "higher resolution hashing" option that
/// makes full-key re-verification unnecessary in practice.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Signature128 {
    pub hi: u64,
    pub lo: u64,
}

impl Signature128 {
    /// Fold to a 64-bit signature (used when a 128-bit hasher feeds a 64-bit
    /// index configuration).
    #[inline]
    pub fn fold64(self) -> KeySignature {
        KeySignature(self.hi ^ self.lo.rotate_left(32))
    }
}

/// Runtime-selectable signature hasher.
///
/// `Murmur2 { seed }` is the paper's default. The enum keeps the device
/// emulator and the benches generic over the hash function without dynamic
/// dispatch on the hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SigHasher {
    /// MurmurHash64A (paper default).
    Murmur2 { seed: u64 },
    /// MurmurHash3 x64/128 folded to 64 bits.
    Murmur3Folded { seed: u64 },
    /// FNV-1a (weak; ablations only).
    Fnv1a { seed: u64 },
    /// §VI iterator support: 4-byte-prefix + 4-byte-suffix hashing. Keys
    /// sharing a prefix share their signature's high 32 bits, so prefix
    /// `iterate` can filter candidates without reading them from flash.
    /// Weaker than Murmur2 (32 effective bits per half) — the device's
    /// full-key verification absorbs the extra collisions.
    PrefixSuffix { seed: u64 },
}

impl Default for SigHasher {
    fn default() -> Self {
        SigHasher::Murmur2 { seed: crate::DEFAULT_SEED }
    }
}

impl SigHasher {
    /// Compute the 64-bit signature of `key`.
    #[inline]
    pub fn sign(&self, key: &[u8]) -> KeySignature {
        match *self {
            SigHasher::Murmur2 { seed } => KeySignature(murmur2_64a(key, seed)),
            SigHasher::Murmur3Folded { seed } => {
                let (h1, h2) = murmur3_x64_128(key, seed);
                Signature128 { hi: h1, lo: h2 }.fold64()
            }
            SigHasher::Fnv1a { seed } => KeySignature(fnv1a_64(key, seed)),
            SigHasher::PrefixSuffix { seed } => prefix_suffix_signature(key, seed),
        }
    }

    /// High 32 bits every key with the given 4-byte prefix maps to under
    /// [`SigHasher::PrefixSuffix`]; `None` for other hashers.
    pub fn prefix_bucket(&self, prefix: &[u8]) -> Option<u32> {
        match *self {
            SigHasher::PrefixSuffix { seed } => {
                let p = &prefix[..prefix.len().min(4)];
                Some(murmur2_64a(p, seed) as u32)
            }
            _ => None,
        }
    }

    /// Compute the full 128-bit signature of `key` (always via Murmur3, as
    /// the paper's 128-bit option prescribes).
    #[inline]
    pub fn sign128(&self, key: &[u8]) -> Signature128 {
        let seed = match *self {
            SigHasher::Murmur2 { seed }
            | SigHasher::Murmur3Folded { seed }
            | SigHasher::Fnv1a { seed }
            | SigHasher::PrefixSuffix { seed } => seed,
        };
        let (h1, h2) = murmur3_x64_128(key, seed);
        Signature128 { hi: h1, lo: h2 }
    }
}

/// The iterator-support signature from §VI: hash the first 4 bytes and last
/// 4 bytes of the key separately so that keys sharing a prefix land in
/// adjacent signature ranges and prefix `iterate` can be served by range.
///
/// Keys shorter than 4 bytes use the whole key for both halves.
#[inline]
pub fn prefix_suffix_signature(key: &[u8], seed: u64) -> KeySignature {
    let n = key.len();
    let prefix = &key[..n.min(4)];
    let suffix = if n >= 4 { &key[n - 4..] } else { key };
    let hp = murmur2_64a(prefix, seed) as u32;
    let hs = murmur2_64a(suffix, seed ^ 0x9e37_79b9_7f4a_7c15) as u32;
    KeySignature(((hp as u64) << 32) | hs as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_high_bits_partition() {
        let s = KeySignature(0xdead_beef_cafe_f00d);
        for bits in [0u32, 1, 8, 20, 63, 64] {
            let lo = s.low_bits(bits);
            let hi = s.high_bits(bits);
            if bits == 64 {
                assert_eq!(lo, s.0);
                assert_eq!(hi, 0);
            } else {
                assert_eq!((hi << bits) | lo, s.0);
            }
        }
    }

    #[test]
    fn default_hasher_is_murmur2() {
        let h = SigHasher::default();
        assert_eq!(h.sign(b"k"), KeySignature(murmur2_64a(b"k", crate::DEFAULT_SEED)));
    }

    #[test]
    fn hashers_disagree() {
        let key = b"disagreement";
        let a = SigHasher::Murmur2 { seed: 1 }.sign(key);
        let b = SigHasher::Murmur3Folded { seed: 1 }.sign(key);
        let c = SigHasher::Fnv1a { seed: 1 }.sign(key);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn sign128_fold_matches_folded_hasher() {
        let key = b"fold-check";
        let folded = SigHasher::Murmur3Folded { seed: 5 }.sign(key);
        let full = SigHasher::Murmur3Folded { seed: 5 }.sign128(key);
        assert_eq!(folded, full.fold64());
    }

    #[test]
    fn prefix_signature_groups_shared_prefixes() {
        let a = prefix_suffix_signature(b"user00012345", 0);
        let b = prefix_suffix_signature(b"user00098765", 0);
        let c = prefix_suffix_signature(b"blob00012345", 0);
        // Same 4-byte prefix → same high 32 bits.
        assert_eq!(a.0 >> 32, b.0 >> 32);
        assert_ne!(a.0 >> 32, c.0 >> 32);
        // Different suffixes still separate a and b.
        assert_ne!(a, b);
    }

    #[test]
    fn short_keys_get_signatures() {
        for k in [&b""[..], b"a", b"ab", b"abc", b"abcd"] {
            let _ = prefix_suffix_signature(k, 1);
        }
        assert_ne!(prefix_suffix_signature(b"ab", 1), prefix_suffix_signature(b"ac", 1));
    }

    #[test]
    fn prefix_suffix_hasher_buckets() {
        let h = SigHasher::PrefixSuffix { seed: 3 };
        let a = h.sign(b"user00012345");
        let b = h.sign(b"user00098765");
        let c = h.sign(b"blob00012345");
        let bucket = h.prefix_bucket(b"user").unwrap();
        assert_eq!((a.0 >> 32) as u32, bucket);
        assert_eq!((b.0 >> 32) as u32, bucket);
        assert_ne!((c.0 >> 32) as u32, bucket);
        // Other hashers expose no bucket.
        assert_eq!(SigHasher::default().prefix_bucket(b"user"), None);
    }

    #[test]
    fn truncated_masks_high_bits() {
        let s = KeySignature(u64::MAX);
        assert_eq!(s.truncated(32).0, u32::MAX as u64);
        assert_eq!(s.truncated(64), s);
    }
}
