//! Property tests: the flash array never violates its own discipline, and
//! data written is data read, under arbitrary operation sequences.

use bytes::Bytes;
use proptest::prelude::*;
use rhik_nand::{BlockState, NandArray, NandError, NandGeometry, Ppa};

#[derive(Clone, Debug)]
enum Op {
    /// Program the next page of a block with a payload of given length.
    Program { block: u8, len: u16 },
    /// Read an arbitrary page address.
    Read { block: u8, page: u8 },
    /// Erase a block.
    Erase { block: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // tiny() geometry has 512-byte pages; stay within the data area.
        (any::<u8>(), 0u16..=512).prop_map(|(block, len)| Op::Program { block, len }),
        (any::<u8>(), any::<u8>()).prop_map(|(block, page)| Op::Read { block, page }),
        any::<u8>().prop_map(|block| Op::Erase { block }),
    ]
}

/// A reference model: per (block, page), the payload we last wrote since the
/// last erase of the block.
#[derive(Default)]
struct Model {
    written: std::collections::HashMap<(u32, u32), Vec<u8>>,
    write_ptr: std::collections::HashMap<u32, u32>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn array_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let geometry = NandGeometry::tiny();
        let mut array = NandArray::new(geometry);
        let mut model = Model::default();
        let mut seq: u8 = 0;

        for op in ops {
            match op {
                Op::Program { block, len } => {
                    let block = block as u32 % geometry.blocks;
                    let ptr = *model.write_ptr.get(&block).unwrap_or(&0);
                    seq = seq.wrapping_add(1);
                    let payload = vec![seq; len as usize];
                    let ppa = Ppa::new(block, ptr);
                    let res = array.program(ppa, Bytes::from(payload.clone()), Bytes::new());
                    if ptr >= geometry.pages_per_block {
                        // Model says the block is full; the array must refuse
                        // (either out-of-range page or overwrite).
                        prop_assert!(res.is_err());
                    } else {
                        prop_assert!(res.is_ok(), "program failed: {res:?}");
                        model.written.insert((block, ptr), payload);
                        model.write_ptr.insert(block, ptr + 1);
                    }
                }
                Op::Read { block, page } => {
                    let block = block as u32 % geometry.blocks;
                    let page = page as u32 % geometry.pages_per_block;
                    let res = array.read(Ppa::new(block, page));
                    match model.written.get(&(block, page)) {
                        Some(expected) => {
                            let (data, _) = res.expect("model says written");
                            prop_assert_eq!(&data[..], &expected[..]);
                        }
                        None => {
                            prop_assert_eq!(res.unwrap_err(), NandError::ReadUnwritten(Ppa::new(block, page)));
                        }
                    }
                }
                Op::Erase { block } => {
                    let block = block as u32 % geometry.blocks;
                    array.erase(block).unwrap();
                    model.written.retain(|&(b, _), _| b != block);
                    model.write_ptr.remove(&block);
                }
            }
        }

        // Invariant: block states agree with the model's write pointers.
        for b in 0..geometry.blocks {
            let ptr = *model.write_ptr.get(&b).unwrap_or(&0);
            let expected = if ptr == 0 {
                BlockState::Free
            } else if ptr == geometry.pages_per_block {
                BlockState::Full
            } else {
                BlockState::Open
            };
            prop_assert_eq!(array.block_state(b).unwrap(), expected);
        }
    }

    /// Stats never go backwards and programs+reads are conserved.
    #[test]
    fn stats_monotone(progs in 1usize..20, reads in 0usize..20) {
        let mut array = NandArray::new(NandGeometry::tiny());
        let g = *array.geometry();
        let mut programmed = Vec::new();
        let mut prev_total = 0;
        for i in 0..progs {
            let block = (i as u32 / g.pages_per_block) % g.blocks;
            let page = i as u32 % g.pages_per_block;
            if array.program(Ppa::new(block, page), Bytes::from(vec![1u8; 8]), Bytes::new()).is_ok() {
                programmed.push(Ppa::new(block, page));
            }
            let total = array.stats().total_ops();
            prop_assert!(total >= prev_total);
            prev_total = total;
        }
        for r in 0..reads {
            if let Some(&ppa) = programmed.get(r % programmed.len().max(1)) {
                let _ = array.read(ppa);
            }
        }
        let s = array.stats();
        prop_assert_eq!(s.page_programs as usize, programmed.len());
        prop_assert!(s.page_reads as usize <= reads);
    }
}
