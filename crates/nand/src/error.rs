//! Flash-level error taxonomy.

use crate::geometry::{BlockId, Ppa};

/// Errors surfaced by the flash array.
///
/// Discipline violations ([`NandError::ProgramOutOfOrder`],
/// [`NandError::OverwriteWithoutErase`], …) indicate FTL bugs; media errors
/// ([`NandError::ProgramFailed`], [`NandError::ReadFailed`]) are injected by
/// [`crate::FaultPlan`] to exercise recovery paths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NandError {
    /// Address outside the configured geometry.
    OutOfRange(Ppa),
    /// Block id outside the configured geometry.
    BlockOutOfRange(BlockId),
    /// Pages within a block must be programmed sequentially.
    ProgramOutOfOrder { ppa: Ppa, expected_page: u32 },
    /// A programmed page cannot be reprogrammed before its block is erased.
    OverwriteWithoutErase(Ppa),
    /// Payload larger than the page's data area.
    DataTooLarge { len: usize, page_size: u32 },
    /// Spare payload larger than the spare area.
    SpareTooLarge { len: usize, spare_size: u32 },
    /// Reading a page that was never programmed (or was erased).
    ReadUnwritten(Ppa),
    /// Injected media program failure (bad block emulation).
    ProgramFailed(Ppa),
    /// Injected media read failure (uncorrectable ECC emulation).
    ReadFailed(Ppa),
    /// Erasing a block that still has the array-level open handle (reserved
    /// for future multi-plane checks; currently unused by the array itself).
    EraseBusy(BlockId),
}

impl std::fmt::Display for NandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NandError::OutOfRange(ppa) => write!(f, "address {ppa:?} outside geometry"),
            NandError::BlockOutOfRange(b) => write!(f, "block {b} outside geometry"),
            NandError::ProgramOutOfOrder { ppa, expected_page } => {
                write!(f, "out-of-order program at {ppa:?}, expected page {expected_page}")
            }
            NandError::OverwriteWithoutErase(ppa) => {
                write!(f, "overwrite of programmed page {ppa:?} without erase")
            }
            NandError::DataTooLarge { len, page_size } => {
                write!(f, "data payload {len} B exceeds page data area {page_size} B")
            }
            NandError::SpareTooLarge { len, spare_size } => {
                write!(f, "spare payload {len} B exceeds spare area {spare_size} B")
            }
            NandError::ReadUnwritten(ppa) => write!(f, "read of unwritten page {ppa:?}"),
            NandError::ProgramFailed(ppa) => write!(f, "media program failure at {ppa:?}"),
            NandError::ReadFailed(ppa) => write!(f, "media read failure at {ppa:?}"),
            NandError::EraseBusy(b) => write!(f, "erase of busy block {b}"),
        }
    }
}

impl std::error::Error for NandError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NandError::ProgramOutOfOrder { ppa: Ppa::new(3, 7), expected_page: 2 };
        let s = e.to_string();
        assert!(s.contains("out-of-order"));
        assert!(s.contains("3:7"));
        assert!(s.contains("expected page 2"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            NandError::ReadUnwritten(Ppa::new(1, 1)),
            NandError::ReadUnwritten(Ppa::new(1, 1))
        );
        assert_ne!(NandError::ReadUnwritten(Ppa::new(1, 1)), NandError::ReadFailed(Ppa::new(1, 1)));
    }
}
