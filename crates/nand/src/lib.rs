//! Deterministic NAND flash array model.
//!
//! KVSSDs are "made by extending the block-based SSD firmware — the
//! underlying physical hardware of SSDs is still the same" (§II-B). This
//! crate is that hardware: an in-memory flash array with the primitives the
//! paper's extended KV emulator mimics (§IV-C):
//!
//! * **Geometry** — erase blocks of 256 pages × 32 KiB by default (§V-A),
//!   each page split into a *data area* and a *spare area* (1/32 of the
//!   page, footnote 1 of the paper).
//! * **Program/erase discipline** — pages are programmed strictly in order
//!   within a block and cannot be overwritten before the whole block is
//!   erased. Violations are hard errors, so FTL bugs surface in tests
//!   instead of silently corrupting state.
//! * **Timing** — a virtual-clock latency model ([`LatencyModel`],
//!   [`DeviceProfile`]) in the spirit of the OpenMPDK emulator's IOPS model;
//!   throughput figures are computed on simulated time, never wall time.
//! * **Accounting** — read/program/erase counters ([`NandStats`]) that the
//!   evaluation harness uses to count "flash reads per metadata access"
//!   (Fig. 5b).
//! * **Fault injection** — programmable program/read failures for the
//!   failure-handling tests.
//!
//! Page payloads are allocated lazily and freed on erase, so emulated
//! devices only cost host memory proportional to *live* data.

mod array;
mod block;
mod error;
mod fault;
mod geometry;
mod latency;
mod stats;

pub use array::NandArray;
pub use block::{Block, BlockState};
pub use error::NandError;
pub use fault::FaultPlan;
pub use geometry::{BlockId, NandGeometry, PageId, Ppa};
pub use latency::{DeviceProfile, LatencyModel, NandOp, SimClock};
pub use stats::NandStats;

/// Convenience result alias for flash operations.
pub type Result<T> = std::result::Result<T, NandError>;
