//! Flash operation counters.

/// Cumulative operation/byte counters maintained by the array.
///
/// The evaluation harness diffs snapshots of these around code regions to
/// count, e.g., flash reads per metadata access (Fig. 5b) or GC-induced
/// write amplification.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NandStats {
    pub page_reads: u64,
    pub page_programs: u64,
    pub block_erases: u64,
    pub bytes_read: u64,
    pub bytes_programmed: u64,
    /// Injected media failures observed.
    pub program_failures: u64,
    pub read_failures: u64,
}

impl NandStats {
    /// Element-wise difference `self - earlier` (panics on counter
    /// regression, which would indicate state corruption).
    pub fn since(&self, earlier: &NandStats) -> NandStats {
        NandStats {
            page_reads: self.page_reads - earlier.page_reads,
            page_programs: self.page_programs - earlier.page_programs,
            block_erases: self.block_erases - earlier.block_erases,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_programmed: self.bytes_programmed - earlier.bytes_programmed,
            program_failures: self.program_failures - earlier.program_failures,
            read_failures: self.read_failures - earlier.read_failures,
        }
    }

    /// Total media operations of any kind.
    pub fn total_ops(&self) -> u64 {
        self.page_reads + self.page_programs + self.block_erases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_diffs_counters() {
        let early = NandStats { page_reads: 3, page_programs: 1, ..Default::default() };
        let late =
            NandStats { page_reads: 10, page_programs: 4, block_erases: 2, ..Default::default() };
        let d = late.since(&early);
        assert_eq!(d.page_reads, 7);
        assert_eq!(d.page_programs, 3);
        assert_eq!(d.block_erases, 2);
        assert_eq!(d.total_ops(), 12);
    }
}
