//! Flash operation counters.

/// Cumulative operation/byte counters maintained by the array.
///
/// The evaluation harness diffs snapshots of these around code regions to
/// count, e.g., flash reads per metadata access (Fig. 5b) or GC-induced
/// write amplification.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NandStats {
    pub page_reads: u64,
    pub page_programs: u64,
    pub block_erases: u64,
    pub bytes_read: u64,
    pub bytes_programmed: u64,
    /// Injected media failures observed.
    pub program_failures: u64,
    pub read_failures: u64,
}

impl NandStats {
    /// Element-wise difference `self - earlier`, saturating at zero. A
    /// snapshot taken before a device reset can be diffed against the
    /// fresh counters without underflowing — regressed counters simply
    /// read as zero delta.
    pub fn since(&self, earlier: &NandStats) -> NandStats {
        NandStats {
            page_reads: self.page_reads.saturating_sub(earlier.page_reads),
            page_programs: self.page_programs.saturating_sub(earlier.page_programs),
            block_erases: self.block_erases.saturating_sub(earlier.block_erases),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_programmed: self.bytes_programmed.saturating_sub(earlier.bytes_programmed),
            program_failures: self.program_failures.saturating_sub(earlier.program_failures),
            read_failures: self.read_failures.saturating_sub(earlier.read_failures),
        }
    }

    /// Total media operations of any kind.
    pub fn total_ops(&self) -> u64 {
        self.page_reads + self.page_programs + self.block_erases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_diffs_counters() {
        let early = NandStats { page_reads: 3, page_programs: 1, ..Default::default() };
        let late =
            NandStats { page_reads: 10, page_programs: 4, block_erases: 2, ..Default::default() };
        let d = late.since(&early);
        assert_eq!(d.page_reads, 7);
        assert_eq!(d.page_programs, 3);
        assert_eq!(d.block_erases, 2);
        assert_eq!(d.total_ops(), 12);
    }

    #[test]
    fn since_saturates_across_reset() {
        // Snapshot taken on a long-running device, then the device (and its
        // counters) is reset: every "current" counter is behind the
        // snapshot. The diff must read as zero, not wrap.
        let before_reset = NandStats {
            page_reads: 1000,
            page_programs: 500,
            block_erases: 20,
            bytes_read: 1 << 30,
            bytes_programmed: 1 << 29,
            program_failures: 3,
            read_failures: 2,
        };
        let after_reset = NandStats { page_reads: 5, ..Default::default() };
        let d = after_reset.since(&before_reset);
        assert_eq!(d, NandStats::default());
        assert_eq!(d.total_ops(), 0);
        // Partial regression: only the regressed fields clamp.
        let skewed = NandStats { page_reads: 2000, page_programs: 100, ..before_reset };
        let d = skewed.since(&before_reset);
        assert_eq!(d.page_reads, 1000);
        assert_eq!(d.page_programs, 0);
        assert_eq!(d.block_erases, 0);
    }
}
