//! Per-erase-block state machine.

/// Lifecycle of an erase block as the array sees it.
///
/// `Free → Open → Full → (erase) → Free`. The array only enforces the
/// physical rules (sequential program, erase-before-reuse); higher-level
/// notions such as "victim" or "stale" live in the FTL.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockState {
    /// Erased; no page programmed yet.
    Free,
    /// Some but not all pages programmed.
    Open,
    /// Every page programmed.
    Full,
}

/// Bookkeeping for one erase block.
#[derive(Clone, Debug)]
pub struct Block {
    /// Next page expected by the sequential-program rule.
    write_ptr: u32,
    pages_per_block: u32,
    erase_count: u64,
}

impl Block {
    pub(crate) fn new(pages_per_block: u32) -> Self {
        Block { write_ptr: 0, pages_per_block, erase_count: 0 }
    }

    /// Current lifecycle state.
    #[inline]
    pub fn state(&self) -> BlockState {
        match self.write_ptr {
            0 => BlockState::Free,
            p if p == self.pages_per_block => BlockState::Full,
            _ => BlockState::Open,
        }
    }

    /// Next programmable page index (== pages_per_block when full).
    #[inline]
    pub fn write_ptr(&self) -> u32 {
        self.write_ptr
    }

    /// How many times this block has been erased (wear).
    #[inline]
    pub fn erase_count(&self) -> u64 {
        self.erase_count
    }

    /// Pages still programmable in this block.
    #[inline]
    pub fn free_pages(&self) -> u32 {
        self.pages_per_block - self.write_ptr
    }

    /// Whether `page` has been programmed since the last erase.
    #[inline]
    pub fn is_programmed(&self, page: u32) -> bool {
        page < self.write_ptr
    }

    pub(crate) fn advance(&mut self) {
        debug_assert!(
            self.write_ptr < self.pages_per_block,
            "program past the last page of the block"
        );
        self.write_ptr += 1;
    }

    pub(crate) fn erase(&mut self) {
        self.write_ptr = 0;
        self.erase_count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut b = Block::new(3);
        assert_eq!(b.state(), BlockState::Free);
        assert_eq!(b.free_pages(), 3);
        b.advance();
        assert_eq!(b.state(), BlockState::Open);
        assert!(b.is_programmed(0));
        assert!(!b.is_programmed(1));
        b.advance();
        b.advance();
        assert_eq!(b.state(), BlockState::Full);
        assert_eq!(b.free_pages(), 0);
        b.erase();
        assert_eq!(b.state(), BlockState::Free);
        assert_eq!(b.erase_count(), 1);
        assert!(!b.is_programmed(0));
    }

    #[test]
    fn erase_count_accumulates() {
        let mut b = Block::new(1);
        for i in 1..=5 {
            b.advance();
            b.erase();
            assert_eq!(b.erase_count(), i);
        }
    }
}
