//! Virtual-clock timing model.
//!
//! The OpenMPDK KV emulator runs in host DRAM and models device time with an
//! IOPS model (§V-B: "this difference in the performance trends may be due
//! to the IOPS model used by the OpenMPDK KV Emulator"). We do the same:
//! every flash operation has a deterministic duration and throughput numbers
//! are derived from accumulated *simulated* nanoseconds, so results are
//! exactly reproducible and independent of the host machine.

use crate::geometry::{NandGeometry, Ppa};

/// One flash operation, as the timing model sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NandOp {
    /// Page read: cell sensing + bus transfer of `bytes`.
    Read { ppa: Ppa, bytes: u32 },
    /// Page program: bus transfer of `bytes` + cell programming.
    Program { ppa: Ppa, bytes: u32 },
    /// Block erase.
    Erase { block: u32 },
}

impl NandOp {
    /// Channel this operation occupies.
    #[inline]
    pub fn channel(&self, geometry: &NandGeometry) -> u32 {
        match *self {
            NandOp::Read { ppa, .. } | NandOp::Program { ppa, .. } => {
                geometry.channel_of(ppa.block)
            }
            NandOp::Erase { block } => geometry.channel_of(block),
        }
    }
}

/// Flash timing parameters (nanoseconds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyModel {
    /// Cell sensing time for a page read.
    pub read_ns: u64,
    /// Cell programming time for a page program.
    pub program_ns: u64,
    /// Block erase time.
    pub erase_ns: u64,
    /// Bus transfer time per byte (applies to reads and programs).
    pub transfer_ns_per_byte: f64,
}

impl LatencyModel {
    /// Duration of `op` under this model.
    #[inline]
    pub fn duration_ns(&self, op: &NandOp) -> u64 {
        match *op {
            NandOp::Read { bytes, .. } => {
                self.read_ns + (bytes as f64 * self.transfer_ns_per_byte) as u64
            }
            NandOp::Program { bytes, .. } => {
                self.program_ns + (bytes as f64 * self.transfer_ns_per_byte) as u64
            }
            NandOp::Erase { .. } => self.erase_ns,
        }
    }
}

/// A complete device timing profile: flash latencies plus the fixed
/// per-command overhead of the host interface and FTL firmware.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceProfile {
    pub latency: LatencyModel,
    /// Fixed firmware/command-processing overhead charged per KV command.
    pub command_overhead_ns: u64,
    /// Host interface bandwidth in bytes per second (PCIe link model); data
    /// transfer to/from the host is charged at this rate.
    pub host_bandwidth_bps: u64,
    /// Human-readable profile name (shows up in bench output).
    pub name: &'static str,
}

impl DeviceProfile {
    /// Timing in the spirit of the OpenMPDK KV emulator backing store:
    /// generic TLC-era NAND (≈70 µs read, ≈600 µs program, ≈3 ms erase) with
    /// a modest firmware overhead. This profile drives the "KVEMU" series.
    pub fn kvemu_like() -> Self {
        DeviceProfile {
            latency: LatencyModel {
                read_ns: 70_000,
                program_ns: 600_000,
                erase_ns: 3_000_000,
                transfer_ns_per_byte: 1.25, // ~800 MB/s per channel
            },
            command_overhead_ns: 6_000,
            host_bandwidth_bps: 3_200_000_000, // ~PCIe 3.0 x4 effective
            name: "kvemu",
        }
    }

    /// Calibrated stand-in for the Samsung PM983 KVSSD used in Fig. 6.
    ///
    /// We do not have the hardware; this profile reproduces the *relative*
    /// behaviour the paper reports: lower firmware efficiency per command
    /// (the multi-level index and key handling dominate small-value ops) and
    /// similar media timing. See DESIGN.md "Substitutions".
    pub fn pm983_like() -> Self {
        DeviceProfile {
            latency: LatencyModel {
                read_ns: 60_000,
                program_ns: 550_000,
                erase_ns: 3_000_000,
                transfer_ns_per_byte: 1.0,
            },
            command_overhead_ns: 12_000,
            host_bandwidth_bps: 3_000_000_000,
            name: "kvssd",
        }
    }

    /// Fast profile for unit tests (keeps simulated times tiny).
    pub fn instant() -> Self {
        DeviceProfile {
            latency: LatencyModel {
                read_ns: 1,
                program_ns: 1,
                erase_ns: 1,
                transfer_ns_per_byte: 0.0,
            },
            command_overhead_ns: 0,
            host_bandwidth_bps: u64::MAX,
            name: "instant",
        }
    }

    /// Time to move `bytes` across the host interface.
    #[inline]
    pub fn host_transfer_ns(&self, bytes: u64) -> u64 {
        if self.host_bandwidth_bps == u64::MAX {
            return 0;
        }
        (bytes as u128 * 1_000_000_000u128 / self.host_bandwidth_bps as u128) as u64
    }
}

/// Simulated clock, in nanoseconds since device power-on.
///
/// Engines advance it; everything that reports throughput reads it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct SimClock {
    now_ns: u64,
}

impl SimClock {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Advance by `delta` nanoseconds.
    #[inline]
    pub fn advance(&mut self, delta_ns: u64) {
        self.now_ns += delta_ns;
    }

    /// Move the clock forward to `t` if `t` is in the future.
    #[inline]
    pub fn advance_to(&mut self, t_ns: u64) {
        self.now_ns = self.now_ns.max(t_ns);
    }

    /// Seconds since power-on, for throughput math.
    #[inline]
    pub fn now_secs(&self) -> f64 {
        self.now_ns as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_read(bytes: u32) -> NandOp {
        NandOp::Read { ppa: Ppa::new(0, 0), bytes }
    }

    #[test]
    fn read_duration_includes_transfer() {
        let m = DeviceProfile::kvemu_like().latency;
        let small = m.duration_ns(&page_read(0));
        let big = m.duration_ns(&page_read(32 * 1024));
        assert_eq!(small, 70_000);
        assert!(big > small);
        assert_eq!(big, 70_000 + (32.0 * 1024.0 * 1.25) as u64);
    }

    #[test]
    fn program_slower_than_read_erase_slowest() {
        let m = DeviceProfile::kvemu_like().latency;
        let r = m.duration_ns(&NandOp::Read { ppa: Ppa::new(0, 0), bytes: 4096 });
        let p = m.duration_ns(&NandOp::Program { ppa: Ppa::new(0, 0), bytes: 4096 });
        let e = m.duration_ns(&NandOp::Erase { block: 0 });
        assert!(r < p && p < e);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        c.advance(5);
        assert_eq!(c.now_ns(), 5);
        c.advance_to(3); // past: no-op
        assert_eq!(c.now_ns(), 5);
        c.advance_to(10);
        assert_eq!(c.now_ns(), 10);
        assert!((c.now_secs() - 1e-8).abs() < 1e-15);
    }

    #[test]
    fn host_transfer_scales_with_bytes() {
        let p = DeviceProfile::kvemu_like();
        assert_eq!(p.host_transfer_ns(0), 0);
        let one_mb = p.host_transfer_ns(1 << 20);
        let two_mb = p.host_transfer_ns(2 << 20);
        assert!(one_mb > 0);
        assert!((two_mb as i64 - 2 * one_mb as i64).abs() <= 1);
        assert_eq!(DeviceProfile::instant().host_transfer_ns(1 << 30), 0);
    }

    #[test]
    fn ops_map_to_channels() {
        let g = NandGeometry::tiny();
        let op = NandOp::Program { ppa: Ppa::new(3, 0), bytes: 1 };
        assert_eq!(op.channel(&g), 3 % g.channels);
        let op = NandOp::Erase { block: 5 };
        assert_eq!(op.channel(&g), 5 % g.channels);
    }
}
