//! Programmable fault injection for failure-handling tests.

use std::collections::HashSet;

use crate::geometry::Ppa;

/// A deterministic fault plan: specific pages fail to program or read.
///
/// Faults are *sticky* for reads (an injected read fault keeps failing until
/// cleared) and *one-shot* for programs (a program fault consumes itself, so
/// retry-on-next-page logic can be exercised).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    program_faults: HashSet<Ppa>,
    read_faults: HashSet<Ppa>,
}

impl FaultPlan {
    pub fn new() -> Self {
        Self::default()
    }

    /// Arrange for the next program of `ppa` to fail once.
    pub fn fail_program(&mut self, ppa: Ppa) {
        self.program_faults.insert(ppa);
    }

    /// Arrange for reads of `ppa` to fail until [`FaultPlan::clear_read`].
    pub fn fail_read(&mut self, ppa: Ppa) {
        self.read_faults.insert(ppa);
    }

    /// Stop failing reads of `ppa`.
    pub fn clear_read(&mut self, ppa: Ppa) {
        self.read_faults.remove(&ppa);
    }

    /// True (and consumes the fault) if a program of `ppa` should fail.
    pub(crate) fn take_program_fault(&mut self, ppa: Ppa) -> bool {
        self.program_faults.remove(&ppa)
    }

    /// True if reads of `ppa` should fail.
    pub(crate) fn has_read_fault(&self, ppa: Ppa) -> bool {
        self.read_faults.contains(&ppa)
    }

    /// Whether any fault is armed (used to skip the check on the hot path).
    pub(crate) fn is_empty(&self) -> bool {
        self.program_faults.is_empty() && self.read_faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_faults_are_one_shot() {
        let mut plan = FaultPlan::new();
        let ppa = Ppa::new(1, 2);
        plan.fail_program(ppa);
        assert!(plan.take_program_fault(ppa));
        assert!(!plan.take_program_fault(ppa));
    }

    #[test]
    fn read_faults_are_sticky_until_cleared() {
        let mut plan = FaultPlan::new();
        let ppa = Ppa::new(0, 0);
        plan.fail_read(ppa);
        assert!(plan.has_read_fault(ppa));
        assert!(plan.has_read_fault(ppa));
        plan.clear_read(ppa);
        assert!(!plan.has_read_fault(ppa));
    }

    #[test]
    fn empty_plan_reports_empty() {
        let mut plan = FaultPlan::new();
        assert!(plan.is_empty());
        plan.fail_read(Ppa::new(0, 1));
        assert!(!plan.is_empty());
    }
}
