//! Flash geometry and physical page addressing.

/// Identifier of an erase block within the array.
pub type BlockId = u32;
/// Page index within an erase block.
pub type PageId = u32;

/// Physical page address: `(block, page)`.
///
/// RHIK's index records carry a 5-byte (40-bit) PPA field (§IV-A, Eq. 1
/// uses `ppa = 5`), so `Ppa` provides a packed 40-bit encoding used by the
/// record layer and the page spare area. 24 bits of block × 16 bits of page
/// covers 2^24 blocks × 2^16 pages — far beyond any emulated device.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ppa {
    pub block: BlockId,
    pub page: PageId,
}

impl Ppa {
    /// Number of bytes a packed PPA occupies on flash (paper's `ppa` term).
    pub const PACKED_LEN: usize = 5;

    #[inline]
    pub fn new(block: BlockId, page: PageId) -> Self {
        Ppa { block, page }
    }

    /// Pack into a 40-bit integer: `block` in the high 24 bits, `page` in
    /// the low 16.
    #[inline]
    pub fn pack(self) -> u64 {
        debug_assert!(self.block < (1 << 24), "block id exceeds 24 bits");
        debug_assert!(self.page < (1 << 16), "page id exceeds 16 bits");
        ((self.block as u64) << 16) | self.page as u64
    }

    /// Unpack a 40-bit integer produced by [`Ppa::pack`].
    #[inline]
    pub fn unpack(raw: u64) -> Self {
        debug_assert!(raw < (1 << 40), "packed PPA exceeds 40 bits");
        Ppa { block: (raw >> 16) as BlockId, page: (raw & 0xffff) as PageId }
    }

    /// Serialize into 5 little-endian bytes.
    #[inline]
    pub fn to_bytes(self) -> [u8; Self::PACKED_LEN] {
        let raw = self.pack();
        let b = raw.to_le_bytes();
        [b[0], b[1], b[2], b[3], b[4]]
    }

    /// Deserialize from 5 little-endian bytes.
    #[inline]
    pub fn from_bytes(bytes: [u8; Self::PACKED_LEN]) -> Self {
        let mut raw = [0u8; 8];
        raw[..Self::PACKED_LEN].copy_from_slice(&bytes);
        Self::unpack(u64::from_le_bytes(raw))
    }
}

impl std::fmt::Debug for Ppa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Ppa({}:{})", self.block, self.page)
    }
}

/// Static shape of the flash array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NandGeometry {
    /// Number of erase blocks.
    pub blocks: u32,
    /// Pages per erase block (paper default: 256).
    pub pages_per_block: u32,
    /// Data-area bytes per page (paper default: 32 KiB).
    pub page_size: u32,
    /// Spare-area bytes per page (footnote 1: usually 1/32 of the page).
    pub spare_size: u32,
    /// Independent channels for async parallelism (blocks are striped
    /// round-robin across channels).
    pub channels: u32,
}

impl NandGeometry {
    /// The paper's emulator configuration: 256 × 32 KiB pages per block,
    /// spare = page/32, scaled to `capacity_bytes` of raw flash.
    pub fn paper_default(capacity_bytes: u64) -> Self {
        const PAGE: u64 = 32 * 1024;
        const PPB: u64 = 256;
        let block_bytes = PAGE * PPB;
        let blocks = capacity_bytes.div_ceil(block_bytes).max(4) as u32;
        NandGeometry {
            blocks,
            pages_per_block: PPB as u32,
            page_size: PAGE as u32,
            spare_size: (PAGE / 32) as u32,
            channels: 8,
        }
    }

    /// A tiny geometry for unit tests (fast, few blocks).
    pub fn tiny() -> Self {
        NandGeometry { blocks: 8, pages_per_block: 8, page_size: 512, spare_size: 16, channels: 2 }
    }

    /// Total number of pages in the array.
    #[inline]
    pub fn total_pages(&self) -> u64 {
        self.blocks as u64 * self.pages_per_block as u64
    }

    /// Raw data capacity in bytes (excluding spare areas).
    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_size as u64
    }

    /// Bytes in one erase block's data area.
    #[inline]
    pub fn block_bytes(&self) -> u64 {
        self.pages_per_block as u64 * self.page_size as u64
    }

    /// Channel that owns `block` (round-robin striping).
    #[inline]
    pub fn channel_of(&self, block: BlockId) -> u32 {
        block % self.channels
    }

    /// Validate a PPA against the geometry.
    #[inline]
    pub fn contains(&self, ppa: Ppa) -> bool {
        ppa.block < self.blocks && ppa.page < self.pages_per_block
    }

    /// Check basic invariants; returns a human-readable complaint if the
    /// geometry is unusable.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.blocks == 0 || self.pages_per_block == 0 || self.page_size == 0 {
            return Err("geometry has a zero dimension".into());
        }
        if self.channels == 0 {
            return Err("geometry needs at least one channel".into());
        }
        if self.blocks >= (1 << 24) {
            return Err("block count exceeds 24-bit PPA field".into());
        }
        if self.pages_per_block > (1 << 16) {
            return Err("pages per block exceeds 16-bit PPA field".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppa_pack_roundtrip() {
        for (b, p) in [(0, 0), (1, 2), (1 << 23, 65_535), ((1 << 24) - 1, 0)] {
            let ppa = Ppa::new(b, p);
            assert_eq!(Ppa::unpack(ppa.pack()), ppa);
            assert_eq!(Ppa::from_bytes(ppa.to_bytes()), ppa);
        }
    }

    #[test]
    fn ppa_pack_fits_40_bits() {
        let ppa = Ppa::new((1 << 24) - 1, 65_535);
        assert!(ppa.pack() < (1u64 << 40));
    }

    #[test]
    fn paper_default_matches_section_v() {
        let g = NandGeometry::paper_default(1 << 30);
        assert_eq!(g.page_size, 32 * 1024);
        assert_eq!(g.pages_per_block, 256);
        assert_eq!(g.spare_size, 1024);
        assert_eq!(g.spare_size, g.page_size / 32);
        assert!(g.capacity_bytes() >= 1 << 30);
        g.validate().unwrap();
    }

    #[test]
    fn capacity_math() {
        let g = NandGeometry::tiny();
        assert_eq!(g.total_pages(), 64);
        assert_eq!(g.capacity_bytes(), 64 * 512);
        assert_eq!(g.block_bytes(), 8 * 512);
    }

    #[test]
    fn channel_striping_covers_all_channels() {
        let g = NandGeometry::tiny();
        let mut seen = vec![false; g.channels as usize];
        for b in 0..g.blocks {
            seen[g.channel_of(b) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn validate_rejects_degenerate() {
        let mut g = NandGeometry::tiny();
        g.blocks = 0;
        assert!(g.validate().is_err());
        let mut g = NandGeometry::tiny();
        g.channels = 0;
        assert!(g.validate().is_err());
        let mut g = NandGeometry::tiny();
        g.blocks = 1 << 24;
        assert!(g.validate().is_err());
    }

    #[test]
    fn contains_bounds() {
        let g = NandGeometry::tiny();
        assert!(g.contains(Ppa::new(0, 0)));
        assert!(g.contains(Ppa::new(7, 7)));
        assert!(!g.contains(Ppa::new(8, 0)));
        assert!(!g.contains(Ppa::new(0, 8)));
    }
}
