//! The flash array itself: byte-accurate page store with program/erase
//! discipline.

use bytes::Bytes;
use rhik_telemetry::TelemetrySink;

use crate::block::{Block, BlockState};
use crate::fault::FaultPlan;
use crate::geometry::{BlockId, NandGeometry, Ppa};
use crate::stats::NandStats;
use crate::{NandError, Result};

/// Stored contents of one programmed page.
#[derive(Clone, Debug)]
struct PageStore {
    data: Bytes,
    spare: Bytes,
}

/// An in-memory NAND flash array.
///
/// Enforces the physical discipline real NAND imposes on the FTL:
///
/// * pages within a block are programmed in strictly increasing order,
/// * a programmed page cannot be reprogrammed until its block is erased,
/// * payloads must fit the data/spare areas,
/// * reads of never-programmed pages fail.
///
/// Payloads are reference-counted [`Bytes`]; reading hands back cheap clones
/// so the FTL cache can hold pages without copying.
pub struct NandArray {
    geometry: NandGeometry,
    blocks: Vec<Block>,
    pages: Vec<Option<PageStore>>,
    stats: NandStats,
    faults: FaultPlan,
    telemetry: TelemetrySink,
}

impl NandArray {
    /// Build an array with the given geometry. Panics on invalid geometry —
    /// construction happens once, at device bring-up.
    pub fn new(geometry: NandGeometry) -> Self {
        geometry.validate().expect("invalid NAND geometry");
        let blocks = (0..geometry.blocks).map(|_| Block::new(geometry.pages_per_block)).collect();
        let pages = vec![None; geometry.total_pages() as usize];
        NandArray {
            geometry,
            blocks,
            pages,
            stats: NandStats::default(),
            faults: FaultPlan::new(),
            telemetry: TelemetrySink::disabled(),
        }
    }

    /// Install a telemetry sink; media ops are mirrored into it as
    /// `nand_*` counters.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = sink;
    }

    #[inline]
    pub fn geometry(&self) -> &NandGeometry {
        &self.geometry
    }

    #[inline]
    pub fn stats(&self) -> NandStats {
        self.stats
    }

    /// Mutable access to the fault plan (tests only, but kept public so the
    /// integration suite can inject failures through the device).
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        &mut self.faults
    }

    /// Read-only view of the fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// State of `block`.
    pub fn block_state(&self, block: BlockId) -> Result<BlockState> {
        self.block_ref(block).map(Block::state)
    }

    /// Wear (erase count) of `block`.
    pub fn erase_count(&self, block: BlockId) -> Result<u64> {
        self.block_ref(block).map(Block::erase_count)
    }

    /// Next programmable page of `block`.
    pub fn write_ptr(&self, block: BlockId) -> Result<u32> {
        self.block_ref(block).map(Block::write_ptr)
    }

    #[inline]
    fn block_ref(&self, block: BlockId) -> Result<&Block> {
        self.blocks.get(block as usize).ok_or(NandError::BlockOutOfRange(block))
    }

    #[inline]
    fn page_index(&self, ppa: Ppa) -> usize {
        ppa.block as usize * self.geometry.pages_per_block as usize + ppa.page as usize
    }

    /// Program `ppa` with `data` (data area) and `spare` (spare area).
    ///
    /// `data` shorter than the page is allowed (the rest of the page reads
    /// back as absent trailing bytes — the FTL layout is length-prefixed).
    pub fn program(&mut self, ppa: Ppa, data: Bytes, spare: Bytes) -> Result<()> {
        if !self.geometry.contains(ppa) {
            return Err(NandError::OutOfRange(ppa));
        }
        if data.len() > self.geometry.page_size as usize {
            return Err(NandError::DataTooLarge {
                len: data.len(),
                page_size: self.geometry.page_size,
            });
        }
        if spare.len() > self.geometry.spare_size as usize {
            return Err(NandError::SpareTooLarge {
                len: spare.len(),
                spare_size: self.geometry.spare_size,
            });
        }
        let block = &self.blocks[ppa.block as usize];
        if block.is_programmed(ppa.page) {
            return Err(NandError::OverwriteWithoutErase(ppa));
        }
        if ppa.page != block.write_ptr() {
            return Err(NandError::ProgramOutOfOrder { ppa, expected_page: block.write_ptr() });
        }
        if !self.faults.is_empty() && self.faults.take_program_fault(ppa) {
            self.stats.program_failures += 1;
            self.telemetry.counter_add("nand_program_failures", 1);
            // A failed program still consumes the page: real NAND marks it
            // unusable until erase, and the FTL must move on.
            self.blocks[ppa.block as usize].advance();
            return Err(NandError::ProgramFailed(ppa));
        }

        self.stats.page_programs += 1;
        self.stats.bytes_programmed += (data.len() + spare.len()) as u64;
        self.telemetry.counter_add("nand_page_programs", 1);
        let idx = self.page_index(ppa);
        self.pages[idx] = Some(PageStore { data, spare });
        self.blocks[ppa.block as usize].advance();
        Ok(())
    }

    /// Read the data and spare areas of `ppa`.
    pub fn read(&mut self, ppa: Ppa) -> Result<(Bytes, Bytes)> {
        if !self.geometry.contains(ppa) {
            return Err(NandError::OutOfRange(ppa));
        }
        if !self.faults.is_empty() && self.faults.has_read_fault(ppa) {
            self.stats.read_failures += 1;
            self.telemetry.counter_add("nand_read_failures", 1);
            return Err(NandError::ReadFailed(ppa));
        }
        let idx = self.page_index(ppa);
        match &self.pages[idx] {
            Some(store) => {
                self.stats.page_reads += 1;
                self.stats.bytes_read += (store.data.len() + store.spare.len()) as u64;
                self.telemetry.counter_add("nand_page_reads", 1);
                Ok((store.data.clone(), store.spare.clone()))
            }
            None => Err(NandError::ReadUnwritten(ppa)),
        }
    }

    /// Peek at a page without charging a flash read (emulator-internal use:
    /// GC accounting paths that would batch reads charge them explicitly).
    pub fn peek(&self, ppa: Ppa) -> Option<(Bytes, Bytes)> {
        if !self.geometry.contains(ppa) {
            return None;
        }
        self.pages[self.page_index(ppa)].as_ref().map(|s| (s.data.clone(), s.spare.clone()))
    }

    /// Erase `block`, freeing every page payload.
    pub fn erase(&mut self, block: BlockId) -> Result<()> {
        if block >= self.geometry.blocks {
            return Err(NandError::BlockOutOfRange(block));
        }
        let start = block as usize * self.geometry.pages_per_block as usize;
        for slot in &mut self.pages[start..start + self.geometry.pages_per_block as usize] {
            *slot = None;
        }
        self.blocks[block as usize].erase();
        self.stats.block_erases += 1;
        self.telemetry.counter_add("nand_block_erases", 1);
        Ok(())
    }

    /// Count of blocks currently in `state`.
    pub fn blocks_in_state(&self, state: BlockState) -> usize {
        self.blocks.iter().filter(|b| b.state() == state).count()
    }

    /// Bytes of live payload currently held (host-memory accounting).
    pub fn resident_bytes(&self) -> u64 {
        self.pages.iter().flatten().map(|s| (s.data.len() + s.spare.len()) as u64).sum()
    }

    /// Audit the array's own physical-discipline invariants.
    ///
    /// Checks that stored payloads agree with each block's write pointer:
    /// no payload may sit at or beyond the write pointer (a failed program
    /// consumes the page but stores nothing, so holes *below* it are
    /// legal), and payloads must fit the data/spare areas. Returns one
    /// [`rhik_audit::InvariantViolation::NandStateMismatch`] per offence.
    pub fn audit(&self) -> Vec<rhik_audit::InvariantViolation> {
        use rhik_audit::InvariantViolation;
        let mut out = Vec::new();
        for (b, block) in self.blocks.iter().enumerate() {
            let base = b * self.geometry.pages_per_block as usize;
            for p in 0..self.geometry.pages_per_block {
                let store = &self.pages[base + p as usize];
                let ppa = (b as u32, p);
                if p >= block.write_ptr() {
                    if store.is_some() {
                        out.push(InvariantViolation::NandStateMismatch {
                            ppa,
                            detail: "payload stored at or beyond the block write pointer",
                        });
                    }
                    continue;
                }
                if let Some(s) = store {
                    if s.data.len() > self.geometry.page_size as usize {
                        out.push(InvariantViolation::NandStateMismatch {
                            ppa,
                            detail: "stored data exceeds the page size",
                        });
                    }
                    if s.spare.len() > self.geometry.spare_size as usize {
                        out.push(InvariantViolation::NandStateMismatch {
                            ppa,
                            detail: "stored spare exceeds the spare size",
                        });
                    }
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for NandArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NandArray")
            .field("geometry", &self.geometry)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> NandArray {
        NandArray::new(NandGeometry::tiny())
    }

    fn bytes(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }

    #[test]
    fn program_read_roundtrip() {
        let mut a = array();
        let ppa = Ppa::new(0, 0);
        a.program(ppa, bytes(b"data"), bytes(b"sp")).unwrap();
        let (d, s) = a.read(ppa).unwrap();
        assert_eq!(&d[..], b"data");
        assert_eq!(&s[..], b"sp");
        assert_eq!(a.stats().page_programs, 1);
        assert_eq!(a.stats().page_reads, 1);
        assert_eq!(a.stats().bytes_programmed, 6);
    }

    #[test]
    fn sequential_program_enforced() {
        let mut a = array();
        let err = a.program(Ppa::new(0, 1), bytes(b"x"), Bytes::new()).unwrap_err();
        assert_eq!(err, NandError::ProgramOutOfOrder { ppa: Ppa::new(0, 1), expected_page: 0 });
        a.program(Ppa::new(0, 0), bytes(b"x"), Bytes::new()).unwrap();
        a.program(Ppa::new(0, 1), bytes(b"y"), Bytes::new()).unwrap();
    }

    #[test]
    fn overwrite_rejected_until_erase() {
        let mut a = array();
        let ppa = Ppa::new(2, 0);
        a.program(ppa, bytes(b"v1"), Bytes::new()).unwrap();
        assert_eq!(
            a.program(ppa, bytes(b"v2"), Bytes::new()).unwrap_err(),
            NandError::OverwriteWithoutErase(ppa)
        );
        a.erase(2).unwrap();
        a.program(ppa, bytes(b"v2"), Bytes::new()).unwrap();
        let (d, _) = a.read(ppa).unwrap();
        assert_eq!(&d[..], b"v2");
    }

    #[test]
    fn erase_frees_payloads_and_counts_wear() {
        let mut a = array();
        for p in 0..4 {
            a.program(Ppa::new(1, p), bytes(&[p as u8; 100]), Bytes::new()).unwrap();
        }
        assert!(a.resident_bytes() >= 400);
        a.erase(1).unwrap();
        assert_eq!(a.erase_count(1).unwrap(), 1);
        assert_eq!(a.read(Ppa::new(1, 0)).unwrap_err(), NandError::ReadUnwritten(Ppa::new(1, 0)));
        assert_eq!(a.resident_bytes(), 0);
    }

    #[test]
    fn payload_size_limits() {
        let mut a = array();
        let g = *a.geometry();
        let too_big = vec![0u8; g.page_size as usize + 1];
        assert!(matches!(
            a.program(Ppa::new(0, 0), Bytes::from(too_big), Bytes::new()),
            Err(NandError::DataTooLarge { .. })
        ));
        let spare_big = vec![0u8; g.spare_size as usize + 1];
        assert!(matches!(
            a.program(Ppa::new(0, 0), Bytes::new(), Bytes::from(spare_big)),
            Err(NandError::SpareTooLarge { .. })
        ));
        // Failed programs must not consume the write pointer.
        assert_eq!(a.write_ptr(0).unwrap(), 0);
    }

    #[test]
    fn out_of_range_addresses() {
        let mut a = array();
        assert!(matches!(a.read(Ppa::new(99, 0)), Err(NandError::OutOfRange(_))));
        assert!(matches!(a.erase(99), Err(NandError::BlockOutOfRange(99))));
        assert!(matches!(a.block_state(99), Err(NandError::BlockOutOfRange(99))));
    }

    #[test]
    fn block_state_tracking() {
        let mut a = array();
        assert_eq!(a.blocks_in_state(BlockState::Free), 8);
        a.program(Ppa::new(0, 0), bytes(b"x"), Bytes::new()).unwrap();
        assert_eq!(a.block_state(0).unwrap(), BlockState::Open);
        for p in 1..8 {
            a.program(Ppa::new(0, p), bytes(b"x"), Bytes::new()).unwrap();
        }
        assert_eq!(a.block_state(0).unwrap(), BlockState::Full);
        assert_eq!(a.blocks_in_state(BlockState::Free), 7);
    }

    #[test]
    fn injected_program_fault_consumes_page() {
        let mut a = array();
        let ppa = Ppa::new(0, 0);
        a.faults_mut().fail_program(ppa);
        assert_eq!(
            a.program(ppa, bytes(b"x"), Bytes::new()).unwrap_err(),
            NandError::ProgramFailed(ppa)
        );
        assert_eq!(a.stats().program_failures, 1);
        // Page consumed: next program goes to page 1 and succeeds.
        a.program(Ppa::new(0, 1), bytes(b"x"), Bytes::new()).unwrap();
        // The failed page reads as unwritten.
        assert_eq!(a.read(ppa).unwrap_err(), NandError::ReadUnwritten(ppa));
    }

    #[test]
    fn injected_read_fault_sticky() {
        let mut a = array();
        let ppa = Ppa::new(0, 0);
        a.program(ppa, bytes(b"x"), Bytes::new()).unwrap();
        a.faults_mut().fail_read(ppa);
        assert_eq!(a.read(ppa).unwrap_err(), NandError::ReadFailed(ppa));
        assert_eq!(a.read(ppa).unwrap_err(), NandError::ReadFailed(ppa));
        assert_eq!(a.stats().read_failures, 2);
        a.faults_mut().clear_read(ppa);
        assert!(a.read(ppa).is_ok());
    }

    #[test]
    fn telemetry_mirrors_media_ops() {
        let mut a = array();
        let sink = rhik_telemetry::TelemetrySink::enabled();
        a.set_telemetry(sink.clone());
        let ppa = Ppa::new(0, 0);
        a.program(ppa, bytes(b"x"), Bytes::new()).unwrap();
        a.read(ppa).unwrap();
        a.erase(0).unwrap();
        a.faults_mut().fail_read(ppa);
        a.program(ppa, bytes(b"x"), Bytes::new()).unwrap();
        assert!(a.read(ppa).is_err());
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.counter("nand_page_programs"), 2);
        assert_eq!(snap.counter("nand_page_reads"), 1);
        assert_eq!(snap.counter("nand_block_erases"), 1);
        assert_eq!(snap.counter("nand_read_failures"), 1);
    }

    #[test]
    fn peek_does_not_charge_reads() {
        let mut a = array();
        let ppa = Ppa::new(0, 0);
        a.program(ppa, bytes(b"x"), Bytes::new()).unwrap();
        let before = a.stats().page_reads;
        assert!(a.peek(ppa).is_some());
        assert!(a.peek(Ppa::new(0, 1)).is_none());
        assert_eq!(a.stats().page_reads, before);
    }
}
