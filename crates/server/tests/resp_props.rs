//! Property tests for the incremental RESP parser: no input — however
//! split, pipelined, truncated, or corrupted — may panic the parser,
//! wedge a connection, or mis-frame a pipeline.

use proptest::prelude::*;
use rhik_server::resp::{self, Limits, Parse, ProtocolError};

/// One generated command: a name from the subset (or not) plus 0–3
/// binary arguments, any of which may be empty.
fn cmd_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    let name = prop_oneof![
        Just(b"GET".to_vec()),
        Just(b"SET".to_vec()),
        Just(b"DEL".to_vec()),
        Just(b"EXISTS".to_vec()),
        Just(b"PING".to_vec()),
        Just(b"AUTH".to_vec()),
        Just(b"NOSUCH".to_vec()),
    ];
    let arg = proptest::collection::vec(any::<u8>(), 0..24);
    (name, proptest::collection::vec(arg, 0..4)).prop_map(|(name, mut args)| {
        let mut cmd = vec![name];
        cmd.append(&mut args);
        cmd
    })
}

/// Drive the parser exactly like a connection does: append one chunk,
/// then consume complete frames until `Incomplete`.
fn consume(buf: &[u8], limits: &Limits, args: &mut Vec<(usize, usize)>) -> ConsumeOutcome {
    let mut frames = Vec::new();
    let mut pos = 0;
    loop {
        match resp::parse_frame(&buf[pos..], limits, args) {
            Ok(Parse::Incomplete) => return ConsumeOutcome { frames, consumed: pos, error: None },
            Ok(Parse::Frame { consumed }) => {
                assert!(consumed > 0, "a complete frame must consume bytes");
                frames.push(
                    args.iter()
                        .map(|&(off, len)| buf[pos + off..pos + off + len].to_vec())
                        .collect::<Vec<_>>(),
                );
                pos += consumed;
            }
            Err(e) => return ConsumeOutcome { frames, consumed: pos, error: Some(e) },
        }
    }
}

struct ConsumeOutcome {
    frames: Vec<Vec<Vec<u8>>>,
    consumed: usize,
    error: Option<ProtocolError>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A pipeline of well-formed frames, delivered in arbitrary chunk
    /// sizes, parses to exactly the original argument lists — no frame
    /// lost, duplicated, or reordered, regardless of where the socket
    /// reads split the stream.
    #[test]
    fn pipeline_survives_arbitrary_read_splits(
        cmds in proptest::collection::vec(cmd_strategy(), 1..6),
        split_seed in any::<u64>(),
    ) {
        let limits = Limits::default();
        let mut wire = Vec::new();
        for cmd in &cmds {
            let refs: Vec<&[u8]> = cmd.iter().map(|a| a.as_slice()).collect();
            resp::enc_command(&mut wire, &refs);
        }

        // Feed the wire bytes in pseudo-random chunks (1..17 bytes),
        // re-parsing from the unconsumed tail after every chunk, exactly
        // like `Connection::fill` + the pump's parse loop.
        let mut rng = split_seed | 1;
        let mut next = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((rng >> 33) % 16 + 1) as usize
        };
        let mut buf: Vec<u8> = Vec::new();
        let mut args = Vec::new();
        let mut fed = 0;
        let mut got: Vec<Vec<Vec<u8>>> = Vec::new();
        while fed < wire.len() {
            let n = next().min(wire.len() - fed);
            buf.extend_from_slice(&wire[fed..fed + n]);
            fed += n;
            let out = consume(&buf, &limits, &mut args);
            prop_assert!(out.error.is_none(), "well-formed pipeline errored: {:?}", out.error);
            got.extend(out.frames);
            buf.drain(..out.consumed);
        }
        prop_assert!(buf.is_empty(), "bytes left unconsumed after full delivery");
        prop_assert_eq!(got, cmds);
    }

    /// Arbitrary garbage: the parser must terminate with either a typed
    /// error (whose message renders) or a clean Incomplete — never a
    /// panic, and never an infinite loop (consume() returning proves
    /// termination; every Frame must advance).
    #[test]
    fn garbage_never_panics_or_wedges(bytes in proptest::collection::vec(any::<u8>(), 0..80)) {
        let limits = Limits { max_args: 4, max_bulk: 32 };
        let mut args = Vec::new();
        let out = consume(&bytes, &limits, &mut args);
        if let Some(err) = out.error {
            prop_assert!(err.message().starts_with("ERR Protocol error"));
        }
        prop_assert!(out.consumed <= bytes.len());
    }

    /// Corrupting one byte of a valid pipeline yields a parse, an
    /// Incomplete, or a typed error — same safety contract as garbage,
    /// starting from an almost-valid stream.
    #[test]
    fn single_byte_corruption_is_safe(
        cmds in proptest::collection::vec(cmd_strategy(), 1..4),
        pos_seed in any::<u64>(),
        byte in any::<u8>(),
    ) {
        let limits = Limits::default();
        let mut wire = Vec::new();
        for cmd in &cmds {
            let refs: Vec<&[u8]> = cmd.iter().map(|a| a.as_slice()).collect();
            resp::enc_command(&mut wire, &refs);
        }
        let pos = (pos_seed as usize) % wire.len();
        wire[pos] = byte;
        let mut args = Vec::new();
        let out = consume(&wire, &limits, &mut args);
        if let Some(err) = out.error {
            prop_assert!(err.message().starts_with("ERR Protocol error"));
        }
    }

    /// Oversized declared lengths are rejected from the header alone —
    /// before any payload bytes arrive, for both arg-count and bulk-size
    /// overruns.
    #[test]
    fn oversized_declarations_rejected_early(
        extra in 1usize..1000,
        which in any::<u8>(),
    ) {
        let limits = Limits { max_args: 8, max_bulk: 1024 };
        let mut args = Vec::new();
        let header = if which.is_multiple_of(2) {
            format!("*{}\r\n", limits.max_args + extra)
        } else {
            format!("*1\r\n${}\r\n", limits.max_bulk + extra)
        };
        match resp::parse_frame(header.as_bytes(), &limits, &mut args) {
            Err(ProtocolError::TooManyArgs { count, max }) => {
                prop_assert_eq!(count, limits.max_args + extra);
                prop_assert_eq!(max, limits.max_args);
            }
            Err(ProtocolError::BulkTooLarge { len, max }) => {
                prop_assert_eq!(len, limits.max_bulk + extra);
                prop_assert_eq!(max, limits.max_bulk);
            }
            other => prop_assert!(false, "expected early rejection, got {:?}", other),
        }
    }
}
