//! Minimal blocking RESP client for the integration tests: enough of
//! the reply grammar to drive the server over loopback and assert on
//! every reply shape it can produce.

// Shared between test binaries; not every binary uses every helper.
#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use rhik_server::resp;

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RespValue {
    Simple(String),
    Error(String),
    Int(i64),
    Bulk(Vec<u8>),
    Nil,
}

pub struct Client {
    pub stream: TcpStream,
    buf: Vec<u8>,
    pos: usize,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(20))).expect("timeout");
        stream.set_nodelay(true).expect("nodelay");
        Client { stream, buf: Vec::new(), pos: 0 }
    }

    pub fn send(&mut self, args: &[&[u8]]) {
        let mut out = Vec::new();
        resp::enc_command(&mut out, args);
        self.stream.write_all(&out).expect("send");
    }

    pub fn send_raw(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("send_raw");
    }

    /// One request, one reply.
    pub fn cmd(&mut self, args: &[&[u8]]) -> RespValue {
        self.send(args);
        self.read_reply()
    }

    fn fill(&mut self) -> bool {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => false,
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                true
            }
            Err(e) => panic!("client read failed: {e}"),
        }
    }

    fn line(&mut self) -> String {
        loop {
            let hay = &self.buf[self.pos..];
            if let Some(i) = hay.windows(2).position(|w| w == b"\r\n") {
                let line = String::from_utf8_lossy(&hay[..i]).into_owned();
                self.pos += i + 2;
                if self.pos == self.buf.len() {
                    self.buf.clear();
                    self.pos = 0;
                }
                return line;
            }
            assert!(self.fill(), "connection closed mid-reply");
        }
    }

    /// Blocking read of the next reply (panics on EOF or timeout).
    pub fn read_reply(&mut self) -> RespValue {
        let line = self.line();
        let (tag, rest) = line.split_at(1);
        match tag {
            "+" => RespValue::Simple(rest.to_string()),
            "-" => RespValue::Error(rest.to_string()),
            ":" => RespValue::Int(rest.parse().expect("integer reply")),
            "$" => {
                let len: i64 = rest.parse().expect("bulk length");
                if len < 0 {
                    return RespValue::Nil;
                }
                let len = len as usize;
                while self.buf.len() - self.pos < len + 2 {
                    assert!(self.fill(), "connection closed mid-bulk");
                }
                let data = self.buf[self.pos..self.pos + len].to_vec();
                assert_eq!(&self.buf[self.pos + len..self.pos + len + 2], b"\r\n");
                self.pos += len + 2;
                if self.pos == self.buf.len() {
                    self.buf.clear();
                    self.pos = 0;
                }
                RespValue::Bulk(data)
            }
            other => panic!("unknown reply tag {other:?} in {line:?}"),
        }
    }

    /// True once the server has closed this connection (EOF observed).
    pub fn eof(&mut self) -> bool {
        if self.pos < self.buf.len() {
            return false;
        }
        let mut chunk = [0u8; 64];
        matches!(self.stream.read(&mut chunk), Ok(0))
    }
}
