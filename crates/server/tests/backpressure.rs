//! The bounded-memory contract: a client that floods requests and never
//! reads replies cannot grow server-side buffering past the configured
//! per-connection budget, and cannot degrade other connections.

mod common;

use std::io::Write;
use std::time::{Duration, Instant};

use common::{Client, RespValue};
use rhik_kvssd::{DeviceConfig, ShardedKvssd};
use rhik_server::resp::Limits;
use rhik_server::ServerConfig;

#[test]
fn stalled_client_memory_stays_within_budget() {
    let device = ShardedKvssd::rhik(DeviceConfig::small().with_shards(2));
    // Deliberately tight knobs so the test floods past every stage fast.
    let cfg = ServerConfig {
        workers: 2,
        limits: Limits { max_args: 4, max_bulk: 4096 },
        max_pipeline: 16,
        read_high: 16 * 1024,
        write_budget: 16 * 1024,
        lane_cap: 64,
        ..ServerConfig::default()
    };
    let budget = cfg.per_conn_budget();
    let server = rhik_server::start(device, cfg).expect("server start");

    // Seed a value so the flood's GETs produce fat replies that push on
    // the write budget too.
    let mut seeder = Client::connect(server.addr());
    let fat = vec![0x5au8; 4000];
    assert_eq!(seeder.cmd(&[b"SET", b"fat", &fat]), RespValue::Simple("OK".into()));

    // The stalled client: pipeline GETs as fast as the socket accepts,
    // never read a byte back. With nonblocking writes we keep offering
    // until the server's backpressure freezes the stream solid.
    let mut flood = Client::connect(server.addr());
    flood.stream.set_nonblocking(true).expect("nonblocking");
    let mut frame = Vec::new();
    rhik_server::resp::enc_command(&mut frame, &[b"GET", b"fat"]);
    let mut offered = 0usize;
    let mut stalled_streak = 0;
    let deadline = Instant::now() + Duration::from_secs(10);
    while stalled_streak < 200 && Instant::now() < deadline {
        match flood.stream.write(&frame) {
            Ok(n) => {
                offered += n;
                stalled_streak = 0;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                stalled_streak += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => panic!("flood write failed: {e}"),
        }
    }
    assert!(stalled_streak >= 200, "backpressure never froze the flood (offered {offered} bytes)");
    // The flood must have been stopped by the server's bounded stages,
    // not by running out of things to send: we pushed more than one
    // budget's worth before freezing (kernel socket buffers absorb the
    // difference — that memory is the client's problem, not the
    // server's).
    assert!(offered > budget, "flood too small to prove anything: {offered} <= {budget}");

    // The enforced invariant: no connection ever buffered more than the
    // configured budget server-side.
    let high = server.conn_buffer_high_watermark() as usize;
    assert!(high > 0, "watermark never sampled");
    assert!(high <= budget, "stalled client grew server memory past the budget: {high} > {budget}");

    // Stall isolation: a well-behaved connection still gets service
    // while the flood sits frozen.
    let mut healthy = Client::connect(server.addr());
    assert_eq!(healthy.cmd(&[b"PING"]), RespValue::Simple("PONG".into()));
    assert_eq!(healthy.cmd(&[b"GET", b"fat"]), RespValue::Bulk(fat));

    drop(flood);
    server.shutdown();
}
