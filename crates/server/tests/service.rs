//! End-to-end loopback tests: real sockets, real workers, real device.

mod common;

use std::time::{Duration, Instant};

use common::{Client, RespValue};
use rhik_audit::DeviceAuditor;
use rhik_kvssd::{DeviceConfig, ShardedKvssd};
use rhik_server::{ServerConfig, TenantSpec};

fn test_server(tenants: Vec<TenantSpec>) -> rhik_server::ServerHandle<rhik_core::RhikIndex> {
    let device = ShardedKvssd::rhik(DeviceConfig::small().with_shards(4).with_hot_cache(64 * 1024));
    let cfg = ServerConfig { workers: 2, tenants, ..ServerConfig::default() };
    rhik_server::start(device, cfg).expect("server start")
}

#[test]
fn basic_commands_roundtrip() {
    let server = test_server(Vec::new());
    let mut c = Client::connect(server.addr());

    assert_eq!(c.cmd(&[b"PING"]), RespValue::Simple("PONG".into()));
    assert_eq!(c.cmd(&[b"SET", b"alpha", b"one"]), RespValue::Simple("OK".into()));
    assert_eq!(c.cmd(&[b"GET", b"alpha"]), RespValue::Bulk(b"one".to_vec()));
    assert_eq!(c.cmd(&[b"EXISTS", b"alpha"]), RespValue::Int(1));
    assert_eq!(c.cmd(&[b"GET", b"missing"]), RespValue::Nil);
    assert_eq!(c.cmd(&[b"EXISTS", b"missing"]), RespValue::Int(0));
    assert_eq!(c.cmd(&[b"DEL", b"alpha"]), RespValue::Int(1));
    assert_eq!(c.cmd(&[b"DEL", b"alpha"]), RespValue::Int(0));
    assert_eq!(c.cmd(&[b"GET", b"alpha"]), RespValue::Nil);

    // Values above the shared-chunk threshold exercise the vectored
    // zero-copy write path.
    let big = vec![0xabu8; 8000];
    assert_eq!(c.cmd(&[b"SET", b"big", &big]), RespValue::Simple("OK".into()));
    assert_eq!(c.cmd(&[b"GET", b"big"]), RespValue::Bulk(big));

    // Command-level errors answer without closing the connection.
    match c.cmd(&[b"FLUSHALL"]) {
        RespValue::Error(msg) => assert!(msg.contains("unknown command")),
        other => panic!("expected error, got {other:?}"),
    }
    match c.cmd(&[b"GET"]) {
        RespValue::Error(msg) => assert!(msg.contains("wrong number of arguments")),
        other => panic!("expected arity error, got {other:?}"),
    }
    assert_eq!(c.cmd(&[b"PING"]), RespValue::Simple("PONG".into()));

    server.shutdown();
}

#[test]
fn pipelined_replies_keep_request_order() {
    let server = test_server(Vec::new());
    let mut c = Client::connect(server.addr());

    // One write carries the whole pipeline; keys fan out across shards
    // and complete out of order internally, but the wire order must
    // match the request order exactly.
    let n = 100u32;
    let mut wire = Vec::new();
    for i in 0..n {
        let key = format!("pipe-{i}");
        let val = format!("v{i}");
        rhik_server::resp::enc_command(&mut wire, &[b"SET", key.as_bytes(), val.as_bytes()]);
    }
    for i in 0..n {
        let key = format!("pipe-{i}");
        rhik_server::resp::enc_command(&mut wire, &[b"GET", key.as_bytes()]);
    }
    wire.extend_from_slice(b"*1\r\n$4\r\nPING\r\n");
    c.send_raw(&wire);

    for _ in 0..n {
        assert_eq!(c.read_reply(), RespValue::Simple("OK".into()));
    }
    for i in 0..n {
        assert_eq!(c.read_reply(), RespValue::Bulk(format!("v{i}").into_bytes()));
    }
    assert_eq!(c.read_reply(), RespValue::Simple("PONG".into()));

    assert!(server.ops_served() >= 2 * n as u64);
    server.shutdown();
}

#[test]
fn auth_binds_tenants_and_rejects_unknown() {
    let server = test_server(vec![TenantSpec {
        name: "team-a".into(),
        ops_per_sec: 0,
        bytes_per_sec: 0,
        weight: 2,
    }]);
    let mut c = Client::connect(server.addr());

    match c.cmd(&[b"AUTH", b"nobody"]) {
        RespValue::Error(msg) => assert!(msg.contains("unknown tenant")),
        other => panic!("expected error, got {other:?}"),
    }
    assert_eq!(c.cmd(&[b"AUTH", b"team-a"]), RespValue::Simple("OK".into()));
    assert_eq!(c.cmd(&[b"SET", b"k", b"v"]), RespValue::Simple("OK".into()));

    let team_a = server.tenants().resolve("team-a").expect("tenant");
    assert_eq!(team_a.stats.admitted_ops.get(), 1);
    assert_eq!(team_a.stats.admitted_bytes.get(), 2);
    // The pre-AUTH traffic billed to default.
    assert!(server.tenants().default_tenant().stats.admitted_ops.get() == 0);

    server.shutdown();
}

#[test]
fn quota_caps_admission_rate() {
    let quota = 400u64;
    let server = test_server(vec![TenantSpec {
        name: "capped".into(),
        ops_per_sec: quota,
        bytes_per_sec: 0,
        weight: 1,
    }]);
    let mut c = Client::connect(server.addr());
    assert_eq!(c.cmd(&[b"AUTH", b"capped"]), RespValue::Simple("OK".into()));

    // Offer far more than the quota for ~1s of wall clock; the server
    // must serve every op (no errors) but pace them at the bucket rate.
    let started = Instant::now();
    let mut done = 0u64;
    while started.elapsed() < Duration::from_millis(1000) {
        // Pipelines of 20 PUT-free GETs: cheap on the device, so the
        // token bucket is the only thing pacing us.
        let mut wire = Vec::new();
        for i in 0..20 {
            let key = format!("q{i}");
            rhik_server::resp::enc_command(&mut wire, &[b"GET", key.as_bytes()]);
        }
        c.send_raw(&wire);
        for _ in 0..20 {
            assert_eq!(c.read_reply(), RespValue::Nil);
            done += 1;
        }
    }
    let secs = started.elapsed().as_secs_f64();
    let burst = (quota as f64 / 5.0).max(64.0);
    let ceiling = quota as f64 * secs + burst + 40.0;
    assert!(
        (done as f64) <= ceiling,
        "tenant exceeded quota: {done} ops in {secs:.2}s (ceiling {ceiling:.0})"
    );
    // And the throttle actually engaged (we offered much more).
    let capped = server.tenants().resolve("capped").expect("tenant");
    assert!(capped.stats.throttled.get() > 0, "quota never engaged");

    server.shutdown();
}

#[test]
fn protocol_errors_reply_then_close() {
    let server = test_server(Vec::new());
    let mut c = Client::connect(server.addr());
    assert_eq!(c.cmd(&[b"PING"]), RespValue::Simple("PONG".into()));

    c.send_raw(b"GET inline-form\r\n");
    match c.read_reply() {
        RespValue::Error(msg) => assert!(msg.starts_with("ERR Protocol error"), "{msg}"),
        other => panic!("expected protocol error, got {other:?}"),
    }
    assert!(c.eof(), "connection must close after a protocol error");

    // QUIT also closes, but politely.
    let mut c2 = Client::connect(server.addr());
    assert_eq!(c2.cmd(&[b"SET", b"x", b"y"]), RespValue::Simple("OK".into()));
    assert_eq!(c2.cmd(&[b"QUIT"]), RespValue::Simple("OK".into()));
    assert!(c2.eof(), "connection must close after QUIT");

    server.shutdown();
}

#[test]
fn shutdown_is_clean_and_device_audits() {
    let server = test_server(Vec::new());
    let mut c = Client::connect(server.addr());
    for i in 0..200u32 {
        let key = format!("audit-{i}");
        let val = format!("payload-{i:04}");
        assert_eq!(
            c.cmd(&[b"SET", key.as_bytes(), val.as_bytes()]),
            RespValue::Simple("OK".into())
        );
    }
    for i in (0..200u32).step_by(3) {
        let key = format!("audit-{i}");
        assert_eq!(c.cmd(&[b"DEL", key.as_bytes()]), RespValue::Int(1));
    }
    let device = server.device().clone();
    let served = server.ops_served();
    assert!(served >= 200 + 67);
    server.shutdown();

    // After shutdown the device is quiesced: flush and run the full
    // cross-layer invariant audit.
    device.flush().expect("flush");
    let mut auditor = DeviceAuditor::new();
    let report = device.audit(&mut auditor);
    assert!(report.is_ok(), "audit violations after server shutdown: {report:?}");
    for i in 0..200u32 {
        let expect = i % 3 != 0;
        let got = device.get(format!("audit-{i}").as_bytes()).expect("get");
        assert_eq!(got.is_some(), expect, "key audit-{i}");
    }
}
