//! Multi-tenant admission control: token-bucket rate/byte quotas at the
//! socket edge and deficit-round-robin fair dequeue at the shard edge.
//!
//! Admission is *flow control*, not rejection: when a tenant's bucket is
//! empty the connection simply stops consuming frames from its read
//! buffer, which stops reading the socket, which pushes back through TCP
//! to the client. A tenant offered 10x its quota is served at the quota;
//! nothing is errored and nothing queues beyond the bounded lanes.
//!
//! Every queue in this module is bounded at construction
//! (`VecDeque::with_capacity`, enforced by wslint's
//! `unbounded-queue-in-server` rule): lanes hold at most `lane_cap` ops
//! per tenant per shard, and the active-lane ring holds at most one entry
//! per tenant.

use std::collections::VecDeque;
use std::sync::Arc;

use rhik_ftl::sync::{Counter, Mutex};

use crate::clock;

/// Static description of one tenant, supplied in [`crate::ServerConfig`].
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Name presented by clients via `AUTH <name>`.
    pub name: String,
    /// Sustained op-rate quota; `0` = unlimited.
    pub ops_per_sec: u64,
    /// Sustained payload-byte quota (key+value bytes); `0` = unlimited.
    pub bytes_per_sec: u64,
    /// DRR weight: relative share of shard service when lanes compete.
    pub weight: u32,
}

impl TenantSpec {
    /// An unlimited tenant with weight 1.
    pub fn unlimited(name: &str) -> Self {
        TenantSpec { name: name.to_string(), ops_per_sec: 0, bytes_per_sec: 0, weight: 1 }
    }
}

/// Classic token bucket refilled lazily from the monotonic host clock.
/// Burst capacity is a fifth of a second of quota (floor 64) so a
/// late-arriving pipeline can still be admitted as one batch.
struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last_ns: u64,
}

impl TokenBucket {
    fn new(rate_per_sec: u64) -> Self {
        let rate = rate_per_sec as f64;
        let burst = (rate / 5.0).max(64.0);
        TokenBucket { rate_per_sec: rate, burst, tokens: burst, last_ns: clock::now_ns() }
    }

    fn refill(&mut self, now_ns: u64) {
        let dt = now_ns.saturating_sub(self.last_ns) as f64 / 1e9;
        self.last_ns = now_ns;
        self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.burst);
    }

    fn try_take(&mut self, n: f64, now_ns: u64) -> bool {
        self.refill(now_ns);
        if self.tokens >= n {
            self.tokens -= n;
            true
        } else {
            false
        }
    }
}

/// Relaxed per-tenant counters, readable while the server runs.
#[derive(Default)]
pub struct TenantStats {
    /// Ops admitted past the quota gate.
    pub admitted_ops: Counter,
    /// Payload bytes admitted past the quota gate.
    pub admitted_bytes: Counter,
    /// Admission attempts deferred because a bucket was empty.
    pub throttled: Counter,
    /// Admission attempts deferred because the target shard lane was full.
    pub lane_full: Counter,
}

/// One tenant: quota buckets + stats + pre-formatted telemetry names
/// (formatted once here so the per-op path never allocates for a label).
pub struct Tenant {
    pub id: usize,
    pub spec: TenantSpec,
    op_bucket: Option<Mutex<TokenBucket>>,
    byte_bucket: Option<Mutex<TokenBucket>>,
    pub stats: TenantStats,
    pub metric_ops: String,
    pub metric_bytes: String,
    pub metric_throttled: String,
}

impl Tenant {
    fn new(id: usize, spec: TenantSpec) -> Self {
        let op_bucket =
            (spec.ops_per_sec > 0).then(|| Mutex::new(TokenBucket::new(spec.ops_per_sec)));
        let byte_bucket =
            (spec.bytes_per_sec > 0).then(|| Mutex::new(TokenBucket::new(spec.bytes_per_sec)));
        let metric_ops = format!("server.tenant.{}.ops", spec.name);
        let metric_bytes = format!("server.tenant.{}.bytes", spec.name);
        let metric_throttled = format!("server.tenant.{}.throttled", spec.name);
        Tenant {
            id,
            spec,
            op_bucket,
            byte_bucket,
            stats: TenantStats::default(),
            metric_ops,
            metric_bytes,
            metric_throttled,
        }
    }

    /// Admit one op carrying `payload_bytes` of key+value, or defer it.
    /// Deferred ops cost nothing: tokens are only taken when both the op
    /// bucket and the byte bucket can cover the request.
    pub fn try_admit(&self, payload_bytes: usize) -> bool {
        let now = clock::now_ns();
        // Peek the op bucket, then the byte bucket; only commit the op
        // token once both have room so a starved byte bucket cannot
        // silently drain the op bucket.
        if let Some(ops) = &self.op_bucket {
            let mut ops = ops.lock().unwrap_or_else(|p| p.into_inner());
            ops.refill(now);
            if ops.tokens < 1.0 {
                self.stats.throttled.incr();
                return false;
            }
            if let Some(bytes) = &self.byte_bucket {
                let mut bytes = bytes.lock().unwrap_or_else(|p| p.into_inner());
                if !bytes.try_take(payload_bytes as f64, now) {
                    self.stats.throttled.incr();
                    return false;
                }
            }
            ops.tokens -= 1.0;
        } else if let Some(bytes) = &self.byte_bucket {
            let mut bytes = bytes.lock().unwrap_or_else(|p| p.into_inner());
            if !bytes.try_take(payload_bytes as f64, now) {
                self.stats.throttled.incr();
                return false;
            }
        }
        self.stats.admitted_ops.incr();
        self.stats.admitted_bytes.add(payload_bytes as u64);
        true
    }
}

/// All tenants for one server instance. Id 0 is always the `default`
/// tenant, used by connections that never issue `AUTH`.
pub struct TenantRegistry {
    tenants: Vec<Arc<Tenant>>,
}

impl TenantRegistry {
    pub fn new(mut specs: Vec<TenantSpec>) -> Self {
        if !specs.iter().any(|s| s.name == "default") {
            specs.insert(0, TenantSpec::unlimited("default"));
        }
        let tenants =
            specs.into_iter().enumerate().map(|(id, s)| Arc::new(Tenant::new(id, s))).collect();
        TenantRegistry { tenants }
    }

    pub fn resolve(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants.iter().find(|t| t.spec.name == name).cloned()
    }

    pub fn default_tenant(&self) -> Arc<Tenant> {
        self.tenants[0].clone()
    }

    pub fn all(&self) -> &[Arc<Tenant>] {
        &self.tenants
    }

    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }
}

struct Lane<T> {
    q: VecDeque<(usize, T)>,
    deficit: usize,
    weight: u32,
    queued: bool,
}

/// Deficit-round-robin queue: one bounded lane per tenant, serviced in
/// proportion to lane weight measured in payload bytes. Generic over the
/// queued item so the scheduler stays independent of connection wiring.
pub struct DrrQueue<T> {
    lanes: Vec<Lane<T>>,
    /// Ring of tenant ids with non-empty lanes; at most one entry per
    /// tenant, so capacity `lanes.len()` is exact.
    active: VecDeque<usize>,
    quantum: usize,
    lane_cap: usize,
    len: usize,
}

impl<T> DrrQueue<T> {
    pub fn new(quantum_bytes: usize, lane_cap: usize, weights: &[u32]) -> Self {
        let lanes = weights
            .iter()
            .map(|&w| Lane {
                q: VecDeque::with_capacity(lane_cap),
                deficit: 0,
                weight: w.max(1),
                queued: false,
            })
            .collect::<Vec<_>>();
        DrrQueue {
            active: VecDeque::with_capacity(weights.len()),
            lanes,
            quantum: quantum_bytes.max(1),
            lane_cap: lane_cap.max(1),
            len: 0,
        }
    }

    pub fn has_room(&self, tenant: usize) -> bool {
        self.lanes.get(tenant).map(|l| l.q.len() < self.lane_cap).unwrap_or(false)
    }

    /// Enqueue `item` with service cost `cost_bytes`; hands the item back
    /// if the tenant's lane is full (caller retries later — backpressure).
    pub fn push(&mut self, tenant: usize, cost_bytes: usize, item: T) -> Result<(), T> {
        let Some(lane) = self.lanes.get_mut(tenant) else { return Err(item) };
        if lane.q.len() >= self.lane_cap {
            return Err(item);
        }
        lane.q.push_back((cost_bytes.max(1), item));
        self.len += 1;
        if !lane.queued {
            lane.queued = true;
            self.active.push_back(tenant);
        }
        Ok(())
    }

    /// DRR service: move up to `max_items` items into `out`, visiting
    /// active lanes round-robin and crediting `quantum × weight` bytes of
    /// deficit per visit. Returns the number of items dequeued.
    pub fn assemble(&mut self, max_items: usize, out: &mut Vec<T>) -> usize {
        let mut taken = 0;
        while taken < max_items {
            let Some(&tenant) = self.active.front() else { break };
            let lane = &mut self.lanes[tenant];
            lane.deficit += self.quantum * lane.weight as usize;
            while taken < max_items {
                match lane.q.front() {
                    Some(&(cost, _)) if cost <= lane.deficit => {
                        if let Some((cost, item)) = lane.q.pop_front() {
                            lane.deficit -= cost;
                            self.len -= 1;
                            out.push(item);
                            taken += 1;
                        }
                    }
                    _ => break,
                }
            }
            if lane.q.is_empty() {
                lane.deficit = 0;
                lane.queued = false;
                self.active.pop_front();
            } else if taken < max_items {
                // Deficit too small for the head item: rotate and let the
                // next visit add another quantum.
                if let Some(t) = self.active.pop_front() {
                    self.active.push_back(t);
                }
            } else {
                break;
            }
        }
        taken
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drr_respects_weights() {
        // Tenant 1 has twice tenant 0's weight; with equal unit costs it
        // should receive roughly twice the service.
        let mut q = DrrQueue::new(64, 1000, &[1, 2]);
        for i in 0..300 {
            q.push(0, 64, ("a", i)).map_err(|_| ()).expect("lane 0 has room");
            q.push(1, 64, ("b", i)).map_err(|_| ()).expect("lane 1 has room");
        }
        let mut out = Vec::new();
        q.assemble(300, &mut out);
        let a = out.iter().filter(|(t, _)| *t == "a").count();
        let b = out.iter().filter(|(t, _)| *t == "b").count();
        assert_eq!(a + b, 300);
        assert!(b > a, "weighted lane must get more service: a={a} b={b}");
        assert!((b as f64 / a.max(1) as f64 - 2.0).abs() < 0.5, "a={a} b={b}");
    }

    #[test]
    fn lanes_are_bounded_and_reject_overflow() {
        let mut q = DrrQueue::new(64, 4, &[1]);
        for i in 0..4 {
            assert!(q.push(0, 10, i).is_ok());
        }
        assert!(!q.has_room(0));
        assert_eq!(q.push(0, 10, 99), Err(99));
        assert_eq!(q.len(), 4);
        let mut out = Vec::new();
        assert_eq!(q.assemble(10, &mut out), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert!(q.is_empty());
        // Lane drained: pushes succeed again and order is preserved.
        assert!(q.push(0, 10, 7).is_ok());
        out.clear();
        q.assemble(1, &mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn large_items_eventually_dequeue() {
        // Item cost far above the quantum: repeated visits accumulate
        // deficit until it clears — the scheduler must not spin forever
        // or starve the lane.
        let mut q = DrrQueue::new(64, 8, &[1]);
        q.push(0, 100_000, "big").map_err(|_| ()).expect("room");
        let mut out = Vec::new();
        q.assemble(1, &mut out);
        assert_eq!(out, vec!["big"]);
    }

    #[test]
    fn token_bucket_caps_sustained_rate() {
        let t = Tenant::new(
            0,
            TenantSpec { name: "capped".into(), ops_per_sec: 1000, bytes_per_sec: 0, weight: 1 },
        );
        // Burst drains, then sustained admission tracks the refill rate.
        let mut admitted = 0u64;
        for _ in 0..10_000 {
            if t.try_admit(16) {
                admitted += 1;
            }
        }
        // Whole loop runs in far under a second: admitted ≈ burst (200)
        // plus a sliver of refill.
        assert!(admitted >= 64, "burst should admit: {admitted}");
        assert!(admitted < 2000, "quota must cap admission: {admitted}");
        assert!(t.stats.throttled.get() > 0);
        assert_eq!(t.stats.admitted_ops.get(), admitted);
    }

    #[test]
    fn unlimited_tenant_never_throttles() {
        let t = Tenant::new(0, TenantSpec::unlimited("default"));
        for _ in 0..5000 {
            assert!(t.try_admit(1 << 20));
        }
        assert_eq!(t.stats.throttled.get(), 0);
    }

    #[test]
    fn registry_always_has_default() {
        let reg = TenantRegistry::new(vec![TenantSpec {
            name: "alpha".into(),
            ops_per_sec: 10,
            bytes_per_sec: 0,
            weight: 3,
        }]);
        assert_eq!(reg.default_tenant().spec.name, "default");
        assert_eq!(reg.default_tenant().id, 0);
        let alpha = reg.resolve("alpha").expect("configured tenant resolves");
        assert_eq!(alpha.spec.weight, 3);
        assert!(reg.resolve("ghost").is_none());
        assert_eq!(reg.len(), 2);
    }
}
