//! Per-connection state: the read buffer, the reply-ordering ring, the
//! vectored write queue, and the mailbox that shard drains post replies
//! through.
//!
//! Memory discipline: every structure here is bounded by configuration.
//! The read buffer stops growing at the read high-watermark (sized to
//! always fit one maximal frame, so a slow sender still makes progress),
//! the pending ring admits at most `max_pipeline` in-flight ops, the
//! mailbox can never hold more entries than the ring has slots, and the
//! write queue stops accepting new frames past the write budget. A
//! stalled client therefore pins at most
//! `read_high + write_budget + max_pipeline × max_reply` bytes — the
//! invariant `tests/backpressure.rs` enforces.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use bytes::Bytes;
use rhik_ftl::sync::Mutex;

use crate::error_map::Reply;
use crate::resp;

/// Cross-thread reply delivery. A shard drain (running on any worker)
/// posts completed replies here; the worker that owns the connection
/// moves them into the pending ring on its next pump. The mailbox is
/// per-connection-instance — when the connection dies its `Arc` simply
/// outlives it on in-flight ops, whose replies are posted and dropped.
pub struct Mailbox {
    inner: Mutex<Vec<(u64, Reply)>>,
}

impl Mailbox {
    pub fn new(max_pipeline: usize) -> Self {
        Mailbox { inner: Mutex::new(Vec::with_capacity(max_pipeline)) }
    }

    pub fn post(&self, slot: u64, reply: Reply) {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).push((slot, reply));
    }

    pub fn drain_into(&self, out: &mut Vec<(u64, Reply)>) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        out.append(&mut inner);
    }
}

/// Reply-ordering ring. Slots are allocated sequentially at parse time;
/// replies complete in any order (different shards finish at different
/// times); only the contiguous prefix is released to the wire, so the
/// client always sees replies in request order.
pub struct PendingRing {
    /// Next slot to release to the wire.
    base: u64,
    /// Next slot to allocate.
    next: u64,
    ring: VecDeque<Option<Reply>>,
    cap: usize,
}

impl PendingRing {
    pub fn new(max_pipeline: usize) -> Self {
        let cap = max_pipeline.max(1);
        PendingRing { base: 0, next: 0, ring: VecDeque::with_capacity(cap), cap }
    }

    pub fn in_flight(&self) -> usize {
        (self.next - self.base) as usize
    }

    pub fn has_room(&self) -> bool {
        self.in_flight() < self.cap
    }

    /// Allocate the next slot (caller checked `has_room`).
    pub fn alloc(&mut self) -> u64 {
        let slot = self.next;
        self.next += 1;
        self.ring.push_back(None);
        slot
    }

    /// Fill a slot. Slots outside `[base, next)` are stale deliveries
    /// for a recycled connection index and are ignored.
    pub fn complete(&mut self, slot: u64, reply: Reply) {
        if slot < self.base || slot >= self.next {
            return;
        }
        let idx = (slot - self.base) as usize;
        if let Some(cell) = self.ring.get_mut(idx) {
            *cell = Some(reply);
        }
    }

    /// Pop the next in-order reply, if it has completed.
    pub fn pop_ready(&mut self) -> Option<Reply> {
        match self.ring.front() {
            Some(Some(_)) => {}
            _ => return None,
        }
        let reply = self.ring.pop_front().flatten();
        self.base += 1;
        reply
    }
}

/// One chunk of the outbound wire stream. `Shared` chunks carry cache /
/// read-path [`Bytes`] straight to the socket without copying.
enum Chunk {
    Owned(Vec<u8>),
    Shared(Bytes),
}

impl Chunk {
    fn as_slice(&self) -> &[u8] {
        match self {
            Chunk::Owned(v) => v,
            Chunk::Shared(b) => b,
        }
    }
}

/// Values at or above this many bytes ride as shared chunks; smaller
/// ones are cheaper to memcpy into the staging buffer than to pay an
/// extra `iovec` entry for.
const SHARED_CHUNK_MIN: usize = 1024;

/// Cap on `iovec` entries per `write_vectored` call (Linux `UIO_MAXIOV`
/// is 1024; 64 already amortizes the syscall completely).
const MAX_IOV: usize = 64;

/// The outbound stream: sealed chunks plus an open staging tail that
/// small replies append to. One flush call drains as much as the socket
/// accepts with at most one `writev` per `MAX_IOV` chunks.
pub struct WriteQueue {
    chunks: VecDeque<Chunk>,
    /// Bytes of `chunks[0]` already written.
    head_off: usize,
    /// Open staging buffer; sealed into `chunks` on flush or when a
    /// shared chunk is interposed.
    tail: Vec<u8>,
    bytes: usize,
}

impl Default for WriteQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl WriteQueue {
    pub fn new() -> Self {
        // bounded-by: `bytes` counts everything queued and the server
        // stops draining a connection past its write budget, so `tail`
        // (and `chunks`) track that backpressure cap.
        WriteQueue { chunks: VecDeque::with_capacity(16), head_off: 0, tail: Vec::new(), bytes: 0 }
    }

    /// Total bytes queued and not yet accepted by the socket.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }

    fn seal_tail(&mut self) {
        if !self.tail.is_empty() {
            self.chunks.push_back(Chunk::Owned(std::mem::take(&mut self.tail)));
        }
    }

    /// Encode one reply onto the stream. Large values are zero-copy.
    pub fn push_reply(&mut self, reply: &Reply) {
        self.bytes += reply.wire_bytes();
        match reply {
            Reply::Ok => resp::enc_simple(&mut self.tail, "OK"),
            Reply::Pong => resp::enc_simple(&mut self.tail, "PONG"),
            Reply::Nil => resp::enc_nil(&mut self.tail),
            Reply::Int(n) => resp::enc_int(&mut self.tail, *n),
            Reply::Error(msg) => resp::enc_error(&mut self.tail, msg),
            Reply::Value(v) if v.len() >= SHARED_CHUNK_MIN => {
                resp::enc_bulk_header(&mut self.tail, v.len());
                self.seal_tail();
                self.chunks.push_back(Chunk::Shared(v.clone()));
                resp::enc_crlf(&mut self.tail);
            }
            Reply::Value(v) => resp::enc_bulk(&mut self.tail, v),
        }
    }

    /// Write as much as the socket accepts. Returns the bytes written;
    /// `WouldBlock` maps to `Ok(0)`.
    pub fn flush(&mut self, stream: &mut TcpStream) -> io::Result<usize> {
        self.seal_tail();
        let mut total = 0;
        while !self.chunks.is_empty() {
            let mut iovs: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_IOV.min(self.chunks.len()));
            for (i, chunk) in self.chunks.iter().take(MAX_IOV).enumerate() {
                let s = chunk.as_slice();
                iovs.push(IoSlice::new(if i == 0 { &s[self.head_off..] } else { s }));
            }
            let n = match stream.write_vectored(&iovs) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            total += n;
            self.bytes -= n;
            self.consume(n);
        }
        Ok(total)
    }

    fn consume(&mut self, mut n: usize) {
        while n > 0 {
            let Some(front) = self.chunks.front() else { return };
            let remaining = front.as_slice().len() - self.head_off;
            if n >= remaining {
                n -= remaining;
                self.head_off = 0;
                self.chunks.pop_front();
            } else {
                self.head_off += n;
                return;
            }
        }
    }
}

/// Why `pump` retired a connection.
#[derive(Debug, PartialEq, Eq)]
pub enum ConnState {
    Open,
    Closed,
}

/// One client connection, owned by exactly one worker thread.
pub struct Connection {
    pub stream: TcpStream,
    /// Read buffer; `cursor` marks the consumed prefix.
    pub buf: Vec<u8>,
    pub cursor: usize,
    pub pending: PendingRing,
    pub wq: WriteQueue,
    pub mailbox: Arc<Mailbox>,
    /// Tenant id this connection bills to (rebound by `AUTH`).
    pub tenant: usize,
    /// Flush remaining replies, then close (QUIT / protocol error).
    pub closing: bool,
    /// Peer sent EOF; drain in-flight work, then close.
    pub eof: bool,
    /// Scratch for `parse_frame` ranges (reused, never reallocated in
    /// steady state).
    pub args: Vec<(usize, usize)>,
    /// Scratch for mailbox drains.
    pub delivery: Vec<(u64, Reply)>,
}

impl Connection {
    pub fn new(stream: TcpStream, max_pipeline: usize, tenant: usize) -> Self {
        Connection {
            stream,
            buf: Vec::with_capacity(4096),
            cursor: 0,
            pending: PendingRing::new(max_pipeline),
            wq: WriteQueue::new(),
            mailbox: Arc::new(Mailbox::new(max_pipeline)),
            tenant,
            closing: false,
            eof: false,
            args: Vec::new(), // bounded-by: reset per parsed command; Limits::max_args caps it
            delivery: Vec::new(), // bounded-by: drained every poll; mailbox caps it at max_pipeline
        }
    }

    /// Bytes this connection is currently buffering (read + write side).
    /// The backpressure test asserts this never exceeds the per-conn
    /// budget while a client stalls.
    pub fn buffered_bytes(&self) -> usize {
        (self.buf.len() - self.cursor) + self.wq.bytes()
    }

    /// Move mailbox deliveries → ring → write queue. Returns the number
    /// of replies released to the wire.
    pub fn collect_replies(&mut self) -> usize {
        self.delivery.clear();
        self.mailbox.drain_into(&mut self.delivery);
        // Indexing a scratch we just filled; split borrows manually.
        let delivery = std::mem::take(&mut self.delivery);
        for (slot, reply) in &delivery {
            self.pending.complete(*slot, reply.clone());
        }
        self.delivery = delivery;
        let mut released = 0;
        while let Some(reply) = self.pending.pop_ready() {
            self.wq.push_reply(&reply);
            released += 1;
        }
        released
    }

    /// Drop the consumed prefix once it dominates the buffer, keeping
    /// amortized-O(1) compaction.
    pub fn compact(&mut self) {
        if self.cursor > 0 && (self.cursor >= self.buf.len() || self.cursor >= 8192) {
            self.buf.drain(..self.cursor);
            self.cursor = 0;
        }
    }

    /// Read from the socket up to the high-watermark. Returns bytes read
    /// (0 on `WouldBlock` or when already at the watermark).
    pub fn fill(&mut self, read_high: usize) -> io::Result<usize> {
        self.compact();
        let unconsumed = self.buf.len() - self.cursor;
        if unconsumed >= read_high || self.eof || self.closing {
            return Ok(0);
        }
        let want = read_high - unconsumed;
        let old_len = self.buf.len();
        self.buf.resize(old_len + want, 0);
        let got = match self.stream.read(&mut self.buf[old_len..]) {
            Ok(0) => {
                self.eof = true;
                0
            }
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => 0,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => {
                self.buf.truncate(old_len);
                return Err(e);
            }
        };
        self.buf.truncate(old_len + got);
        Ok(got)
    }

    /// Whether this connection has fully quiesced and can be dropped:
    /// peer gone (or closing) with nothing in flight and nothing queued.
    /// On plain EOF the unconsumed tail must be empty too — frames the
    /// client pipelined before half-closing are still served.
    pub fn drained(&self) -> bool {
        (self.eof || self.closing)
            && self.pending.in_flight() == 0
            && self.wq.is_empty()
            && (self.closing || self.buf.len() == self.cursor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_releases_in_request_order() {
        let mut ring = PendingRing::new(4);
        let a = ring.alloc();
        let b = ring.alloc();
        let c = ring.alloc();
        ring.complete(c, Reply::Int(3));
        ring.complete(a, Reply::Int(1));
        // b still outstanding: only a releases.
        assert_eq!(ring.pop_ready(), Some(Reply::Int(1)));
        assert_eq!(ring.pop_ready(), None);
        ring.complete(b, Reply::Int(2));
        assert_eq!(ring.pop_ready(), Some(Reply::Int(2)));
        assert_eq!(ring.pop_ready(), Some(Reply::Int(3)));
        assert_eq!(ring.in_flight(), 0);
    }

    #[test]
    fn ring_bounds_in_flight_and_ignores_stale_slots() {
        let mut ring = PendingRing::new(2);
        let a = ring.alloc();
        let _b = ring.alloc();
        assert!(!ring.has_room());
        ring.complete(a, Reply::Ok);
        assert_eq!(ring.pop_ready(), Some(Reply::Ok));
        assert!(ring.has_room());
        // Completing a released or never-allocated slot is a no-op.
        ring.complete(a, Reply::Pong);
        ring.complete(99, Reply::Pong);
        assert_eq!(ring.pop_ready(), None);
    }

    #[test]
    fn write_queue_accounts_bytes_exactly() {
        let mut wq = WriteQueue::new();
        assert!(wq.is_empty());
        wq.push_reply(&Reply::Ok);
        wq.push_reply(&Reply::Value(Bytes::from(vec![7u8; 2048])));
        wq.push_reply(&Reply::Int(-5));
        let expected = Reply::Ok.wire_bytes()
            + Reply::Value(Bytes::from(vec![7u8; 2048])).wire_bytes()
            + Reply::Int(-5).wire_bytes();
        assert_eq!(wq.bytes(), expected);
    }

    #[test]
    fn write_queue_streams_correct_bytes_through_a_socket() {
        use std::net::{TcpListener, TcpStream};
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (mut server_side, _) = listener.accept().expect("accept");

        let big = Bytes::from((0..4000u32).map(|i| i as u8).collect::<Vec<u8>>());
        let mut wq = WriteQueue::new();
        wq.push_reply(&Reply::Ok);
        wq.push_reply(&Reply::Value(big.clone()));
        wq.push_reply(&Reply::Nil);
        let total = wq.bytes();
        let mut written = 0;
        while written < total {
            written += wq.flush(&mut server_side).expect("flush");
        }
        assert!(wq.is_empty());

        let mut expect = Vec::new();
        resp::enc_simple(&mut expect, "OK");
        resp::enc_bulk(&mut expect, &big);
        resp::enc_nil(&mut expect);
        let mut got = vec![0u8; expect.len()];
        client.read_exact(&mut got).expect("read");
        assert_eq!(got, expect);
    }
}
